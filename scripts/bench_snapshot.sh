#!/usr/bin/env bash
# Regenerates BENCH_rock.json from the rock_parallel, serve, shard_merge
# and incremental benches.
#
# Usage:
#   scripts/bench_snapshot.sh [output.json]
#
# Environment:
#   BENCH_SAMPLE_SIZE  override the per-benchmark sample count (smoke: 1)
#   BENCH_FILTER       substring filter on benchmark ids (default: all)
#
# The bench harness (shims/criterion) appends one JSON record per
# benchmark to $BENCH_JSON; this script wraps those records together with
# host metadata into a single checked-in snapshot. Read it via DESIGN.md,
# "Performance model": compare <group>/seq against <group>/par<N> means
# on a host with >= N cores; host_cpus below records how many cores the
# snapshot machine actually had, and every parallel record carries its
# own "threads" count plus "oversubscribed":true when threads exceeded
# host_cpus — those records measure scheduler behaviour, not kernel
# scaling, and scripts/bench_compare.sh excludes them from regression
# counting. Set BENCH_SKIP_OVERSUBSCRIBED=1 to drop them entirely. The
# serve_assign/single_query record's p99_ns is the tail per-query assign
# latency through a reloaded artifact (DESIGN.md §11).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_rock.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

for bench in rock_parallel serve shard_merge incremental; do
    args=(bench -p bench --bench "$bench")
    if [[ -n "${BENCH_FILTER:-}" ]]; then
        args+=(-- "$BENCH_FILTER")
    fi
    BENCH_JSON="$tmp" cargo "${args[@]}"
done

if [[ ! -s "$tmp" ]]; then
    echo "bench_snapshot: no records produced (filter too narrow?)" >&2
    exit 1
fi

records="$(paste -sd, - <"$tmp")"
{
    printf '{\n'
    printf '  "bench": "rock_parallel+serve+shard_merge+incremental",\n'
    printf '  "generator": "SyntheticBasketSpec::paper_scaled(0.05), seed 42 (section 5.3)",\n'
    printf '  "generated_utc": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "git_rev": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
    printf '  "host_cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
    printf '  "rustc": "%s",\n' "$(rustc --version | tr -d '\n')"
    printf '  "units": "nanoseconds (wall clock; mean/min/max/p99 over samples)",\n'
    printf '  "results": [\n'
    printf '%s\n' "$records" | sed 's/},{/},\n    {/g; s/^/    /'
    printf '  ]\n'
    printf '}\n'
} >"$out"

cpus="$(nproc 2>/dev/null || echo 1)"
echo "bench_snapshot: wrote $(grep -c '"id"' "$out") records to $out (host_cpus=$cpus)"
if grep -q '"oversubscribed":true' "$out"; then
    echo "bench_snapshot: WARNING: $(grep -c '"oversubscribed":true' "$out") records ran more threads than the $cpus host cpu(s) — their timings measure oversubscription, not scaling" >&2
fi

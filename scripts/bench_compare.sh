#!/usr/bin/env bash
# Diffs two BENCH_*.json snapshots with per-id mean/p99 deltas.
#
# Usage:
#   scripts/bench_compare.sh <before.json> <after.json> [--threshold <pct>] [--strict]
#
# Thin wrapper over the bench_compare binary (crates/bench/src/bin).
# Default threshold is 10%; regressions beyond it are flagged in the
# output but only fail the process with --strict. CI runs this without
# --strict as a non-blocking report step — wall-clock deltas measured on
# shared runners are advisory. Records marked oversubscribed (threads >
# snapshot host's CPUs) are excluded from regression counting.
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run --release -q -p bench --bin bench_compare -- "$@"

//! Error-contract acceptance tests: every user-facing [`RockError`]
//! variant that library code can construct is provoked here through the
//! public API and asserted by shape — the executable counterpart of
//! rock-tidy's `error-coverage` rule, which statically requires each
//! constructed variant to be matched somewhere under a `tests/` tree.
//!
//! Display formatting is covered by unit tests in `core/src/error.rs`;
//! these tests check the *construction* paths: that the documented
//! misuse really yields the documented variant, with the offending
//! values echoed back.

use rock::goodness::ConstantF;
use rock::governor::DegradationPolicy;
use rock::points::Transaction;
use rock::rock::Rock;
use rock::similarity::{Jaccard, Similarity};
use rock::wal::MergeWal;
use rock::RockError;
use rock_core::artifact::ModelArtifact;
use std::path::Path;

/// Two well-separated basket clusters.
fn baskets() -> Vec<Transaction> {
    vec![
        Transaction::from([0, 1, 2]),
        Transaction::from([0, 1, 3]),
        Transaction::from([0, 2, 3]),
        Transaction::from([10, 11, 12]),
        Transaction::from([10, 11, 13]),
        Transaction::from([10, 12, 13]),
    ]
}

#[test]
fn zero_clusters_is_invalid_k() {
    assert!(matches!(
        Rock::builder().clusters(0).build(),
        Err(RockError::InvalidK(0))
    ));
}

#[test]
fn non_finite_ftheta_estimate_is_rejected() {
    for bad in [f64::NAN, f64::INFINITY, -1.0] {
        let err = Rock::builder().f_theta(ConstantF(bad)).build().unwrap_err();
        match err {
            RockError::InvalidFTheta(v) => {
                assert!(!v.is_finite() || v < 0.0, "echoed value {v} should be the bad f(θ)")
            }
            other => panic!("expected InvalidFTheta, got {other:?}"),
        }
    }
}

#[test]
fn sample_smaller_than_k_is_rejected_with_both_values() {
    assert!(matches!(
        Rock::builder().clusters(10).sample_size(7).build(),
        Err(RockError::InvalidSampleSize {
            sample_size: 7,
            k: 10
        })
    ));
    // A sample of exactly k is the boundary and is fine.
    assert!(Rock::builder().clusters(10).sample_size(10).build().is_ok());
}

#[test]
fn weed_stop_multiple_below_one_is_rejected() {
    let err = Rock::builder().weed_outliers(0.25, 3).build().unwrap_err();
    assert!(matches!(err, RockError::InvalidWeedMultiple(m) if m == 0.25));
}

#[test]
fn zero_threads_is_rejected() {
    assert!(matches!(
        Rock::builder().threads(0).build(),
        Err(RockError::InvalidThreads(0))
    ));
}

#[test]
fn subsample_fraction_outside_open_interval_is_rejected() {
    for bad in [0.0, 1.0, -0.5, 2.0, f64::NAN] {
        assert!(
            matches!(
                Rock::builder()
                    .degradation(DegradationPolicy::Subsample { fraction: bad })
                    .build(),
                Err(RockError::InvalidSubsampleFraction(_))
            ),
            "fraction {bad} must be rejected"
        );
    }
}

/// Jaccard, except any transaction containing item 13 evaluates to NaN.
struct NanOn13;

impl Similarity<Transaction> for NanOn13 {
    fn similarity(&self, a: &Transaction, b: &Transaction) -> f64 {
        if a.items().contains(&13) || b.items().contains(&13) {
            f64::NAN
        } else {
            Jaccard.similarity(a, b)
        }
    }
}

#[test]
fn checked_clustering_surfaces_non_finite_similarity() {
    let rock = Rock::builder().theta(0.5).clusters(2).build().unwrap();
    let err = rock.try_cluster(&baskets(), &NanOn13).unwrap_err();
    match err {
        RockError::NonFiniteSimilarity { value } => assert!(value.is_nan()),
        other => panic!("expected NonFiniteSimilarity, got {other:?}"),
    }
}

#[test]
fn resuming_a_wal_under_a_different_config_is_a_mismatch() {
    let data = baskets();
    let mut wal = MergeWal::new();
    let rock = Rock::builder().theta(0.5).clusters(2).build().unwrap();
    rock.cluster_wal(&data, &Jaccard, &mut wal).unwrap();
    let bytes = wal.into_bytes();
    // Same data, different θ: the WAL's configuration fingerprint no
    // longer matches the resuming run.
    let other = Rock::builder().theta(0.7).clusters(2).build().unwrap();
    let err = other
        .resume_cluster(&data, &Jaccard, &bytes, None)
        .unwrap_err();
    assert!(
        matches!(err, RockError::WalMismatch { .. }),
        "expected WalMismatch, got {err:?}"
    );
}

#[test]
fn loading_a_missing_artifact_is_an_io_error() {
    let err =
        ModelArtifact::load(Path::new("/nonexistent/rock-error-contract/model.rock")).unwrap_err();
    match err {
        RockError::ArtifactIo { detail } => {
            assert!(!detail.is_empty(), "the underlying I/O error must be echoed")
        }
        other => panic!("expected ArtifactIo, got {other:?}"),
    }
}

//! Crash/resume acceptance matrix for the governed clustering engine.
//!
//! The contract under test (see DESIGN.md, "Failure model"):
//!
//! 1. a [`rock::rock::Rock::cluster_wal`] run killed at *any* merge index
//!    resumes from its write-ahead log to a final clustering, merge trace
//!    and dendrogram bit-identical to an uninterrupted run, for any
//!    thread count;
//! 2. a WAL truncated at an *arbitrary* byte (a torn write) either
//!    resumes bit-identically or fails with a typed
//!    [`rock::RockError::WalCorrupt`] / `WalMismatch` — never a panic;
//! 3. snapshot-bearing WALs resume without the original data;
//! 4. cancellation and deadlines are observed within one merge batch;
//! 5. a tripped memory budget degrades per the configured policy instead
//!    of failing, and the outcome is recorded in the run report.

use proptest::prelude::*;
use rock::governor::{CancellationToken, DegradationPolicy, Phase, RunGovernor, TripReason};
use rock::points::Transaction;
use rock::rock::Rock;
use rock::similarity::Jaccard;
use rock::wal::{parse_wal, MergeWal};
use rock::{Dendrogram, RockError};
use std::time::Duration;

/// Three well-separated basket clusters over disjoint item ranges;
/// transactions are deterministic 3-subsets of a 7-item universe.
fn three_clusters(n_each: usize) -> Vec<Transaction> {
    let mut data = Vec::new();
    for c in 0..3u32 {
        let base = c * 100;
        let mut i = 0;
        'outer: for x in 0..7u32 {
            for y in (x + 1)..7 {
                for z in (y + 1)..7 {
                    data.push(Transaction::from([base + x, base + y, base + z]));
                    i += 1;
                    if i >= n_each {
                        break 'outer;
                    }
                }
            }
        }
    }
    data
}

fn engine(threads: usize, governor: RunGovernor) -> Rock {
    Rock::builder()
        .theta(0.4)
        .clusters(3)
        .threads(threads)
        .seed(11)
        .governor(governor)
        .build()
        .unwrap()
}

/// The full bit-identity check between a resumed and a baseline run.
fn assert_bit_identical(resumed: &rock::RockRun, baseline: &rock::RockRun) {
    assert_eq!(resumed.clustering, baseline.clustering);
    assert_eq!(resumed.merges, baseline.merges);
    assert_eq!(resumed.initial_points, baseline.initial_points);
    let d_resumed = Dendrogram::from_run(resumed);
    let d_baseline = Dendrogram::from_run(baseline);
    assert_eq!(d_resumed.is_some(), d_baseline.is_some());
    if let (Some(dr), Some(db)) = (d_resumed, d_baseline) {
        for k in db.min_clusters()..=db.min_clusters() + 2 {
            assert_eq!(dr.cut(k), db.cut(k), "dendrogram cut at k={k}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Fault matrix: kill at merge `k` (including 0 and past-the-end),
    // across thread counts 1/2/8 — interrupted + resumed ≡ uninterrupted.
    #[test]
    fn kill_at_any_merge_then_resume_is_bit_identical(
        k in 0u64..60,
        threads_idx in 0usize..3,
    ) {
        let threads = [1usize, 2, 8][threads_idx];
        let data = three_clusters(18);
        let baseline = engine(threads, RunGovernor::unlimited()).cluster(&data, &Jaccard);
        let killer = engine(threads, RunGovernor::unlimited().with_kill_at(Phase::Merge, k));
        let mut wal = MergeWal::new();
        match killer.cluster_wal(&data, &Jaccard, &mut wal) {
            // Kill point past the end of the merge trace: the run finishes.
            Ok(run) => assert_bit_identical(&run, &baseline),
            Err(RockError::Interrupted { phase, resumable, .. }) => {
                prop_assert_eq!(phase, Phase::Merge);
                prop_assert!(resumable);
                // The WAL holds exactly the merges performed before the kill.
                prop_assert_eq!(parse_wal(wal.as_bytes()).unwrap().num_merges() as u64, k);
                let resumed = engine(threads, RunGovernor::unlimited())
                    .resume_cluster(&data, &Jaccard, wal.as_bytes(), None)
                    .unwrap();
                assert_bit_identical(&resumed, &baseline);
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    // A WAL truncated at an arbitrary byte — simulating a torn write
    // during a crash — either resumes bit-identically (the torn tail is
    // dropped, the surviving prefix replayed) or fails with a typed
    // error. It never panics.
    #[test]
    fn wal_truncated_at_any_byte_resumes_or_fails_cleanly(cut in 0usize..100_000) {
        let data = three_clusters(14);
        let rock = engine(2, RunGovernor::unlimited());
        let mut wal = MergeWal::new();
        let baseline = rock.cluster_wal(&data, &Jaccard, &mut wal).unwrap();
        let bytes = wal.as_bytes();
        let cut = cut % (bytes.len() + 1);
        let torn = &bytes[..cut];
        match rock.resume_cluster(&data, &Jaccard, torn, None) {
            Ok(resumed) => assert_bit_identical(&resumed, &baseline),
            Err(RockError::WalCorrupt { offset, .. }) => {
                // Structural damage is only ever reported inside the
                // surviving prefix (bad magic / torn Begin record).
                prop_assert!(offset <= cut as u64);
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }
}

/// A resume can itself be killed; its continuation log (`wal_out`)
/// re-journals history so the chain resumes again — still bit-identical.
#[test]
fn chained_interruptions_resume_through_continuation_logs() {
    let data = three_clusters(18);
    let baseline = engine(2, RunGovernor::unlimited()).cluster(&data, &Jaccard);

    let mut wal1 = MergeWal::new();
    let err = engine(2, RunGovernor::unlimited().with_kill_at(Phase::Merge, 5))
        .cluster_wal(&data, &Jaccard, &mut wal1)
        .unwrap_err();
    assert!(matches!(err, RockError::Interrupted { resumable: true, .. }));

    let mut wal2 = MergeWal::new();
    let err = engine(2, RunGovernor::unlimited().with_kill_at(Phase::Merge, 12))
        .resume_cluster(&data, &Jaccard, wal1.as_bytes(), Some(&mut wal2))
        .unwrap_err();
    assert!(matches!(err, RockError::Interrupted { resumable: true, .. }));
    assert_eq!(parse_wal(wal2.as_bytes()).unwrap().num_merges(), 12);

    let resumed = engine(2, RunGovernor::unlimited())
        .resume_cluster(&data, &Jaccard, wal2.as_bytes(), None)
        .unwrap();
    assert_bit_identical(&resumed, &baseline);

    // The §3.3 criterion profile (E_l at every cut) over the resumed
    // dendrogram matches the uninterrupted one bit for bit.
    let graph = rock::NeighborGraph::build(&rock::similarity::PointsWith::new(&data, Jaccard), 0.4);
    let links = rock::compute_links_sparse(&graph);
    let goodness = rock::Goodness::new(0.4, rock::ConstantF(1.0), rock::GoodnessKind::Normalized);
    let d_resumed = Dendrogram::from_run(&resumed).expect("no weeding");
    let d_baseline = Dendrogram::from_run(&baseline).expect("no weeding");
    assert_eq!(
        d_resumed.criterion_profile(&links, &goodness),
        d_baseline.criterion_profile(&links, &goodness)
    );
}

/// Snapshots make the WAL self-contained: resume restores the latest
/// snapshot and needs neither the points nor a link recomputation.
#[test]
fn snapshot_wal_resumes_without_the_original_data() {
    let data = three_clusters(18);
    let baseline = engine(2, RunGovernor::unlimited()).cluster(&data, &Jaccard);

    let mut wal = MergeWal::new().with_snapshot_every(4);
    let err = engine(2, RunGovernor::unlimited().with_kill_at(Phase::Merge, 13))
        .cluster_wal(&data, &Jaccard, &mut wal)
        .unwrap_err();
    assert!(matches!(err, RockError::Interrupted { resumable: true, .. }));
    assert!(parse_wal(wal.as_bytes()).unwrap().has_snapshot());

    let resumed = engine(2, RunGovernor::unlimited())
        .resume_cluster_snapshot(wal.as_bytes(), None)
        .unwrap();
    assert_bit_identical(&resumed, &baseline);
}

/// Acceptance: cancellation and deadlines are observed within one merge
/// batch. A kill at merge `k` leaves exactly `k` merges in the log; an
/// expired deadline or a fired token stops before the first merge.
#[test]
fn interruption_granularity_is_one_merge_batch() {
    let data = three_clusters(18);
    for k in [0u64, 3, 9] {
        let mut wal = MergeWal::new();
        let err = engine(1, RunGovernor::unlimited().with_kill_at(Phase::Merge, k))
            .cluster_wal(&data, &Jaccard, &mut wal)
            .unwrap_err();
        assert!(matches!(err, RockError::Interrupted { .. }));
        assert_eq!(parse_wal(wal.as_bytes()).unwrap().num_merges() as u64, k);
    }

    let mut wal = MergeWal::new();
    let err = Rock::builder()
        .theta(0.4)
        .clusters(3)
        .deadline(Duration::ZERO)
        .build()
        .unwrap()
        .cluster_wal(&data, &Jaccard, &mut wal)
        .unwrap_err();
    assert!(matches!(
        err,
        RockError::Interrupted {
            reason: TripReason::DeadlineExceeded,
            ..
        }
    ));
    assert!(wal.is_empty());

    let token = CancellationToken::new();
    token.cancel();
    let mut wal = MergeWal::new();
    let err = Rock::builder()
        .theta(0.4)
        .clusters(3)
        .cancel_token(token)
        .build()
        .unwrap()
        .cluster_wal(&data, &Jaccard, &mut wal)
        .unwrap_err();
    assert!(matches!(
        err,
        RockError::Interrupted {
            reason: TripReason::Cancelled,
            ..
        }
    ));
    assert!(wal.is_empty());
}

/// A tripped memory budget follows the configured degradation policy:
/// `Fail` surfaces the trip, `Components` finishes via the θ-neighbor
/// connected-components fast path with the note recorded in the report.
#[test]
fn memory_trip_degrades_per_policy() {
    let data = three_clusters(18);

    let fail = Rock::builder()
        .theta(0.4)
        .clusters(3)
        .sample_size(30)
        .seed(5)
        .memory_budget(1)
        .build()
        .unwrap();
    let err = fail.try_run(&data, &Jaccard).unwrap_err();
    assert!(matches!(
        err,
        RockError::Interrupted {
            reason: TripReason::MemoryBudgetExceeded,
            resumable: false,
            ..
        }
    ));

    let degrade = Rock::builder()
        .theta(0.4)
        .clusters(3)
        .sample_size(30)
        .seed(5)
        .memory_budget(1)
        .degradation(DegradationPolicy::Components { min_cluster_size: 2 })
        .build()
        .unwrap();
    let (result, report) = degrade.try_run(&data, &Jaccard).unwrap();
    let note = report.degraded.as_ref().expect("degradation note recorded");
    assert_eq!(note.reason, TripReason::MemoryBudgetExceeded);
    assert!(report.degraded());
    assert!(report.to_string().contains("degraded"));
    // The fast path still separates the three disjoint item ranges.
    assert!(result.labeling.assignments.iter().any(|a| a.is_some()));
    for (i, t) in data.iter().enumerate() {
        if let Some(c) = result.labeling.assignments[i] {
            for (j, u) in data.iter().enumerate() {
                if let Some(d) = result.labeling.assignments[j] {
                    let same_range = t.items()[0] / 100 == u.items()[0] / 100;
                    if c == d {
                        assert!(same_range, "mixed clusters across item ranges");
                    }
                }
            }
        }
    }
}

//! End-to-end resilience acceptance tests: a fault matrix over the
//! streaming labeling driver, plus the checkpoint-resume bit-identity
//! guarantee.
//!
//! The contract under test (see DESIGN.md, "Failure model"):
//!
//! 1. every injected fault is either recovered (retried or quarantined,
//!    visible in the [`rock_core::report::RunReport`]) or surfaced as a
//!    typed error — never a panic;
//! 2. a run interrupted by a hard failure and resumed from its
//!    checkpoint produces output bit-identical to an uninterrupted run
//!    over the same bytes.

use rock::governor::{Phase, RunGovernor, TripReason};
use rock::labeling::Labeler;
use rock::points::Transaction;
use rock::similarity::Jaccard;
use rock_data::faults::{corrupt_baskets, kill_at, FaultSpec, FaultyReader};
use rock_data::resilient::{
    label_stream_resilient, label_stream_resilient_governed, read_baskets_resilient, Checkpoint,
    IngestErrorKind, ResilientConfig, ResilientLabelRun, RetryPolicy,
};
use std::io::BufReader;

/// A labeler over the canonical two-cluster sample used throughout the
/// workspace tests.
fn labeler() -> Labeler<Transaction> {
    let sample = vec![
        Transaction::from([1, 2, 3]),
        Transaction::from([1, 2, 4]),
        Transaction::from([2, 3, 4]),
        Transaction::from([10, 11, 12]),
        Transaction::from([10, 11, 13]),
        Transaction::from([11, 12, 13]),
    ];
    let clusters = vec![vec![0, 1, 2], vec![3, 4, 5]];
    Labeler::full(&sample, &clusters, 0.4, 1.0 / 3.0)
}

/// A clean 200-line basket image: both clusters, outliers, comments and
/// blank lines.
fn clean_image() -> String {
    let mut s = String::from("# resilience-test database\n");
    for i in 0..200u32 {
        match i % 5 {
            0 => s.push_str("1 2 3\n"),
            1 => s.push_str("10 11 12\n"),
            2 => s.push_str(&format!("2 3 {}\n", 4 + i % 2)),
            3 => s.push_str(&format!("{} {}\n", 500 + i, 700 + i)), // outlier
            _ => {
                if i % 20 == 4 {
                    s.push('\n');
                } else {
                    s.push_str("11 12 13\n");
                }
            }
        }
    }
    s
}

fn config() -> ResilientConfig {
    ResilientConfig {
        retry: RetryPolicy::no_backoff(8),
        max_quarantine: 500,
        quarantine_detail: 8,
        checkpoint_every: 16,
    }
}

fn run_clean(image: &str) -> ResilientLabelRun {
    // Routed through the governor-aware entry point: with the default
    // unlimited governor it is the same driver every acceptance test
    // below compares against.
    label_stream_resilient_governed(
        BufReader::new(image.as_bytes()),
        &labeler(),
        &Jaccard,
        &config(),
        None,
        |_| {},
        &RunGovernor::unlimited(),
    )
    .expect("clean run cannot fail")
}

/// Matrix: data corruption (garbage/truncation) × recoverable transient
/// I/O faults, across seeds. Every cell must complete without panicking,
/// report its degradation, and match the fault-free pass over the same
/// (corrupted) image bit for bit.
#[test]
fn fault_matrix_recovers_and_matches_clean_pass() {
    let base = clean_image();
    for seed in [1u64, 7, 42] {
        for (garbage, truncate) in [(0.0, 0.0), (0.12, 0.0), (0.0, 0.12), (0.15, 0.15)] {
            let image = corrupt_baskets(
                &base,
                &FaultSpec::none(seed).garbage(garbage).truncate(truncate),
            );
            let baseline = run_clean(&image);
            if garbage > 0.0 {
                assert!(
                    baseline.checkpoint.records_quarantined > 0,
                    "seed {seed}: garbage rate {garbage} corrupted nothing"
                );
            }

            // Same image through a reader that fails transiently, with a
            // burst within the retry budget: must recover to identical
            // output and account for every fault. (Rate kept moderate:
            // consecutive scheduled faults chain into one record's retry
            // loop, and the budget must cover the longest chain.)
            let spec = FaultSpec::none(seed).transient(0.15, 1).chunk(16);
            let faulty = FaultyReader::new(image.as_bytes(), spec);
            let run = label_stream_resilient(
                BufReader::new(faulty),
                &labeler(),
                &Jaccard,
                &config(),
                None,
                |_| {},
            )
            .unwrap_or_else(|e| {
                panic!("seed {seed} g={garbage} t={truncate}: recoverable faults killed run: {e}")
            });
            assert!(
                run.report.transient_io_errors > 0,
                "seed {seed}: transient schedule never fired"
            );
            assert!(run.report.degraded());
            assert_eq!(run.labeling, baseline.labeling, "seed {seed}");
            assert_eq!(run.checkpoint, baseline.checkpoint, "seed {seed}");
        }
    }
}

/// Hard interruption mid-stream (burst beyond the retry budget), then
/// resume from the carried checkpoint: concatenated assignments and the
/// final checkpoint must equal the uninterrupted run exactly.
#[test]
fn interrupted_then_resumed_run_is_bit_identical() {
    let base = clean_image();
    for seed in [3u64, 9, 21] {
        let image = corrupt_baskets(&base, &FaultSpec::none(seed).garbage(0.1));
        let uninterrupted = run_clean(&image);

        let budget_config = ResilientConfig {
            retry: RetryPolicy::no_backoff(2),
            ..config()
        };
        let spec = FaultSpec::none(seed).transient(0.08, 8).chunk(16);
        let faulty = FaultyReader::new(image.as_bytes(), spec);
        let err = label_stream_resilient(
            BufReader::new(faulty),
            &labeler(),
            &Jaccard,
            &budget_config,
            None,
            |_| {},
        )
        .expect_err("burst 8 against budget 2 must interrupt the run");
        let IngestErrorKind::Io(io_err) = &err.kind else {
            panic!("seed {seed}: expected Io interruption, got {:?}", err.kind);
        };
        assert!(
            RetryPolicy::is_transient(io_err),
            "seed {seed}: interruption should be the exhausted transient"
        );
        assert!(
            err.checkpoint.byte_offset < image.len() as u64,
            "seed {seed}: run must stop mid-stream for the test to mean anything"
        );

        // The checkpoint round-trips through its text encoding, as it
        // would when persisted between processes.
        let persisted = Checkpoint::decode(&err.checkpoint.encode()).unwrap();
        assert_eq!(persisted, err.checkpoint);

        let resumed = label_stream_resilient(
            BufReader::new(image.as_bytes()),
            &labeler(),
            &Jaccard,
            &budget_config,
            Some(&persisted),
            |_| {},
        )
        .expect("resume over a healthy reader completes");
        assert_eq!(resumed.report.resumed_from_offset, Some(persisted.byte_offset));

        let mut stitched = err.partial_assignments.clone();
        stitched.extend(resumed.labeling.assignments.iter().copied());
        assert_eq!(
            stitched, uninterrupted.labeling.assignments,
            "seed {seed}: stitched assignments diverge from the uninterrupted run"
        );
        assert_eq!(
            resumed.checkpoint, uninterrupted.checkpoint,
            "seed {seed}: cumulative end state diverges"
        );
    }
}

/// Multiple interruptions: keep resuming (each round over a differently
/// seeded faulty reader, with a final clean round as a backstop) and
/// still reconstruct the uninterrupted output exactly.
#[test]
fn repeated_interruptions_still_reconstruct_the_full_pass() {
    let image = clean_image();
    let uninterrupted = run_clean(&image);
    let budget_config = ResilientConfig {
        retry: RetryPolicy::no_backoff(1),
        ..config()
    };

    let mut stitched: Vec<Option<usize>> = Vec::new();
    let mut resume: Option<Checkpoint> = None;
    let mut interruptions = 0u32;
    let final_run = loop {
        let round = interruptions as u64;
        // The last round runs clean so the loop always terminates.
        let spec = if round < 6 {
            FaultSpec::none(100 + round).transient(0.05, 4).chunk(16)
        } else {
            FaultSpec::none(0)
        };
        let faulty = FaultyReader::new(image.as_bytes(), spec);
        match label_stream_resilient(
            BufReader::new(faulty),
            &labeler(),
            &Jaccard,
            &budget_config,
            resume.as_ref(),
            |_| {},
        ) {
            Ok(run) => {
                stitched.extend(run.labeling.assignments.iter().copied());
                break run;
            }
            Err(e) => {
                assert!(matches!(e.kind, IngestErrorKind::Io(_)), "{:?}", e.kind);
                stitched.extend(e.partial_assignments.iter().copied());
                resume = Some(e.checkpoint);
                interruptions += 1;
                assert!(interruptions < 50, "resume loop failed to make progress");
            }
        }
    };
    assert_eq!(stitched, uninterrupted.labeling.assignments);
    assert_eq!(final_run.checkpoint, uninterrupted.checkpoint);
}

/// The resilient reader (no labeling) under the same fault matrix:
/// quarantines garbage, retries transients, and returns the transactions
/// a plain reader would have produced from the clean lines.
#[test]
fn resilient_reader_survives_the_fault_matrix() {
    let base = clean_image();
    for seed in [2u64, 13] {
        let image = corrupt_baskets(&base, &FaultSpec::none(seed).garbage(0.1).truncate(0.1));
        let (clean_ts, clean_report, clean_cp) = read_baskets_resilient(
            BufReader::new(image.as_bytes()),
            &config(),
            None,
        )
        .unwrap();
        let spec = FaultSpec::none(seed).transient(0.15, 1).chunk(16);
        let faulty = FaultyReader::new(image.as_bytes(), spec);
        let (ts, report, cp) =
            read_baskets_resilient(BufReader::new(faulty), &config(), None).unwrap();
        assert_eq!(ts, clean_ts, "seed {seed}");
        assert_eq!(cp, clean_cp, "seed {seed}");
        assert_eq!(report.records_quarantined, clean_report.records_quarantined);
        assert!(report.transient_io_errors > 0, "seed {seed}: no faults fired");
        assert_eq!(cp.byte_offset, image.len() as u64);
    }
}

/// Quarantine overflow is a typed, resumable stop — and resuming with a
/// raised cap finishes the pass.
#[test]
fn quarantine_overflow_is_typed_and_resumable() {
    let image = corrupt_baskets(&clean_image(), &FaultSpec::none(4).garbage(0.3));
    let tight = ResilientConfig {
        max_quarantine: 3,
        ..config()
    };
    let err = label_stream_resilient(
        BufReader::new(image.as_bytes()),
        &labeler(),
        &Jaccard,
        &tight,
        None,
        |_| {},
    )
    .expect_err("30% garbage must overflow a cap of 3");
    assert!(matches!(
        err.kind,
        IngestErrorKind::QuarantineOverflow { cap: 3 }
    ));

    let resumed = label_stream_resilient(
        BufReader::new(image.as_bytes()),
        &labeler(),
        &Jaccard,
        &config(), // generous cap
        Some(&err.checkpoint),
        |_| {},
    )
    .expect("raised cap finishes the pass");

    let full = run_clean(&image);
    let mut stitched = err.partial_assignments.clone();
    stitched.extend(resumed.labeling.assignments.iter().copied());
    assert_eq!(stitched, full.labeling.assignments);
    assert_eq!(resumed.checkpoint, full.checkpoint);
}

/// A governor kill (simulated crash / cancellation) composes with the
/// I/O fault matrix: the run stops at the injected line with a typed
/// `Interrupted` error even while transient faults are being retried,
/// and resuming from its checkpoint reconstructs the uninterrupted
/// output.
#[test]
fn governor_kill_composes_with_io_faults() {
    let image = corrupt_baskets(&clean_image(), &FaultSpec::none(17).garbage(0.1));
    let uninterrupted = run_clean(&image);

    for kill_line in [1u64, 50, 150] {
        let spec = FaultSpec::none(17).transient(0.1, 1).chunk(16);
        let faulty = FaultyReader::new(image.as_bytes(), spec);
        let err = label_stream_resilient_governed(
            BufReader::new(faulty),
            &labeler(),
            &Jaccard,
            &config(),
            None,
            |_| {},
            &kill_at(Phase::Labeling, kill_line),
        )
        .expect_err("injected kill must interrupt the run");
        assert!(matches!(
            err.kind,
            IngestErrorKind::Interrupted {
                phase: Phase::Labeling,
                reason: TripReason::Cancelled,
            }
        ));
        assert_eq!(err.checkpoint.lines_seen, kill_line, "kill at {kill_line}");
        assert_eq!(
            err.report.interrupted,
            Some((Phase::Labeling, TripReason::Cancelled))
        );

        let resumed = label_stream_resilient_governed(
            BufReader::new(image.as_bytes()),
            &labeler(),
            &Jaccard,
            &config(),
            Some(&err.checkpoint),
            |_| {},
            &RunGovernor::unlimited(),
        )
        .expect("resume with an unlimited governor completes");

        let mut stitched = err.partial_assignments.clone();
        stitched.extend(resumed.labeling.assignments.iter().copied());
        assert_eq!(
            stitched, uninterrupted.labeling.assignments,
            "kill at {kill_line}: stitched assignments diverge"
        );
        assert_eq!(resumed.checkpoint, uninterrupted.checkpoint);
    }
}

//! Cross-crate behaviour tests for the §2 baselines (DBSCAN, CLARANS)
//! against ROCK on shared data.

use rand::{rngs::StdRng, SeedableRng};
use rock::neighbors::NeighborGraph;
use rock::rock::Rock;
use rock::similarity::{Jaccard, PointsWith};
use rock_baselines::{clarans, dbscan, ClaransConfig, DbscanConfig};
use rock_data::{generate_baskets, SyntheticBasketSpec};
use rock_eval::adjusted_rand_index;

fn basket_data() -> rock_data::SyntheticBasketData {
    generate_baskets(
        &SyntheticBasketSpec::paper_scaled(0.02),
        &mut StdRng::seed_from_u64(9),
    )
}

fn dense_truth(labels: &[Option<usize>], outlier: usize) -> Vec<usize> {
    labels.iter().map(|l| l.map_or(outlier, |c| c)).collect()
}

#[test]
fn dbscan_close_but_below_rock_on_overlapping_baskets() {
    // The synthetic clusters share ~40% of their items, so
    // density-reachability chains a little across clusters (the §2
    // critique: "prone to errors if clusters are not well-separated"),
    // while links hold the boundary. DBSCAN lands high but below ROCK.
    let data = basket_data();
    let graph = NeighborGraph::build(&PointsWith::new(&data.transactions, Jaccard), 0.5);
    let truth = dense_truth(&data.labels, 10);

    let db = dbscan(&graph, DbscanConfig::new(4));
    let db_pred = dense_truth(&db.assignments(truth.len()), db.num_clusters());
    let db_ari = adjusted_rand_index(&db_pred, &truth);

    let rock = Rock::builder()
        .theta(0.5)
        .clusters(10)
        .weed_outliers(3.0, 5)
        .build()
        .unwrap();
    let run = rock.cluster(&data.transactions, &Jaccard);
    let rock_pred = dense_truth(
        &run.clustering.assignments(truth.len()),
        run.clustering.num_clusters(),
    );
    let rock_ari = adjusted_rand_index(&rock_pred, &truth);

    assert!(db_ari > 0.7, "DBSCAN ARI {db_ari}");
    assert!(rock_ari > 0.95, "ROCK ARI {rock_ari}");
    assert!(
        rock_ari > db_ari,
        "links should beat density-reachability here: {rock_ari} vs {db_ari}"
    );
}

#[test]
fn clarans_recovers_basket_clusters_roughly() {
    // CLARANS is a randomized local search over medoids — much weaker
    // than ROCK here, but it should still find most of the structure on
    // separated clusters.
    let data = basket_data();
    let pw = PointsWith::new(&data.transactions, Jaccard);
    let truth = dense_truth(&data.labels, 10);
    let mut rng = StdRng::seed_from_u64(3);
    let r = clarans(
        &pw,
        ClaransConfig {
            k: 10,
            num_local: 2,
            max_neighbor: 150,
        },
        &mut rng,
    );
    let pred = dense_truth(&r.clustering.assignments(truth.len()), 10);
    let ari = adjusted_rand_index(&pred, &truth);
    assert!(ari > 0.5, "CLARANS ARI {ari}");
}

#[test]
fn components_fast_path_agrees_with_rock_when_separated() {
    let data = basket_data();
    let graph = NeighborGraph::build(&PointsWith::new(&data.transactions, Jaccard), 0.6);
    let comp = rock::neighbor_components(&graph, 5);
    let truth = dense_truth(&data.labels, 10);
    let pred = dense_truth(&comp.assignments(truth.len()), comp.num_clusters());
    let ari = adjusted_rand_index(&pred, &truth);
    assert!(ari > 0.9, "components ARI {ari}");
}

//! Durability and serve-path integration tests for the fitted-model
//! artifact (`rock::artifact`) and the corruption-tolerant assign
//! service (`rock::serve`).
//!
//! Three contracts are enforced end to end:
//!
//! 1. **Bit-identity**: labels produced through a saved-then-reloaded
//!    artifact are byte-for-byte the labels of the live fit, for every
//!    thread count and hash seed — and the artifact *bytes* themselves
//!    are thread-count invariant.
//! 2. **Corruption totality**: flipping any single bit or truncating
//!    the image at any offset yields a typed [`RockError`], never a
//!    panic and never a silently different clustering.
//! 3. **Crash atomicity**: a kill between tmp-write and rename leaves
//!    the previous artifact loadable (and servable through the retrying
//!    source).

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use rock::artifact::ModelArtifact;
use rock::engine::model::ModelFit;
use rock::labeling::Labeler;
use rock::points::Transaction;
use rock::rock::Rock;
use rock::serve::{AssignService, ServeConfig};
use rock::similarity::Jaccard;
use rock::{ClusterModel, RockError, RockModel};
use rock_baselines::{KMeansConfig, KMeansModel};
use rock_data::faults::{flip_artifact_bit, truncate_artifact, FaultSpec, FaultyArtifactSource};
use rock_data::{generate_baskets, SyntheticBasketSpec};
use std::path::PathBuf;

fn small_data(seed: u64) -> rock_data::SyntheticBasketData {
    generate_baskets(
        &SyntheticBasketSpec::paper_scaled(0.02),
        &mut StdRng::seed_from_u64(seed),
    )
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rock-artifact-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A small but real fitted artifact: sampled pipeline, drawn labeling
/// sets, dendrogram-bearing report provenance.
fn fitted_artifact(threads: usize, hash_seed: Option<u64>) -> (ModelArtifact, Vec<Transaction>) {
    let data = small_data(7);
    let mut builder = Rock::builder()
        .theta(0.5)
        .clusters(10)
        .sample_size(300)
        .labeling_fraction(0.3)
        .seed(42)
        .threads(threads);
    if let Some(h) = hash_seed {
        builder = builder.hash_seed(h);
    }
    let rock = builder.build().unwrap();
    let model = RockModel::new(rock, Jaccard);
    let (_fit, artifact) = model.fit_artifact(&data.transactions).unwrap();
    (artifact, data.transactions)
}

#[test]
fn fit_save_load_assign_is_bit_identical_across_threads_and_seeds() {
    let data = small_data(7);
    for hash_seed in [None, Some(0xDEAD_BEEF_u64)] {
        let mut per_thread_bytes = Vec::new();
        for threads in [1usize, 2, 8] {
            let mut builder = Rock::builder()
                .theta(0.5)
                .clusters(10)
                .sample_size(300)
                .labeling_fraction(0.3)
                .seed(42)
                .threads(threads);
            if let Some(h) = hash_seed {
                builder = builder.hash_seed(h);
            }
            let rock = builder.build().unwrap();
            let (result, report, labeler) =
                rock.try_run_labeled(&data.transactions, &Jaccard).unwrap();
            let fit = ModelFit {
                clustering: result.full_clustering(),
                dendrogram: None,
                report,
            };
            let artifact =
                ModelArtifact::from_labeled("rock", &fit, &labeler, 0.3, hash_seed).unwrap();

            let path = scratch(&format!("bitid-t{threads}-h{hash_seed:?}.rockart"));
            artifact.save(&path).unwrap();
            let loaded = ModelArtifact::load(&path).unwrap();
            std::fs::remove_file(&path).ok();
            assert_eq!(loaded, artifact);

            // Labels through the reloaded artifact, at this thread
            // count, are bit-identical to the live run's labeling.
            let served: Labeler<Transaction> = loaded.labeler().unwrap();
            let relabeled = served.label_all_parallel(&data.transactions, &Jaccard, threads);
            assert_eq!(relabeled.assignments, result.labeling.assignments);
            assert_eq!(relabeled.cluster_counts, result.labeling.cluster_counts);
            assert_eq!(relabeled.num_outliers, result.labeling.num_outliers);

            // Provenance timings are wall-clock and vary run to run;
            // everything else must be byte-identical across threads.
            let mut scrubbed = fit.clone();
            scrubbed.report = rock::report::RunReport::new();
            let canonical =
                ModelArtifact::from_labeled("rock", &scrubbed, &labeler, 0.3, hash_seed).unwrap();
            per_thread_bytes.push(canonical.to_bytes());
        }
        // Threads are a pure performance knob: the persisted artifact
        // (timings aside) is byte-identical across thread counts.
        assert_eq!(per_thread_bytes[0], per_thread_bytes[1]);
        assert_eq!(per_thread_bytes[0], per_thread_bytes[2]);
    }
}

#[test]
fn every_bit_flip_of_a_real_artifact_is_a_typed_error() {
    let (artifact, _) = fitted_artifact(2, Some(11));
    let bytes = artifact.to_bytes();
    for i in 0..bytes.len() {
        for bit in 0..8u32 {
            let mut bad = bytes.clone();
            bad[i] ^= 1u8 << bit;
            match ModelArtifact::from_bytes(&bad) {
                Err(
                    RockError::ArtifactCorrupt { .. }
                    | RockError::ArtifactVersion { .. }
                    | RockError::ArtifactMismatch { .. },
                ) => {}
                Err(other) => panic!("flip byte {i} bit {bit}: unexpected error {other}"),
                Ok(_) => panic!("flip byte {i} bit {bit}: artifact loaded successfully"),
            }
        }
    }
}

#[test]
fn every_truncation_of_a_real_artifact_is_a_typed_error() {
    let (artifact, _) = fitted_artifact(1, None);
    let bytes = artifact.to_bytes();
    for cut in 0..bytes.len() {
        match ModelArtifact::from_bytes(&bytes[..cut]) {
            Err(RockError::ArtifactCorrupt { .. }) => {}
            Err(other) => panic!("truncate at {cut}: unexpected error {other}"),
            Ok(_) => panic!("truncate at {cut}: artifact loaded successfully"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The rock-data artifact injectors (seeded single-bit flip and
    // seeded truncation) can never smuggle a damaged image past the
    // loader, whatever the seed.
    #[test]
    fn seeded_artifact_damage_is_always_typed(seed in any::<u64>()) {
        // Deterministic small artifact, built once per process.
        use std::sync::OnceLock;
        static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
        let bytes = BYTES.get_or_init(|| fitted_artifact(1, Some(3)).0.to_bytes());

        let flipped = flip_artifact_bit(bytes, seed);
        prop_assert!(matches!(
            ModelArtifact::from_bytes(&flipped),
            Err(RockError::ArtifactCorrupt { .. }
                | RockError::ArtifactVersion { .. }
                | RockError::ArtifactMismatch { .. })
        ));

        let cut = truncate_artifact(bytes, seed);
        prop_assert!(matches!(
            ModelArtifact::from_bytes(&cut),
            Err(RockError::ArtifactCorrupt { .. })
        ));
    }
}

#[test]
fn serve_through_flaky_source_matches_live_labeling() {
    let (artifact, transactions) = fitted_artifact(2, Some(5));
    // Transient faults on fetch: the default retry budget (3) out-lasts
    // a burst of 2, so the service comes up and serves exact labels.
    let spec = FaultSpec::none(1).transient(0.5, 2);
    let mut source = FaultyArtifactSource::new(artifact.to_bytes(), spec);
    let (service, _retries): (AssignService<Transaction, Jaccard>, u64) =
        AssignService::from_source(&mut source, Jaccard, ServeConfig::default()).unwrap();

    let live: Labeler<Transaction> = artifact.labeler().unwrap();
    let queries = &transactions[..200.min(transactions.len())];
    let batch = service.assign_batch(queries).unwrap();
    let expected: Vec<Option<usize>> = queries
        .iter()
        .map(|q| live.label_point(q, &Jaccard))
        .collect();
    assert_eq!(batch.assignments, expected);
    assert_eq!(batch.report.queries, queries.len() as u64);
    assert!(batch.report.degraded.is_none());
}

#[test]
fn crash_between_write_and_rename_keeps_serving_previous_model() {
    let (v1, transactions) = fitted_artifact(1, Some(9));
    let path = scratch("crashed-upgrade.rockart");
    v1.save(&path).unwrap();

    // Simulate the crash: a half-written tmp file next to the artifact,
    // rename never executed.
    let torn: Vec<u8> = v1.to_bytes().into_iter().take(37).collect();
    let mut tmp_name = path.file_name().unwrap().to_os_string();
    tmp_name.push(".tmp");
    std::fs::write(path.with_file_name(tmp_name), torn).unwrap();

    let loaded = ModelArtifact::load(&path).unwrap();
    assert_eq!(loaded, v1, "previous artifact must stay loadable");

    let service: AssignService<Transaction, Jaccard> =
        AssignService::new(&loaded, Jaccard, ServeConfig::default()).unwrap();
    let batch = service.assign_batch(&transactions[..50]).unwrap();
    assert_eq!(batch.report.queries, 50);
    std::fs::remove_file(&path).ok();
}

#[test]
fn cluster_model_save_load_round_trips_for_baselines() {
    // A geometric baseline through the generic ClusterModel save/load
    // provided methods: clustering, dendrogram and report survive; a
    // model-name mismatch is typed.
    let data: Vec<Vec<f64>> = (0..40)
        .map(|i| {
            let c = f64::from(i % 2) * 10.0;
            vec![c + f64::from(i) * 0.01, c - f64::from(i) * 0.01]
        })
        .collect();
    let model = KMeansModel::new(KMeansConfig::new(2), 42);
    let fit = model.fit(&data).unwrap();

    let path = scratch("kmeans.rockart");
    model.save(&fit, &path).unwrap();
    let reloaded = model.load(&path).unwrap();
    assert_eq!(reloaded.clustering, fit.clustering);
    assert_eq!(reloaded.report, fit.report);
    assert!(reloaded.dendrogram.is_none());

    // Loading under the wrong model is refused, not misinterpreted.
    let rock_model = RockModel::new(Rock::builder().build().unwrap(), Jaccard);
    let err = <RockModel<Jaccard> as ClusterModel<[Transaction]>>::load(&rock_model, &path);
    assert!(matches!(err, Err(RockError::ArtifactMismatch { detail })
        if detail.contains("kmeans")));
    std::fs::remove_file(&path).ok();
}

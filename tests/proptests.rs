//! Property-based tests (proptest) over the core data structures and
//! invariants of the ROCK pipeline.

use proptest::collection::vec;
use proptest::prelude::*;
use rock::algorithm::{OutlierPolicy, RockAlgorithm, WeedPolicy};
use rock::goodness::{BasketF, Goodness, GoodnessKind};
use rock::neighbors::NeighborGraph;
use rock::points::{CategoricalRecord, Transaction};
use rock::similarity::{
    CategoricalJaccard, Jaccard, MissingPolicy, PairwiseSimilarity, PointsWith, Similarity,
    SimilarityMatrix,
};
use rock::{compute_links_dense, compute_links_sparse};

/// Strategy: a set of transactions over a small item universe.
fn transactions(max_points: usize) -> impl Strategy<Value = Vec<Transaction>> {
    vec(vec(0u32..20, 1..8), 2..max_points)
        .prop_map(|vs| vs.into_iter().map(Transaction::new).collect())
}

/// Strategy: a random symmetric similarity matrix.
fn sim_matrix(max_points: usize) -> impl Strategy<Value = SimilarityMatrix> {
    (2..max_points).prop_flat_map(|n| {
        vec(0.0f64..=1.0, n * (n - 1) / 2).prop_map(move |tri| {
            let mut m = SimilarityMatrix::new(n);
            let mut it = tri.into_iter();
            for i in 1..n {
                for j in 0..i {
                    m.set(i, j, it.next().unwrap());
                }
            }
            m
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn jaccard_is_a_valid_similarity(ts in transactions(12)) {
        for a in &ts {
            for b in &ts {
                let s = Jaccard.similarity(a, b);
                prop_assert!((0.0..=1.0).contains(&s));
                prop_assert_eq!(s, Jaccard.similarity(b, a));
            }
            if !a.is_empty() {
                prop_assert_eq!(Jaccard.similarity(a, a), 1.0);
            }
        }
    }

    #[test]
    fn categorical_policies_agree_on_complete_records(
        values in vec(vec(0u32..4, 6..7), 2..10)
    ) {
        let records: Vec<CategoricalRecord> =
            values.into_iter().map(CategoricalRecord::complete).collect();
        let ignore = CategoricalJaccard::new(MissingPolicy::Ignore);
        let common = CategoricalJaccard::new(MissingPolicy::CommonAttributes);
        for a in &records {
            for b in &records {
                let x = ignore.similarity(a, b);
                let y = common.similarity(a, b);
                prop_assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn neighbor_graph_is_symmetric_and_thresholded(
        m in sim_matrix(20),
        theta in 0.0f64..=1.0
    ) {
        let g = NeighborGraph::build(&m, theta);
        for i in 0..g.len() {
            for &j in g.neighbors(i) {
                prop_assert!(m.sim(i, j as usize) >= theta);
                prop_assert!(g.are_neighbors(j as usize, i));
            }
            // No self loops; all above-threshold pairs present.
            prop_assert!(!g.are_neighbors(i, i));
            for j in 0..g.len() {
                if j != i && m.sim(i, j) >= theta {
                    prop_assert!(g.are_neighbors(i, j));
                }
            }
        }
    }

    #[test]
    fn sparse_and_dense_links_agree(m in sim_matrix(24), theta in 0.2f64..0.9) {
        let g = NeighborGraph::build(&m, theta);
        prop_assert_eq!(compute_links_sparse(&g), compute_links_dense(&g));
    }

    #[test]
    fn link_counts_are_bounded_by_min_degree(ts in transactions(16)) {
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.3);
        let links = compute_links_sparse(&g);
        for ((i, j), c) in links.iter() {
            let bound = g.degree(i as usize).min(g.degree(j as usize)) as u32;
            prop_assert!(c <= bound, "link({i},{j}) = {c} > min degree {bound}");
        }
    }

    #[test]
    fn clustering_is_a_partition(
        ts in transactions(20),
        theta in 0.1f64..0.9,
        k in 1usize..6
    ) {
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), theta);
        let goodness = Goodness::new(theta, BasketF, GoodnessKind::Normalized);
        let run = RockAlgorithm::new(goodness, k, OutlierPolicy::default()).run(&g);
        let mut seen = vec![false; ts.len()];
        for cluster in &run.clustering.clusters {
            for &p in cluster {
                prop_assert!(!seen[p as usize], "point {p} in two clusters");
                seen[p as usize] = true;
            }
        }
        for &p in &run.clustering.outliers {
            prop_assert!(!seen[p as usize], "outlier {p} also clustered");
            seen[p as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "some point lost");
        // Never fewer clusters than requested unless links ran out, in
        // which case every remaining pair of clusters has zero links —
        // checked indirectly: cluster count ≥ k OR no merge was possible.
        prop_assert!(run.clustering.num_clusters() + run.clustering.outliers.len() >= 1);
    }

    #[test]
    fn weeding_only_moves_small_clusters_to_outliers(
        ts in transactions(20),
        min_size in 1usize..4
    ) {
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.4);
        let goodness = Goodness::new(0.4, BasketF, GoodnessKind::Normalized);
        let without = RockAlgorithm::new(goodness, 2, OutlierPolicy::default()).run(&g);
        let with = RockAlgorithm::new(
            goodness,
            2,
            OutlierPolicy {
                min_neighbors: 1,
                weed: Some(WeedPolicy {
                    stop_multiple: 1.0,
                    min_cluster_size: min_size,
                }),
            },
        )
        .run(&g);
        // Weeding at stop_multiple=1 weeds exactly at the end state, so
        // surviving clusters are the un-weeded ones of size ≥ min_size.
        let expected: Vec<&Vec<u32>> = without
            .clustering
            .clusters
            .iter()
            .filter(|c| c.len() >= min_size)
            .collect();
        prop_assert_eq!(with.clustering.clusters.len(), expected.len());
        prop_assert!(with
            .clustering
            .clusters
            .iter()
            .all(|c| c.len() >= min_size));
    }

    #[test]
    fn merge_goodness_is_finite_and_nonnegative(
        links in 0u64..10_000,
        n1 in 1usize..5000,
        n2 in 1usize..5000,
        theta in 0.01f64..0.99
    ) {
        let g = Goodness::new(theta, BasketF, GoodnessKind::Normalized);
        let v = g.merge_goodness(links, n1, n2);
        prop_assert!(v.is_finite());
        prop_assert!(v >= 0.0);
    }

    #[test]
    fn criterion_value_invariant_under_cluster_order(
        ts in transactions(14)
    ) {
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.3);
        let links = compute_links_sparse(&g);
        let good = Goodness::new(0.3, BasketF, GoodnessKind::Normalized);
        let n = ts.len() as u32;
        let half = n / 2;
        let a = vec![(0..half).collect::<Vec<u32>>(), (half..n).collect()];
        let b = vec![(half..n).collect::<Vec<u32>>(), (0..half).collect()];
        let ea = rock::criterion_fn::criterion_value(&links, &a, &good);
        let eb = rock::criterion_fn::criterion_value(&links, &b, &good);
        prop_assert!((ea - eb).abs() < 1e-9);
    }

    #[test]
    fn reservoir_samplers_honour_size_and_range(
        n in 0usize..400,
        k in 0usize..50,
        seed in any::<u64>()
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for sample in [
            rock::sampling::reservoir_sample_r(0..n, k, &mut rng),
            rock::sampling::reservoir_sample_x(0..n, k, &mut rng),
        ] {
            prop_assert_eq!(sample.len(), k.min(n));
            let mut s = sample.clone();
            s.sort_unstable();
            s.dedup();
            prop_assert_eq!(s.len(), sample.len(), "duplicates in sample");
            prop_assert!(sample.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn hungarian_assignment_is_injective_and_optimal_2x2(
        a in 0.0f64..100.0, b in 0.0f64..100.0,
        c in 0.0f64..100.0, d in 0.0f64..100.0
    ) {
        let cost = vec![vec![a, b], vec![c, d]];
        let assign = rock_eval::minimum_cost_assignment(&cost);
        let total: f64 = assign
            .iter()
            .enumerate()
            .filter_map(|(i, x)| x.map(|j| cost[i][j]))
            .sum();
        prop_assert!((total - (a + d).min(b + c)).abs() < 1e-9);
    }

    #[test]
    fn agreement_indices_within_bounds(
        labels in vec((0usize..4, 0usize..4), 2..80)
    ) {
        let (a, b): (Vec<usize>, Vec<usize>) = labels.into_iter().unzip();
        let ri = rock_eval::rand_index(&a, &b);
        prop_assert!((0.0..=1.0).contains(&ri));
        let ari = rock_eval::adjusted_rand_index(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&ari));
        let nmi = rock_eval::normalized_mutual_information(&a, &b);
        prop_assert!((0.0..=1.0).contains(&nmi));
        // Perfect agreement with itself.
        prop_assert_eq!(rock_eval::adjusted_rand_index(&a, &a), 1.0);
    }

    #[test]
    fn misclassification_zero_iff_same_partition(
        labels in vec(proptest::option::of(0usize..5), 1..60)
    ) {
        let m = rock_eval::count_misclassified(&labels, &labels);
        prop_assert_eq!(m.misclassified, 0);
        prop_assert_eq!(m.total, labels.len());
    }

    #[test]
    fn readers_never_panic_on_arbitrary_bytes(bytes in vec(any::<u8>(), 0..512)) {
        use std::io::BufReader;
        // Every reader must turn arbitrary corrupted/truncated bytes into
        // Ok or Err — never a panic.
        let mut catalog = rock::points::ItemCatalog::new();
        let _ = rock_data::read_baskets(BufReader::new(bytes.as_slice()), &mut catalog);
        let _ = rock_data::read_baskets_numeric(BufReader::new(bytes.as_slice()));
        for item in rock_data::stream_baskets(BufReader::new(bytes.as_slice())) {
            let _ = item;
        }
        let config = rock_data::ResilientConfig {
            retry: rock_data::RetryPolicy::no_backoff(2),
            max_quarantine: usize::MAX,
            ..rock_data::ResilientConfig::default()
        };
        let _ = rock_data::read_baskets_resilient(
            BufReader::new(bytes.as_slice()),
            &config,
            None,
        );
        let labeler = rock::labeling::Labeler::full(
            &[Transaction::from([1, 2, 3]), Transaction::from([9, 10])],
            &[vec![0], vec![1]],
            0.4,
            1.0 / 3.0,
        );
        let _ = rock_data::label_stream_resilient(
            BufReader::new(bytes.as_slice()),
            &labeler,
            &Jaccard,
            &config,
            None,
            |_| {},
        );
    }

    #[test]
    fn corrupted_images_never_panic_readers(
        lines in vec(vec(0u32..1000, 0..6), 0..40),
        seed in any::<u64>(),
        garbage in 0.0f64..=1.0,
        truncate in 0.0f64..=1.0
    ) {
        use std::io::BufReader;
        let image: String = lines
            .iter()
            .map(|l| {
                let toks: Vec<String> = l.iter().map(u32::to_string).collect();
                format!("{}\n", toks.join(" "))
            })
            .collect();
        let spec = rock_data::FaultSpec::none(seed).garbage(garbage).truncate(truncate);
        let corrupted = rock_data::corrupt_baskets(&image, &spec);
        // Corruption never changes the line count.
        prop_assert_eq!(corrupted.lines().count(), image.lines().count());
        let _ = rock_data::read_baskets_numeric(BufReader::new(corrupted.as_bytes()));
        let config = rock_data::ResilientConfig {
            retry: rock_data::RetryPolicy::no_backoff(2),
            max_quarantine: usize::MAX,
            ..rock_data::ResilientConfig::default()
        };
        let (ts, report, cp) = rock_data::read_baskets_resilient(
            BufReader::new(corrupted.as_bytes()),
            &config,
            None,
        )
        .expect("quarantine absorbs all corruption");
        prop_assert_eq!(
            cp.records_read + cp.records_skipped + cp.records_quarantined,
            corrupted.lines().count() as u64
        );
        prop_assert_eq!(ts.len() as u64, report.records_read);
    }

    #[test]
    fn checkpoint_decode_never_panics(text in ".{0,300}") {
        let _ = rock_data::Checkpoint::decode(&text);
    }

    #[test]
    fn faulty_reader_delivers_exact_bytes_through_retries(
        payload in vec(any::<u8>(), 0..600),
        seed in any::<u64>(),
        rate in 0.0f64..0.5,
        burst in 1u32..4,
        chunk in 1usize..32
    ) {
        use std::io::Read;
        let spec = rock_data::FaultSpec::none(seed)
            .transient(rate, burst)
            .chunk(chunk);
        let mut reader = rock_data::FaultyReader::new(payload.as_slice(), spec);
        let mut out = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match reader.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) => prop_assert!(
                    rock_data::RetryPolicy::is_transient(&e),
                    "injected fault must look transient, got {e:?}"
                ),
            }
        }
        prop_assert_eq!(out, payload, "fault injection corrupted the byte stream");
    }
}

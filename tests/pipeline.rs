//! End-to-end pipeline integration tests over the synthetic market-basket
//! data: sampling, clustering, labeling, outlier handling, scoring.

use rand::{rngs::StdRng, SeedableRng};
use rock::rock::Rock;
use rock::similarity::Jaccard;
use rock_data::{generate_baskets, SyntheticBasketSpec};
use rock_eval::{adjusted_rand_index, count_misclassified};

fn small_data(seed: u64) -> rock_data::SyntheticBasketData {
    generate_baskets(
        &SyntheticBasketSpec::paper_scaled(0.05),
        &mut StdRng::seed_from_u64(seed),
    )
}

#[test]
fn sampled_pipeline_recovers_ground_truth() {
    let data = small_data(1);
    let rock = Rock::builder()
        .theta(0.5)
        .clusters(10)
        .sample_size(800)
        .labeling_fraction(0.3)
        .weed_outliers(3.0, 8)
        .seed(42)
        .build()
        .unwrap();
    let result = rock.run(&data.transactions, &Jaccard);
    let m = count_misclassified(&result.labeling.assignments, &data.labels);
    assert!(
        m.rate() < 0.02,
        "misclassification rate {} too high ({} of {})",
        m.rate(),
        m.misclassified,
        m.total
    );
    // Everything is either assigned or an outlier.
    assert_eq!(result.labeling.assignments.len(), data.transactions.len());
}

#[test]
fn quality_improves_with_sample_size() {
    // Table-6 shape. Sampling is stochastic, so compare the *average*
    // misclassification rate over several seeds at a clearly inadequate
    // vs a clearly adequate sample size.
    let data = small_data(2);
    let avg_rate = |sample: usize| -> f64 {
        (0..4)
            .map(|seed| {
                let rock = Rock::builder()
                    .theta(0.5)
                    .clusters(10)
                    .sample_size(sample)
                    .labeling_fraction(0.5)
                    .weed_outliers(3.0, 2)
                    .seed(seed)
                    .build()
                    .unwrap();
                let result = rock.run(&data.transactions, &Jaccard);
                count_misclassified(&result.labeling.assignments, &data.labels).rate()
            })
            .sum::<f64>()
            / 4.0
    };
    let small = avg_rate(60);
    let large = avg_rate(900);
    assert!(
        large < small,
        "quality should improve with sample size: {small} -> {large}"
    );
}

#[test]
fn higher_theta_needs_larger_samples() {
    // §5.4: with a small sample, θ = 0.5 beats θ = 0.6 on this data
    // because cluster items overlap and transactions are small. Averaged
    // over seeds to de-noise the sampling.
    let data = small_data(3);
    let avg_rate = |theta: f64| -> f64 {
        (0..4)
            .map(|seed| {
                let rock = Rock::builder()
                    .theta(theta)
                    .clusters(10)
                    .sample_size(150)
                    .labeling_fraction(0.5)
                    .weed_outliers(3.0, 2)
                    .seed(100 + seed)
                    .build()
                    .unwrap();
                let result = rock.run(&data.transactions, &Jaccard);
                count_misclassified(&result.labeling.assignments, &data.labels).rate()
            })
            .sum::<f64>()
            / 4.0
    };
    assert!(
        avg_rate(0.5) <= avg_rate(0.6),
        "theta 0.5 should dominate 0.6 at small samples"
    );
}

#[test]
fn clustering_all_points_matches_truth_by_ari() {
    let data = small_data(4);
    // Cluster everything (no sampling), compare partitions.
    let rock = Rock::builder()
        .theta(0.5)
        .clusters(10)
        .weed_outliers(3.0, 10)
        .build()
        .unwrap();
    let run = rock.cluster(&data.transactions, &Jaccard);
    let pred = run.clustering.assignments(data.transactions.len());
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for (p, t) in pred.iter().zip(&data.labels) {
        if let (Some(p), Some(t)) = (p, t) {
            a.push(*p);
            b.push(*t);
        }
    }
    let ari = adjusted_rand_index(&a, &b);
    assert!(ari > 0.98, "ARI {ari}");
}

#[test]
fn outlier_transactions_mostly_detected() {
    let data = small_data(5);
    let rock = Rock::builder()
        .theta(0.55)
        .clusters(10)
        .weed_outliers(3.0, 10)
        .build()
        .unwrap();
    let run = rock.cluster(&data.transactions, &Jaccard);
    let pred = run.clustering.assignments(data.transactions.len());
    // Of the true outliers, a majority should not be assigned to any
    // cluster (they were random item draws).
    let (mut outliers_caught, mut outliers_total) = (0usize, 0usize);
    for (p, t) in pred.iter().zip(&data.labels) {
        if t.is_none() {
            outliers_total += 1;
            if p.is_none() {
                outliers_caught += 1;
            }
        }
    }
    assert!(outliers_total > 0);
    assert!(
        outliers_caught * 2 > outliers_total,
        "caught {outliers_caught} of {outliers_total} outliers"
    );
}

#[test]
fn deterministic_with_seed_and_sensitive_to_seed() {
    let data = small_data(6);
    let run_with = |seed: u64| {
        Rock::builder()
            .theta(0.5)
            .clusters(10)
            .sample_size(300)
            .seed(seed)
            .build()
            .unwrap()
            .run(&data.transactions, &Jaccard)
    };
    let a = run_with(1);
    let b = run_with(1);
    assert_eq!(a.sample_indices, b.sample_indices);
    assert_eq!(a.labeling.assignments, b.labeling.assignments);
    let c = run_with(2);
    assert_ne!(a.sample_indices, c.sample_indices);
}

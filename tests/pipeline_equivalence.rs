//! Equivalence gates for the staged pipeline engine.
//!
//! `Rock::try_run`, `Rock::cluster_wal` and the resume entry points are
//! composed from `engine::Pipeline` stages. These tests pin the refactor
//! to the pre-engine behaviour by rebuilding each driver from the
//! unchanged primitives (`sample_indices` → `NeighborGraph` →
//! `RockAlgorithm` → `Labeler`) and demanding **bit-identical** results:
//!
//! 1. the full Fig.-2 fit (sample indices, merge trace, clustering and
//!    labeling) matches the hand-composed reference across thread counts
//!    {1, 2, 8}, hash seeds and sample sizes;
//! 2. a journaled run produces byte-identical WAL content to
//!    `RockAlgorithm::run_governed` driving the same `MergeWal`;
//! 3. the crash_resume fault matrix holds with an explicitly seeded
//!    hasher: kill-at-any-merge + resume ≡ uninterrupted, and the
//!    continuation log replays to the same final state.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use rock::governor::{Phase, RunGovernor};
use rock::labeling::{Labeler, Labeling};
use rock::points::Transaction;
use rock::rock::Rock;
use rock::similarity::{Jaccard, PointsWith};
use rock::util::FxBuildHasher;
use rock::wal::{parse_wal, MergeWal};
use rock::{
    compute_links_sparse, Clustering, ConstantF, Goodness, IncrementalState, MergeBound,
    NeighborGraph, OutlierPolicy, RockAlgorithm, RockError, RockRun,
};

/// Three well-separated basket clusters over disjoint item ranges (the
/// crash_resume fixture).
fn three_clusters(n_each: usize) -> Vec<Transaction> {
    let mut data = Vec::new();
    for c in 0..3u32 {
        let base = c * 100;
        let mut i = 0;
        'outer: for x in 0..7u32 {
            for y in (x + 1)..7 {
                for z in (y + 1)..7 {
                    data.push(Transaction::from([base + x, base + y, base + z]));
                    i += 1;
                    if i >= n_each {
                        break 'outer;
                    }
                }
            }
        }
    }
    data
}

fn engine(threads: usize, hash_seed: Option<u64>, sample_size: Option<usize>) -> Rock {
    let mut b = Rock::builder().theta(0.4).clusters(3).threads(threads).seed(11);
    if let Some(h) = hash_seed {
        b = b.hash_seed(h);
    }
    if let Some(s) = sample_size {
        b = b.sample_size(s);
    }
    b.build().unwrap()
}

/// The pre-engine driver, composed by hand from the unchanged
/// primitives, reading every knob from the built configuration.
fn reference_fit(rock: &Rock, data: &[Transaction]) -> (Vec<usize>, RockRun, Labeling) {
    let cfg = rock.config();
    let mut rng = StdRng::seed_from_u64(cfg.seed.expect("test engines are seeded"));
    let sample_indices: Vec<usize> = match cfg.sample_size {
        Some(size) if size < data.len() => {
            rock::sampling::sample_indices(data.len(), size, &mut rng)
        }
        _ => (0..data.len()).collect(),
    };
    let sample: Vec<Transaction> = sample_indices.iter().map(|&i| data[i].clone()).collect();
    let pw = PointsWith::new(&sample, Jaccard);
    let graph = if cfg.threads > 1 {
        NeighborGraph::build_parallel(&pw, cfg.theta, cfg.threads)
    } else {
        NeighborGraph::build(&pw, cfg.theta)
    };
    let goodness = Goodness::new(cfg.theta, ConstantF(cfg.ftheta), cfg.goodness_kind);
    let mut algorithm = RockAlgorithm::new(goodness, cfg.k, OutlierPolicy::default());
    if let Some(h) = cfg.hash_seed {
        algorithm = algorithm.with_hash_seed(h);
    }
    let run = algorithm.run_parallel(&graph, cfg.threads);
    let labeler = Labeler::new(
        &sample,
        &run.clustering.clusters,
        cfg.labeling_fraction,
        cfg.theta,
        cfg.ftheta,
        &mut rng,
    )
    .expect("validated parameters");
    let labeling = labeler.label_all_parallel(data, &Jaccard, cfg.threads);
    (sample_indices, run, labeling)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(18))]

    // Gate 1: the staged fit is bit-identical to the hand-composed
    // reference — same sample, same merge trace, same clustering, same
    // per-point labels — across threads × hash seeds × sample sizes.
    #[test]
    fn staged_fit_matches_reference_composition(
        threads_idx in 0usize..3,
        hash_seed in proptest::option::of(0u64..1000),
        sampled in any::<bool>(),
    ) {
        let threads = [1usize, 2, 8][threads_idx];
        let data = three_clusters(18);
        let sample_size = sampled.then_some(36);
        let rock = engine(threads, hash_seed, sample_size);

        let (ref_indices, ref_run, ref_labeling) = reference_fit(&rock, &data);
        let (result, report) = rock.try_run(&data, &Jaccard).unwrap();

        prop_assert_eq!(&result.sample_indices, &ref_indices);
        prop_assert_eq!(&result.sample_run.clustering, &ref_run.clustering);
        prop_assert_eq!(&result.sample_run.merges, &ref_run.merges);
        prop_assert_eq!(&result.sample_run.initial_points, &ref_run.initial_points);
        prop_assert_eq!(&result.labeling.assignments, &ref_labeling.assignments);

        // The staged report keeps the pre-engine phase names.
        let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
        prop_assert_eq!(names, vec!["sample", "cluster", "label"]);
        prop_assert!(report.degraded.is_none());

        // And the ungoverned driver (untouched by the refactor) agrees.
        let plain = rock.run(&data, &Jaccard);
        prop_assert_eq!(&plain.sample_run.clustering, &result.sample_run.clustering);
        prop_assert_eq!(&plain.labeling.assignments, &result.labeling.assignments);
    }

    // Gate 2: the journaled path writes byte-identical WAL content to
    // `RockAlgorithm::run_governed` over the same graph.
    #[test]
    fn journaled_fit_writes_identical_wal_bytes(
        threads_idx in 0usize..3,
        hash_seed in proptest::option::of(0u64..1000),
    ) {
        let threads = [1usize, 2, 8][threads_idx];
        let data = three_clusters(14);
        let rock = engine(threads, hash_seed, None);
        let cfg = rock.config();

        let pw = PointsWith::new(&data, Jaccard);
        let graph = if threads > 1 {
            NeighborGraph::build_parallel(&pw, cfg.theta, threads)
        } else {
            NeighborGraph::build(&pw, cfg.theta)
        };
        let goodness = Goodness::new(cfg.theta, ConstantF(cfg.ftheta), cfg.goodness_kind);
        let mut algorithm = RockAlgorithm::new(goodness, cfg.k, OutlierPolicy::default());
        if let Some(h) = cfg.hash_seed {
            algorithm = algorithm.with_hash_seed(h);
        }
        let mut ref_wal = MergeWal::new();
        let ref_run = algorithm
            .run_governed(&graph, threads, &RunGovernor::unlimited(), Some(&mut ref_wal))
            .unwrap();

        let mut wal = MergeWal::new();
        let run = rock.cluster_wal(&data, &Jaccard, &mut wal).unwrap();

        prop_assert_eq!(&run.clustering, &ref_run.clustering);
        prop_assert_eq!(&run.merges, &ref_run.merges);
        prop_assert_eq!(wal.as_bytes(), ref_wal.as_bytes(), "WAL bytes diverged");
    }

    // Gate 3: the crash_resume fault matrix with a seeded hasher — kill
    // at any merge, resume from the log, compare against uninterrupted.
    #[test]
    fn seeded_hasher_kill_resume_is_bit_identical(
        k in 0u64..60,
        threads_idx in 0usize..3,
        hash_seed in 0u64..1000,
    ) {
        let threads = [1usize, 2, 8][threads_idx];
        let data = three_clusters(18);
        let baseline = engine(threads, Some(hash_seed), None).cluster(&data, &Jaccard);

        let killer = Rock::builder()
            .theta(0.4)
            .clusters(3)
            .threads(threads)
            .seed(11)
            .hash_seed(hash_seed)
            .governor(RunGovernor::unlimited().with_kill_at(Phase::Merge, k))
            .build()
            .unwrap();
        let mut wal = MergeWal::new();
        match killer.cluster_wal(&data, &Jaccard, &mut wal) {
            Ok(run) => {
                prop_assert_eq!(&run.clustering, &baseline.clustering);
                prop_assert_eq!(&run.merges, &baseline.merges);
            }
            Err(RockError::Interrupted { phase, resumable, .. }) => {
                prop_assert_eq!(phase, Phase::Merge);
                prop_assert!(resumable);
                prop_assert_eq!(parse_wal(wal.as_bytes()).unwrap().num_merges() as u64, k);
                let resumed = engine(threads, Some(hash_seed), None)
                    .resume_cluster(&data, &Jaccard, wal.as_bytes(), None)
                    .unwrap();
                prop_assert_eq!(&resumed.clustering, &baseline.clustering);
                prop_assert_eq!(&resumed.merges, &baseline.merges);
                prop_assert_eq!(&resumed.initial_points, &baseline.initial_points);
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    // Gate 4: the extracted incremental core. Driving the merge loop
    // through the public `IncrementalState` surface — singleton clusters
    // plus the sparse link table, merged under an uncapped `MergeBound`
    // to the same k — reproduces the batch engine's merge trace and
    // clustering bit-for-bit, across threads × hash seeds. And the
    // canonical state image at any mid-loop cut is identical for every
    // hasher seed, which is what makes the image serializable.
    #[test]
    fn incremental_state_drives_the_batch_merge_loop_bit_identically(
        threads_idx in 0usize..3,
        hash_seed in 0u64..1000,
        cut in 0usize..40,
    ) {
        let threads = [1usize, 2, 8][threads_idx];
        let data = three_clusters(18);
        let rock = engine(threads, Some(hash_seed), None);
        let cfg = rock.config();
        let pw = PointsWith::new(&data, Jaccard);
        let graph = if threads > 1 {
            NeighborGraph::build_parallel(&pw, cfg.theta, threads)
        } else {
            NeighborGraph::build(&pw, cfg.theta)
        };
        let goodness = Goodness::new(cfg.theta, ConstantF(cfg.ftheta), cfg.goodness_kind);
        let baseline = RockAlgorithm::new(goodness, cfg.k, OutlierPolicy::disabled())
            .with_hash_seed(hash_seed)
            .run_parallel(&graph, threads);

        let singletons: Vec<Vec<u32>> = (0..data.len() as u32).map(|p| vec![p]).collect();
        let mut pairs: Vec<(u32, u32, u64)> = compute_links_sparse(&graph)
            .iter()
            .map(|((i, j), c)| (i.min(j), i.max(j), u64::from(c)))
            .collect();
        pairs.sort_unstable();
        let unbounded = MergeBound {
            min_goodness: f64::NEG_INFINITY,
            min_clusters: cfg.k,
            max_merges: usize::MAX,
            max_cluster_size: usize::MAX,
        };

        let mut st = IncrementalState::from_clusters(
            singletons.clone(),
            &pairs,
            goodness,
            FxBuildHasher::with_seed(hash_seed),
        );
        let records = st.bounded_merge(&unbounded);
        prop_assert_eq!(&records, &baseline.merges);
        let clusters: Vec<Vec<u32>> = st.live_clusters().into_iter().map(|(_, m)| m).collect();
        prop_assert_eq!(Clustering::new(clusters, vec![]), baseline.clustering.clone());

        // Image determinism: stop after `cut` merges under two different
        // hasher seeds and demand the identical canonical image.
        let capped = MergeBound { max_merges: cut, ..unbounded };
        let mut a = IncrementalState::from_clusters(
            singletons.clone(),
            &pairs,
            goodness,
            FxBuildHasher::with_seed(hash_seed),
        );
        let mut b = IncrementalState::from_clusters(
            singletons,
            &pairs,
            goodness,
            FxBuildHasher::with_seed(hash_seed.wrapping_add(513)),
        );
        let ra = a.bounded_merge(&capped);
        let rb = b.bounded_merge(&capped);
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(a.live_clusters(), b.live_clusters());
        prop_assert_eq!(a.canonical_links(), b.canonical_links());
    }
}

/// A re-interrupted resume continues through its continuation log to the
/// same final state, with the seeded hasher in play — the chained
/// variant of gate 3.
#[test]
fn seeded_hasher_chained_continuation_resumes() {
    let data = three_clusters(18);
    let baseline = engine(2, Some(77), None).cluster(&data, &Jaccard);

    let kill_at = |k: u64| {
        Rock::builder()
            .theta(0.4)
            .clusters(3)
            .threads(2)
            .seed(11)
            .hash_seed(77)
            .governor(RunGovernor::unlimited().with_kill_at(Phase::Merge, k))
            .build()
            .unwrap()
    };

    let mut wal1 = MergeWal::new();
    let err = kill_at(4).cluster_wal(&data, &Jaccard, &mut wal1).unwrap_err();
    assert!(matches!(err, RockError::Interrupted { resumable: true, .. }));

    let mut wal2 = MergeWal::new();
    let err = kill_at(10)
        .resume_cluster(&data, &Jaccard, wal1.as_bytes(), Some(&mut wal2))
        .unwrap_err();
    assert!(matches!(err, RockError::Interrupted { resumable: true, .. }));
    assert_eq!(parse_wal(wal2.as_bytes()).unwrap().num_merges(), 10);

    let resumed = engine(2, Some(77), None)
        .resume_cluster(&data, &Jaccard, wal2.as_bytes(), None)
        .unwrap();
    assert_eq!(resumed.clustering, baseline.clustering);
    assert_eq!(resumed.merges, baseline.merges);
}

/// Snapshot resume (no data, no entry checkpoints) through the staged
/// path equals the uninterrupted run.
#[test]
fn snapshot_resume_through_pipeline_matches() {
    let data = three_clusters(18);
    let baseline = engine(2, Some(5), None).cluster(&data, &Jaccard);

    let mut wal = MergeWal::new().with_snapshot_every(4);
    let err = Rock::builder()
        .theta(0.4)
        .clusters(3)
        .threads(2)
        .seed(11)
        .hash_seed(5)
        .governor(RunGovernor::unlimited().with_kill_at(Phase::Merge, 13))
        .build()
        .unwrap()
        .cluster_wal(&data, &Jaccard, &mut wal)
        .unwrap_err();
    assert!(matches!(err, RockError::Interrupted { resumable: true, .. }));

    let resumed = engine(2, Some(5), None)
        .resume_cluster_snapshot(wal.as_bytes(), None)
        .unwrap();
    assert_eq!(resumed.clustering, baseline.clustering);
    assert_eq!(resumed.merges, baseline.merges);
}

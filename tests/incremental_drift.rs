//! Incremental-drift faithfulness and durability — the evolving-model
//! guarantees behind the incremental clustering core:
//!
//! 1. **Faithfulness**: absorbing a drifting basket stream through the
//!    [`IncrementalModel`] update path stays within a pinned ARI band
//!    of refitting from scratch on the full data, scored against the
//!    generator's ground truth via `rock_eval::scoring`.
//! 2. **Kill/resume matrix**: a kill injected before *any* update — or
//!    inside a bounded re-merge — loses only the in-flight batch;
//!    replaying the update WAL over the base artifact reaches a
//!    bit-identical state (same canonical digest), and continuing from
//!    it converges to the uninterrupted final digest.
//! 3. **Versioned artifacts**: evolved (v2) artifacts round-trip
//!    save → load → update → save on disk; batch (v1) artifacts still
//!    load and open incrementally; v2 bytes under a v1 reader cap fail
//!    with the typed [`RockError::ArtifactVersion`], never
//!    `ArtifactCorrupt`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rock::governor::{Phase, RunGovernor};
use rock::points::Transaction;
use rock::rock::Rock;
use rock::similarity::Jaccard;
use rock::{
    ClusterModel, IncrementalModel, IncrementalRockState, ModelArtifact, RockError, RockModel,
    StalenessPolicy,
};
use rock_data::{generate_drift_stream, DriftStreamData, DriftStreamSpec};
use rock_eval::scoring::score_assignments;

/// The shared fixture: a seeded three-cluster basket stream whose
/// mixture mass drifts from cluster 0 toward cluster 2 across four
/// windows (window 0 is the fit-time batch, windows 1..4 arrive as
/// update batches).
fn stream() -> DriftStreamData {
    generate_drift_stream(&DriftStreamSpec::small(), &mut StdRng::seed_from_u64(41))
}

fn model_for(n: usize) -> RockModel<Jaccard> {
    let rock = Rock::builder()
        .theta(0.5)
        .clusters(3)
        .sample_size(n)
        .labeling_fraction(1.0)
        .seed(5)
        .hash_seed(9)
        .build()
        .expect("valid fixture config");
    RockModel::new(rock, Jaccard)
}

/// Fits the base model on window 0 and returns its servable artifact.
fn base_artifact(data: &DriftStreamData) -> ModelArtifact {
    let w0 = &data.windows[0].transactions;
    let (_fit, artifact) = model_for(w0.len())
        .fit_artifact(w0)
        .expect("base fit succeeds");
    artifact
}

/// Per-point assignments over all `n` stream points from an evolved
/// state (`None` = outlier), in global stream-point-id order.
fn state_assignments(state: &IncrementalRockState<Transaction>, n: usize) -> Vec<Option<usize>> {
    let mut out = vec![None; n];
    for (c, members) in state.clusters().iter().enumerate() {
        for &p in members {
            out[p as usize] = Some(c);
        }
    }
    out
}

#[test]
fn incremental_stream_stays_within_the_pinned_ari_band_of_scratch() {
    let data = stream();
    let all = data.all_transactions();
    let truth = data.all_labels();
    let artifact = base_artifact(&data);

    // Absorb windows 1..4 through the engine-contract update path.
    let model = model_for(data.windows[0].transactions.len());
    let mut state = model
        .open_incremental(&artifact, StalenessPolicy::default())
        .expect("base artifact opens incrementally");
    for window in &data.windows[1..] {
        model
            .update(&mut state, &window.transactions)
            .expect("update absorbs the window");
    }

    // Refit from scratch on the full stream.
    let scratch_fit = model_for(all.len()).fit(&all).expect("scratch fit succeeds");

    let inc = state_assignments(&state, all.len());
    let scratch = scratch_fit.assignments(all.len());
    let inc_truth = score_assignments(&inc, &truth);
    let scratch_truth = score_assignments(&scratch, &truth);
    let inc_scratch = score_assignments(&inc, &scratch);

    // Pinned faithfulness band: the evolved model tracks ground truth,
    // is close to the scratch refit, and gives up only a bounded amount
    // of ARI relative to it.
    assert!(
        inc_truth.ari >= 0.80,
        "incremental ARI vs truth fell to {}",
        inc_truth.ari
    );
    assert!(
        inc_scratch.ari >= 0.75,
        "incremental ARI vs scratch fell to {}",
        inc_scratch.ari
    );
    assert!(
        scratch_truth.ari - inc_truth.ari <= 0.10,
        "incremental gave up too much ARI: scratch {} vs incremental {}",
        scratch_truth.ari,
        inc_truth.ari
    );

    // The update provenance reflects the absorbed stream.
    let prov = state.provenance();
    assert_eq!(prov.updates_applied, 3);
    assert!(prov.points_absorbed > 100, "absorbed {}", prov.points_absorbed);
    assert!(prov.relabels > 0);
    assert!(prov.dirty_links > 0);
    assert!(
        prov.remerges >= 1,
        "the drifting stream must trip at least one re-merge"
    );
}

#[test]
fn kill_at_any_update_replays_to_the_bit_identical_state() {
    let data = stream();
    let artifact = base_artifact(&data);
    let updates: Vec<&[Transaction]> = data.windows[1..]
        .iter()
        .map(|w| w.transactions.as_slice())
        .collect();
    let unlimited = RunGovernor::unlimited();

    // Uninterrupted reference: the digest after each completed update.
    let mut reference =
        IncrementalRockState::<Transaction>::from_artifact(&artifact, StalenessPolicy::default())
            .expect("artifact opens");
    let mut digests = vec![reference.digest()];
    for batch in &updates {
        reference
            .update(batch, &Jaccard, &unlimited)
            .expect("reference update succeeds");
        digests.push(reference.digest());
    }
    let final_digest = *digests.last().expect("reference digests");

    // Kill matrix: inject the kill before update #n for every n.
    for kill_n in 0..updates.len() {
        let governor =
            RunGovernor::unlimited().with_kill_at(Phase::Labeling, kill_n as u64);
        let mut state = IncrementalRockState::<Transaction>::from_artifact(
            &artifact,
            StalenessPolicy::default(),
        )
        .expect("artifact opens");
        let mut killed = None;
        for batch in &updates {
            match state.update(batch, &Jaccard, &governor) {
                Ok(_) => {}
                Err(e) => {
                    killed = Some(e);
                    break;
                }
            }
        }
        let err = killed.expect("the injected kill fires");
        assert!(
            matches!(err, RockError::Interrupted { resumable: true, .. }),
            "kill at update {kill_n} surfaced as {err:?}"
        );

        // Replay the WAL the killed process left behind: exactly the
        // completed updates survive, bit-identically.
        let wal_bytes = state.wal().as_bytes();
        let (mut resumed, truncated) =
            IncrementalRockState::<Transaction>::resume(&artifact, wal_bytes, &Jaccard)
                .expect("replay succeeds");
        assert!(!truncated, "a clean kill leaves no torn tail");
        assert_eq!(
            resumed.digest(),
            digests[kill_n],
            "kill before update {kill_n} must replay to the state after {kill_n} updates"
        );

        // Continuing from the replayed state converges to the
        // uninterrupted final state.
        for batch in &updates[kill_n..] {
            resumed
                .update(batch, &Jaccard, &unlimited)
                .expect("continuation update succeeds");
        }
        assert_eq!(resumed.digest(), final_digest);
    }

    // A torn tail (partial final frame) is detected and truncated: the
    // replay reports it and lands on the last whole update.
    let full = reference.wal().as_bytes();
    let (torn_state, torn) = IncrementalRockState::<Transaction>::resume(
        &artifact,
        &full[..full.len() - 3],
        &Jaccard,
    )
    .expect("torn replay still succeeds");
    assert!(torn, "losing the frame tail must be reported as truncation");
    assert_eq!(torn_state.digest(), digests[updates.len() - 1]);
}

#[test]
fn kill_inside_the_remerge_loses_only_the_inflight_batch() {
    let data = stream();
    let artifact = base_artifact(&data);
    let batch = data.windows[1].transactions.as_slice();
    let unlimited = RunGovernor::unlimited();
    // An eager policy so the very first update trips a re-merge.
    let eager = StalenessPolicy {
        max_pending: 8,
        ..StalenessPolicy::default()
    };

    let mut reference =
        IncrementalRockState::<Transaction>::from_artifact(&artifact, eager)
            .expect("artifact opens");
    let fresh_digest = reference.digest();
    reference
        .update(batch, &Jaccard, &unlimited)
        .expect("reference update succeeds");
    assert!(
        reference.provenance().remerges >= 1,
        "fixture must actually re-merge"
    );
    let final_digest = reference.digest();

    // Kill inside the governed re-merge: the batch was labeled and
    // absorbed in memory, but the update never reached the WAL.
    let governor = RunGovernor::unlimited().with_kill_at(Phase::Merge, 0);
    let mut state = IncrementalRockState::<Transaction>::from_artifact(&artifact, eager)
        .expect("artifact opens");
    let err = state
        .update(batch, &Jaccard, &governor)
        .expect_err("the merge kill fires");
    assert!(
        matches!(err, RockError::Interrupted { resumable: true, .. }),
        "merge kill surfaced as {err:?}"
    );

    // The torn in-memory state is discarded; its WAL holds only the
    // base record, so the replay is the fresh state — and redoing the
    // batch converges to the reference.
    let (mut resumed, truncated) =
        IncrementalRockState::<Transaction>::resume(&artifact, state.wal().as_bytes(), &Jaccard)
            .expect("replay succeeds");
    assert!(!truncated);
    assert_eq!(resumed.digest(), fresh_digest);
    resumed
        .update(batch, &Jaccard, &unlimited)
        .expect("redone update succeeds");
    assert_eq!(resumed.digest(), final_digest);
}

#[test]
fn evolved_artifacts_round_trip_and_version_errors_stay_typed() {
    let data = stream();
    let artifact = base_artifact(&data);
    let model = model_for(data.windows[0].transactions.len());
    let dir = std::env::temp_dir().join(format!("rock-incdrift-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // A batch artifact stays version 1 on the wire and still loads.
    let v1_bytes = artifact.to_bytes();
    let v1 = ModelArtifact::from_bytes(&v1_bytes).expect("v1 bytes load");
    assert!(v1.update_state().is_none(), "batch artifacts carry no update state");
    let _opens = IncrementalRockState::<Transaction>::from_artifact(&v1, StalenessPolicy::default())
        .expect("a v1 artifact opens incrementally");

    // Evolve, then drive the full on-disk v2 round trip:
    // save → load → update → save → load.
    let mut state = model
        .open_incremental(&artifact, StalenessPolicy::default())
        .expect("artifact opens");
    model
        .update(&mut state, &data.windows[1].transactions)
        .expect("first update");
    let path = dir.join("evolved.rockmodel");
    model.save_updated(&state, &path).expect("evolved save");

    let loaded = ModelArtifact::load(&path).expect("evolved artifact loads");
    assert!(loaded.update_state().is_some(), "evolved artifacts carry update state");
    let mut reopened = model
        .open_incremental(&loaded, StalenessPolicy::default())
        .expect("evolved artifact reopens");
    assert_eq!(
        reopened.digest(),
        state.digest(),
        "the evolved state survives the artifact round trip bit-identically"
    );

    model
        .update(&mut reopened, &data.windows[2].transactions)
        .expect("update after reload");
    assert_eq!(reopened.provenance().updates_applied, 2);
    model.save_updated(&reopened, &path).expect("re-save after update");
    let reloaded = ModelArtifact::load(&path).expect("re-saved artifact loads");
    let ext = reloaded.update_state().expect("update state persists");
    assert_eq!(ext.provenance.updates_applied, 2);

    // A v1-capped reader rejects v2 bytes with the typed version error,
    // never a corruption error.
    let v2_bytes = reloaded.to_bytes();
    match ModelArtifact::from_bytes_capped(&v2_bytes, 1) {
        Err(RockError::ArtifactVersion { found: 2, supported: 1 }) => {}
        other => panic!("v2-under-v1-cap must be ArtifactVersion, got {other:?}"),
    }

    std::fs::remove_dir_all(&dir).ok();
}

//! Golden snapshots of [`RunReport`]'s `Display` rendering.
//!
//! The run report is the operator-facing account of a fit — scripts grep
//! it, the README quotes it. These tests pin the exact textual shape:
//! one snapshot of a real baseline fit obtained through the shared
//! [`ClusterModel`] entry point (wall-clock durations masked), and one
//! fully deterministic snapshot of a hand-built report exercising every
//! optional line (resume offset, degradation note, interruption,
//! quarantine detail).

use rock::governor::{DegradationNote, DegradationPolicy, Phase, TripReason};
use rock::report::RunReport;
use rock::ClusterModel;
use rock_baselines::{CentroidConfig, CentroidModel};
use std::time::Duration;

/// Replaces the duration after each phase name with `<dur>` so snapshots
/// stay stable across machines. Only the `  phases:` line carries
/// wall-clock text; everything else renders verbatim.
fn mask_phase_durations(report: &str) -> String {
    let mut out = String::new();
    for line in report.lines() {
        if let Some(rest) = line.strip_prefix("  phases:") {
            out.push_str("  phases:");
            for (i, token) in rest.split_whitespace().enumerate() {
                out.push(' ');
                out.push_str(if i % 2 == 1 { "<dur>" } else { token });
            }
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

#[test]
fn centroid_fit_report_matches_golden_snapshot() {
    let vectors: Vec<Vec<f64>> = (0..10)
        .map(|i| vec![if i < 5 { 0.0 } else { 8.0 }, f64::from(i) * 0.01])
        .collect();
    let model = CentroidModel::new(CentroidConfig::plain(2));
    let fit = model.fit(&vectors[..]).expect("unlimited fit");

    let golden = "run report:\n\
                  \x20 records: 10 read, 0 skipped, 0 quarantined\n\
                  \x20 io: 0 transient errors, 0 retries\n\
                  \x20 outliers: 0\n\
                  \x20 checkpoints: 0 written\n\
                  \x20 phases: cluster <dur>\n";
    assert_eq!(mask_phase_durations(&fit.report.to_string()), golden);
}

#[test]
fn full_report_display_is_stable() {
    let mut r = RunReport::new();
    r.records_read = 42;
    r.records_skipped = 3;
    r.transient_io_errors = 2;
    r.io_retries = 2;
    r.outliers = 7;
    r.checkpoints_written = 1;
    r.resumed_from_offset = Some(512);
    r.record_phase("sample", Duration::from_millis(2));
    r.record_phase("cluster", Duration::from_millis(5));
    r.record_phase("label", Duration::from_micros(1500));
    r.degraded = Some(DegradationNote {
        policy: DegradationPolicy::SparseLinks,
        phase: Phase::Links,
        reason: TripReason::MemoryBudgetExceeded,
        detail: "dense matrix skipped".to_owned(),
    });
    r.interrupted = Some((Phase::Merge, TripReason::Cancelled));
    r.quarantine(17, "bad item token", 8);

    let golden = "run report:
  records: 42 read, 3 skipped, 1 quarantined
  io: 2 transient errors, 2 retries
  outliers: 7
  checkpoints: 1 written (resumed from byte 512)
  phases: sample 2.0ms cluster 5.0ms label 1.5ms
  degraded: sparse-links in links phase (memory budget exceeded): dense matrix skipped
  interrupted: merge phase (cancelled)
  quarantined line 17: bad item token
";
    assert_eq!(r.to_string(), golden);
}

//! Hasher-independence regression tests.
//!
//! The engine's cross-link bookkeeping lives in Fx-hashed maps, and a
//! hash map's iteration order is an accident of its hasher. PRs 2–3 made
//! bit-identical output the core guarantee, so no accident of bucket
//! order may ever reach the clustering, the merge trace or the WAL
//! bytes. rock-tidy's `nondeterministic-iter` rule enforces that
//! statically; these property tests enforce it dynamically, by running
//! the same input under the default hasher and under seeded hashers
//! (which scramble every map's iteration order) and diffing the outputs.

use proptest::collection::vec;
use proptest::prelude::*;
use rock::algorithm::{OutlierPolicy, RockAlgorithm, WeedPolicy};
use rock::goodness::{BasketF, Goodness, GoodnessKind};
use rock::governor::RunGovernor;
use rock::neighbors::NeighborGraph;
use rock::points::Transaction;
use rock::similarity::{Jaccard, PointsWith};
use rock::util::FxBuildHasher;
use rock::wal::MergeWal;
use rock::{compute_links_sparse, compute_links_sparse_seeded};

/// Strategy: a set of transactions over a small item universe.
fn transactions(max_points: usize) -> impl Strategy<Value = Vec<Transaction>> {
    vec(vec(0u32..20, 1..8), 2..max_points)
        .prop_map(|vs| vs.into_iter().map(Transaction::new).collect())
}

/// Asserts that two runs are indistinguishable, field by field.
macro_rules! assert_same_run {
    ($a:expr, $b:expr) => {
        prop_assert_eq!(&$a.clustering, &$b.clustering);
        prop_assert_eq!(&$a.merges, &$b.merges);
        prop_assert_eq!(&$a.initial_points, &$b.initial_points);
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The full pipeline — link table, merge loop, weeding — produces
    // bit-identical results under scrambled map iteration orders.
    #[test]
    fn clustering_is_identical_across_hash_seeds(
        ts in transactions(20),
        theta in 0.1f64..0.9,
        k in 1usize..5,
        seed in 1u64..u64::MAX,
    ) {
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), theta);
        let goodness = Goodness::new(theta, BasketF, GoodnessKind::Normalized);
        let outliers = OutlierPolicy {
            min_neighbors: 1,
            weed: Some(WeedPolicy {
                stop_multiple: 1.5,
                min_cluster_size: 2,
            }),
        };
        let algo = RockAlgorithm::new(goodness, k, outliers);

        let baseline_links = compute_links_sparse(&g);
        let baseline = algo.run_with_links(&g, &baseline_links);

        // Scramble both the link table's pair order and the engine's
        // internal cross-link maps.
        let seeded_links = compute_links_sparse_seeded(&g, FxBuildHasher::with_seed(seed));
        let seeded = algo.with_hash_seed(seed).run_with_links(&g, &seeded_links);

        assert_same_run!(baseline, seeded);
    }

    // The WAL is part of the bit-identity contract: the logged merge
    // history (and its embedded snapshots) must not depend on the
    // hasher either, or a crash under one build could not be resumed
    // and verified under another.
    #[test]
    fn wal_bytes_are_identical_across_hash_seeds(
        ts in transactions(16),
        theta in 0.2f64..0.8,
        seed in 1u64..u64::MAX,
    ) {
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), theta);
        let goodness = Goodness::new(theta, BasketF, GoodnessKind::Normalized);
        let algo = RockAlgorithm::new(goodness, 2, OutlierPolicy::default());
        let governor = RunGovernor::unlimited();

        let mut wal_a = MergeWal::new().with_snapshot_every(4);
        let run_a = algo
            .run_governed(&g, 1, &governor, Some(&mut wal_a))
            .expect("unlimited governor");

        let mut wal_b = MergeWal::new().with_snapshot_every(4);
        let run_b = algo
            .with_hash_seed(seed)
            .run_governed(&g, 1, &governor, Some(&mut wal_b))
            .expect("unlimited governor");

        assert_same_run!(run_a, run_b);
        prop_assert_eq!(wal_a.as_bytes(), wal_b.as_bytes());
    }

    // Resuming a seeded run from a default-hasher WAL (and vice versa)
    // reconstructs the same final state: snapshot restore paths are
    // hasher-independent too.
    #[test]
    fn resume_crosses_hash_seeds(
        ts in transactions(16),
        theta in 0.2f64..0.8,
        seed in 1u64..u64::MAX,
    ) {
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), theta);
        let goodness = Goodness::new(theta, BasketF, GoodnessKind::Normalized);
        let algo = RockAlgorithm::new(goodness, 2, OutlierPolicy::default());
        let governor = RunGovernor::unlimited();

        let mut wal = MergeWal::new().with_snapshot_every(2);
        let complete = algo
            .run_governed(&g, 1, &governor, Some(&mut wal))
            .expect("unlimited governor");

        // Replay the finished log under a scrambled hasher: the replayed
        // trace must verify and the final clustering must match.
        let resumed = algo
            .with_hash_seed(seed)
            .resume(wal.as_bytes(), Some(&g), 1, &governor, None)
            .expect("replaying a complete WAL succeeds");

        assert_same_run!(complete, resumed);
    }
}

//! Property tests for the parallel kernels' determinism contract: for any
//! input and ANY thread count, the parallel neighbor, link and labeling
//! paths return results bit-identical to their sequential counterparts.
//!
//! This is the guarantee that lets `RockConfig::threads` be a pure
//! performance knob — turning it up can never change a clustering, a
//! label, a checkpoint or a quarantine decision. See DESIGN.md
//! ("Performance model") for why each kernel is shard-invariant by
//! construction; these tests enforce it empirically over random inputs.

use proptest::collection;
use proptest::prelude::*;
use rock::labeling::Labeler;
use rock::links::compute_links_sparse;
use rock::links_matrix::LinkMatrix;
use rock::neighbors::NeighborGraph;
use rock::points::Transaction;
use rock::similarity::{Jaccard, PointsWith};
use rock_data::packed::PackedBaskets;
use rock_data::resilient::{label_stream_resilient, label_stream_resilient_parallel};
use rock_data::ResilientConfig;
use std::io::BufReader;

/// A random basket set: up to `max_n` transactions over a small item
/// universe so θ-neighborhoods are non-trivial.
fn baskets(max_n: usize) -> impl Strategy<Value = Vec<Transaction>> {
    collection::vec(collection::vec(0u32..60, 1..6), 8..max_n)
        .prop_map(|items| items.into_iter().map(Transaction::new).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn neighbors_parallel_is_bit_identical(
        ts in baskets(150),
        theta in 0.05f64..0.95,
        threads in 2usize..9,
    ) {
        let points = PointsWith::new(&ts, Jaccard);
        let serial = NeighborGraph::build(&points, theta);
        let parallel = NeighborGraph::build_parallel(&points, theta, threads);
        prop_assert_eq!(&parallel, &serial);
        // The packed popcount substrate yields the same graph too.
        let packed = PackedBaskets::new(&ts);
        prop_assert_eq!(
            &NeighborGraph::build_parallel(&packed, theta, threads),
            &serial
        );
    }

    #[test]
    fn link_kernels_are_thread_count_invariant(
        ts in baskets(120),
        theta in 0.1f64..0.9,
        threads in 2usize..9,
    ) {
        let graph = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), theta);
        let seq = LinkMatrix::compute_sparse(&graph, 1);
        prop_assert_eq!(&LinkMatrix::compute_sparse(&graph, threads), &seq);
        prop_assert_eq!(&LinkMatrix::compute_dense(&graph, threads), &seq);
        prop_assert_eq!(&LinkMatrix::compute_auto(&graph, threads), &seq);
        // Cross-check against the legacy hashmap reference (§ Fig. 4).
        let reference = compute_links_sparse(&graph);
        prop_assert_eq!(&LinkMatrix::from_table(&reference), &seq);
        prop_assert_eq!(&seq.to_table(), &reference);
    }

    #[test]
    fn labeling_parallel_is_bit_identical(
        ts in baskets(60),
        repeat in 1usize..30,
        threads in 2usize..9,
    ) {
        // The sample clusters: first half vs second half of the baskets.
        let mid = ts.len() / 2;
        let clusters = vec![
            (0..mid as u32).collect::<Vec<_>>(),
            (mid as u32..ts.len() as u32).collect::<Vec<_>>(),
        ];
        let labeler = Labeler::full(&ts, &clusters, 0.4, 1.0 / 3.0);
        // Tile the data past the serial-fallback cutoff when repeat is
        // large, so both the fallback and the true parallel path run.
        let data: Vec<Transaction> = ts
            .iter()
            .cycle()
            .take(ts.len() * repeat)
            .cloned()
            .collect();
        let serial = labeler.label_all(&data, &Jaccard);
        let parallel = labeler.label_all_parallel(&data, &Jaccard, threads);
        prop_assert_eq!(parallel, serial);
    }

    #[test]
    fn resilient_labeling_parallel_is_bit_identical(
        lines in collection::vec(0u32..6, 1..120),
        threads in 2usize..9,
        checkpoint_every in 1u64..40,
    ) {
        // Encode each draw as a stream line: labels, outliers, comments,
        // blanks and garbage all mixed in.
        let input: String = lines
            .iter()
            .map(|&k| match k {
                0 => "1 2 3\n",
                1 => "10 11 12\n",
                2 => "90 91 92\n", // outlier
                3 => "# comment\n",
                4 => "\n",
                _ => "not a number\n",
            })
            .collect();
        let sample = vec![
            Transaction::from([1, 2, 3]),
            Transaction::from([1, 2, 4]),
            Transaction::from([10, 11, 12]),
            Transaction::from([10, 11, 13]),
        ];
        let clusters = vec![vec![0, 1], vec![2, 3]];
        let labeler = Labeler::full(&sample, &clusters, 0.4, 1.0 / 3.0);
        let config = ResilientConfig {
            checkpoint_every,
            ..ResilientConfig::default()
        };
        let mut seq_cps = Vec::new();
        let seq = label_stream_resilient(
            BufReader::new(input.as_bytes()),
            &labeler,
            &Jaccard,
            &config,
            None,
            |cp| seq_cps.push(cp.clone()),
        );
        let mut par_cps = Vec::new();
        let par = label_stream_resilient_parallel(
            BufReader::new(input.as_bytes()),
            &labeler,
            &Jaccard,
            &config,
            None,
            |cp| par_cps.push(cp.clone()),
            threads,
        );
        prop_assert_eq!(&par_cps, &seq_cps);
        match (seq, par) {
            (Ok(s), Ok(p)) => {
                prop_assert_eq!(p.labeling, s.labeling);
                prop_assert_eq!(p.checkpoint, s.checkpoint);
            }
            // Garbage-heavy streams overflow the default quarantine cap;
            // the salvage state must still match exactly.
            (Err(s), Err(p)) => {
                prop_assert_eq!(p.line, s.line);
                prop_assert_eq!(p.checkpoint, s.checkpoint);
                prop_assert_eq!(p.partial_assignments, s.partial_assignments);
            }
            (s, p) => {
                return Err(TestCaseError::fail(format!(
                    "drivers disagree on success: seq ok={} par ok={}",
                    s.is_ok(),
                    p.is_ok()
                )));
            }
        }
    }
}

//! Cross-crate integration tests reproducing the paper's worked examples
//! (§1.1, §3.2) end-to-end: the traditional algorithms must fail exactly
//! the way the paper says, and ROCK must succeed.

use rock::algorithm::{OutlierPolicy, RockAlgorithm};
use rock::goodness::{ConstantF, Goodness, GoodnessKind};
use rock::neighbors::NeighborGraph;
use rock::points::Transaction;
use rock::similarity::{Jaccard, PointsWith};
use rock_baselines::{
    centroid_hierarchical, similarity_linkage, transactions_to_vectors, CentroidConfig,
    Linkage, LinkageConfig,
};

/// Example 1.1's four transactions over items 1..=6 (0-based here).
fn example_1_1() -> Vec<Transaction> {
    vec![
        Transaction::from([0, 1, 2, 4]),
        Transaction::from([1, 2, 3, 4]),
        Transaction::from([0, 3]),
        Transaction::from([5]),
    ]
}

/// Fig. 1 / Example 1.2: all 3-subsets of {1..5} (cluster A, ids 0..10)
/// and of {1, 2, 6, 7} (cluster B, ids 10..14).
fn figure1() -> Vec<Transaction> {
    let mut ts = Vec::new();
    let a = [1u32, 2, 3, 4, 5];
    for x in 0..a.len() {
        for y in (x + 1)..a.len() {
            for z in (y + 1)..a.len() {
                ts.push(Transaction::from([a[x], a[y], a[z]]));
            }
        }
    }
    let b = [1u32, 2, 6, 7];
    for x in 0..b.len() {
        for y in (x + 1)..b.len() {
            for z in (y + 1)..b.len() {
                ts.push(Transaction::from([b[x], b[y], b[z]]));
            }
        }
    }
    ts
}

#[test]
fn example_1_1_centroid_merges_disjoint_transactions() {
    // §1.1: the centroid algorithm merges {1,4} and {6} — transactions
    // with no item in common — because of centroid geometry.
    let vs = transactions_to_vectors(&example_1_1(), 6);
    let c = centroid_hierarchical(&vs, CentroidConfig::plain(2));
    assert_eq!(c.clusters, vec![vec![0, 1], vec![2, 3]]);
}

#[test]
fn example_1_1_rock_never_merges_disjoint_transactions() {
    // With links, {1,4} and {6} have no common neighbors and can never
    // be merged, whatever k is requested.
    let ts = example_1_1();
    let graph = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.2);
    let goodness = Goodness::new(0.2, ConstantF(1.0), GoodnessKind::Normalized);
    for k in 1..=3 {
        let run = RockAlgorithm::new(goodness, k, OutlierPolicy::disabled()).run(&graph);
        let a = run.clustering.cluster_of(2);
        let b = run.clustering.cluster_of(3);
        assert_ne!(a, b, "k={k}: disjoint transactions ended up together");
    }
}

#[test]
fn example_1_2_group_average_and_mst_mix_the_clusters() {
    // §1.1: both group average and MST may assign {1,2,3} and {1,2,7}
    // (different true clusters) to one cluster.
    let ts = figure1();
    let t123 = ts.iter().position(|t| *t == Transaction::from([1, 2, 3])).unwrap() as u32;
    let t127 = ts.iter().position(|t| *t == Transaction::from([1, 2, 7])).unwrap() as u32;
    for linkage in [Linkage::Average, Linkage::Single] {
        let c = similarity_linkage(
            &PointsWith::new(&ts, Jaccard),
            LinkageConfig::new(2, linkage),
        );
        assert_eq!(
            c.cluster_of(t123),
            c.cluster_of(t127),
            "{linkage:?} was expected to mix the overlapping clusters"
        );
    }
}

#[test]
fn figure1_rock_recovers_both_clusters() {
    // §3.2: with θ = 0.5 the link-based approach generates the correct
    // clusters (f ≈ 1 here: every transaction neighbors most of its
    // cluster — see rock-core's algorithm tests for the f-sensitivity).
    let ts = figure1();
    let graph = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
    let goodness = Goodness::new(0.5, ConstantF(1.0), GoodnessKind::Normalized);
    let run = RockAlgorithm::new(goodness, 2, OutlierPolicy::default()).run(&graph);
    assert_eq!(run.clustering.sizes(), vec![10, 4]);
    assert_eq!(run.clustering.clusters[0], (0u32..10).collect::<Vec<_>>());
    assert_eq!(run.clustering.clusters[1], (10u32..14).collect::<Vec<_>>());
}

#[test]
fn figure1_link_counts_match_paper() {
    // §3.2's arithmetic, end-to-end through the public API.
    let ts = figure1();
    let graph = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
    let links = rock::compute_links_sparse(&graph);
    let id = |items: [u32; 3]| {
        ts.iter()
            .position(|t| *t == Transaction::from(items))
            .unwrap()
    };
    assert_eq!(links.count(id([1, 2, 6]), id([1, 2, 7])), 5);
    assert_eq!(links.count(id([1, 2, 6]), id([1, 2, 3])), 3);
    assert_eq!(links.count(id([1, 6, 7]), id([1, 2, 6])), 2);
    assert_eq!(links.count(id([1, 6, 7]), id([3, 4, 5])), 0);
}

#[test]
fn jaccard_paradox_from_example_1_2() {
    // {1,2,3} and {1,2,7} are *more* Jaccard-similar (0.5) than {1,2,3}
    // and {3,4,5} (0.2) even though only the latter pair shares a true
    // cluster — the motivation for links.
    let cross = Transaction::from([1, 2, 3]).jaccard(&Transaction::from([1, 2, 7]));
    let within = Transaction::from([1, 2, 3]).jaccard(&Transaction::from([3, 4, 5]));
    assert!(cross > within);
    assert_eq!(cross, 0.5);
    assert!((within - 0.2).abs() < 1e-12);
}

//! Chaos acceptance matrix for the fault-isolated shard-and-merge
//! supervisor (DESIGN.md §12).
//!
//! The contract under test:
//!
//! 1. `shards == 1` is bit-identical to the unsharded journaled pipeline
//!    ([`rock::rock::Rock::cluster_wal`]) at every thread count;
//! 2. for *any* deterministic fault schedule (crash-at-merge-k, hang,
//!    memory trip, torn shard WAL — at any shard × retry round), the run
//!    terminates with either the full result (faults healed by
//!    retry/resume, bit-identical to the fault-free run) or a typed
//!    degraded result whose surviving clustering is bit-identical to
//!    running only the surviving shards from scratch, with every
//!    excluded point listed in the degradation note — never a panic, a
//!    hang or a silently wrong clustering;
//! 3. a poisoned (NaN-producing) shard is quarantined immediately —
//!    deterministic corruption is never retried;
//! 4. an exhausted coarse-merge ladder degrades to the concatenation of
//!    shard clusters, recorded under the sentinel shard index;
//! 5. a cancelled parent governor aborts the whole run with a typed
//!    error — quarantine never masks a real cancellation.

use proptest::prelude::*;
use rock::governor::{CancellationToken, RunGovernor, TripReason};
use rock::points::Transaction;
use rock::rock::Rock;
use rock::rock_data::{poison_range, PoisonedSimilarity, ShardFaultSchedule};
use rock::similarity::Jaccard;
use rock::util::retry::RetryPolicy;
use rock::wal::MergeWal;
use rock::{RockError, ShardConfig, ShardedRun};

/// Three well-separated basket clusters over disjoint item ranges;
/// transactions are deterministic 3-subsets of a 7-item universe.
fn three_clusters(n_each: usize) -> Vec<Transaction> {
    let mut data = Vec::new();
    for c in 0..3u32 {
        let base = c * 100;
        let mut i = 0;
        'outer: for x in 0..7u32 {
            for y in (x + 1)..7 {
                for z in (y + 1)..7 {
                    data.push(Transaction::from([base + x, base + y, base + z]));
                    i += 1;
                    if i >= n_each {
                        break 'outer;
                    }
                }
            }
        }
    }
    data
}

fn engine(threads: usize, governor: RunGovernor) -> Rock {
    Rock::builder()
        .theta(0.4)
        .clusters(3)
        .threads(threads)
        .seed(11)
        .governor(governor)
        .build()
        .unwrap()
}

/// A shard config with zero backoff delays (fast tests) and a loose
/// coarse θ (representative-set link densities concentrate well below
/// raw Jaccard values).
fn shard_config(shards: usize) -> ShardConfig {
    ShardConfig {
        retry: RetryPolicy::no_backoff(2),
        merge_theta: Some(0.2),
        ..ShardConfig::new(shards)
    }
}

/// Surviving output must match: same clustering, same surviving shards
/// (by index, range and shard-local clustering), same excluded points.
/// Attempt counts and note wording legitimately differ between a
/// faulted run and the exclusion oracle.
fn assert_survivors_identical(faulted: &ShardedRun, oracle: &ShardedRun) {
    assert_eq!(faulted.clustering, oracle.clustering);
    assert_eq!(faulted.shard_runs.len(), oracle.shard_runs.len());
    for (f, o) in faulted.shard_runs.iter().zip(&oracle.shard_runs) {
        assert_eq!(f.shard, o.shard);
        assert_eq!(f.range, o.range);
        assert_eq!(f.run.clustering, o.run.clustering);
        assert_eq!(f.run.merges, o.run.merges);
    }
    assert_eq!(faulted.excluded_points(), oracle.excluded_points());
}

#[test]
fn one_shard_is_bit_identical_to_unsharded_wal_run_across_threads() {
    let data = three_clusters(18);
    for threads in [1usize, 2, 8] {
        let rock = engine(threads, RunGovernor::unlimited());
        let mut wal = MergeWal::new();
        let baseline = rock.cluster_wal(&data, &Jaccard, &mut wal).unwrap();
        let sharded = rock
            .cluster_sharded(&data, &Jaccard, shard_config(1))
            .unwrap();
        assert_eq!(sharded.clustering, baseline.clustering, "threads={threads}");
        assert_eq!(sharded.shard_runs.len(), 1);
        assert_eq!(sharded.shard_runs[0].run.merges, baseline.merges);
        assert_eq!(sharded.shard_runs[0].attempts, 1);
        assert_eq!(sharded.report.shard_count, Some(1));
        assert!(sharded.report.shard_notes.is_empty());
        assert!(sharded.excluded_points().is_empty());
    }
}

#[test]
fn clean_multi_shard_run_reassembles_split_clusters() {
    // Two shards, each holding one-and-a-half natural clusters: the
    // middle cluster is split across the shard boundary and must be
    // reassembled by the coarse representative-level pass.
    let data = three_clusters(18);
    let rock = engine(2, RunGovernor::unlimited());
    let run = rock
        .cluster_sharded(&data, &Jaccard, shard_config(2))
        .unwrap();
    assert!(run.report.shard_notes.is_empty());
    assert_eq!(run.report.shard_count, Some(2));
    // Every point lands in exactly one cluster or the outlier list.
    let assigned: usize = run.clustering.clusters.iter().map(Vec::len).sum::<usize>()
        + run.clustering.outliers.len();
    assert_eq!(assigned, data.len());
    // The natural 3-way partition over disjoint item ranges survives:
    // no final cluster mixes item universes.
    for cluster in &run.clustering.clusters {
        let universes: std::collections::BTreeSet<u32> = cluster
            .iter()
            .flat_map(|&p| data[p as usize].items().iter().map(|&it| it / 100))
            .collect();
        assert_eq!(universes.len(), 1, "cluster mixes item universes");
    }
    // The split middle cluster was reassembled, so exactly the three
    // natural clusters remain.
    assert_eq!(run.clustering.clusters.len(), 3);
}

#[test]
fn shard_count_validation_is_typed() {
    let rock = engine(1, RunGovernor::unlimited());
    assert_eq!(
        rock.shard_supervisor(ShardConfig::new(0)).err(),
        Some(RockError::InvalidShardCount(0))
    );
    let bad_frac = ShardConfig {
        representative_fraction: 0.0,
        ..ShardConfig::new(2)
    };
    assert!(matches!(
        rock.shard_supervisor(bad_frac).err(),
        Some(RockError::InvalidLabelingFraction(_))
    ));
    let bad_theta = ShardConfig {
        merge_theta: Some(1.5),
        ..ShardConfig::new(2)
    };
    assert!(matches!(
        rock.shard_supervisor(bad_theta).err(),
        Some(RockError::InvalidTheta(_))
    ));
}

#[test]
fn poisoned_shard_is_quarantined_immediately_with_all_points_listed() {
    let mut data = three_clusters(18);
    let rock = engine(2, RunGovernor::unlimited());
    let supervisor = rock.shard_supervisor(shard_config(3)).unwrap();
    let ranges = rock::shard_ranges(data.len(), 3);
    poison_range(&mut data, ranges[1].clone(), 9_999);
    let sim = PoisonedSimilarity { marker: 9_999 };

    let run = supervisor.run(&data, &sim).unwrap();
    assert_eq!(run.report.shard_notes.len(), 1);
    let note = &run.report.shard_notes[0];
    assert_eq!(note.shard, 1);
    // Deterministic corruption is never retried: one attempt, done.
    assert_eq!(note.attempts, 1);
    assert!(note.reason.contains("non-finite"), "reason: {}", note.reason);
    let expected: Vec<u32> = ranges[1].clone().map(|i| i as u32).collect();
    assert_eq!(note.points, expected);
    assert_eq!(run.excluded_points(), expected);
    assert!(run.report.degraded());

    // Survivors are bit-identical to running without the poisoned shard.
    let oracle = supervisor.run_excluding(&data, &sim, &[1]).unwrap();
    assert_survivors_identical(&run, &oracle);
}

#[test]
fn hang_and_memory_trip_ladders_exhaust_into_quarantine() {
    let data = three_clusters(18);
    let rock = engine(2, RunGovernor::unlimited());
    let supervisor = rock.shard_supervisor(shard_config(3)).unwrap();

    // Hang every attempt of shard 0: the deadline kill fires at the
    // first checkpoint of each of the 3 attempts.
    let hangs = ShardFaultSchedule::new().hang(0, 0).hang(0, 1).hang(0, 2);
    let run = supervisor.run_with_plan(&data, &Jaccard, &hangs).unwrap();
    assert_eq!(run.report.shard_notes.len(), 1);
    assert_eq!(run.report.shard_notes[0].shard, 0);
    assert_eq!(run.report.shard_notes[0].attempts, 3);
    assert!(
        run.report.shard_notes[0].reason.contains("deadline"),
        "reason: {}",
        run.report.shard_notes[0].reason
    );
    let oracle = supervisor.run_excluding(&data, &Jaccard, &[0]).unwrap();
    assert_survivors_identical(&run, &oracle);

    // Trip the memory budget on every attempt of shard 2.
    let trips = ShardFaultSchedule::new()
        .trip_memory(2, 0)
        .trip_memory(2, 1)
        .trip_memory(2, 2);
    let run = supervisor.run_with_plan(&data, &Jaccard, &trips).unwrap();
    assert_eq!(run.report.shard_notes.len(), 1);
    assert_eq!(run.report.shard_notes[0].shard, 2);
    assert!(
        run.report.shard_notes[0].reason.contains("memory"),
        "reason: {}",
        run.report.shard_notes[0].reason
    );
    let oracle = supervisor.run_excluding(&data, &Jaccard, &[2]).unwrap();
    assert_survivors_identical(&run, &oracle);
}

#[test]
fn crash_then_clean_retry_heals_to_the_fault_free_result() {
    let data = three_clusters(18);
    let rock = engine(2, RunGovernor::unlimited());
    let supervisor = rock.shard_supervisor(shard_config(3)).unwrap();
    let clean = supervisor.run(&data, &Jaccard).unwrap();

    // Crash shard 1 after 2 merges on attempt 0 only: attempt 1 resumes
    // from the carried shard WAL and completes bit-identically.
    let schedule = ShardFaultSchedule::new().crash_at_merge(1, 0, 2);
    let healed = supervisor
        .run_with_plan(&data, &Jaccard, &schedule)
        .unwrap();
    assert!(healed.report.shard_notes.is_empty());
    assert_survivors_identical(&healed, &clean);
    let retried = healed.shard_runs.iter().find(|sr| sr.shard == 1).unwrap();
    assert_eq!(retried.attempts, 2);
}

#[test]
fn torn_shard_wal_still_heals_or_quarantines_cleanly() {
    let data = three_clusters(18);
    let rock = engine(2, RunGovernor::unlimited());
    let supervisor = rock.shard_supervisor(shard_config(3)).unwrap();
    let clean = supervisor.run(&data, &Jaccard).unwrap();

    // Crash attempt 0 of shard 1 and tear its carried WAL down to a few
    // bytes (damaged magic): the resume fails typed, the supervisor
    // falls back to a from-scratch retry, and the run still heals.
    for keep in [0usize, 3, 9] {
        let schedule = ShardFaultSchedule::new()
            .crash_at_merge(1, 0, 2)
            .tear_wal(1, 0, keep);
        let healed = supervisor
            .run_with_plan(&data, &Jaccard, &schedule)
            .unwrap();
        assert!(healed.report.shard_notes.is_empty(), "keep={keep}");
        assert_survivors_identical(&healed, &clean);
    }
}

#[test]
fn coarse_merge_exhaustion_degrades_to_recorded_concatenation() {
    let data = three_clusters(18);
    let rock = engine(2, RunGovernor::unlimited());
    let supervisor = rock.shard_supervisor(shard_config(3)).unwrap();
    let clean = supervisor.run(&data, &Jaccard).unwrap();

    // Hang every attempt of the coarse merge pass (sentinel shard index
    // = shard count = 3): the run degrades to the concatenation of
    // shard-level clusters instead of failing.
    let schedule = ShardFaultSchedule::new().hang(3, 0).hang(3, 1).hang(3, 2);
    let run = supervisor
        .run_with_plan(&data, &Jaccard, &schedule)
        .unwrap();
    assert_eq!(run.report.shard_notes.len(), 1);
    let note = &run.report.shard_notes[0];
    assert_eq!(note.shard, 3, "sentinel index is the shard count");
    assert!(note.points.is_empty(), "no points are excluded");
    assert_eq!(note.attempts, 3);
    assert!(
        note.reason.contains("coarse merge abandoned"),
        "reason: {}",
        note.reason
    );
    assert!(run.report.degraded());
    assert!(run.excluded_points().is_empty());
    // Every shard still completed; the final clustering is the shard
    // clusters verbatim (no cross-shard merges).
    assert_eq!(run.shard_runs.len(), 3);
    let shard_cluster_count: usize = run
        .shard_runs
        .iter()
        .map(|sr| sr.run.clustering.clusters.len())
        .sum();
    assert_eq!(run.clustering.clusters.len(), shard_cluster_count);
    // The degraded clustering covers exactly the same points as the
    // clean one.
    let count_points = |r: &ShardedRun| {
        r.clustering.clusters.iter().map(Vec::len).sum::<usize>() + r.clustering.outliers.len()
    };
    assert_eq!(count_points(&run), count_points(&clean));
}

#[test]
fn cancelled_parent_aborts_instead_of_quarantining() {
    let data = three_clusters(18);
    let token = CancellationToken::new();
    token.cancel();
    let rock = engine(
        2,
        RunGovernor::unlimited().with_cancel_token(token.clone()),
    );
    let supervisor = rock.shard_supervisor(shard_config(3)).unwrap();
    match supervisor.run(&data, &Jaccard) {
        Err(RockError::Interrupted { reason, .. }) => {
            assert_eq!(reason, TripReason::Cancelled);
        }
        other => panic!("expected a typed cancellation, got {other:?}"),
    }
}

#[test]
fn sharded_report_aggregates_phase_perf_across_shards() {
    let data = three_clusters(18);
    let rock = engine(2, RunGovernor::unlimited());
    let run = rock
        .cluster_sharded(&data, &Jaccard, shard_config(3))
        .unwrap();
    let report = &run.report;
    assert_eq!(report.shard_count, Some(3));
    assert_eq!(report.records_read, data.len() as u64);
    assert!(report.phase_duration("cluster").is_some());
    assert!(report.phase_duration("merge").is_some());
    // The "cluster" window sums every shard's kernel work: at least the
    // pairwise candidate work of three θ-neighbor graphs.
    let cluster_perf = report
        .phase_counters("cluster")
        .expect("per-shard work must aggregate into the cluster phase");
    assert!(
        cluster_perf.pairs_emitted > 0 || cluster_perf.bytes_touched > 0,
        "no work counted across shards: {cluster_perf:?}"
    );
    // Shard bookkeeping shows up in the rendered report.
    let display = report.to_string();
    assert!(display.contains("shards: 3 total, 0 quarantined"), "{display}");
}

#[test]
fn sub_unit_representative_fraction_is_deterministic() {
    let data = three_clusters(18);
    let rock = engine(2, RunGovernor::unlimited());
    let config = ShardConfig {
        representative_fraction: 0.5,
        ..shard_config(3)
    };
    let a = rock
        .cluster_sharded(&data, &Jaccard, config.clone())
        .unwrap();
    let b = rock.cluster_sharded(&data, &Jaccard, config).unwrap();
    assert_eq!(a.clustering, b.clustering);
    let assigned: usize =
        a.clustering.clusters.iter().map(Vec::len).sum::<usize>() + a.clustering.outliers.len();
    assert_eq!(assigned, data.len());
}

/// One cell of the chaos matrix: which fault hits a given
/// `(shard, attempt)`.
#[derive(Clone, Copy, Debug)]
enum FaultKind {
    Hang,
    MemoryTrip,
    CrashAtMerge(u64),
    CrashAndTear(u64, usize),
}

fn apply(schedule: ShardFaultSchedule, shard: usize, attempt: u32, kind: FaultKind) -> ShardFaultSchedule {
    match kind {
        FaultKind::Hang => schedule.hang(shard, attempt),
        FaultKind::MemoryTrip => schedule.trip_memory(shard, attempt),
        FaultKind::CrashAtMerge(k) => schedule.crash_at_merge(shard, attempt, k),
        FaultKind::CrashAndTear(k, keep) => schedule
            .crash_at_merge(shard, attempt, k)
            .tear_wal(shard, attempt, keep),
    }
}

fn fault_kind() -> impl Strategy<Value = FaultKind> {
    (0usize..4, 0u64..3, 0usize..64).prop_map(|(which, k, keep)| match which {
        0 => FaultKind::Hang,
        1 => FaultKind::MemoryTrip,
        2 => FaultKind::CrashAtMerge(k),
        _ => FaultKind::CrashAndTear(k, keep),
    })
}

/// Guaranteed-fatal kinds for exhaustive schedules: a crash at merge
/// index `k` is only guaranteed to fire if the shard performs > k
/// merges, so ladder-exhausting schedules stick to kinds that trip
/// unconditionally (hang, memory) plus crash-at-0 (every shard here has
/// at least one merge).
fn fatal_fault_kind() -> impl Strategy<Value = FaultKind> {
    (0usize..3).prop_map(|which| match which {
        0 => FaultKind::Hang,
        1 => FaultKind::MemoryTrip,
        _ => FaultKind::CrashAtMerge(0),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Satellite quarantine-ladder property: for any fault schedule that
    // exhausts the ladders of an arbitrary subset of shards, the
    // surviving clustering is bit-identical to running only the
    // surviving shards from scratch, and every excluded point is listed
    // in the degradation notes.
    #[test]
    fn exhausted_shards_quarantine_bit_identically_to_exclusion(
        shards in 2usize..5,
        threads_idx in 0usize..3,
        doomed_mask in 1u32..7,
        kinds in proptest::collection::vec(fatal_fault_kind(), 9),
    ) {
        let threads = [1usize, 2, 8][threads_idx];
        let data = three_clusters(18);
        let rock = engine(threads, RunGovernor::unlimited());
        let supervisor = rock.shard_supervisor(shard_config(shards)).unwrap();

        // Doom up to three distinct shards, faulting every attempt.
        let doomed: Vec<usize> = (0..3usize)
            .filter(|b| doomed_mask & (1 << b) != 0)
            .map(|b| b % shards)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut schedule = ShardFaultSchedule::new();
        let mut ki = 0;
        for &s in &doomed {
            for attempt in 0u32..3 {
                schedule = apply(schedule, s, attempt, kinds[ki]);
                ki += 1;
            }
        }

        let faulted = supervisor.run_with_plan(&data, &Jaccard, &schedule).unwrap();
        let oracle = supervisor.run_excluding(&data, &Jaccard, &doomed).unwrap();

        let mut quarantined: Vec<usize> =
            faulted.report.shard_notes.iter().map(|n| n.shard).collect();
        quarantined.sort_unstable();
        prop_assert_eq!(&quarantined, &doomed);
        for note in &faulted.report.shard_notes {
            prop_assert_eq!(note.attempts, 3, "full ladder before quarantine");
            let range = rock::shard_ranges(data.len(), shards)[note.shard].clone();
            let expected: Vec<u32> = range.map(|i| i as u32).collect();
            prop_assert_eq!(&note.points, &expected);
        }
        prop_assert!(faulted.report.degraded());
        assert_survivors_identical(&faulted, &oracle);
    }

    // Healing property: a schedule that leaves at least one clean
    // attempt per shard produces the fault-free result exactly — the
    // retry/resume machinery is invisible in the output.
    #[test]
    fn partial_fault_schedules_heal_to_the_fault_free_result(
        shards in 2usize..5,
        target in 0usize..4,
        kind in fault_kind(),
        second_kind in proptest::option::of(fault_kind()),
    ) {
        let data = three_clusters(18);
        let rock = engine(2, RunGovernor::unlimited());
        let supervisor = rock.shard_supervisor(shard_config(shards)).unwrap();
        let clean = supervisor.run(&data, &Jaccard).unwrap();

        // Fault attempts 0 (and maybe 1) of one shard; attempt 2 is
        // always clean, so the shard must survive.
        let target = target % shards;
        let mut schedule = apply(ShardFaultSchedule::new(), target, 0, kind);
        if let Some(k2) = second_kind {
            schedule = apply(schedule, target, 1, k2);
        }

        let healed = supervisor.run_with_plan(&data, &Jaccard, &schedule).unwrap();
        prop_assert!(healed.report.shard_notes.is_empty());
        prop_assert!(!healed.report.degraded());
        assert_survivors_identical(&healed, &clean);
    }
}

//! Integration tests over the three §5.1-style data sets (scaled), each
//! asserting the paper's qualitative findings.

use rand::{rngs::StdRng, SeedableRng};
use rock::rock::Rock;
use rock::similarity::{CategoricalJaccard, MissingPolicy};
use rock_baselines::{centroid_hierarchical, records_to_vectors, CentroidConfig};
use rock_data::{
    generate_funds, generate_mushrooms, generate_votes, Edibility, FundSpec, MushroomSpec,
    Party, VotesSpec,
};
use rock_eval::{adjusted_rand_index, ContingencyTable};

#[test]
fn votes_rock_finds_two_party_clusters() {
    let data = generate_votes(&VotesSpec::paper(), &mut StdRng::seed_from_u64(1984));
    let truth: Vec<usize> = data
        .labels
        .iter()
        .map(|p| usize::from(*p == Party::Democrat))
        .collect();
    let rock = Rock::builder()
        .theta(0.73)
        .clusters(2)
        .weed_outliers(3.0, 5)
        .build()
        .unwrap();
    let run = rock.cluster(&data.records, &CategoricalJaccard::default());
    assert_eq!(run.clustering.num_clusters(), 2, "two party clusters");
    let table = ContingencyTable::new(&run.clustering.assignments(truth.len()), &truth);
    // Table-2 shape: each cluster dominated by one party (≥ 85%).
    for c in 0..2 {
        let majority = *table.row(c).iter().max().unwrap();
        assert!(
            majority as f64 >= 0.85 * table.cluster_size(c) as f64,
            "cluster {c} not party-dominated: {:?}",
            table.row(c)
        );
    }
    // And the two clusters back different parties.
    let major0 = table.row(0).iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
    let major1 = table.row(1).iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
    assert_ne!(major0, major1);
}

#[test]
fn votes_rock_beats_traditional_on_ari() {
    let data = generate_votes(&VotesSpec::paper(), &mut StdRng::seed_from_u64(84));
    let truth: Vec<usize> = data
        .labels
        .iter()
        .map(|p| usize::from(*p == Party::Democrat))
        .collect();
    let flatten = |assignments: Vec<Option<usize>>| -> Vec<usize> {
        assignments.iter().map(|a| a.map_or(99, |c| c)).collect()
    };
    let rock = Rock::builder()
        .theta(0.73)
        .clusters(2)
        .weed_outliers(3.0, 5)
        .build()
        .unwrap();
    let rock_run = rock.cluster(&data.records, &CategoricalJaccard::default());
    let rock_ari =
        adjusted_rand_index(&flatten(rock_run.clustering.assignments(truth.len())), &truth);
    let vectors = records_to_vectors(&data.records, &data.schema);
    let trad = centroid_hierarchical(&vectors, CentroidConfig::paper(2));
    let trad_ari = adjusted_rand_index(&flatten(trad.assignments(truth.len())), &truth);
    assert!(
        rock_ari > trad_ari,
        "ROCK ARI {rock_ari} vs traditional {trad_ari}"
    );
}

#[test]
fn mushroom_rock_clusters_are_pure_and_skewed() {
    let data = generate_mushrooms(
        &MushroomSpec::paper_scaled(0.1),
        &mut StdRng::seed_from_u64(8124),
    );
    let truth: Vec<usize> = data
        .labels
        .iter()
        .map(|e| usize::from(*e == Edibility::Poisonous))
        .collect();
    let rock = Rock::builder().theta(0.8).clusters(20).build().unwrap();
    let run = rock.cluster(&data.records, &CategoricalJaccard::default());
    let table = ContingencyTable::new(&run.clustering.assignments(truth.len()), &truth);
    // Table-3 shape: nearly all clusters pure…
    assert!(
        table.num_pure_clusters() + 1 >= table.num_clusters(),
        "{} of {} clusters pure",
        table.num_pure_clusters(),
        table.num_clusters()
    );
    assert!(table.purity() > 0.95, "purity {}", table.purity());
    // …with a wide variance in cluster sizes.
    let sizes = run.clustering.sizes();
    let (max, min) = (sizes[0], *sizes.last().unwrap());
    assert!(
        max >= 10 * min.max(1),
        "sizes not skewed enough: {sizes:?}"
    );
}

#[test]
fn mushroom_rock_tracks_species_better_than_traditional() {
    let data = generate_mushrooms(
        &MushroomSpec::paper_scaled(0.1),
        &mut StdRng::seed_from_u64(5),
    );
    let flatten = |assignments: Vec<Option<usize>>| -> Vec<usize> {
        assignments.iter().map(|a| a.map_or(999, |c| c)).collect()
    };
    let rock = Rock::builder().theta(0.8).clusters(20).build().unwrap();
    let run = rock.cluster(&data.records, &CategoricalJaccard::default());
    let rock_ari = adjusted_rand_index(
        &flatten(run.clustering.assignments(data.records.len())),
        &data.species,
    );
    let vectors = records_to_vectors(&data.records, &data.schema);
    let trad = centroid_hierarchical(&vectors, CentroidConfig::paper(20));
    let trad_ari = adjusted_rand_index(
        &flatten(trad.assignments(data.records.len())),
        &data.species,
    );
    assert!(
        rock_ari > trad_ari,
        "ROCK species-ARI {rock_ari} vs traditional {trad_ari}"
    );
    assert!(rock_ari > 0.9, "ROCK species-ARI only {rock_ari}");
}

#[test]
fn funds_families_recovered_with_missing_values() {
    let spec = FundSpec::paper_scaled(0.3);
    let data = generate_funds(&spec, &mut StdRng::seed_from_u64(1993));
    let sim = CategoricalJaccard::new(MissingPolicy::CommonAttributes);
    let rock = Rock::builder().theta(0.8).clusters(20).build().unwrap();
    let run = rock.cluster(&data.records, &sim);
    // Clusters of size ≥ 4 must be pure fund families.
    let mut families = 0;
    for cluster in &run.clustering.clusters {
        if cluster.len() < 4 {
            continue;
        }
        let mut groups: Vec<Option<usize>> = cluster
            .iter()
            .map(|&m| data.funds[m as usize].group)
            .collect();
        groups.sort();
        groups.dedup();
        assert_eq!(groups.len(), 1, "mixed family cluster: {cluster:?}");
        families += 1;
    }
    assert!(families >= 4, "only {families} family clusters found");
}

#[test]
fn funds_young_and_old_members_cluster_together() {
    // The §3.1.2 time-series policy must let a young fund join its
    // family despite the missing prefix.
    let spec = FundSpec::paper_scaled(0.3);
    let data = generate_funds(&spec, &mut StdRng::seed_from_u64(77));
    let sim = CategoricalJaccard::new(MissingPolicy::CommonAttributes);
    let rock = Rock::builder().theta(0.8).clusters(20).build().unwrap();
    let run = rock.cluster(&data.records, &sim);
    let mut young_clustered = 0usize;
    for cluster in &run.clustering.clusters {
        if cluster.len() < 4 {
            continue;
        }
        for &m in cluster {
            if data.records[m as usize].num_present() < data.records[m as usize].arity() {
                young_clustered += 1;
            }
        }
    }
    assert!(
        young_clustered > 0,
        "no young fund was clustered with its family"
    );
}

//! Invariance properties for the range-sharded kernels introduced by the
//! kernel speed round, beyond the thread-count sweeps in
//! `tests/parallel_determinism.rs`:
//!
//! * **Shard-boundary invariance** — the sharded link kernel's output
//!   must not depend on *where* the row ranges are cut, only on the
//!   graph. `LinkMatrix::compute_sparse_ranges` (a test seam) accepts
//!   arbitrary — including adversarial and degenerate — splits, and
//!   every split must reproduce the single-shard result byte for byte.
//! * **Exact thread grid** — the paper-relevant thread counts
//!   {1, 2, 3, 8} pinned explicitly (the proptests draw thread counts
//!   randomly, which in principle could miss a specific count).
//! * **Labeling merge under adversarial similarities** — the
//!   thread-local outcome merge in `label_all_parallel` must agree with
//!   the sequential fold even when the similarity measure is engineered
//!   to sit exactly on the θ decision boundary, to drive every point to
//!   the outlier path, or to saturate at 1.0 — the regimes where a
//!   merge-order bug would surface as a miscounted outlier or cluster
//!   total.
//!
//! CI runs this file in release mode (`kernel-equivalence` job) so the
//! optimizer cannot hide a divergence that debug builds mask.

use proptest::collection;
use proptest::prelude::*;
use rock::labeling::Labeler;
use rock::links_matrix::LinkMatrix;
use rock::neighbors::NeighborGraph;
use rock::points::Transaction;
use rock::similarity::{Jaccard, PointsWith, Similarity};
use rock_data::packed::PackedBaskets;
use std::ops::Range;

/// The pinned thread grid from the acceptance criteria.
const THREAD_GRID: [usize; 4] = [1, 2, 3, 8];

/// A random basket set over a small item universe so θ-neighborhoods
/// are non-trivial (same shape as `tests/parallel_determinism.rs`).
fn baskets(max_n: usize) -> impl Strategy<Value = Vec<Transaction>> {
    collection::vec(collection::vec(0u32..60, 1..6), 8..max_n)
        .prop_map(|items| items.into_iter().map(Transaction::new).collect())
}

/// Materialises fractional cut points into a full contiguous partition
/// of `0..n`, optionally salted with empty ranges — the adversarial
/// splits a balancer would never produce but the kernel must tolerate.
fn ranges_from_cuts(n: usize, cuts: &[f64], salt_empties: bool) -> Vec<Range<usize>> {
    let mut bounds: Vec<usize> = cuts
        .iter()
        .map(|f| ((f * n as f64) as usize).min(n))
        .collect();
    bounds.push(0);
    bounds.push(n);
    bounds.sort_unstable();
    let mut shards = Vec::new();
    if salt_empties {
        shards.push(0..0);
    }
    for w in bounds.windows(2) {
        shards.push(w[0]..w[1]); // empty when consecutive cuts collide
        if salt_empties {
            shards.push(w[1]..w[1]);
        }
    }
    shards
}

/// A similarity engineered to hit the labeling decision boundaries:
/// depending on the item sums it returns exactly θ (a neighbor by the
/// paper's ≥ θ rule), just under θ (not a neighbor), 0, or 1. The value
/// is a pure function of the two points, so sequential and parallel
/// labelers see identical faults in any evaluation order.
struct BoundarySim {
    theta: f64,
}

impl Similarity<Transaction> for BoundarySim {
    fn similarity(&self, a: &Transaction, b: &Transaction) -> f64 {
        let key = a
            .items()
            .iter()
            .chain(b.items())
            .fold(0u64, |acc, &x| acc.wrapping_mul(31).wrapping_add(x as u64));
        match key % 4 {
            0 => self.theta,
            1 => self.theta - 1e-9,
            2 => 0.0,
            _ => 1.0,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Any contiguous partition of the rows — balanced, lopsided,
    // riddled with empty shards — yields the single-shard link matrix.
    #[test]
    fn link_kernel_is_shard_boundary_invariant(
        ts in baskets(120),
        theta in 0.1f64..0.9,
        cuts in collection::vec(0.0f64..1.0, 0..6),
        salt_empties in any::<bool>(),
    ) {
        let graph = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), theta);
        let reference = LinkMatrix::compute_sparse(&graph, 1);
        let shards = ranges_from_cuts(graph.len(), &cuts, salt_empties);
        prop_assert_eq!(
            &LinkMatrix::compute_sparse_ranges(&graph, &shards),
            &reference
        );
    }

    // The labeling merge agrees with the sequential fold under a
    // boundary-adversarial similarity, at every pinned thread count,
    // both below and above the parallel cost cutoff.
    #[test]
    fn labeling_merge_matches_sequential_under_adversarial_sims(
        ts in baskets(60),
        repeat in 1usize..30,
        theta in 0.1f64..0.9,
    ) {
        let mid = ts.len() / 2;
        let clusters = vec![
            (0..mid as u32).collect::<Vec<_>>(),
            (mid as u32..ts.len() as u32).collect::<Vec<_>>(),
        ];
        let labeler = Labeler::full(&ts, &clusters, theta, 1.0 / 3.0);
        let sim = BoundarySim { theta };
        let data: Vec<Transaction> = ts
            .iter()
            .cycle()
            .take(ts.len() * repeat)
            .cloned()
            .collect();
        let serial = labeler.label_all(&data, &sim);
        for threads in THREAD_GRID {
            prop_assert_eq!(
                &labeler.label_all_parallel(&data, &sim, threads),
                &serial,
                "threads = {}", threads
            );
        }
    }
}

/// The full pinned thread grid, checked exhaustively on one fixed input
/// per kernel: every count must reproduce the single-thread result.
#[test]
fn pinned_thread_grid_is_bit_identical() {
    // 180 baskets drawn from three overlapping item bands, so the graph
    // has real cluster structure and non-uniform row costs.
    let ts: Vec<Transaction> = (0..180u32)
        .map(|i| {
            let base = (i % 3) * 15;
            Transaction::new(vec![base + i % 7, base + (i / 3) % 9, base + (i / 5) % 11])
        })
        .collect();
    let theta = 0.3;

    let points = PointsWith::new(&ts, Jaccard);
    let packed = PackedBaskets::new(&ts);
    let graph = NeighborGraph::build(&points, theta);
    let links = LinkMatrix::compute_sparse(&graph, 1);
    let labeler = Labeler::full(
        &ts,
        &[(0..90u32).collect::<Vec<_>>(), (90..180u32).collect()],
        theta,
        1.0 / 3.0,
    );
    let labels = labeler.label_all(&ts, &Jaccard);

    for threads in THREAD_GRID {
        assert_eq!(
            NeighborGraph::build_parallel(&points, theta, threads),
            graph,
            "neighbors diverged at {threads} threads"
        );
        assert_eq!(
            NeighborGraph::build_parallel(&packed, theta, threads),
            graph,
            "packed neighbors diverged at {threads} threads"
        );
        assert_eq!(
            LinkMatrix::compute_sparse(&graph, threads),
            links,
            "sparse links diverged at {threads} threads"
        );
        assert_eq!(
            LinkMatrix::compute_dense(&graph, threads),
            links,
            "dense links diverged at {threads} threads"
        );
        assert_eq!(
            labeler.label_all_parallel(&ts, &Jaccard, threads),
            labels,
            "labeling diverged at {threads} threads"
        );
    }
}

/// Degenerate splits on a degenerate graph: no rows, one row, and a
/// graph with isolated points only.
#[test]
fn degenerate_graphs_accept_degenerate_splits() {
    let empty = NeighborGraph::build(&PointsWith::new(&Vec::<Transaction>::new(), Jaccard), 0.5);
    assert_eq!(
        LinkMatrix::compute_sparse_ranges(&empty, &[]),
        LinkMatrix::compute_sparse(&empty, 1)
    );

    let singleton = vec![Transaction::from([1, 2, 3])];
    let one = NeighborGraph::build(&PointsWith::new(&singleton, Jaccard), 0.5);
    let single: Vec<Range<usize>> = std::iter::once(0..1).collect();
    for shards in [single, vec![0..0, 0..1, 1..1]] {
        assert_eq!(
            LinkMatrix::compute_sparse_ranges(&one, &shards),
            LinkMatrix::compute_sparse(&one, 1),
            "shards = {shards:?}"
        );
    }
}

//! ROCK vs the traditional algorithms on identical categorical data:
//! wall-clock comparison on the votes-like and basket workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use rock_baselines::{
    centroid_hierarchical, clarans, dbscan, kmeans, kmodes, records_to_vectors,
    similarity_linkage, CentroidConfig, ClaransConfig, DbscanConfig, KMeansConfig,
    KModesConfig, Linkage, LinkageConfig,
};
use rock_core::neighbors::NeighborGraph;
use rock_core::similarity::{CategoricalJaccard, PointsWith};
use rock_core::Rock;
use rock_data::{generate_votes, VotesSpec};
use std::hint::black_box;

fn bench_votes_algorithms(c: &mut Criterion) {
    let data = generate_votes(&VotesSpec::paper(), &mut StdRng::seed_from_u64(84));
    let vectors = records_to_vectors(&data.records, &data.schema);
    let mut group = c.benchmark_group("votes_435");

    group.bench_function("rock", |b| {
        let rock = Rock::builder().theta(0.73).clusters(2).build().expect("valid");
        let sim = CategoricalJaccard::default();
        b.iter(|| black_box(rock.cluster(&data.records, &sim)))
    });
    group.bench_function("centroid_hierarchical", |b| {
        b.iter(|| black_box(centroid_hierarchical(&vectors, CentroidConfig::paper(2))))
    });
    group.bench_function("group_average", |b| {
        let sim = CategoricalJaccard::default();
        b.iter(|| {
            black_box(similarity_linkage(
                &PointsWith::new(&data.records, &sim),
                LinkageConfig::new(2, Linkage::Average),
            ))
        })
    });
    group.bench_function("single_link_mst", |b| {
        let sim = CategoricalJaccard::default();
        b.iter(|| {
            black_box(similarity_linkage(
                &PointsWith::new(&data.records, &sim),
                LinkageConfig::new(2, Linkage::Single),
            ))
        })
    });
    group.bench_function("kmeans", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(kmeans(&vectors, KMeansConfig::new(2), &mut rng))
        })
    });
    group.bench_function("kmodes", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(kmodes(&data.records, KModesConfig::new(2), &mut rng))
        })
    });
    group.bench_function("dbscan", |b| {
        let sim = CategoricalJaccard::default();
        b.iter(|| {
            let g = NeighborGraph::build(&PointsWith::new(&data.records, &sim), 0.73);
            black_box(dbscan(&g, DbscanConfig::new(4)))
        })
    });
    group.bench_function("clarans", |b| {
        let sim = CategoricalJaccard::default();
        let pw = PointsWith::new(&data.records, &sim);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(clarans(&pw, ClaransConfig::new(2), &mut rng))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_votes_algorithms
}
criterion_main!(benches);

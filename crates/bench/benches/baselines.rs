//! ROCK vs the traditional algorithms on identical categorical data:
//! wall-clock comparison on the votes-like workload, with every
//! algorithm — ROCK included — driven through the shared
//! [`ClusterModel`] fit entry point.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use rock_baselines::{
    records_to_vectors, CentroidConfig, CentroidModel, ClaransConfig, ClaransModel, DbscanConfig,
    DbscanModel, KMeansConfig, KMeansModel, KModesConfig, KModesModel, Linkage, LinkageConfig,
    LinkageModel,
};
use rock_core::similarity::{CategoricalJaccard, PointsWith};
use rock_core::{ClusterModel, Rock, RockModel};
use rock_data::{generate_votes, VotesSpec};
use std::hint::black_box;

fn bench_votes_algorithms(c: &mut Criterion) {
    let data = generate_votes(&VotesSpec::paper(), &mut StdRng::seed_from_u64(84));
    let vectors = records_to_vectors(&data.records, &data.schema);
    let sim = CategoricalJaccard::default();
    let pairwise = PointsWith::new(&data.records, &sim);
    let mut group = c.benchmark_group("votes_435");

    let rock = RockModel::new(
        Rock::builder()
            .theta(0.73)
            .clusters(2)
            .build()
            .expect("valid"),
        CategoricalJaccard::default(),
    );
    group.bench_function("rock", |b| {
        b.iter(|| black_box(rock.fit(&data.records).expect("unlimited fit")))
    });
    let centroid = CentroidModel::new(CentroidConfig::paper(2));
    group.bench_function("centroid_hierarchical", |b| {
        b.iter(|| black_box(centroid.fit(&vectors).expect("unlimited fit")))
    });
    let average = LinkageModel::new(LinkageConfig::new(2, Linkage::Average));
    group.bench_function("group_average", |b| {
        b.iter(|| black_box(average.fit(&pairwise).expect("unlimited fit")))
    });
    let single = LinkageModel::new(LinkageConfig::new(2, Linkage::Single));
    group.bench_function("single_link_mst", |b| {
        b.iter(|| black_box(single.fit(&pairwise).expect("unlimited fit")))
    });
    let km = KMeansModel::new(KMeansConfig::new(2), 1);
    group.bench_function("kmeans", |b| {
        b.iter(|| black_box(km.fit(&vectors).expect("unlimited fit")))
    });
    let kmo = KModesModel::new(KModesConfig::new(2), 1);
    group.bench_function("kmodes", |b| {
        b.iter(|| black_box(kmo.fit(&data.records).expect("unlimited fit")))
    });
    let db = DbscanModel::new(DbscanConfig::new(4), 0.73);
    group.bench_function("dbscan", |b| {
        b.iter(|| black_box(db.fit(&pairwise).expect("unlimited fit")))
    });
    let cl = ClaransModel::new(ClaransConfig::new(2), 1);
    group.bench_function("clarans", |b| {
        b.iter(|| black_box(cl.fit(&pairwise).expect("unlimited fit")))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_votes_algorithms
}
criterion_main!(benches);

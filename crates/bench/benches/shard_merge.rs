//! Shard-and-merge benchmarks: what fault isolation costs when nothing
//! goes wrong, and what healing costs when something does.
//!
//! `unsharded_baseline` is the plain single-pipeline run over the same
//! data; the `shards_N` variants pay the supervisor's partition +
//! per-shard governor + coarse-merge overhead, and `shards_4_crash_heal`
//! additionally burns one retry rung (a mid-merge kill resumed from the
//! shard's carried WAL). The demo run after the group quarantines a
//! poisoned shard and prints the resulting report.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use rock_core::similarity::Jaccard;
use rock_core::{Rock, ShardConfig};
use rock_data::faults::{poison_range, PoisonedSimilarity, ShardFaultSchedule};
use rock_data::{generate_baskets, SyntheticBasketSpec};
use std::hint::black_box;

fn bench_shard_merge(c: &mut Criterion) {
    let data = generate_baskets(
        &SyntheticBasketSpec::paper_scaled(0.01),
        &mut StdRng::seed_from_u64(42),
    );
    let points = &data.transactions;
    let rock = Rock::builder()
        .theta(0.5)
        .clusters(10)
        .seed(42)
        .build()
        .expect("valid config");
    // Sub-unit representative fraction: the coarse merge pass is
    // quadratic in representative-set size, so at this scale sampling
    // Lᵢ is the intended configuration (and it is seed-deterministic).
    let shard_config = |shards: usize| ShardConfig {
        merge_theta: Some(0.2),
        representative_fraction: 0.25,
        ..ShardConfig::new(shards)
    };

    let mut group = c.benchmark_group("shard_merge");
    group.bench_function("unsharded_baseline", |b| {
        b.iter(|| black_box(rock.cluster(points, &Jaccard)))
    });
    for shards in [2usize, 4, 8] {
        group.bench_function(format!("shards_{shards}"), |b| {
            b.iter(|| {
                black_box(
                    rock.cluster_sharded(points, &Jaccard, shard_config(shards))
                        .expect("sharded run"),
                )
            })
        });
    }
    // Supervision under fire: shard 1's first attempt is killed eight
    // merges in, so every sample pays one retry rung plus a WAL resume.
    let supervisor = rock
        .shard_supervisor(shard_config(4))
        .expect("supervisor");
    let crash = ShardFaultSchedule::new().crash_at_merge(1, 0, 8);
    group.bench_function("shards_4_crash_heal", |b| {
        b.iter(|| {
            black_box(
                supervisor
                    .run_with_plan(points, &Jaccard, &crash)
                    .expect("faulted run heals"),
            )
        })
    });
    group.finish();

    // Quarantine demo: a poisoned shard must degrade the run with a
    // recorded note, never take it down (the bench panics otherwise).
    let shard0 = rock_core::shard_ranges(points.len(), 4)[0].clone();
    let mut poisoned = points.clone();
    poison_range(&mut poisoned, shard0, 9_999_999);
    let run = supervisor
        .run_with_plan(&poisoned, &PoisonedSimilarity { marker: 9_999_999 }, &ShardFaultSchedule::new())
        .expect("poisoned run degrades, not errors");
    let note = run
        .report
        .shard_notes
        .first()
        .expect("a poisoned shard must record a quarantine note");
    println!(
        "shard quarantine demo: shard {} dropped after {} attempt(s): {}",
        note.shard, note.attempts, note.reason
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_shard_merge
}
criterion_main!(benches);

//! Link-computation benchmarks (§4.4): the sparse Fig.-4 algorithm vs
//! the bit-packed adjacency-matrix square, across neighbor-graph
//! densities, plus the FxHash-vs-SipHash ablation for the link table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use rock_core::links::{compute_links_dense, compute_links_sparse};
use rock_core::neighbors::NeighborGraph;
use rock_core::similarity::{Jaccard, PointsWith};
use rock_data::{generate_baskets, SyntheticBasketSpec};
use std::collections::HashMap;
use std::hint::black_box;

fn sample_graph(n: usize, theta: f64) -> NeighborGraph {
    let spec = SyntheticBasketSpec::paper_scaled(0.02);
    let data = generate_baskets(&spec, &mut StdRng::seed_from_u64(7));
    let sample = &data.transactions[..n.min(data.transactions.len())];
    NeighborGraph::build(&PointsWith::new(sample, Jaccard), theta)
}

fn bench_sparse_vs_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("links");
    for &theta in &[0.3, 0.5, 0.7] {
        let graph = sample_graph(800, theta);
        group.bench_with_input(
            BenchmarkId::new("sparse_fig4", format!("theta={theta}")),
            &graph,
            |b, g| b.iter(|| black_box(compute_links_sparse(g))),
        );
        group.bench_with_input(
            BenchmarkId::new("dense_bitset", format!("theta={theta}")),
            &graph,
            |b, g| b.iter(|| black_box(compute_links_dense(g))),
        );
    }
    group.finish();
}

/// The hash ablation justifying the in-tree FxHasher (see
/// `rock_core::util::fxhash`): increment counters keyed by `(u32, u32)`
/// neighbor pairs with each hasher.
fn bench_hashers(c: &mut Criterion) {
    let graph = sample_graph(600, 0.5);
    let mut group = c.benchmark_group("link_table_hasher");
    group.bench_function("fxhash", |b| {
        b.iter(|| {
            let mut map: rock_core::util::FxHashMap<(u32, u32), u32> = Default::default();
            for i in 0..graph.len() {
                let nbrs = graph.neighbors(i);
                for (a, &x) in nbrs.iter().enumerate() {
                    for &y in &nbrs[a + 1..] {
                        *map.entry((x, y)).or_insert(0) += 1;
                    }
                }
            }
            black_box(map.len())
        })
    });
    group.bench_function("siphash", |b| {
        b.iter(|| {
            let mut map: HashMap<(u32, u32), u32> = HashMap::new();
            for i in 0..graph.len() {
                let nbrs = graph.neighbors(i);
                for (a, &x) in nbrs.iter().enumerate() {
                    for &y in &nbrs[a + 1..] {
                        *map.entry((x, y)).or_insert(0) += 1;
                    }
                }
            }
            black_box(map.len())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sparse_vs_dense, bench_hashers
}
criterion_main!(benches);

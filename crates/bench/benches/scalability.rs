//! Figure-5 style scalability benchmark: end-to-end ROCK clustering
//! (neighbors + links + merge loop) on random samples of the synthetic
//! basket data, across sample sizes and θ.
//!
//! This is the Criterion counterpart of
//! `cargo run -p bench --bin figure5_scalability`, sized so `cargo bench`
//! stays fast; the binary sweeps the paper's 1000–5000 range.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use rock_core::algorithm::{OutlierPolicy, RockAlgorithm};
use rock_core::goodness::{BasketF, Goodness, GoodnessKind};
use rock_core::neighbors::NeighborGraph;
use rock_core::points::Transaction;
use rock_core::similarity::{Jaccard, PointsWith};
use rock_data::{generate_baskets, SyntheticBasketSpec};
use std::hint::black_box;

fn pool() -> Vec<Transaction> {
    let spec = SyntheticBasketSpec::paper_scaled(0.02);
    generate_baskets(&spec, &mut StdRng::seed_from_u64(5))
        .transactions
}

fn bench_sizes(c: &mut Criterion) {
    let pool = pool();
    let mut group = c.benchmark_group("rock_end_to_end");
    for &n in &[250usize, 500, 1000] {
        let sample = &pool[..n];
        group.bench_with_input(BenchmarkId::new("size", n), &sample, |b, sample| {
            let goodness = Goodness::new(0.5, BasketF, GoodnessKind::Normalized);
            let algo = RockAlgorithm::new(goodness, 10, OutlierPolicy::default());
            b.iter(|| {
                let graph = NeighborGraph::build(&PointsWith::new(sample, Jaccard), 0.5);
                black_box(algo.run(&graph))
            })
        });
    }
    group.finish();
}

fn bench_thetas(c: &mut Criterion) {
    let pool = pool();
    let sample = &pool[..800];
    let mut group = c.benchmark_group("rock_theta");
    for &theta in &[0.5, 0.6, 0.7, 0.8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(theta),
            &theta,
            |b, &theta| {
                let goodness = Goodness::new(theta, BasketF, GoodnessKind::Normalized);
                let algo = RockAlgorithm::new(goodness, 10, OutlierPolicy::default());
                b.iter(|| {
                    let graph =
                        NeighborGraph::build(&PointsWith::new(sample, Jaccard), theta);
                    black_box(algo.run(&graph))
                })
            },
        );
    }
    group.finish();
}

fn bench_threads(c: &mut Criterion) {
    // End-to-end run at a fixed size across worker counts: neighbors,
    // links and the merge loop all behind `run_parallel` — bit-identical
    // output for every thread count, so this group measures speed only.
    let pool = pool();
    let sample = &pool[..800.min(pool.len())];
    let mut group = c.benchmark_group("rock_threads");
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let goodness = Goodness::new(0.5, BasketF, GoodnessKind::Normalized);
                let algo = RockAlgorithm::new(goodness, 10, OutlierPolicy::default());
                b.iter(|| {
                    let graph = NeighborGraph::build_parallel(
                        &PointsWith::new(sample, Jaccard),
                        0.5,
                        threads,
                    );
                    black_box(algo.run_parallel(&graph, threads))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sizes, bench_thetas, bench_threads
}
criterion_main!(benches);

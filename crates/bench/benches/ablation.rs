//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! * goodness normalisation (§4.2): normalized vs raw cross-link count —
//!   measured on *quality* (ARI against ground truth) as well as time;
//! * labeling fraction (§4.6): cost/quality of the disk-labeling phase;
//! * outlier pre-pruning: the cost of clustering with and without the
//!   isolated-point prune.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use rock_core::algorithm::{OutlierPolicy, RockAlgorithm};
use rock_core::goodness::{BasketF, Goodness, GoodnessKind};
use rock_core::neighbors::NeighborGraph;
use rock_core::similarity::{Jaccard, PointsWith};
use rock_data::{generate_baskets, SyntheticBasketSpec};
use std::hint::black_box;

fn bench_goodness_kinds(c: &mut Criterion) {
    let spec = SyntheticBasketSpec::paper_scaled(0.01);
    let data = generate_baskets(&spec, &mut StdRng::seed_from_u64(3));
    let graph = NeighborGraph::build(&PointsWith::new(&data.transactions, Jaccard), 0.5);
    let links = rock_core::links::compute_links_auto(&graph);

    // Quality side of the ablation, printed once: the raw-link criterion
    // lets large clusters swallow small ones (§4.2).
    for (name, kind) in [
        ("normalized", GoodnessKind::Normalized),
        ("raw", GoodnessKind::RawLinks),
    ] {
        let goodness = Goodness::new(0.5, BasketF, kind);
        let algo = RockAlgorithm::new(goodness, 10, OutlierPolicy::default());
        let run = algo.run_with_links(&graph, &links);
        let pred = run.clustering.assignments(data.transactions.len());
        let truth: Vec<usize> = data.labels.iter().map(|l| l.map_or(10, |c| c)).collect();
        let pred_flat: Vec<usize> = pred.iter().map(|p| p.map_or(99, |c| c)).collect();
        let ari = rock_eval::adjusted_rand_index(&pred_flat, &truth);
        eprintln!(
            "goodness={name}: {} clusters, ARI {ari:.3}",
            run.clustering.num_clusters()
        );
    }

    let mut group = c.benchmark_group("goodness_kind");
    for (name, kind) in [
        ("normalized", GoodnessKind::Normalized),
        ("raw", GoodnessKind::RawLinks),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &kind, |b, &kind| {
            let goodness = Goodness::new(0.5, BasketF, kind);
            let algo = RockAlgorithm::new(goodness, 10, OutlierPolicy::default());
            b.iter(|| black_box(algo.run_with_links(&graph, &links)))
        });
    }
    group.finish();
}

fn bench_outlier_pruning(c: &mut Criterion) {
    let spec = SyntheticBasketSpec::paper_scaled(0.01);
    let data = generate_baskets(&spec, &mut StdRng::seed_from_u64(4));
    let graph = NeighborGraph::build(&PointsWith::new(&data.transactions, Jaccard), 0.6);
    let mut group = c.benchmark_group("outlier_pruning");
    for (name, policy) in [
        ("prune_isolated", OutlierPolicy::default()),
        ("keep_everything", OutlierPolicy::disabled()),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &policy,
            |b, &policy| {
                let goodness = Goodness::new(0.6, BasketF, GoodnessKind::Normalized);
                let algo = RockAlgorithm::new(goodness, 10, policy);
                b.iter(|| black_box(algo.run(&graph)))
            },
        );
    }
    group.finish();
}

fn bench_labeling_fraction(c: &mut Criterion) {
    let spec = SyntheticBasketSpec::paper_scaled(0.02);
    let data = generate_baskets(&spec, &mut StdRng::seed_from_u64(6));
    let mut group = c.benchmark_group("labeling_fraction");
    for &fraction in &[0.1, 0.3, 1.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(fraction),
            &fraction,
            |b, &fraction| {
                let rock = rock_core::Rock::builder()
                    .theta(0.5)
                    .clusters(10)
                    .sample_size(400)
                    .labeling_fraction(fraction)
                    .seed(99)
                    .build()
                    .expect("valid");
                b.iter(|| black_box(rock.run(&data.transactions, &Jaccard)))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_goodness_kinds, bench_outlier_pruning, bench_labeling_fraction
}
criterion_main!(benches);

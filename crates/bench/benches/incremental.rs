//! Incremental-update benchmarks: arrival-batch absorb throughput and
//! bounded re-merge latency through an evolving model state
//! (`rock_core::incremental::IncrementalRockState`).
//!
//! Two policies isolate the two costs. `update_batch_64_calm` never
//! trips the staleness criterion, so each sample is pure §4.6 labeling
//! plus bookkeeping — the steady-state absorb cost per 64-point batch.
//! `update_batch_64_remerge_every` pins `max_pending` to 1, so every
//! sample also runs a full governed bounded re-merge over the dirty
//! clusters; the difference between the two means is the re-merge
//! latency an online caller pays when staleness trips.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use rock_core::governor::RunGovernor;
use rock_core::points::Transaction;
use rock_core::similarity::Jaccard;
use rock_core::{IncrementalRockState, ModelArtifact, Rock, RockModel, StalenessPolicy};
use std::hint::black_box;

const BATCH: usize = 64;

/// Fits the serve-bench model (paper_scaled(0.02), 10 clusters) and
/// draws a disjoint arrival stream from a second generator seed.
fn setup() -> (ModelArtifact, Vec<Vec<Transaction>>) {
    let fit_data = rock_data::generate_baskets(
        &rock_data::SyntheticBasketSpec::paper_scaled(0.02),
        &mut StdRng::seed_from_u64(12),
    );
    let rock = Rock::builder()
        .theta(0.5)
        .clusters(10)
        .sample_size(300)
        .labeling_fraction(0.3)
        .seed(42)
        .build()
        .expect("valid config");
    let model = RockModel::new(rock, Jaccard);
    let (_fit, artifact) = model
        .fit_artifact(&fit_data.transactions)
        .expect("bench data fits");

    let arrivals = rock_data::generate_baskets(
        &rock_data::SyntheticBasketSpec::paper_scaled(0.02),
        &mut StdRng::seed_from_u64(13),
    );
    let batches: Vec<Vec<Transaction>> = arrivals
        .transactions
        .chunks(BATCH)
        .map(|c| c.to_vec())
        .collect();
    (artifact, batches)
}

fn bench_incremental(c: &mut Criterion) {
    let (artifact, batches) = setup();
    let unlimited = RunGovernor::unlimited();

    // Staleness never trips: pure absorb cost. Representative pools are
    // capped, so per-batch cost stays steady as the state grows.
    let calm = StalenessPolicy {
        max_pending: u64::MAX,
        max_dirty_fraction: 1e18,
        ..StalenessPolicy::default()
    };
    // Staleness trips on every update: absorb + bounded re-merge.
    let eager = StalenessPolicy {
        max_pending: 1,
        ..StalenessPolicy::default()
    };

    let mut group = c.benchmark_group("incremental_update");
    let mut calm_state = IncrementalRockState::<Transaction>::from_artifact(&artifact, calm)
        .expect("artifact opens");
    let mut i = 0usize;
    group.bench_function("update_batch_64_calm", |b| {
        b.iter(|| {
            let batch = &batches[i % batches.len()];
            i = i.wrapping_add(1);
            black_box(
                calm_state
                    .update(batch, &Jaccard, &unlimited)
                    .expect("update"),
            )
        })
    });

    let mut eager_state = IncrementalRockState::<Transaction>::from_artifact(&artifact, eager)
        .expect("artifact opens");
    let mut j = 0usize;
    group.bench_function("update_batch_64_remerge_every", |b| {
        b.iter(|| {
            let batch = &batches[j % batches.len()];
            j = j.wrapping_add(1);
            black_box(
                eager_state
                    .update(batch, &Jaccard, &unlimited)
                    .expect("update"),
            )
        })
    });
    group.finish();

    // Demo: the provenance counters after the measured runs — the
    // eager state must actually have re-merged every update.
    let prov = eager_state.provenance();
    println!(
        "incremental demo: calm absorbed {} in {} updates; eager ran {} re-merges over {} updates",
        calm_state.provenance().points_absorbed,
        calm_state.provenance().updates_applied,
        prov.remerges,
        prov.updates_applied,
    );
    assert_eq!(
        prov.remerges, prov.updates_applied,
        "eager policy must re-merge on every update"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(200);
    targets = bench_incremental
}
criterion_main!(benches);

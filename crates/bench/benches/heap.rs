//! Addressable-heap benchmarks (§4.3): the price of addressability.
//!
//! Compares `rock_core::heap::AddressableHeap` push/pop against
//! `std::collections::BinaryHeap` (which cannot delete or update
//! arbitrary entries and therefore cannot drive the Fig.-3 merge loop),
//! plus the mixed workload the clustering loop actually generates.

use criterion::{criterion_group, criterion_main, Criterion};
use rock_core::heap::AddressableHeap;
use std::collections::BinaryHeap;
use std::hint::black_box;

/// Deterministic pseudo-random stream.
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

fn bench_push_pop(c: &mut Criterion) {
    let n = 10_000u32;
    let mut group = c.benchmark_group("heap_push_pop");
    group.bench_function("addressable", |b| {
        b.iter(|| {
            let mut h = AddressableHeap::with_capacity(n as usize);
            let mut s = 42u64;
            for k in 0..n {
                h.insert(k, (lcg(&mut s) % 1_000_000) as f64);
            }
            let mut out = 0.0;
            while let Some((_, p)) = h.pop() {
                out += p;
            }
            black_box(out)
        })
    });
    group.bench_function("std_binary_heap", |b| {
        b.iter(|| {
            let mut h = BinaryHeap::with_capacity(n as usize);
            let mut s = 42u64;
            for k in 0..n {
                h.push((lcg(&mut s) % 1_000_000, k));
            }
            let mut out = 0u64;
            while let Some((p, _)) = h.pop() {
                out += p;
            }
            black_box(out)
        })
    });
    group.finish();
}

fn bench_merge_loop_workload(c: &mut Criterion) {
    // The Fig.-3 access pattern: interleaved inserts, updates, removals
    // and pops over a shrinking key universe.
    c.bench_function("heap_merge_workload", |b| {
        b.iter(|| {
            let mut h = AddressableHeap::with_capacity(4096);
            let mut s = 7u64;
            for k in 0..4096u32 {
                h.insert(k, (lcg(&mut s) % 1000) as f64);
            }
            for _ in 0..20_000 {
                match lcg(&mut s) % 4 {
                    0 => {
                        let k = (lcg(&mut s) % 4096) as u32;
                        h.insert(k, (lcg(&mut s) % 1000) as f64);
                    }
                    1 => {
                        let k = (lcg(&mut s) % 4096) as u32;
                        h.remove(&k);
                    }
                    2 => {
                        h.pop();
                    }
                    _ => {
                        let k = (lcg(&mut s) % 4096) as u32;
                        black_box(h.priority(&k));
                    }
                }
            }
            black_box(h.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_push_pop, bench_merge_loop_workload
}
criterion_main!(benches);

//! Labeling-phase benchmarks (§4.6): cost of assigning the full data set
//! from the Lᵢ sets, serial vs parallel, across labeling fractions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use rock_core::labeling::Labeler;
use rock_core::similarity::Jaccard;
use rock_core::Rock;
use rock_data::{generate_baskets, SyntheticBasketSpec};
use std::hint::black_box;

fn setup() -> (rock_data::SyntheticBasketData, Labeler<rock_core::points::Transaction>) {
    let data = generate_baskets(
        &SyntheticBasketSpec::paper_scaled(0.05),
        &mut StdRng::seed_from_u64(12),
    );
    let rock = Rock::builder()
        .theta(0.5)
        .clusters(10)
        .build()
        .expect("valid");
    let idx = rock_core::sampling::sample_indices(
        data.transactions.len(),
        600,
        &mut StdRng::seed_from_u64(13),
    );
    let sample: Vec<_> = idx.iter().map(|&i| data.transactions[i].clone()).collect();
    let run = rock.cluster(&sample, &Jaccard);
    let labeler = Labeler::new(
        &sample,
        &run.clustering.clusters,
        0.3,
        0.5,
        1.0 / 3.0,
        &mut StdRng::seed_from_u64(14),
    )
    .expect("bench setup uses a valid labeling fraction");
    (data, labeler)
}

fn bench_threads(c: &mut Criterion) {
    let (data, labeler) = setup();
    let mut group = c.benchmark_group("labeling_threads");
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(labeler.label_all_parallel(&data.transactions, &Jaccard, threads))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_threads
}
criterion_main!(benches);

//! Neighbor-graph construction benchmarks: the O(n²) pairwise scan,
//! serial vs crossbeam-parallel, and the cost dependence on θ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use rock_core::neighbors::NeighborGraph;
use rock_core::points::Transaction;
use rock_core::similarity::{Jaccard, PointsWith};
use rock_data::{generate_baskets, SyntheticBasketSpec};
use std::hint::black_box;

fn sample(n: usize) -> Vec<Transaction> {
    let spec = SyntheticBasketSpec::paper_scaled(0.02);
    let data = generate_baskets(&spec, &mut StdRng::seed_from_u64(11));
    data.transactions[..n.min(data.transactions.len())].to_vec()
}

fn bench_serial_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbors_serial");
    for &n in &[250usize, 500, 1000] {
        let pts = sample(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| {
                black_box(NeighborGraph::build(
                    &PointsWith::new(pts, Jaccard),
                    0.5,
                ))
            })
        });
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let pts = sample(1200);
    let mut group = c.benchmark_group("neighbors_threads");
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(NeighborGraph::build_parallel(
                        &PointsWith::new(&pts, Jaccard),
                        0.5,
                        threads,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serial_sizes, bench_parallel
}
criterion_main!(benches);

//! Serving-path benchmarks: assign latency through a saved-then-loaded
//! model artifact (`rock_core::serve::AssignService`).
//!
//! The `single_query` benchmark is the one that matters operationally —
//! its p99 is the tail assign latency a caller sees per query. The
//! `deadline_degraded` variant pins the batch deadline to zero so every
//! sample exercises the centroid degradation ladder; the demo run after
//! the group prints the resulting `ServeReport` note.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use rock_core::points::Transaction;
use rock_core::serve::{AssignService, ServeConfig, ServeDegradation};
use rock_core::similarity::Jaccard;
use rock_core::{ModelArtifact, Rock, RockModel};
use rock_data::{generate_baskets, SyntheticBasketSpec};
use std::hint::black_box;
use std::time::Duration;

/// Fits a sampled ROCK model, round-trips it through the on-disk
/// artifact, and returns the reloaded artifact plus query points.
fn setup() -> (ModelArtifact, Vec<Transaction>) {
    let data = generate_baskets(
        &SyntheticBasketSpec::paper_scaled(0.02),
        &mut StdRng::seed_from_u64(12),
    );
    let rock = Rock::builder()
        .theta(0.5)
        .clusters(10)
        .sample_size(300)
        .labeling_fraction(0.3)
        .seed(42)
        .build()
        .expect("valid config");
    let model = RockModel::new(rock, Jaccard);
    let (_fit, artifact) = model
        .fit_artifact(&data.transactions)
        .expect("bench data fits");

    let path = std::env::temp_dir().join(format!("rock-serve-bench-{}.rockart", std::process::id()));
    artifact.save(&path).expect("artifact save");
    let loaded = ModelArtifact::load(&path).expect("artifact load");
    std::fs::remove_file(&path).ok();
    (loaded, data.transactions)
}

fn bench_serve(c: &mut Criterion) {
    let (artifact, queries) = setup();
    let service: AssignService<Transaction, Jaccard> =
        AssignService::new(&artifact, Jaccard, ServeConfig::default()).expect("service");
    let degraded_config = ServeConfig {
        batch_deadline: Some(Duration::ZERO),
        degradation: ServeDegradation::Centroid,
        ..ServeConfig::default()
    };
    let degraded: AssignService<Transaction, Jaccard> =
        AssignService::new(&artifact, Jaccard, degraded_config).expect("service");
    let batch: Vec<Transaction> = queries.iter().take(256).cloned().collect();

    let mut group = c.benchmark_group("serve_assign");
    // Per-query tail latency: each sample assigns one (rotating) query,
    // so the harness p99 IS the p99 assign latency.
    let mut i = 0usize;
    group.bench_function("single_query", |b| {
        b.iter(|| {
            let q = std::slice::from_ref(&queries[i % queries.len()]);
            i = i.wrapping_add(1);
            black_box(service.assign_batch(q).expect("assign"))
        })
    });
    group.bench_function("batch_256_full_reps", |b| {
        b.iter(|| black_box(service.assign_batch(&batch).expect("assign")))
    });
    group.bench_function("batch_256_deadline_degraded", |b| {
        b.iter(|| black_box(degraded.assign_batch(&batch).expect("assign")))
    });
    group.finish();

    // Degradation demo: a zero deadline must trip the centroid ladder,
    // and the ServeReport must say so.
    let report = degraded.assign_batch(&batch).expect("assign").report;
    let note = report
        .degraded
        .expect("zero batch deadline must record a degradation note");
    println!("serve degradation demo: {note}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(200);
    targets = bench_serve
}
criterion_main!(benches);

//! Sequential-vs-parallel regression bench for the PR-2 kernel engine,
//! on the §5.3 synthetic market-basket generator.
//!
//! Four stages of the pipeline are measured, each as `seq` (the reference
//! single-thread path) against `parN` (the rayon kernels at N workers):
//!
//! * `neighbors` — the O(n²) θ-neighbor scan, over both the per-pair
//!   sorted-merge `Transaction` substrate and the bit-packed
//!   [`PackedBaskets`] popcount rows;
//! * `links_sparse` — the Fig.-4 link computation: legacy hashmap
//!   reference vs the sharded pair-stream CSR kernel;
//! * `links_dense` — the §4.4 boolean-A² path: blocked popcount squaring;
//! * `labeling` — the §4.6 disk-labeling scan, partitioned across workers.
//!
//! `scripts/bench_snapshot.sh` runs this bench with `BENCH_JSON` set and
//! packages the records into `BENCH_rock.json` (see DESIGN.md,
//! "Performance model", for how to read it). All parallel paths are
//! bit-identical to sequential by construction, so the ids here only vary
//! in speed, never in output — enforced by `tests/parallel_determinism.rs`
//! and `tests/kernel_invariance.rs`.
//!
//! Every id declares its worker-thread count, so the harness can mark
//! records measured with more threads than host CPUs as oversubscribed
//! (see the criterion shim's thread-count honesty notes). The process
//! also runs under a counting allocator that feeds
//! [`rock_core::perf::count_allocs`]; the `perf_footer` pseudo-target
//! prints the accumulated work counters after the last group so a
//! snapshot records how much the kernels allocated.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use rand::{rngs::StdRng, SeedableRng};
use rock_core::labeling::Labeler;
use rock_core::links::compute_links_sparse;
use rock_core::links_matrix::LinkMatrix;
use rock_core::neighbors::NeighborGraph;
use rock_core::points::Transaction;
use rock_core::similarity::{Jaccard, PointsWith};
use rock_data::packed::PackedBaskets;
use rock_data::{generate_baskets, SyntheticBasketSpec};
use std::hint::black_box;

const THETA: f64 = 0.5;
const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

/// System-allocator wrapper that counts every heap allocation into the
/// rock-core perf counters, so bench snapshots can report how much the
/// kernels allocate (the hot loops are expected to allocate nothing —
/// rock-tidy's `kernel-alloc` rule enforces it statically, this
/// measures it dynamically).
struct CountingAlloc;

// SAFETY: a pass-through to the system allocator. The bookkeeping is
// two relaxed atomic adds, which never allocate or unwind, so the
// GlobalAlloc contract is inherited unchanged from `System`.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: counts, then forwards the caller's layout to `System`
    // unchanged; the atomic add cannot allocate or unwind.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        rock_core::perf::count_allocs(1, layout.size() as u64);
        System.alloc(layout)
    }

    // SAFETY: forwards a pointer/layout pair that came from the matching
    // `alloc` above straight to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn pool() -> Vec<Transaction> {
    // ~5.7k transactions of the paper's §5.3 distribution.
    let spec = SyntheticBasketSpec::paper_scaled(0.05);
    generate_baskets(&spec, &mut StdRng::seed_from_u64(42)).transactions
}

fn bench_neighbors(c: &mut Criterion) {
    let pool = pool();
    let sample = &pool[..1500.min(pool.len())];
    let packed = PackedBaskets::new(sample);
    let mut group = c.benchmark_group("neighbors");
    group.bench_function(BenchmarkId::from("transactions_seq").threads(1), |b| {
        let points = PointsWith::new(sample, Jaccard);
        b.iter(|| black_box(NeighborGraph::build(&points, THETA)))
    });
    group.bench_function(BenchmarkId::from("packed_seq").threads(1), |b| {
        b.iter(|| black_box(NeighborGraph::build(&packed, THETA)))
    });
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("packed_par", threads).threads(threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(NeighborGraph::build_parallel(&packed, THETA, threads)))
            },
        );
    }
    group.finish();
}

fn bench_links(c: &mut Criterion) {
    let pool = pool();
    let sample = &pool[..1500.min(pool.len())];
    let graph = NeighborGraph::build(&PackedBaskets::new(sample), THETA);

    let mut sparse = c.benchmark_group("links_sparse");
    sparse.bench_function(BenchmarkId::from("reference_hashmap").threads(1), |b| {
        b.iter(|| black_box(compute_links_sparse(&graph)))
    });
    sparse.bench_function(BenchmarkId::from("csr_seq").threads(1), |b| {
        b.iter(|| black_box(LinkMatrix::compute_sparse(&graph, 1)))
    });
    for threads in THREAD_COUNTS {
        sparse.bench_with_input(
            BenchmarkId::new("csr_par", threads).threads(threads),
            &threads,
            |b, &threads| b.iter(|| black_box(LinkMatrix::compute_sparse(&graph, threads))),
        );
    }
    sparse.finish();

    let mut dense = c.benchmark_group("links_dense");
    dense.bench_function(BenchmarkId::from("csr_seq").threads(1), |b| {
        b.iter(|| black_box(LinkMatrix::compute_dense(&graph, 1)))
    });
    for threads in THREAD_COUNTS {
        dense.bench_with_input(
            BenchmarkId::new("csr_par", threads).threads(threads),
            &threads,
            |b, &threads| b.iter(|| black_box(LinkMatrix::compute_dense(&graph, threads))),
        );
    }
    dense.finish();
}

fn bench_labeling(c: &mut Criterion) {
    let pool = pool();
    // Cluster a 500-point sample, then label the whole pool against it —
    // the Fig.-2 shape of the labeling phase.
    let sample = &pool[..500.min(pool.len())];
    let clusters: Vec<Vec<u32>> = vec![
        (0..sample.len() as u32 / 2).collect(),
        (sample.len() as u32 / 2..sample.len() as u32).collect(),
    ];
    let labeler = Labeler::full(sample, &clusters, THETA, 1.0 / 3.0);
    let mut group = c.benchmark_group("labeling");
    group.bench_function(BenchmarkId::from("seq").threads(1), |b| {
        b.iter(|| black_box(labeler.label_all(&pool, &Jaccard)))
    });
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("par", threads).threads(threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(labeler.label_all_parallel(&pool, &Jaccard, threads)))
            },
        );
    }
    group.finish();
}

/// Not a benchmark: prints the perf counters the preceding groups
/// accumulated (pairs emitted, bytes touched, similarity evaluations,
/// scratch reuse, and the counting allocator's totals).
fn perf_footer(_c: &mut Criterion) {
    println!("perf totals: {}", rock_core::perf::snapshot());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_neighbors, bench_links, bench_labeling, perf_footer
}
criterion_main!(benches);

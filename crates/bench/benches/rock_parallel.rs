//! Sequential-vs-parallel regression bench for the PR-2 kernel engine,
//! on the §5.3 synthetic market-basket generator.
//!
//! Four stages of the pipeline are measured, each as `seq` (the reference
//! single-thread path) against `parN` (the rayon kernels at N workers):
//!
//! * `neighbors` — the O(n²) θ-neighbor scan, over both the per-pair
//!   sorted-merge `Transaction` substrate and the bit-packed
//!   [`PackedBaskets`] popcount rows;
//! * `links_sparse` — the Fig.-4 link computation: legacy hashmap
//!   reference vs the sharded pair-stream CSR kernel;
//! * `links_dense` — the §4.4 boolean-A² path: blocked popcount squaring;
//! * `labeling` — the §4.6 disk-labeling scan, partitioned across workers.
//!
//! `scripts/bench_snapshot.sh` runs this bench with `BENCH_JSON` set and
//! packages the records into `BENCH_rock.json` (see DESIGN.md,
//! "Performance model", for how to read it). All parallel paths are
//! bit-identical to sequential by construction, so the ids here only vary
//! in speed, never in output — enforced by `tests/parallel_determinism.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use rock_core::labeling::Labeler;
use rock_core::links::compute_links_sparse;
use rock_core::links_matrix::LinkMatrix;
use rock_core::neighbors::NeighborGraph;
use rock_core::points::Transaction;
use rock_core::similarity::{Jaccard, PointsWith};
use rock_data::packed::PackedBaskets;
use rock_data::{generate_baskets, SyntheticBasketSpec};
use std::hint::black_box;

const THETA: f64 = 0.5;
const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

fn pool() -> Vec<Transaction> {
    // ~5.7k transactions of the paper's §5.3 distribution.
    let spec = SyntheticBasketSpec::paper_scaled(0.05);
    generate_baskets(&spec, &mut StdRng::seed_from_u64(42)).transactions
}

fn bench_neighbors(c: &mut Criterion) {
    let pool = pool();
    let sample = &pool[..1500.min(pool.len())];
    let packed = PackedBaskets::new(sample);
    let mut group = c.benchmark_group("neighbors");
    group.bench_function("transactions_seq", |b| {
        let points = PointsWith::new(sample, Jaccard);
        b.iter(|| black_box(NeighborGraph::build(&points, THETA)))
    });
    group.bench_function("packed_seq", |b| {
        b.iter(|| black_box(NeighborGraph::build(&packed, THETA)))
    });
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("packed_par", threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(NeighborGraph::build_parallel(&packed, THETA, threads)))
            },
        );
    }
    group.finish();
}

fn bench_links(c: &mut Criterion) {
    let pool = pool();
    let sample = &pool[..1500.min(pool.len())];
    let graph = NeighborGraph::build(&PackedBaskets::new(sample), THETA);

    let mut sparse = c.benchmark_group("links_sparse");
    sparse.bench_function("reference_hashmap", |b| {
        b.iter(|| black_box(compute_links_sparse(&graph)))
    });
    sparse.bench_function("csr_seq", |b| {
        b.iter(|| black_box(LinkMatrix::compute_sparse(&graph, 1)))
    });
    for threads in THREAD_COUNTS {
        sparse.bench_with_input(
            BenchmarkId::new("csr_par", threads),
            &threads,
            |b, &threads| b.iter(|| black_box(LinkMatrix::compute_sparse(&graph, threads))),
        );
    }
    sparse.finish();

    let mut dense = c.benchmark_group("links_dense");
    dense.bench_function("csr_seq", |b| {
        b.iter(|| black_box(LinkMatrix::compute_dense(&graph, 1)))
    });
    for threads in THREAD_COUNTS {
        dense.bench_with_input(
            BenchmarkId::new("csr_par", threads),
            &threads,
            |b, &threads| b.iter(|| black_box(LinkMatrix::compute_dense(&graph, threads))),
        );
    }
    dense.finish();
}

fn bench_labeling(c: &mut Criterion) {
    let pool = pool();
    // Cluster a 500-point sample, then label the whole pool against it —
    // the Fig.-2 shape of the labeling phase.
    let sample = &pool[..500.min(pool.len())];
    let clusters: Vec<Vec<u32>> = vec![
        (0..sample.len() as u32 / 2).collect(),
        (sample.len() as u32 / 2..sample.len() as u32).collect(),
    ];
    let labeler = Labeler::full(sample, &clusters, THETA, 1.0 / 3.0);
    let mut group = c.benchmark_group("labeling");
    group.bench_function("seq", |b| {
        b.iter(|| black_box(labeler.label_all(&pool, &Jaccard)))
    });
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("par", threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(labeler.label_all_parallel(&pool, &Jaccard, threads)))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_neighbors, bench_links, bench_labeling
}
criterion_main!(benches);

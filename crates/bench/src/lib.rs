//! Shared harness for the experiment binaries that regenerate the
//! paper's tables and figures.
//!
//! Each binary under `src/bin/` reproduces one table or figure; this
//! library holds the common pieces: a minimal flag parser, aligned table
//! printing, wall-clock timing, and the standard ROCK-vs-traditional
//! drivers over categorical records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rock_core::engine::{ClusterModel, ModelFit};
use rock_core::error::RockError;
use rock_core::goodness::GoodnessKind;
use rock_core::points::CategoricalRecord;
use rock_core::similarity::{CategoricalJaccard, MissingPolicy};
use rock_core::{Clustering, Rock, RockRun};
use rock_eval::ModelScore;
use std::time::Instant;

/// A tiny `--flag value` / `--flag` parser for the experiment binaries.
#[derive(Debug, Default)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments (skipping the binary name).
    pub fn from_env() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from explicit strings (for tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Args { raw }
    }

    /// Whether `--name` is present.
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == &format!("--{name}"))
    }

    /// The value following `--name`, parsed, or `default`.
    ///
    /// # Panics
    /// Panics with a readable message if the value fails to parse.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        let key = format!("--{name}");
        for (i, a) in self.raw.iter().enumerate() {
            if a == &key {
                let v = self
                    .raw
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("missing value for {key}"));
                return v
                    .parse()
                    .unwrap_or_else(|e| panic!("bad value for {key}: {e}"));
            }
        }
        default
    }
}

/// Prints a header followed by aligned rows (column widths derived from
/// content).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (w, cell) in widths.iter().zip(cells) {
            s.push_str(&format!("{cell:>w$}  ", w = w));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths
        .iter()
        .map(|w| "-".repeat(*w))
        .collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Runs `f` and returns its result with the elapsed wall-clock seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// One generically-driven model fit: the fit itself, its quality scores
/// against ground truth, and the wall-clock seconds it took.
#[derive(Debug)]
pub struct ModelRun {
    /// The model's self-reported name.
    pub name: &'static str,
    /// The fitted clustering, dendrogram (if any) and run report.
    pub fit: ModelFit,
    /// External quality indices vs ground truth.
    pub score: ModelScore,
    /// Wall-clock seconds of the fit.
    pub seconds: f64,
}

/// Fits any [`ClusterModel`] on `data`, scores it against `truth` and
/// times the fit — the uniform driver for ROCK-vs-baseline comparisons.
///
/// # Errors
/// Whatever the model's `fit` surfaces (an interrupted governor, invalid
/// labeling parameters, …).
pub fn run_model<D: ?Sized, M: ClusterModel<D>>(
    model: &M,
    data: &D,
    truth: &[Option<usize>],
) -> Result<ModelRun, RockError> {
    let (result, seconds) = timed(|| model.fit(data));
    let fit = result?;
    let score = rock_eval::score_fit(&fit, truth);
    Ok(ModelRun {
        name: model.name(),
        fit,
        score,
        seconds,
    })
}

/// Renders a [`ModelRun`] as one [`print_table`] row: name, cluster
/// count, outliers, misclassified, ARI, seconds.
pub fn model_row(run: &ModelRun) -> Vec<String> {
    vec![
        run.name.to_owned(),
        run.score.num_clusters.to_string(),
        run.score.outliers.to_string(),
        run.score.misclassification.misclassified.to_string(),
        format!("{:.3}", run.score.ari),
        format!("{:.3}", run.seconds),
    ]
}

/// Runs ROCK over categorical records with the paper's standard setup
/// (§5: categorical Jaccard similarity, `f(θ) = (1−θ)/(1+θ)`).
///
/// `weed` optionally enables §4.6 mid-flight outlier weeding as
/// `(stop multiple of k, minimum cluster size)`.
pub fn rock_on_records(
    records: &[CategoricalRecord],
    theta: f64,
    k: usize,
    policy: MissingPolicy,
    kind: GoodnessKind,
    threads: usize,
    weed: Option<(f64, usize)>,
) -> RockRun {
    let mut builder = Rock::builder()
        .theta(theta)
        .clusters(k)
        .goodness_kind(kind)
        .threads(threads);
    if let Some((multiple, min_size)) = weed {
        builder = builder.weed_outliers(multiple, min_size);
    }
    let rock = builder.build().expect("valid config");
    rock.cluster(records, &CategoricalJaccard::new(policy))
}

/// Formats a contingency comparison the way the paper's Tables 2/3 read:
/// one row per cluster with per-class counts.
pub fn contingency_rows(
    clustering: &Clustering,
    truth: &[usize],
    class_names: &[&str],
) -> Vec<Vec<String>> {
    let pred = clustering.assignments(truth.len());
    let table = rock_eval::ContingencyTable::new(&pred, truth);
    let mut rows = Vec::new();
    for c in 0..table.num_clusters() {
        let mut row = vec![(c + 1).to_string()];
        for t in 0..class_names.len() {
            row.push(if t < table.num_classes() {
                table.count(c, t).to_string()
            } else {
                "0".to_owned()
            });
        }
        rows.push(row);
    }
    if table.outlier_row().iter().any(|&c| c > 0) {
        let mut row = vec!["outliers".to_owned()];
        for t in 0..class_names.len() {
            row.push(
                table
                    .outlier_row()
                    .get(t)
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
            );
        }
        rows.push(row);
    }
    rows
}

/// Number of worker threads to use by default: all cores minus one.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_flags_and_values() {
        let a = Args::from_vec(vec![
            "--scale".into(),
            "0.5".into(),
            "--profiles".into(),
            "--theta".into(),
            "0.8".into(),
        ]);
        assert!(a.flag("profiles"));
        assert!(!a.flag("full"));
        assert_eq!(a.get::<f64>("scale", 1.0), 0.5);
        assert_eq!(a.get::<f64>("theta", 0.73), 0.8);
        assert_eq!(a.get::<u64>("seed", 42), 42);
    }

    #[test]
    fn contingency_rows_shape() {
        let clustering = Clustering::new(vec![vec![0, 1], vec![2]], vec![3]);
        let truth = vec![0, 0, 1, 1];
        let rows = contingency_rows(&clustering, &truth, &["A", "B"]);
        assert_eq!(rows.len(), 3); // 2 clusters + outlier row
        assert_eq!(rows[0], vec!["1", "2", "0"]);
        assert_eq!(rows[1], vec!["2", "0", "1"]);
        assert_eq!(rows[2], vec!["outliers", "0", "1"]);
    }

    #[test]
    #[should_panic(expected = "bad value")]
    fn bad_value_panics() {
        let a = Args::from_vec(vec!["--scale".into(), "abc".into()]);
        let _ = a.get::<f64>("scale", 1.0);
    }

    #[test]
    fn run_model_times_and_scores() {
        use rock_baselines::{CentroidConfig, CentroidModel};
        let vectors: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![if i < 5 { 0.0 } else { 8.0 }, (i % 2) as f64 * 0.1])
            .collect();
        let truth: Vec<Option<usize>> = (0..10).map(|i| Some(usize::from(i >= 5))).collect();
        let model = CentroidModel::new(CentroidConfig::plain(2));
        let run = run_model(&model, &vectors[..], &truth).expect("unlimited fit");
        assert_eq!(run.name, "centroid");
        assert_eq!(run.score.misclassification.misclassified, 0);
        assert_eq!(run.score.ari, 1.0);
        assert!(run.seconds >= 0.0);
        let row = model_row(&run);
        assert_eq!(row.len(), 6);
        assert_eq!(row[0], "centroid");
    }
}

//! Table 2: clustering quality on the Congressional-votes data —
//! traditional centroid-based hierarchical clustering vs ROCK (θ = 0.73,
//! k = 2).
//!
//! With `--profiles`, also prints the Table-7-style frequent-value
//! characterisation of the two ROCK clusters.
//!
//! ```text
//! cargo run --release -p bench --bin table2_votes [--profiles] \
//!     [--theta 0.73] [--seed N] [--votes-file house-votes-84.data]
//! ```

use bench::{contingency_rows, print_table, rock_on_records, Args};
use rand::{rngs::StdRng, SeedableRng};
use rock_baselines::{centroid_hierarchical, records_to_vectors, CentroidConfig};
use rock_core::goodness::GoodnessKind;
use rock_core::similarity::MissingPolicy;
use rock_data::{generate_votes, Party, VotesSpec};
use rock_eval::cluster_profiles;

fn main() {
    let args = Args::from_env();
    let theta: f64 = args.get("theta", 0.73);
    let seed: u64 = args.get("seed", 1984);
    let file: String = args.get("votes-file", String::new());

    let data = if file.is_empty() {
        generate_votes(&VotesSpec::paper(), &mut StdRng::seed_from_u64(seed))
    } else {
        rock_data::parse_votes(&std::fs::read_to_string(&file).expect("read votes file"))
            .expect("parse votes file")
    };
    let truth: Vec<usize> = data
        .labels
        .iter()
        .map(|p| usize::from(*p == Party::Democrat))
        .collect();
    let class_names = ["No of Republicans", "No of Democrats"];

    // Traditional algorithm (§5): boolean 0/1 encoding, Euclidean
    // centroid distance, singletons weeded at n/3.
    let vectors = records_to_vectors(&data.records, &data.schema);
    let traditional = centroid_hierarchical(&vectors, CentroidConfig::paper(2));
    let mut header = vec!["Cluster No"];
    header.extend(class_names);
    print_table(
        "Table 2a: Traditional Hierarchical Clustering Algorithm",
        &header,
        &contingency_rows(&traditional, &truth, &class_names),
    );

    // ROCK at θ = 0.73 with §4.6 outlier handling: weed clusters with
    // fewer than 5 members once 3·k clusters remain (the paper eliminates
    // some records as outliers; cluster sizes don't sum to 435).
    let run = rock_on_records(
        &data.records,
        theta,
        2,
        MissingPolicy::Ignore,
        GoodnessKind::Normalized,
        1,
        Some((3.0, 5)),
    );
    print_table(
        &format!("Table 2b: ROCK (theta = {theta})"),
        &header,
        &contingency_rows(&run.clustering, &truth, &class_names),
    );

    let pred = run.clustering.assignments(truth.len());
    let table = rock_eval::ContingencyTable::new(&pred, &truth);
    println!(
        "\nROCK purity {:.3} over {} clustered records ({} outliers removed).",
        table.purity(),
        table.total_clustered(),
        run.clustering.outliers.len()
    );
    let tpred = traditional.assignments(truth.len());
    let ttable = rock_eval::ContingencyTable::new(&tpred, &truth);
    println!(
        "Traditional purity {:.3} over {} clustered records.",
        ttable.purity(),
        ttable.total_clustered()
    );
    println!(
        "Paper reference: traditional cluster 1 = 157 R / 52 D, cluster 2 = 11 R / 215 D; \
         ROCK cluster 1 = 144 R / 22 D, cluster 2 = 5 R / 201 D."
    );

    if args.flag("profiles") {
        // Table 7: frequent values of the two clusters.
        let profiles = cluster_profiles(&data.records, &data.schema, &run.clustering.clusters, 0.5);
        for (i, p) in profiles.iter().enumerate() {
            println!("\nCluster {} ({} members):", i + 1, p.size);
            println!("{}", p.render(&data.schema));
        }
    }
}

//! Table 6: misclassified transactions vs random-sample size on the
//! synthetic basket data, for θ = 0.5 and θ = 0.6 (§5.4).
//!
//! Runs the full Fig.-2 pipeline — sample, cluster the sample, label the
//! whole data set — and counts misclassifications against ground truth
//! under the optimal cluster matching. The paper's values (full-size
//! data set): θ=0.5 → 37, 0, 0, 0, 0 and θ=0.6 → 8123, 1051, 384, 104, 8
//! for samples of 1000..5000.
//!
//! The default `--scale 0.25` keeps the demo fast (~28.6k transactions,
//! sample sizes scaled by the same factor); use `--scale 1` for the
//! paper-size run.
//!
//! ```text
//! cargo run --release -p bench --bin table6_misclassification -- \
//!     [--scale 0.25] [--seed N]
//! ```

use bench::{default_threads, print_table, timed, Args};
use rand::{rngs::StdRng, SeedableRng};
use rock_core::goodness::GoodnessKind;
use rock_core::similarity::Jaccard;
use rock_core::Rock;
use rock_data::{generate_baskets, SyntheticBasketSpec};
use rock_eval::count_misclassified;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.25);
    let seed: u64 = args.get("seed", 114586);
    let spec = if (scale - 1.0).abs() < 1e-9 {
        SyntheticBasketSpec::paper()
    } else {
        SyntheticBasketSpec::paper_scaled(scale)
    };
    let data = generate_baskets(&spec, &mut StdRng::seed_from_u64(seed));
    let k = spec.num_clusters();
    println!(
        "{} transactions, {} clusters + outliers; sample sizes scaled by {scale}",
        data.transactions.len(),
        k
    );

    let sample_sizes: Vec<usize> = [1000usize, 2000, 3000, 4000, 5000]
        .iter()
        .map(|&s| ((s as f64 * scale).round() as usize).max(10 * k))
        .collect();
    let thetas = [0.5, 0.6];

    let mut rows = Vec::new();
    for &sample in &sample_sizes {
        let mut row = vec![sample.to_string()];
        for &theta in &thetas {
            let rock = Rock::builder()
                .theta(theta)
                .clusters(k)
                .goodness_kind(GoodnessKind::Normalized)
                .sample_size(sample)
                .labeling_fraction(0.3)
                .weed_outliers(3.0, sample / (k * 10).max(1))
                .threads(default_threads())
                .seed(seed ^ sample as u64 ^ (theta * 10.0) as u64)
                .build()
                .expect("valid config");
            let (result, secs) = timed(|| rock.run(&data.transactions, &Jaccard));
            let m = count_misclassified(&result.labeling.assignments, &data.labels);
            row.push(format!("{} ({secs:.1}s)", m.misclassified));
        }
        rows.push(row);
    }
    print_table(
        "Table 6: misclassified transactions (full data set, after labeling)",
        &["Sample Size", "theta = 0.5", "theta = 0.6"],
        &rows,
    );
    println!(
        "\nPaper reference (114,586 transactions): theta 0.5 → 37, 0, 0, 0, 0; \
         theta 0.6 → 8123, 1051, 384, 104, 8. The shape to reproduce: quality \
         improves with sample size, and theta = 0.5 needs a smaller sample than \
         theta = 0.6 because cluster items overlap 40% and transactions are small."
    );
}

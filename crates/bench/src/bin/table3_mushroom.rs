//! Table 3: clustering quality on the mushroom data — traditional
//! centroid-based hierarchical clustering vs ROCK (θ = 0.8, k = 20).
//!
//! The headline result: ROCK finds (almost all) *pure* clusters with
//! strongly non-uniform sizes and stops at 21 clusters when links run
//! out; the traditional algorithm produces impure, uniformly sized
//! clusters.
//!
//! `--profiles` prints the Table-8/9-style characterisation of the
//! largest edible and poisonous clusters. `--goodness raw` runs the §4.2
//! ablation (cross-link count without the expected-links normalisation).
//! `--scale 0.25` runs on a proportionally smaller generated data set
//! (the default is the full 8,124 records; the traditional comparator is
//! the slow part).
//!
//! ```text
//! cargo run --release -p bench --bin table3_mushroom -- \
//!     [--scale 1.0] [--theta 0.8] [--k 20] [--profiles] \
//!     [--goodness normalized|raw] [--skip-traditional] \
//!     [--mushroom-file agaricus-lepiota.data]
//! ```

use bench::{contingency_rows, default_threads, print_table, rock_on_records, timed, Args};
use rand::{rngs::StdRng, SeedableRng};
use rock_baselines::{centroid_hierarchical, records_to_vectors, CentroidConfig};
use rock_core::goodness::GoodnessKind;
use rock_core::similarity::MissingPolicy;
use rock_data::{generate_mushrooms, Edibility, MushroomSpec};
use rock_eval::{cluster_profiles, ContingencyTable};

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 1.0);
    let theta: f64 = args.get("theta", 0.8);
    let k: usize = args.get("k", 20);
    let seed: u64 = args.get("seed", 8124);
    let goodness: String = args.get("goodness", "normalized".to_owned());
    let file: String = args.get("mushroom-file", String::new());

    let data = if file.is_empty() {
        let spec = if (scale - 1.0).abs() < 1e-9 {
            MushroomSpec::paper()
        } else {
            MushroomSpec::paper_scaled(scale)
        };
        generate_mushrooms(&spec, &mut StdRng::seed_from_u64(seed))
    } else {
        rock_data::parse_mushrooms(&std::fs::read_to_string(&file).expect("read mushroom file"))
            .expect("parse mushroom file")
    };
    println!(
        "{} records ({} edible, {} poisonous)",
        data.records.len(),
        data.labels.iter().filter(|e| **e == Edibility::Edible).count(),
        data.labels.iter().filter(|e| **e == Edibility::Poisonous).count()
    );
    let truth: Vec<usize> = data
        .labels
        .iter()
        .map(|e| usize::from(*e == Edibility::Poisonous))
        .collect();
    let class_names = ["No of Edible", "No of Poisonous"];
    let mut header = vec!["Cluster No"];
    header.extend(class_names);

    if !args.flag("skip-traditional") {
        let vectors = records_to_vectors(&data.records, &data.schema);
        let (traditional, secs) =
            timed(|| centroid_hierarchical(&vectors, CentroidConfig::paper(k)));
        print_table(
            &format!("Table 3a: Traditional Hierarchical Algorithm ({secs:.1}s)"),
            &header,
            &contingency_rows(&traditional, &truth, &class_names),
        );
        let pred = traditional.assignments(truth.len());
        let t = ContingencyTable::new(&pred, &truth);
        println!(
            "Traditional: {} clusters, {} pure, purity {:.3}",
            t.num_clusters(),
            t.num_pure_clusters(),
            t.purity()
        );
    }

    let kind = match goodness.as_str() {
        "normalized" => GoodnessKind::Normalized,
        "raw" => GoodnessKind::RawLinks,
        other => panic!("unknown goodness kind {other:?}"),
    };
    let (run, secs) = timed(|| {
        rock_on_records(
            &data.records,
            theta,
            k,
            MissingPolicy::Ignore,
            kind,
            default_threads(),
            None,
        )
    });
    print_table(
        &format!("Table 3b: ROCK (theta = {theta}, goodness = {goodness}, {secs:.1}s)"),
        &header,
        &contingency_rows(&run.clustering, &truth, &class_names),
    );
    let pred = run.clustering.assignments(truth.len());
    let t = ContingencyTable::new(&pred, &truth);
    println!(
        "ROCK: {} clusters ({} requested), {} pure, purity {:.3}, sizes {:?}",
        t.num_clusters(),
        k,
        t.num_pure_clusters(),
        t.purity(),
        run.clustering.sizes()
    );
    println!(
        "Paper reference: ROCK found 21 clusters, all pure except one (32 edible / 72 \
         poisonous); sizes ranged from 8 to 1728. The traditional algorithm produced 20 \
         impure clusters with sizes mostly between 200 and 400."
    );

    if args.flag("profiles") {
        // Tables 8/9: characteristics of the largest edible and largest
        // poisonous clusters.
        let profiles =
            cluster_profiles(&data.records, &data.schema, &run.clustering.clusters, 0.10);
        let majority_poisonous = |c: &[u32]| {
            let p = c.iter().filter(|&&m| truth[m as usize] == 1).count();
            2 * p > c.len()
        };
        for wanted in [false, true] {
            let best = run
                .clustering
                .clusters
                .iter()
                .enumerate()
                .filter(|(_, c)| majority_poisonous(c) == wanted)
                .max_by_key(|(_, c)| c.len());
            if let Some((i, c)) = best {
                println!(
                    "\nLargest {} cluster (cluster {}, {} mushrooms):",
                    if wanted { "poisonous" } else { "edible" },
                    i + 1,
                    c.len()
                );
                println!("{}", profiles[i].render(&data.schema));
            }
        }
    }
}

//! Diffs two `BENCH_*.json` snapshots (produced by
//! `scripts/bench_snapshot.sh`) id by id.
//!
//! For every benchmark id present in both snapshots, prints the before
//! and after mean, the mean delta, and the p99 delta. Ids present in
//! only one snapshot are listed separately so renames and new kernels
//! are visible rather than silently dropped. Records whose snapshot was
//! measured with more worker threads than the snapshot host had CPUs
//! are tagged `[oversub]` — their deltas describe scheduler behaviour,
//! not kernel scaling.
//!
//! ```text
//! cargo run --release -p bench --bin bench_compare -- \
//!     BENCH_before.json BENCH_after.json [--threshold 10] [--strict]
//! ```
//!
//! `--threshold` is the mean-regression tolerance in percent (default
//! 10). Regressions beyond it are flagged in the output; with
//! `--strict` they also make the process exit non-zero. CI runs the
//! comparison without `--strict` as a non-blocking report step, because
//! wall-clock deltas on shared runners are advisory, not a gate.

use std::fmt::Write as _;
use std::process::ExitCode;

/// One benchmark record pulled out of a snapshot's `results` array.
#[derive(Debug, Clone, PartialEq)]
struct BenchRecord {
    id: String,
    mean_ns: f64,
    p99_ns: f64,
    oversubscribed: bool,
}

/// One parsed snapshot: host metadata plus its records in file order.
#[derive(Debug)]
struct Snapshot {
    git_rev: String,
    host_cpus: String,
    records: Vec<BenchRecord>,
}

/// Extracts the JSON string value following `"<key>":"` at the top
/// level of `text`, if present.
fn string_field(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts the numeric value following `"<key>":` inside `text`.
fn number_field(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a snapshot file: top-level metadata plus every object in the
/// `results` array that carries an `"id"`. This is a purposeful
/// subset-parser for the snapshot format this repo writes (one record
/// object per line, no nested objects inside records), not a general
/// JSON parser — the workspace vendors no serde.
fn parse_snapshot(text: &str) -> Snapshot {
    let mut records = Vec::new();
    for chunk in text.split('{').skip(1) {
        let body = chunk.split('}').next().unwrap_or("");
        if !body.trim_start().starts_with("\"id\"") {
            continue;
        }
        let (Some(id), Some(mean_ns), Some(p99_ns)) = (
            string_field(body, "id"),
            number_field(body, "mean_ns"),
            number_field(body, "p99_ns"),
        ) else {
            continue;
        };
        records.push(BenchRecord {
            id,
            mean_ns,
            p99_ns,
            oversubscribed: body.contains("\"oversubscribed\":true"),
        });
    }
    Snapshot {
        git_rev: string_field(text, "git_rev").unwrap_or_else(|| "unknown".to_string()),
        host_cpus: string_field(text, "host_cpus")
            .or_else(|| number_field(text, "host_cpus").map(|n| format!("{n}")))
            .unwrap_or_else(|| "?".to_string()),
        records,
    }
}

/// Percent change from `before` to `after` (positive = slower).
fn delta_pct(before: f64, after: f64) -> f64 {
    if before <= 0.0 {
        return 0.0;
    }
    (after - before) / before * 100.0
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_compare <before.json> <after.json> [--threshold <pct>] [--strict]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut files = Vec::new();
    let mut threshold = 10.0f64;
    let mut strict = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--strict" => strict = true,
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => files.push(arg),
        }
    }
    if files.len() != 2 {
        usage();
    }

    let read = |path: &str| -> Snapshot {
        match std::fs::read_to_string(path) {
            Ok(text) => parse_snapshot(&text),
            Err(e) => {
                eprintln!("bench_compare: cannot read {path}: {e}");
                std::process::exit(2)
            }
        }
    };
    let before = read(&files[0]);
    let after = read(&files[1]);

    println!(
        "bench_compare: {} (rev {}, {} cpus) -> {} (rev {}, {} cpus), threshold {threshold}%",
        files[0], before.git_rev, before.host_cpus, files[1], after.git_rev, after.host_cpus
    );

    let mut regressions = 0usize;
    let mut missing_after = Vec::new();
    let mut rows = String::new();
    for b in &before.records {
        let Some(a) = after.records.iter().find(|a| a.id == b.id) else {
            missing_after.push(b.id.clone());
            continue;
        };
        let dm = delta_pct(b.mean_ns, a.mean_ns);
        let dp = delta_pct(b.p99_ns, a.p99_ns);
        let oversub = b.oversubscribed || a.oversubscribed;
        let regressed = dm > threshold && !oversub;
        if regressed {
            regressions += 1;
        }
        let _ = writeln!(
            rows,
            "  {:<40} mean {:>10} -> {:>10} ({:+6.1}%)  p99 {:+6.1}%{}{}",
            a.id,
            human_time(b.mean_ns),
            human_time(a.mean_ns),
            dm,
            dp,
            if oversub { "  [oversub]" } else { "" },
            if regressed { "  REGRESSION" } else { "" },
        );
    }
    print!("{rows}");

    for id in &missing_after {
        println!("  {id:<40} only in {}", files[0]);
    }
    for a in &after.records {
        if !before.records.iter().any(|b| b.id == a.id) {
            println!(
                "  {:<40} only in {} (mean {})",
                a.id,
                files[1],
                human_time(a.mean_ns)
            );
        }
    }

    println!(
        "bench_compare: {} shared ids, {} regressions beyond {threshold}% (oversubscribed records excluded)",
        before.records.len() - missing_after.len(),
        regressions
    );
    if strict && regressions > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "git_rev": "abc1234",
  "host_cpus": 1,
  "results": [
    {"id":"g/seq","mean_ns":100.0,"min_ns":90.0,"max_ns":110.0,"p99_ns":110.0,"samples":10},
    {"id":"g/par/2","mean_ns":200.0,"min_ns":180.0,"max_ns":220.0,"p99_ns":220.0,"samples":10,"threads":2,"oversubscribed":true}
  ]
}"#;

    #[test]
    fn parses_records_and_metadata() {
        let snap = parse_snapshot(SAMPLE);
        assert_eq!(snap.git_rev, "abc1234");
        assert_eq!(snap.host_cpus, "1");
        assert_eq!(snap.records.len(), 2);
        assert_eq!(snap.records[0].id, "g/seq");
        assert_eq!(snap.records[0].mean_ns, 100.0);
        assert_eq!(snap.records[0].p99_ns, 110.0);
        assert!(!snap.records[0].oversubscribed);
        assert!(snap.records[1].oversubscribed);
    }

    #[test]
    fn delta_is_signed_percent() {
        assert_eq!(delta_pct(100.0, 110.0), 10.0);
        assert_eq!(delta_pct(100.0, 90.0), -10.0);
        assert_eq!(delta_pct(0.0, 90.0), 0.0);
    }
}

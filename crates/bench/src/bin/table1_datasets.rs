//! Table 1: characteristics of the real-life data sets.
//!
//! Regenerates the paper's data-set summary from the calibrated
//! generators (or, with `--votes-file` / `--mushroom-file`, from the
//! original UCI files).
//!
//! ```text
//! cargo run --release -p bench --bin table1_datasets
//! ```

use bench::{print_table, Args};
use rand::{rngs::StdRng, SeedableRng};
use rock_data::{generate_funds, generate_mushrooms, generate_votes};
use rock_data::{FundSpec, MushroomSpec, VotesSpec};

fn main() {
    let args = Args::from_env();
    let seed: u64 = args.get("seed", 1999);

    let votes = if let Some(path) = option_path(&args, "votes-file") {
        rock_data::parse_votes(&std::fs::read_to_string(path).expect("read votes file"))
            .expect("parse votes file")
    } else {
        generate_votes(&VotesSpec::paper(), &mut StdRng::seed_from_u64(seed))
    };
    let mushrooms = if let Some(path) = option_path(&args, "mushroom-file") {
        rock_data::parse_mushrooms(&std::fs::read_to_string(path).expect("read mushroom file"))
            .expect("parse mushroom file")
    } else {
        generate_mushrooms(&MushroomSpec::paper(), &mut StdRng::seed_from_u64(seed + 1))
    };
    let funds = generate_funds(&FundSpec::paper(), &mut StdRng::seed_from_u64(seed + 2));

    let missing = |records: &[rock_core::points::CategoricalRecord]| {
        records.iter().any(|r| r.num_present() < r.arity())
    };

    let reps = votes
        .labels
        .iter()
        .filter(|p| **p == rock_data::Party::Republican)
        .count();
    let edible = mushrooms
        .labels
        .iter()
        .filter(|e| **e == rock_data::Edibility::Edible)
        .count();

    let rows = vec![
        vec![
            "Congressional Votes".to_owned(),
            votes.records.len().to_string(),
            votes.schema.num_attributes().to_string(),
            yesno(missing(&votes.records)),
            format!("{} Republicans and {} Democrats", reps, votes.records.len() - reps),
        ],
        vec![
            "Mushroom".to_owned(),
            mushrooms.records.len().to_string(),
            mushrooms.schema.num_attributes().to_string(),
            yesno(missing(&mushrooms.records)),
            format!("{} edible and {} poisonous", edible, mushrooms.records.len() - edible),
        ],
        vec![
            "U.S. Mutual Fund".to_owned(),
            funds.records.len().to_string(),
            funds.schema.num_attributes().to_string(),
            yesno(missing(&funds.records)),
            "548 business days of Up/Down/No changes".to_owned(),
        ],
    ];
    print_table(
        "Table 1: data sets",
        &["Data Set", "No of Records", "No of Attributes", "Missing Values", "Note"],
        &rows,
    );
    println!(
        "\nPaper reference: Votes 435×16 (168 R / 267 D), Mushroom 8124×22 \
         (4208 edible / 3916 poisonous), Mutual Fund 795×548."
    );
}

fn yesno(b: bool) -> String {
    if b { "Yes".to_owned() } else { "No".to_owned() }
}

fn option_path(args: &Args, name: &str) -> Option<String> {
    let v: String = args.get(name, String::new());
    if v.is_empty() {
        None
    } else {
        Some(v)
    }
}

//! Umbrella experiment runner: executes every table/figure binary's
//! workload at a configurable scale and prints a one-page summary —
//! the quick way to regenerate the whole evaluation.
//!
//! ```text
//! cargo run --release -p bench --bin experiments -- [--scale 0.1] [--full]
//! ```
//!
//! `--full` runs everything at the paper's sizes (several minutes).

use bench::{default_threads, print_table, rock_on_records, timed, Args};
use rand::{rngs::StdRng, SeedableRng};
use rock_core::goodness::GoodnessKind;
use rock_core::similarity::{CategoricalJaccard, Jaccard, MissingPolicy};
use rock_core::Rock;
use rock_data::{
    generate_baskets, generate_funds, generate_mushrooms, generate_votes, Edibility, FundSpec,
    MushroomSpec, Party, SyntheticBasketSpec, VotesSpec,
};
use rock_eval::{count_misclassified, ContingencyTable};

fn main() {
    let args = Args::from_env();
    let scale: f64 = if args.flag("full") {
        1.0
    } else {
        args.get("scale", 0.1)
    };
    let seed: u64 = args.get("seed", 1999);
    let threads = default_threads();
    let mut rows: Vec<Vec<String>> = Vec::new();

    // Table 2 — votes (always full size; it is tiny).
    {
        let data = generate_votes(&VotesSpec::paper(), &mut StdRng::seed_from_u64(seed));
        let truth: Vec<usize> = data
            .labels
            .iter()
            .map(|p| usize::from(*p == Party::Democrat))
            .collect();
        let (run, secs) = timed(|| {
            rock_on_records(
                &data.records,
                0.73,
                2,
                MissingPolicy::Ignore,
                GoodnessKind::Normalized,
                1,
                Some((3.0, 5)),
            )
        });
        let t = ContingencyTable::new(&run.clustering.assignments(truth.len()), &truth);
        rows.push(vec![
            "Table 2 (votes)".into(),
            format!("{} clusters, purity {:.3}", t.num_clusters(), t.purity()),
            "2 party clusters, ~12% crossover".into(),
            format!("{secs:.1}s"),
        ]);
    }

    // Table 3 — mushroom.
    {
        let spec = if scale >= 1.0 {
            MushroomSpec::paper()
        } else {
            MushroomSpec::paper_scaled(scale)
        };
        let data = generate_mushrooms(&spec, &mut StdRng::seed_from_u64(seed + 1));
        let truth: Vec<usize> = data
            .labels
            .iter()
            .map(|e| usize::from(*e == Edibility::Poisonous))
            .collect();
        let (run, secs) = timed(|| {
            rock_on_records(
                &data.records,
                0.8,
                20,
                MissingPolicy::Ignore,
                GoodnessKind::Normalized,
                threads,
                None,
            )
        });
        let t = ContingencyTable::new(&run.clustering.assignments(truth.len()), &truth);
        rows.push(vec![
            format!("Table 3 (mushroom ×{scale})"),
            format!(
                "{} clusters, {} pure, sizes {}..{}",
                t.num_clusters(),
                t.num_pure_clusters(),
                run.clustering.sizes().last().copied().unwrap_or(0),
                run.clustering.sizes().first().copied().unwrap_or(0)
            ),
            "21 clusters, 20 pure, sizes 8..1728".into(),
            format!("{secs:.1}s"),
        ]);
    }

    // Table 4 — funds.
    {
        let spec = if scale >= 1.0 {
            FundSpec::paper()
        } else {
            FundSpec::paper_scaled(scale.max(0.2))
        };
        let data = generate_funds(&spec, &mut StdRng::seed_from_u64(seed + 2));
        let rock = Rock::builder()
            .theta(0.8)
            .clusters(20)
            .threads(threads)
            .build()
            .expect("valid");
        let sim = CategoricalJaccard::new(MissingPolicy::CommonAttributes);
        let (run, secs) = timed(|| rock.cluster(&data.records, &sim));
        let families = run
            .clustering
            .clusters
            .iter()
            .filter(|c| c.len() > 3)
            .count();
        rows.push(vec![
            format!("Table 4 (funds ×{:.2})", scale.max(0.2)),
            format!(
                "{families} family clusters (>3), {} outliers",
                run.clustering.outliers.len()
            ),
            "16 clusters of size >3 + 24 pairs".into(),
            format!("{secs:.1}s"),
        ]);
    }

    // Tables 5/6 — synthetic + misclassification at one sample size.
    {
        let spec = if scale >= 1.0 {
            SyntheticBasketSpec::paper()
        } else {
            SyntheticBasketSpec::paper_scaled(scale)
        };
        let data = generate_baskets(&spec, &mut StdRng::seed_from_u64(seed + 3));
        let sample = ((3000.0 * scale) as usize).max(200);
        let rock = Rock::builder()
            .theta(0.5)
            .clusters(spec.num_clusters())
            .sample_size(sample)
            .labeling_fraction(0.3)
            .weed_outliers(3.0, sample / 100)
            .threads(threads)
            .seed(seed)
            .build()
            .expect("valid");
        let (result, secs) = timed(|| rock.run(&data.transactions, &Jaccard));
        let m = count_misclassified(&result.labeling.assignments, &data.labels);
        rows.push(vec![
            format!("Table 6 (synthetic ×{scale}, sample {sample})"),
            format!("{} of {} misclassified", m.misclassified, m.total),
            "0 at sample 3000, theta 0.5".into(),
            format!("{secs:.1}s"),
        ]);
    }

    print_table(
        "Experiment summary (see EXPERIMENTS.md for full-scale numbers)",
        &["Experiment", "Measured", "Paper reference", "Time"],
        &rows,
    );
}

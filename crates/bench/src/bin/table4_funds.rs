//! Table 4: ROCK on the US mutual-fund time series (θ = 0.8).
//!
//! Funds are discretised to Up/Down/No daily changes (§5.1) and clustered
//! with the pair-restricted missing-value policy (§3.1.2). The paper
//! reports 16 named clusters of size > 3 (bond groups, growth groups,
//! international, precious metals, …) plus 24 interesting 2-fund clusters
//! and many outliers; the traditional algorithm could not be run at all
//! because of the missing values.
//!
//! ```text
//! cargo run --release -p bench --bin table4_funds -- \
//!     [--scale 1.0] [--theta 0.8] [--k 20] [--seed N]
//! ```

use bench::{default_threads, print_table, timed, Args};
use rand::{rngs::StdRng, SeedableRng};
use rock_core::goodness::GoodnessKind;
use rock_core::similarity::{CategoricalJaccard, MissingPolicy};
use rock_core::Rock;
use rock_data::{generate_funds, FundSpec};

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 1.0);
    let theta: f64 = args.get("theta", 0.8);
    let k: usize = args.get("k", 20);
    let seed: u64 = args.get("seed", 1993);

    let spec = if (scale - 1.0).abs() < 1e-9 {
        FundSpec::paper()
    } else {
        FundSpec::paper_scaled(scale)
    };
    let data = generate_funds(&spec, &mut StdRng::seed_from_u64(seed));
    println!(
        "{} funds over {} business days ({} named groups + {} pairs + {} outliers)",
        data.records.len(),
        spec.days,
        spec.groups.len(),
        spec.num_pairs,
        spec.num_outliers
    );

    let rock = Rock::builder()
        .theta(theta)
        .clusters(k)
        .goodness_kind(GoodnessKind::Normalized)
        .threads(default_threads())
        .build()
        .expect("valid config");
    let sim = CategoricalJaccard::new(MissingPolicy::CommonAttributes);
    let (run, secs) = timed(|| rock.cluster(&data.records, &sim));
    println!("ROCK finished in {secs:.1}s");

    // Name each found cluster by its majority true group.
    let mut rows = Vec::new();
    let mut pairs_recovered = 0usize;
    let mut impure = 0usize;
    for (i, cluster) in run.clustering.clusters.iter().enumerate() {
        let mut counts: std::collections::HashMap<Option<usize>, usize> = Default::default();
        for &m in cluster {
            *counts.entry(data.funds[m as usize].group).or_insert(0) += 1;
        }
        let (majority_group, majority_count) = counts
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(g, c)| (*g, *c))
            .unwrap_or((None, 0));
        let name = match majority_group {
            Some(g) => data.group_names[g].clone(),
            None => "(outlier funds)".to_owned(),
        };
        if majority_count < cluster.len() {
            impure += 1;
        }
        if (2..=3).contains(&cluster.len()) && name.starts_with("Pair") {
            pairs_recovered += 1;
            continue; // reported in aggregate, as in the paper
        }
        let tickers: Vec<&str> = cluster
            .iter()
            .take(5)
            .map(|&m| data.funds[m as usize].ticker.as_str())
            .collect();
        rows.push((
            cluster.len(),
            vec![
                format!("{}", i + 1),
                name,
                cluster.len().to_string(),
                format!("{:.2}", majority_count as f64 / cluster.len() as f64),
                format!("{} ...", tickers.join(" ")),
            ],
        ));
    }
    rows.sort_by_key(|(size, _)| std::cmp::Reverse(*size));
    let display: Vec<Vec<String>> = rows
        .iter()
        .filter(|(size, _)| *size > 3)
        .map(|(_, r)| r.clone())
        .collect();
    print_table(
        &format!("Table 4: mutual-fund clusters of size > 3 (theta = {theta})"),
        &["Cluster", "Majority group", "Funds", "Purity", "Tickers"],
        &display,
    );
    println!(
        "\n{} small clusters (size 2-3) matched generated mini-families (paper: 24 \
         interesting size-2 clusters); {} clusters impure; {} funds left as outliers.",
        pairs_recovered,
        impure,
        run.clustering.outliers.len()
    );
    println!(
        "Paper reference: 16 clusters of size > 3 covering bond/growth/international/\
         precious-metal groups; the traditional algorithm could not run due to missing values."
    );
}

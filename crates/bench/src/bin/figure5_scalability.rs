//! Figure 5: ROCK execution time vs random-sample size, for
//! θ ∈ {0.5, 0.6, 0.7, 0.8} (§5.4).
//!
//! As in the paper, the timing covers neighbor computation, link
//! computation and the merge loop on the sample — the final labeling
//! phase is excluded. The expected shape: roughly quadratic growth in the
//! sample size, and faster clustering at higher θ (fewer neighbors →
//! cheaper links).
//!
//! ```text
//! cargo run --release -p bench --bin figure5_scalability -- \
//!     [--sizes 1000,2000,3000,4000,5000] [--repeats 1] [--seed N] [--csv]
//! ```

use bench::{print_table, timed, Args};
use rand::{rngs::StdRng, SeedableRng};
use rock_core::goodness::{BasketF, FTheta, Goodness, GoodnessKind};
use rock_core::algorithm::{OutlierPolicy, RockAlgorithm};
use rock_core::neighbors::NeighborGraph;
use rock_core::similarity::{Jaccard, PointsWith};
use rock_data::{generate_baskets, SyntheticBasketSpec};

fn main() {
    let args = Args::from_env();
    let seed: u64 = args.get("seed", 114586);
    let sizes_arg: String = args.get("sizes", "1000,2000,3000,4000,5000".to_owned());
    let repeats: usize = args.get("repeats", 1);
    let sizes: Vec<usize> = sizes_arg
        .split(',')
        .map(|s| s.trim().parse().expect("size list"))
        .collect();
    let thetas = [0.5, 0.6, 0.7, 0.8];
    let k = 10;

    // One generated pool large enough for the biggest sample.
    let max_size = *sizes.iter().max().expect("at least one size");
    let scale = (max_size as f64 / 100_000.0).clamp(0.05, 1.0);
    let spec = SyntheticBasketSpec::paper_scaled(scale);
    let data = generate_baskets(&spec, &mut StdRng::seed_from_u64(seed));
    assert!(
        data.transactions.len() >= max_size,
        "generated pool too small"
    );

    let mut rows = Vec::new();
    let mut csv = String::from("sample_size,theta,seconds\n");
    for &n in &sizes {
        let mut row = vec![n.to_string()];
        for &theta in &thetas {
            // Fresh random sample per cell, as in the paper's experiment.
            let mut rng = StdRng::seed_from_u64(seed ^ (n as u64) ^ (theta * 100.0) as u64);
            let idx = rock_core::sampling::sample_indices(data.transactions.len(), n, &mut rng);
            let sample: Vec<_> = idx.iter().map(|&i| data.transactions[i].clone()).collect();
            let goodness = Goodness::new(theta, BasketF, GoodnessKind::Normalized);
            let algo = RockAlgorithm::new(goodness, k, OutlierPolicy::default());
            let mut best = f64::INFINITY;
            for _ in 0..repeats.max(1) {
                let (_, secs) = timed(|| {
                    let graph = NeighborGraph::build(&PointsWith::new(&sample, Jaccard), theta);
                    algo.run(&graph)
                });
                best = best.min(secs);
            }
            let _ = BasketF.f(theta); // (documented: f enters only the goodness)
            row.push(format!("{best:.2}"));
            csv.push_str(&format!("{n},{theta},{best:.4}\n"));
        }
        rows.push(row);
    }
    print_table(
        "Figure 5: ROCK clustering time on the sample (seconds, labeling excluded)",
        &["Sample Size", "theta=0.5", "theta=0.6", "theta=0.7", "theta=0.8"],
        &rows,
    );
    if args.flag("csv") {
        println!("\n{csv}");
    }
    println!(
        "Shape to reproduce (paper Fig. 5): roughly quadratic growth with sample size; \
         larger theta runs faster because each transaction has fewer neighbors."
    );
}

//! Table 5: characteristics of the §5.3 synthetic market-basket data
//! set.
//!
//! Generates the data set (exactly the paper's 114,586 transactions at
//! `--scale 1`) and prints the per-cluster transaction/item counts plus
//! the properties the paper states in prose: transaction-size
//! distribution and item-overlap fractions.
//!
//! ```text
//! cargo run --release -p bench --bin table5_synthetic -- [--scale 1.0] [--seed N]
//! ```

use bench::{print_table, Args};
use rand::{rngs::StdRng, SeedableRng};
use rock_data::{generate_baskets, SyntheticBasketSpec};

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 1.0);
    let seed: u64 = args.get("seed", 5456);
    let spec = if (scale - 1.0).abs() < 1e-9 {
        SyntheticBasketSpec::paper()
    } else {
        SyntheticBasketSpec::paper_scaled(scale)
    };
    let data = generate_baskets(&spec, &mut StdRng::seed_from_u64(seed));

    let mut header = vec!["".to_owned()];
    let mut trans_row = vec!["No. of Transactions".to_owned()];
    let mut items_row = vec!["No. of Items".to_owned()];
    for c in 0..spec.num_clusters() {
        header.push(format!("{}", c + 1));
        let count = data.labels.iter().filter(|l| **l == Some(c)).count();
        trans_row.push(count.to_string());
        items_row.push(data.cluster_items[c].len().to_string());
    }
    header.push("Outliers".to_owned());
    trans_row.push(
        data.labels
            .iter()
            .filter(|l| l.is_none())
            .count()
            .to_string(),
    );
    items_row.push(data.num_items.to_string());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(
        "Table 5: synthetic data set",
        &header_refs,
        &[trans_row, items_row],
    );

    // Prose properties from §5.3.
    let sizes: Vec<usize> = data.transactions.iter().map(|t| t.len()).collect();
    let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
    let in_band = sizes.iter().filter(|s| (11..=19).contains(*s)).count() as f64
        / sizes.len() as f64;
    let mut shared_fracs = Vec::new();
    for c in 1..spec.num_clusters() {
        let prev: std::collections::HashSet<u32> =
            data.cluster_items[c - 1].iter().copied().collect();
        let shared = data.cluster_items[c]
            .iter()
            .filter(|i| prev.contains(i))
            .count();
        shared_fracs.push(shared as f64 / data.cluster_items[c].len() as f64);
    }
    let avg_shared = shared_fracs.iter().sum::<f64>() / shared_fracs.len() as f64;
    println!(
        "\n{} transactions total; mean size {mean:.1}; {:.1}% of sizes in 11..=19 \
         (paper: mean 15, 98%); average shared-item fraction {:.2} (paper: roughly 0.40); \
         outliers {:.1}% (paper: ~5%).",
        data.transactions.len(),
        100.0 * in_band,
        avg_shared,
        100.0 * data.labels.iter().filter(|l| l.is_none()).count() as f64
            / data.labels.len() as f64,
    );
}

//! Ablation: sensitivity of clustering quality to the neighbor-exponent
//! estimate f(θ) (§3.3).
//!
//! The paper claims "even an inaccurate but reasonable estimate for f()
//! can work well in practice". This binary quantifies that: for each
//! data set, sweep a constant f and report adjusted Rand index against
//! ground truth, alongside the market-basket default `(1−θ)/(1+θ)`.
//!
//! ```text
//! cargo run --release -p bench --bin ablation_ftheta -- [--seed N] [--scale 0.1]
//! ```

use bench::{print_table, Args};
use rand::{rngs::StdRng, SeedableRng};
use rock_core::goodness::{BasketF, FTheta};
use rock_core::similarity::{CategoricalJaccard, Jaccard, PairwiseSimilarity, PointsWith};
use rock_core::{
    ConstantF, Goodness, GoodnessKind, NeighborGraph, OutlierPolicy, RockAlgorithm,
};
use rock_data::{generate_baskets, generate_mushrooms, MushroomSpec, SyntheticBasketSpec};
use rock_eval::adjusted_rand_index;

fn ari_with_f<PS: PairwiseSimilarity>(
    sim: &PS,
    theta: f64,
    k: usize,
    f: f64,
    truth: &[usize],
) -> f64 {
    let graph = NeighborGraph::build(sim, theta);
    let goodness = Goodness::new(theta, ConstantF(f), GoodnessKind::Normalized);
    let run = RockAlgorithm::new(goodness, k, OutlierPolicy::default()).run(&graph);
    // Outliers become one extra dense label (the agreement indices build
    // dense count matrices).
    let outlier_label = run.clustering.num_clusters();
    let pred: Vec<usize> = run
        .clustering
        .assignments(truth.len())
        .iter()
        .map(|a| a.map_or(outlier_label, |c| c))
        .collect();
    adjusted_rand_index(&pred, truth)
}

fn main() {
    let args = Args::from_env();
    let seed: u64 = args.get("seed", 33);
    let scale: f64 = args.get("scale", 0.05);
    let fs = [0.2, BasketF.f(0.5), 0.5, 0.7, 1.0];

    // Synthetic baskets at θ = 0.5 against true cluster labels.
    let baskets = generate_baskets(
        &SyntheticBasketSpec::paper_scaled(scale),
        &mut StdRng::seed_from_u64(seed),
    );
    let num_true = SyntheticBasketSpec::paper_scaled(scale).num_clusters();
    let basket_truth: Vec<usize> = baskets
        .labels
        .iter()
        .map(|l| l.map_or(num_true, |c| c))
        .collect();
    let pw = PointsWith::new(&baskets.transactions, Jaccard);

    // Mushrooms at θ = 0.8 against species labels.
    let mushrooms = generate_mushrooms(
        &MushroomSpec::paper_scaled(scale.max(0.05)),
        &mut StdRng::seed_from_u64(seed + 1),
    );
    let sim = CategoricalJaccard::default();
    let mw = PointsWith::new(&mushrooms.records, &sim);

    let mut rows = Vec::new();
    for &f in &fs {
        let tag = if (f - BasketF.f(0.5)).abs() < 1e-9 {
            format!("{f:.3} (basket default at theta=0.5)")
        } else {
            format!("{f:.3}")
        };
        rows.push(vec![
            tag,
            format!("{:.3}", ari_with_f(&pw, 0.5, 10, f, &basket_truth)),
            format!("{:.3}", ari_with_f(&mw, 0.8, 20, f, &mushrooms.species)),
        ]);
    }
    print_table(
        "f(theta) sensitivity (adjusted Rand index vs ground truth)",
        &["f", "baskets (theta=0.5)", "mushroom species (theta=0.8)"],
        &rows,
    );
    println!(
        "\nPaper §3.3: errors in f(theta) affect all clusters similarly, so a \
         reasonable estimate suffices — the ARI should be flat across most of the \
         sweep, degrading only at extreme under-estimates (see also the Fig.-1 \
         sensitivity test, where the toy data needs f near 1)."
    );
}

//! Pair-counting and information-theoretic agreement indices between two
//! partitions: Rand index, adjusted Rand index, and normalized mutual
//! information.
//!
//! These complement the paper's direct misclassification counts with the
//! standard external clustering metrics, so experiments can report
//! comparable numbers to modern work.

/// Validates and zips two label vectors.
fn check(a: &[usize], b: &[usize]) {
    assert_eq!(a.len(), b.len(), "label vectors must align");
}

fn comb2(n: usize) -> f64 {
    (n as f64) * (n as f64 - 1.0) / 2.0
}

/// Builds the joint count matrix and marginals.
fn joint_counts(a: &[usize], b: &[usize]) -> (Vec<Vec<usize>>, Vec<usize>, Vec<usize>) {
    let ka = a.iter().copied().max().map_or(0, |m| m + 1);
    let kb = b.iter().copied().max().map_or(0, |m| m + 1);
    let mut joint = vec![vec![0usize; kb]; ka];
    let mut ma = vec![0usize; ka];
    let mut mb = vec![0usize; kb];
    for (&x, &y) in a.iter().zip(b) {
        joint[x][y] += 1;
        ma[x] += 1;
        mb[y] += 1;
    }
    (joint, ma, mb)
}

/// The Rand index: the fraction of point pairs on which the two
/// partitions agree (same-same or different-different). In `[0, 1]`.
pub fn rand_index(a: &[usize], b: &[usize]) -> f64 {
    check(a, b);
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let (joint, ma, mb) = joint_counts(a, b);
    let same_both: f64 = joint.iter().flatten().map(|&c| comb2(c)).sum();
    let same_a: f64 = ma.iter().map(|&c| comb2(c)).sum();
    let same_b: f64 = mb.iter().map(|&c| comb2(c)).sum();
    let total = comb2(n);
    // agreements = pairs together in both + pairs apart in both
    (total + 2.0 * same_both - same_a - same_b) / total
}

/// The adjusted Rand index (Hubert & Arabie): Rand index corrected for
/// chance. 1 = identical partitions, ~0 = random agreement; can be
/// negative.
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    check(a, b);
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let (joint, ma, mb) = joint_counts(a, b);
    let index: f64 = joint.iter().flatten().map(|&c| comb2(c)).sum();
    let sum_a: f64 = ma.iter().map(|&c| comb2(c)).sum();
    let sum_b: f64 = mb.iter().map(|&c| comb2(c)).sum();
    let expected = sum_a * sum_b / comb2(n);
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate (e.g. both partitions all-singletons or one cluster).
        return if (index - expected).abs() < 1e-12 { 1.0 } else { 0.0 };
    }
    (index - expected) / (max_index - expected)
}

/// Normalized mutual information with arithmetic-mean normalisation:
/// `NMI = 2·I(A; B) / (H(A) + H(B))`, in `[0, 1]`; defined as 1 when both
/// partitions are trivial (zero entropy).
pub fn normalized_mutual_information(a: &[usize], b: &[usize]) -> f64 {
    check(a, b);
    let n = a.len() as f64;
    if a.is_empty() {
        return 1.0;
    }
    let (joint, ma, mb) = joint_counts(a, b);
    let h = |marginal: &[usize]| -> f64 {
        marginal
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let ha = h(&ma);
    let hb = h(&mb);
    if ha == 0.0 && hb == 0.0 {
        return 1.0;
    }
    let mut mi = 0.0;
    for (x, row) in joint.iter().enumerate() {
        for (y, &c) in row.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let pxy = c as f64 / n;
            let px = ma[x] as f64 / n;
            let py = mb[y] as f64 / n;
            mi += pxy * (pxy / (px * py)).ln();
        }
    }
    (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert_eq!(rand_index(&a, &a), 1.0);
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
        assert!((normalized_mutual_information(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabeled_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![2, 2, 0, 0, 1, 1];
        assert_eq!(rand_index(&a, &b), 1.0);
        assert_eq!(adjusted_rand_index(&a, &b), 1.0);
        assert!((normalized_mutual_information(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_rand_value() {
        // Classic example: a = {0,0,1,1}, b = {0,1,1,1}.
        // Pairs: (0,1) split vs together → disagree; (0,2),(0,3) apart in
        // both → agree; (1,2),(1,3) apart vs together → disagree;
        // (2,3) together in both → agree. RI = 3/6.
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 1, 1, 1];
        assert!((rand_index(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ari_near_zero_for_independent_labels() {
        // Deterministic pseudo-random independent labelings.
        let n = 5000;
        let a: Vec<usize> = (0..n).map(|i| (i * 2654435761usize) % 4).collect();
        let b: Vec<usize> = (0..n).map(|i| (i * 40503usize + 7) % 5).collect();
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 0.02, "ARI {ari}");
    }

    #[test]
    fn nmi_zero_for_independent_labels() {
        let n = 5000;
        let a: Vec<usize> = (0..n).map(|i| (i * 2654435761usize) % 4).collect();
        let b: Vec<usize> = (0..n).map(|i| (i * 40503usize + 7) % 5).collect();
        let nmi = normalized_mutual_information(&a, &b);
        assert!(nmi < 0.02, "NMI {nmi}");
    }

    #[test]
    fn refinement_ordering() {
        // A clustering that merges two true clusters scores below the
        // truth but above a random one.
        let truth: Vec<usize> = (0..60).map(|i| i / 20).collect();
        let merged: Vec<usize> = truth.iter().map(|&t| if t == 2 { 1 } else { t }).collect();
        let ari = adjusted_rand_index(&truth, &merged);
        assert!(ari > 0.4 && ari < 1.0, "ARI {ari}");
    }

    #[test]
    fn trivial_inputs() {
        assert_eq!(rand_index(&[], &[]), 1.0);
        assert_eq!(rand_index(&[0], &[0]), 1.0);
        assert_eq!(adjusted_rand_index(&[0, 0], &[0, 0]), 1.0);
        assert_eq!(normalized_mutual_information(&[0, 0], &[0, 0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let _ = rand_index(&[0], &[0, 1]);
    }
}

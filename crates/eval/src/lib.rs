//! # rock-eval — clustering quality metrics
//!
//! Everything needed to score a clustering against ground truth the way
//! the paper's evaluation does, plus the standard external indices:
//!
//! * [`contingency`] — predicted-cluster × true-class count tables
//!   (Tables 2–3), purity, pure-cluster counts;
//! * [`misclassification`] — misclassified-point counts under the optimal
//!   cluster correspondence (§5.4, Table 6);
//! * [`hungarian`] — the Kuhn–Munkres optimal-assignment solver backing
//!   it;
//! * [`agreement`] — Rand index, adjusted Rand index, NMI;
//! * [`profile`] — frequent-attribute-value cluster characterisation
//!   (Tables 7–9);
//! * [`scoring`] — one-call scoring of any
//!   [`rock_core::ClusterModel`] fit: misclassification + Rand/ARI/NMI
//!   from a [`rock_core::ModelFit`]'s assignments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agreement;
pub mod contingency;
pub mod hungarian;
pub mod misclassification;
pub mod profile;
pub mod scoring;

pub use agreement::{adjusted_rand_index, normalized_mutual_information, rand_index};
pub use contingency::ContingencyTable;
pub use hungarian::{maximum_value_assignment, minimum_cost_assignment};
pub use misclassification::{count_misclassified, Misclassification};
pub use profile::{cluster_profiles, ClusterProfile, FrequentValue};
pub use scoring::{dense_labels, score_assignments, score_fit, score_model, ModelScore};

//! Contingency tables between a predicted clustering and ground-truth
//! classes — the raw counts behind Tables 2 and 3 of the paper
//! ("No of Republicans / No of Democrats" per cluster, "No of Edible /
//! No of Poisonous" per cluster).

/// A predicted-cluster × true-class count matrix.
///
/// Rows are predicted clusters, columns true classes. Points without a
/// predicted cluster (outliers) are tallied separately per class, so
/// `total()` always equals the number of input points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContingencyTable {
    counts: Vec<Vec<usize>>,
    outlier_counts: Vec<usize>,
    num_classes: usize,
}

impl ContingencyTable {
    /// Builds the table from per-point predicted clusters and true
    /// classes.
    ///
    /// `pred[i]` is the predicted cluster of point `i` (`None` =
    /// outlier); `truth[i]` its true class.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn new(pred: &[Option<usize>], truth: &[usize]) -> Self {
        assert_eq!(pred.len(), truth.len(), "pred and truth must align");
        let num_clusters = pred.iter().flatten().copied().max().map_or(0, |m| m + 1);
        let num_classes = truth.iter().copied().max().map_or(0, |m| m + 1);
        let mut counts = vec![vec![0usize; num_classes]; num_clusters];
        let mut outlier_counts = vec![0usize; num_classes];
        for (p, &t) in pred.iter().zip(truth) {
            match p {
                Some(c) => counts[*c][t] += 1,
                None => outlier_counts[t] += 1,
            }
        }
        ContingencyTable {
            counts,
            outlier_counts,
            num_classes,
        }
    }

    /// Number of predicted clusters (excluding the outlier bucket).
    pub fn num_clusters(&self) -> usize {
        self.counts.len()
    }

    /// Number of true classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Count of points in predicted cluster `c` with true class `t`.
    pub fn count(&self, c: usize, t: usize) -> usize {
        self.counts[c][t]
    }

    /// The class counts of one predicted cluster.
    pub fn row(&self, c: usize) -> &[usize] {
        &self.counts[c]
    }

    /// Per-class counts of points predicted as outliers.
    pub fn outlier_row(&self) -> &[usize] {
        &self.outlier_counts
    }

    /// Size of predicted cluster `c`.
    pub fn cluster_size(&self, c: usize) -> usize {
        self.counts[c].iter().sum()
    }

    /// Total number of points (clustered + outliers).
    pub fn total(&self) -> usize {
        self.counts
            .iter()
            .map(|r| r.iter().sum::<usize>())
            .sum::<usize>()
            + self.outlier_counts.iter().sum::<usize>()
    }

    /// Number of clustered points (excluding outliers).
    pub fn total_clustered(&self) -> usize {
        self.total() - self.outlier_counts.iter().sum::<usize>()
    }

    /// Whether cluster `c` is *pure* (all points one class) — the paper's
    /// headline mushroom metric ("all except one of the clusters are pure
    /// clusters").
    pub fn is_pure(&self, c: usize) -> bool {
        self.counts[c].iter().filter(|&&n| n > 0).count() <= 1
    }

    /// Number of pure clusters.
    pub fn num_pure_clusters(&self) -> usize {
        (0..self.num_clusters()).filter(|&c| self.is_pure(c)).count()
    }

    /// Overall purity: the fraction of clustered points belonging to
    /// their cluster's majority class. 0 for an empty clustering.
    pub fn purity(&self) -> f64 {
        let clustered = self.total_clustered();
        if clustered == 0 {
            return 0.0;
        }
        let majority: usize = self
            .counts
            .iter()
            .map(|r| r.iter().copied().max().unwrap_or(0))
            .sum();
        majority as f64 / clustered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table2_like() -> ContingencyTable {
        // A Table-2-shaped outcome: cluster 0 = 144 R + 22 D,
        // cluster 1 = 5 R + 201 D, 63 outliers (19 R + 44 D).
        let mut pred = Vec::new();
        let mut truth = Vec::new();
        let mut push = |p: Option<usize>, t: usize, n: usize| {
            for _ in 0..n {
                pred.push(p);
                truth.push(t);
            }
        };
        push(Some(0), 0, 144);
        push(Some(0), 1, 22);
        push(Some(1), 0, 5);
        push(Some(1), 1, 201);
        push(None, 0, 19);
        push(None, 1, 44);
        ContingencyTable::new(&pred, &truth)
    }

    #[test]
    fn counts_and_totals() {
        let t = table2_like();
        assert_eq!(t.num_clusters(), 2);
        assert_eq!(t.num_classes(), 2);
        assert_eq!(t.count(0, 0), 144);
        assert_eq!(t.count(1, 1), 201);
        assert_eq!(t.outlier_row(), &[19, 44]);
        assert_eq!(t.total(), 435);
        assert_eq!(t.total_clustered(), 372);
        assert_eq!(t.cluster_size(0), 166);
    }

    #[test]
    fn purity_of_table2() {
        let t = table2_like();
        let expected = (144 + 201) as f64 / 372.0;
        assert!((t.purity() - expected).abs() < 1e-12);
        assert!(!t.is_pure(0));
        assert_eq!(t.num_pure_clusters(), 0);
    }

    #[test]
    fn pure_cluster_detection() {
        let pred = vec![Some(0), Some(0), Some(1), Some(1), Some(1)];
        let truth = vec![0, 0, 1, 1, 0];
        let t = ContingencyTable::new(&pred, &truth);
        assert!(t.is_pure(0));
        assert!(!t.is_pure(1));
        assert_eq!(t.num_pure_clusters(), 1);
    }

    #[test]
    fn empty_input() {
        let t = ContingencyTable::new(&[], &[]);
        assert_eq!(t.total(), 0);
        assert_eq!(t.purity(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let _ = ContingencyTable::new(&[None], &[]);
    }
}

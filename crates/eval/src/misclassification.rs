//! Misclassification counting under the optimal cluster correspondence
//! (§5.4, Table 6).
//!
//! The paper's synthetic experiment reports "the number of transactions
//! misclassified". Since predicted cluster numbers are arbitrary, we
//! first find the one-to-one predicted↔true cluster matching maximising
//! agreement (Hungarian algorithm) and then count every point that falls
//! outside it. True outliers count as their own class: an outlier
//! predicted as an outlier is correct, an outlier assigned to a cluster
//! (or a clustered point called an outlier) is a misclassification.

use crate::hungarian::maximum_value_assignment;

/// Result of the matched comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Misclassification {
    /// Number of misclassified points.
    pub misclassified: usize,
    /// Total points compared.
    pub total: usize,
    /// `mapping[predicted] = Some(true cluster)` under the optimal
    /// matching.
    pub mapping: Vec<Option<usize>>,
}

impl Misclassification {
    /// Misclassification rate in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.misclassified as f64 / self.total as f64
        }
    }
}

/// Counts misclassified points between a predicted and a true clustering,
/// both given as per-point `Option<cluster>` (with `None` = outlier).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn count_misclassified(
    pred: &[Option<usize>],
    truth: &[Option<usize>],
) -> Misclassification {
    assert_eq!(pred.len(), truth.len(), "pred and truth must align");
    let kp = pred.iter().flatten().copied().max().map_or(0, |m| m + 1);
    let kt = truth.iter().flatten().copied().max().map_or(0, |m| m + 1);

    // Overlap matrix between predicted clusters and true clusters.
    let mut overlap = vec![vec![0.0f64; kt.max(1)]; kp.max(1)];
    for (p, t) in pred.iter().zip(truth) {
        if let (Some(p), Some(t)) = (p, t) {
            overlap[*p][*t] += 1.0;
        }
    }

    let mapping: Vec<Option<usize>> = if kp == 0 || kt == 0 {
        vec![None; kp]
    } else {
        maximum_value_assignment(&overlap)
    };

    let mut correct = 0usize;
    for (p, t) in pred.iter().zip(truth) {
        match (p, t) {
            (None, None) => correct += 1,
            (Some(p), Some(t)) if mapping.get(*p).copied().flatten() == Some(*t) => {
                correct += 1;
            }
            _ => {}
        }
    }
    Misclassification {
        misclassified: pred.len() - correct,
        total: pred.len(),
        mapping,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_zero_misclassified() {
        let truth = vec![Some(0), Some(0), Some(1), Some(1), None];
        // Same partition with permuted cluster numbers.
        let pred = vec![Some(1), Some(1), Some(0), Some(0), None];
        let m = count_misclassified(&pred, &truth);
        assert_eq!(m.misclassified, 0);
        assert_eq!(m.mapping, vec![Some(1), Some(0)]);
        assert_eq!(m.rate(), 0.0);
    }

    #[test]
    fn single_swap_counts_once() {
        let truth = vec![Some(0), Some(0), Some(0), Some(1), Some(1), Some(1)];
        let pred = vec![Some(0), Some(0), Some(1), Some(1), Some(1), Some(1)];
        let m = count_misclassified(&pred, &truth);
        assert_eq!(m.misclassified, 1);
    }

    #[test]
    fn outlier_confusions_count() {
        let truth = vec![Some(0), None, Some(0), None];
        let pred = vec![Some(0), Some(0), None, None];
        let m = count_misclassified(&pred, &truth);
        // point 1: outlier → cluster (wrong); point 2: cluster → outlier
        // (wrong).
        assert_eq!(m.misclassified, 2);
    }

    #[test]
    fn split_cluster_counts_minor_half() {
        // True cluster of 10 split into 6 + 4: best matching keeps the 6.
        let truth: Vec<Option<usize>> = (0..10).map(|_| Some(0)).collect();
        let pred: Vec<Option<usize>> = (0..10).map(|i| Some(usize::from(i >= 6))).collect();
        let m = count_misclassified(&pred, &truth);
        assert_eq!(m.misclassified, 4);
    }

    #[test]
    fn more_predicted_than_true_clusters() {
        let truth = vec![Some(0), Some(0), Some(1), Some(1)];
        let pred = vec![Some(0), Some(1), Some(2), Some(2)];
        let m = count_misclassified(&pred, &truth);
        // Best: one of {0,1} → true 0 (1 correct), 2 → true 1 (2 correct).
        assert_eq!(m.misclassified, 1);
    }

    #[test]
    fn empty_input() {
        let m = count_misclassified(&[], &[]);
        assert_eq!(m.misclassified, 0);
        assert_eq!(m.rate(), 0.0);
    }
}

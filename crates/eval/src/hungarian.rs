//! The Hungarian (Kuhn–Munkres) algorithm for optimal assignment.
//!
//! Used to match predicted clusters to ground-truth clusters so that the
//! §5.4 misclassification counts (Table 6) are computed against the *best
//! possible* cluster correspondence rather than a greedy one. The
//! implementation is the standard O(n³) potentials-based shortest
//! augmenting path formulation, for square or rectangular cost matrices
//! (padded internally).

/// Solves the assignment problem: given an `n × m` cost matrix, selects
/// at most `min(n, m)` entries, one per row and column, minimising the
/// total cost. Returns `assignment[row] = Some(col)` for assigned rows.
///
/// # Panics
/// Panics if rows have inconsistent lengths or any cost is NaN.
pub fn minimum_cost_assignment(cost: &[Vec<f64>]) -> Vec<Option<usize>> {
    let n = cost.len();
    if n == 0 {
        return Vec::new();
    }
    let m = cost[0].len();
    assert!(
        cost.iter().all(|r| r.len() == m),
        "cost matrix rows must have equal length"
    );
    if m == 0 {
        return vec![None; n];
    }
    assert!(
        cost.iter().all(|r| r.iter().all(|c| !c.is_nan())),
        "NaN cost"
    );

    // Pad to a square matrix with zero-cost dummy entries.
    let size = n.max(m);
    let pad_cost = |i: usize, j: usize| -> f64 {
        if i < n && j < m {
            cost[i][j]
        } else {
            0.0
        }
    };

    // Potentials-based Hungarian algorithm (1-indexed internals, the
    // classic formulation from competitive programming / Burkard et al.).
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; size + 1];
    let mut v = vec![0.0f64; size + 1];
    // p[j] = row assigned to column j (0 = none).
    let mut p = vec![0usize; size + 1];
    let mut way = vec![0usize; size + 1];
    for i in 1..=size {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; size + 1];
        let mut used = vec![false; size + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=size {
                if used[j] {
                    continue;
                }
                let cur = pad_cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=size {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![None; n];
    for (j, &i) in p.iter().enumerate().skip(1).take(m) {
        if i >= 1 && i <= n {
            assignment[i - 1] = Some(j - 1);
        }
    }
    assignment
}

/// Maximises total *value* instead of minimising cost (negates the
/// matrix). Returns `assignment[row] = Some(col)`.
pub fn maximum_value_assignment(value: &[Vec<f64>]) -> Vec<Option<usize>> {
    let neg: Vec<Vec<f64>> = value
        .iter()
        .map(|r| r.iter().map(|&x| -x).collect())
        .collect();
    minimum_cost_assignment(&neg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(cost: &[Vec<f64>], assignment: &[Option<usize>]) -> f64 {
        assignment
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.map(|j| cost[i][j]))
            .sum()
    }

    fn brute_force_min(cost: &[Vec<f64>]) -> f64 {
        // Exhaustive over row→column injections (small matrices only).
        let n = cost.len();
        let m = cost[0].len();
        fn rec(cost: &[Vec<f64>], row: usize, used: &mut Vec<bool>, n: usize, m: usize) -> f64 {
            if row == n {
                return 0.0;
            }
            if n > m && row >= m {
                // more rows than columns: remaining rows unassigned
            }
            let mut best = f64::INFINITY;
            // Option: leave this row unassigned only if rows > cols overall;
            // handled implicitly by padding in the real algorithm. For the
            // brute force we allow skipping when necessary.
            let assigned_count = used.iter().filter(|&&u| u).count();
            if n - row > m - assigned_count {
                best = rec(cost, row + 1, used, n, m);
            }
            for j in 0..m {
                if !used[j] {
                    used[j] = true;
                    let v = cost[row][j] + rec(cost, row + 1, used, n, m);
                    used[j] = false;
                    best = best.min(v);
                }
            }
            best
        }
        rec(cost, 0, &mut vec![false; m], n, m)
    }

    #[test]
    fn square_known_answer() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = minimum_cost_assignment(&cost);
        assert_eq!(total(&cost, &a), 5.0); // 1 + 2 + 2
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        let mut state = 42u64;
        let mut rand = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 100) as f64
        };
        for trial in 0..30 {
            let n = 1 + (trial % 5);
            let m = 1 + ((trial * 7) % 5);
            let cost: Vec<Vec<f64>> =
                (0..n).map(|_| (0..m).map(|_| rand()).collect()).collect();
            let a = minimum_cost_assignment(&cost);
            // All assigned columns distinct.
            let mut cols: Vec<usize> = a.iter().flatten().copied().collect();
            assert_eq!(cols.len(), n.min(m));
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), n.min(m));
            let got = total(&cost, &a);
            let want = brute_force_min(&cost);
            assert!(
                (got - want).abs() < 1e-9,
                "trial {trial}: got {got}, want {want}, cost {cost:?}"
            );
        }
    }

    #[test]
    fn rectangular_wide() {
        let cost = vec![vec![9.0, 1.0, 8.0, 7.0]];
        let a = minimum_cost_assignment(&cost);
        assert_eq!(a, vec![Some(1)]);
    }

    #[test]
    fn rectangular_tall() {
        let cost = vec![vec![5.0], vec![1.0], vec![3.0]];
        let a = minimum_cost_assignment(&cost);
        // Only one column: the cheapest row gets it.
        assert_eq!(a.iter().flatten().count(), 1);
        assert_eq!(a[1], Some(0));
    }

    #[test]
    fn maximisation_flips() {
        let value = vec![vec![1.0, 9.0], vec![8.0, 2.0]];
        let a = maximum_value_assignment(&value);
        assert_eq!(a, vec![Some(1), Some(0)]);
    }

    #[test]
    fn empty_matrix() {
        assert!(minimum_cost_assignment(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_cost_panics() {
        let _ = minimum_cost_assignment(&[vec![f64::NAN]]);
    }
}

//! Cluster characterisation by frequent attribute values — the format of
//! the paper's Tables 7, 8 and 9: for each cluster, the list of
//! `(attribute, value, frequency)` triples whose in-cluster frequency
//! clears a threshold.

use rock_core::points::{CategoricalRecord, CategoricalSchema};
use rock_core::util::FxHashMap;

/// One frequent value of one attribute within a cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct FrequentValue {
    /// Attribute index in the schema.
    pub attribute: usize,
    /// Value id within the attribute's domain.
    pub value: u32,
    /// Fraction of the cluster's records (with the attribute present)
    /// carrying this value.
    pub frequency: f64,
}

/// The frequent-value profile of one cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterProfile {
    /// Cluster size.
    pub size: usize,
    /// Frequent values, ordered by attribute then descending frequency.
    pub values: Vec<FrequentValue>,
}

impl ClusterProfile {
    /// Renders the profile in the paper's `(attribute,value,freq)`
    /// notation.
    pub fn render(&self, schema: &CategoricalSchema) -> String {
        let mut out = String::new();
        for fv in &self.values {
            let attr = &schema.attributes()[fv.attribute];
            let value = attr.value_name(fv.value).unwrap_or("?");
            out.push_str(&format!(
                "({},{},{:.2}) ",
                attr.name(),
                value,
                fv.frequency
            ));
        }
        out.trim_end().to_owned()
    }
}

/// Computes per-cluster frequent-value profiles.
///
/// `min_frequency` is the reporting threshold (the paper's tables list
/// values with support ≥ ~0.5 within the cluster). Missing values are
/// excluded from both numerator and denominator.
///
/// # Panics
/// Panics if a member id is out of range or record arity disagrees with
/// the schema.
pub fn cluster_profiles(
    records: &[CategoricalRecord],
    schema: &CategoricalSchema,
    clusters: &[Vec<u32>],
    min_frequency: f64,
) -> Vec<ClusterProfile> {
    clusters
        .iter()
        .map(|members| {
            let mut values = Vec::new();
            for a in 0..schema.num_attributes() {
                let mut counts: FxHashMap<u32, usize> = FxHashMap::default();
                let mut present = 0usize;
                for &m in members {
                    let record = &records[m as usize];
                    assert_eq!(
                        record.arity(),
                        schema.num_attributes(),
                        "record arity must match schema"
                    );
                    if let Some(v) = record.value(a) {
                        *counts.entry(v).or_insert(0) += 1;
                        present += 1;
                    }
                }
                if present == 0 {
                    continue;
                }
                let mut attr_values: Vec<FrequentValue> = counts
                    .into_iter()
                    .map(|(value, c)| FrequentValue {
                        attribute: a,
                        value,
                        frequency: c as f64 / present as f64,
                    })
                    .filter(|fv| fv.frequency >= min_frequency)
                    .collect();
                attr_values.sort_by(|x, y| {
                    y.frequency
                        .total_cmp(&x.frequency)
                        .then(x.value.cmp(&y.value))
                });
                values.extend(attr_values);
            }
            ClusterProfile {
                size: members.len(),
                values,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> CategoricalSchema {
        CategoricalSchema::from_attributes(&[
            ("odor", vec!["none", "foul"]),
            ("color", vec!["brown", "white", "gray"]),
        ])
    }

    fn rec(vals: &[Option<u32>]) -> CategoricalRecord {
        CategoricalRecord::new(vals.to_vec())
    }

    #[test]
    fn frequencies_computed_over_present_values() {
        let records = vec![
            rec(&[Some(0), Some(0)]),
            rec(&[Some(0), Some(0)]),
            rec(&[Some(0), Some(1)]),
            rec(&[None, Some(1)]),
        ];
        let profiles = cluster_profiles(&records, &schema(), &[vec![0, 1, 2, 3]], 0.5);
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.size, 4);
        // odor none: 3/3 present = 1.0; color brown 2/4, white 2/4.
        assert!(p
            .values
            .iter()
            .any(|fv| fv.attribute == 0 && fv.value == 0 && fv.frequency == 1.0));
        let colors: Vec<_> = p.values.iter().filter(|fv| fv.attribute == 1).collect();
        assert_eq!(colors.len(), 2);
        assert!(colors.iter().all(|fv| fv.frequency == 0.5));
    }

    #[test]
    fn threshold_filters() {
        let records = vec![
            rec(&[Some(0), Some(0)]),
            rec(&[Some(0), Some(1)]),
            rec(&[Some(0), Some(2)]),
        ];
        let profiles = cluster_profiles(&records, &schema(), &[vec![0, 1, 2]], 0.5);
        // Only odor=none (1.0) survives; each color is 1/3.
        assert_eq!(profiles[0].values.len(), 1);
        assert_eq!(profiles[0].values[0].attribute, 0);
    }

    #[test]
    fn render_matches_paper_notation() {
        let records = vec![rec(&[Some(1), Some(2)])];
        let profiles = cluster_profiles(&records, &schema(), &[vec![0]], 0.5);
        let s = profiles[0].render(&schema());
        assert_eq!(s, "(odor,foul,1.00) (color,gray,1.00)");
    }

    #[test]
    fn multiple_clusters_profiled_independently() {
        let records = vec![
            rec(&[Some(0), Some(0)]),
            rec(&[Some(1), Some(2)]),
        ];
        let profiles =
            cluster_profiles(&records, &schema(), &[vec![0], vec![1]], 0.5);
        assert_eq!(profiles[0].values[0].value, 0);
        assert_eq!(profiles[1].values[0].value, 1);
    }

    #[test]
    fn empty_cluster_has_empty_profile() {
        let records = vec![rec(&[Some(0), Some(0)])];
        let profiles = cluster_profiles(&records, &schema(), &[vec![]], 0.5);
        assert!(profiles[0].values.is_empty());
        assert_eq!(profiles[0].size, 0);
    }
}

//! Scoring [`ClusterModel`] fits against ground truth.
//!
//! The metric primitives in this crate all want flat label slices; a
//! model fit hands back a [`ModelFit`] whose clustering has per-point
//! `Option<cluster>` assignments (with `None` = outlier). This module is
//! the bridge: it densifies assignments under the crate's outliers-are-
//! one-extra-class convention and bundles every §5-style quality number
//! into one [`ModelScore`], so evaluation and bench drivers can run *any*
//! model — ROCK or baseline — through a single scoring call.

use crate::agreement::{adjusted_rand_index, normalized_mutual_information, rand_index};
use crate::misclassification::{count_misclassified, Misclassification};
use rock_core::engine::{ClusterModel, ModelFit};
use rock_core::error::RockError;

/// Every external quality index of one model fit against ground truth.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelScore {
    /// Misclassified-point count under the optimal cluster matching
    /// (§5.4, Table 6), outliers their own class.
    pub misclassification: Misclassification,
    /// Rand index over densified labels.
    pub rand: f64,
    /// Adjusted Rand index over densified labels.
    pub ari: f64,
    /// Normalized mutual information over densified labels.
    pub nmi: f64,
    /// Predicted cluster count.
    pub num_clusters: usize,
    /// Predicted outlier count.
    pub outliers: usize,
}

/// Flattens `Option<cluster>` assignments to dense labels: outliers
/// (`None`) become the single extra label `outlier_label`. The agreement
/// indices build dense count matrices, so `outlier_label` should be the
/// side's cluster count — every id in `0..=outlier_label` then stays
/// compact.
pub fn dense_labels(assignments: &[Option<usize>], outlier_label: usize) -> Vec<usize> {
    assignments
        .iter()
        .map(|a| a.map_or(outlier_label, |c| c))
        .collect()
}

/// Scores predicted per-point assignments against true ones (both with
/// `None` = outlier).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn score_assignments(pred: &[Option<usize>], truth: &[Option<usize>]) -> ModelScore {
    assert_eq!(pred.len(), truth.len(), "pred and truth must align");
    let kp = pred.iter().flatten().copied().max().map_or(0, |m| m + 1);
    let kt = truth.iter().flatten().copied().max().map_or(0, |m| m + 1);
    let p = dense_labels(pred, kp);
    let t = dense_labels(truth, kt);
    ModelScore {
        misclassification: count_misclassified(pred, truth),
        rand: rand_index(&p, &t),
        ari: adjusted_rand_index(&p, &t),
        nmi: normalized_mutual_information(&p, &t),
        num_clusters: kp,
        outliers: pred.iter().filter(|a| a.is_none()).count(),
    }
}

/// Scores a finished [`ModelFit`] against ground truth. The fit's
/// clustering is expanded to `truth.len()` per-point assignments.
pub fn score_fit(fit: &ModelFit, truth: &[Option<usize>]) -> ModelScore {
    score_assignments(&fit.assignments(truth.len()), truth)
}

/// Fits `model` on `data` and scores the result — the one-call
/// evaluation path for any [`ClusterModel`].
///
/// # Errors
/// Whatever the model's `fit` surfaces (an interrupted governor, invalid
/// labeling parameters, …).
pub fn score_model<D: ?Sized, M: ClusterModel<D>>(
    model: &M,
    data: &D,
    truth: &[Option<usize>],
) -> Result<(ModelFit, ModelScore), RockError> {
    let fit = model.fit(data)?;
    let score = score_fit(&fit, truth);
    Ok((fit, score))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_core::cluster::Clustering;
    use rock_core::report::RunReport;

    fn fit_of(clusters: Vec<Vec<u32>>, outliers: Vec<u32>) -> ModelFit {
        ModelFit {
            clustering: Clustering::new(clusters, outliers),
            dendrogram: None,
            report: RunReport::new(),
        }
    }

    #[test]
    fn perfect_fit_scores_one_everywhere() {
        let truth = vec![Some(0), Some(0), Some(1), Some(1), None];
        let fit = fit_of(vec![vec![0, 1], vec![2, 3]], vec![4]);
        let s = score_fit(&fit, &truth);
        assert_eq!(s.misclassification.misclassified, 0);
        assert_eq!(s.rand, 1.0);
        assert_eq!(s.ari, 1.0);
        assert!((s.nmi - 1.0).abs() < 1e-12);
        assert_eq!(s.num_clusters, 2);
        assert_eq!(s.outliers, 1);
    }

    #[test]
    fn label_permutation_does_not_matter() {
        let truth = vec![Some(1), Some(1), Some(0), Some(0)];
        let fit = fit_of(vec![vec![0, 1], vec![2, 3]], vec![]);
        let s = score_fit(&fit, &truth);
        assert_eq!(s.misclassification.misclassified, 0);
        assert_eq!(s.ari, 1.0);
    }

    #[test]
    fn merged_clusters_lose_score() {
        let truth: Vec<Option<usize>> =
            (0..8).map(|i| Some(usize::from(i >= 4))).collect();
        let fit = fit_of(vec![(0..8).collect()], vec![]);
        let s = score_fit(&fit, &truth);
        assert_eq!(s.misclassification.misclassified, 4);
        assert!(s.ari < 0.5);
        assert_eq!(s.num_clusters, 1);
    }

    #[test]
    fn outlier_confusion_is_visible_in_every_index() {
        let truth = vec![Some(0), Some(0), None, None];
        let good = score_assignments(&[Some(0), Some(0), None, None], &truth);
        let bad = score_assignments(&[Some(0), Some(0), Some(0), Some(0)], &truth);
        assert!(good.misclassification.misclassified < bad.misclassification.misclassified);
        assert!(good.ari > bad.ari);
        assert_eq!(bad.outliers, 0);
    }

    #[test]
    fn dense_labels_compact() {
        assert_eq!(
            dense_labels(&[Some(1), None, Some(0)], 2),
            vec![1, 2, 0]
        );
    }
}

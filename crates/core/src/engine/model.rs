//! The uniform `fit → labels + report` contract shared by ROCK and the
//! traditional baseline algorithms.
//!
//! | Model | Crate | Data type `D` |
//! |---|---|---|
//! | ROCK ([`RockModel`]) | `rock-core` | `[P]` + any [`Similarity`] |
//! | centroid hierarchical | `rock-baselines` | `[Vec<f64>]` |
//! | single-link (MST) / group-average | `rock-baselines` | any `PairwiseSimilarity` |
//! | k-means | `rock-baselines` | `[Vec<f64>]` |
//! | k-modes | `rock-baselines` | `[CategoricalRecord]` |
//! | CLARANS | `rock-baselines` | any `PairwiseSimilarity` |
//! | DBSCAN | `rock-baselines` | any `PairwiseSimilarity` |
//!
//! `rock-eval` scores a [`ModelFit`] against ground truth and
//! `rock-bench` times one generically, so adding an algorithm to the
//! comparison is one trait impl, not a bespoke driver.

use crate::artifact::{ArtifactPoint, ModelArtifact};
use crate::cluster::Clustering;
use crate::dendrogram::Dendrogram;
use crate::error::RockError;
use crate::incremental::{IncrementalRockState, StalenessPolicy, UpdateOutcome};
use crate::report::RunReport;
use crate::rock::Rock;
use crate::similarity::Similarity;

/// What any clustering model produces: a flat clustering, the merge
/// hierarchy when the algorithm has one, and the run's structured
/// report (per-phase timings, degradation/interruption outcome).
#[derive(Clone, Debug)]
pub struct ModelFit {
    /// The flat clustering over the input data (outliers separated).
    pub clustering: Clustering,
    /// The full merge tree, for hierarchical models whose trace can be
    /// replayed ([`Dendrogram::from_run`]); `None` for partitional
    /// models and weeded hierarchical runs.
    pub dendrogram: Option<Dendrogram>,
    /// Structured account of the run.
    pub report: RunReport,
}

impl ModelFit {
    /// Per-point cluster assignments over `n` points (`None` =
    /// outlier), the shape evaluation metrics consume.
    pub fn assignments(&self, n: usize) -> Vec<Option<usize>> {
        self.clustering.assignments(n)
    }
}

/// A clustering algorithm fit through the shared engine contract.
///
/// `D` is the unsized data view the model consumes (`[Vec<f64>]` for
/// geometric baselines, `[CategoricalRecord]` for k-modes, a
/// `PairwiseSimilarity` source for similarity-driven models). Models
/// are configured at construction — including their
/// [`crate::governor::RunGovernor`], so every implementation is
/// cancellable and budget-aware — and `fit` is reusable: each call is
/// an independent run.
pub trait ClusterModel<D: ?Sized> {
    /// Short stable model name (`"rock"`, `"kmeans"`, …), used as the
    /// row label by evaluation and benchmark tables.
    fn name(&self) -> &'static str;

    /// Runs the model over `data`.
    ///
    /// # Errors
    /// [`RockError::Interrupted`] when the model's governor trips, plus
    /// model-specific input errors.
    fn fit(&self, data: &D) -> Result<ModelFit, RockError>;

    /// Persists `fit` as a durable model artifact at `path`, tagged
    /// with this model's [`name`](ClusterModel::name) (atomic
    /// write-then-rename; see [`ModelArtifact::save`]).
    ///
    /// The generic artifact carries the clustering, dendrogram and
    /// report but no representative sets; ROCK fits that should also be
    /// *servable* go through
    /// [`RockModel::fit_artifact`] instead.
    ///
    /// # Errors
    /// [`RockError::ArtifactIo`] on filesystem failure.
    fn save(&self, fit: &ModelFit, path: &std::path::Path) -> Result<(), RockError> {
        ModelArtifact::from_fit(self.name(), fit).save(path)
    }

    /// Loads a fit previously [`save`](ClusterModel::save)d by this
    /// model, re-validating the artifact end to end.
    ///
    /// # Errors
    /// [`RockError::ArtifactMismatch`] when the artifact was saved
    /// under a different model name; otherwise as
    /// [`ModelArtifact::load`].
    fn load(&self, path: &std::path::Path) -> Result<ModelFit, RockError> {
        let artifact = ModelArtifact::load(path)?;
        if artifact.model() != self.name() {
            return Err(RockError::ArtifactMismatch {
                detail: format!(
                    "artifact was saved by model \"{}\", not \"{}\"",
                    artifact.model(),
                    self.name()
                ),
            });
        }
        Ok(artifact.to_fit())
    }
}

/// A [`ClusterModel`] whose fitted artifact can keep evolving online.
///
/// The extension to the engine contract for models that support
/// incremental updates: an artifact opens into an evolving
/// [`State`](IncrementalModel::State), arrival batches are absorbed
/// with [`update`](IncrementalModel::update), and the state both
/// journals itself (update WAL, replayable to bit-identity with
/// [`resume_updates`](IncrementalModel::resume_updates)) and persists
/// as an updated artifact
/// ([`save_updated`](IncrementalModel::save_updated)).
///
/// Batch fitting is untouched: `fit` through this trait is the same
/// bit-for-bit run as through [`ClusterModel`] alone.
pub trait IncrementalModel<D: ?Sized>: ClusterModel<D> {
    /// The evolving-model state the update path drives.
    type State;

    /// Opens `artifact` as an evolving model governed by `policy` (an
    /// update state already stored in the artifact keeps its own
    /// policy).
    ///
    /// # Errors
    /// [`RockError::ArtifactMismatch`] when the artifact cannot serve
    /// updates (no representative sets, wrong point type, bad policy).
    fn open_incremental(
        &self,
        artifact: &ModelArtifact,
        policy: StalenessPolicy,
    ) -> Result<Self::State, RockError>;

    /// Absorbs one batch of arrivals into `state`: labels them against
    /// the per-cluster representatives, accumulates dirty links, and
    /// runs a governed bounded re-merge when the staleness criterion
    /// trips.
    ///
    /// # Errors
    /// [`RockError::Interrupted`] when the model's governor trips
    /// (resumable: replay the state's WAL), plus model-specific
    /// labeling errors.
    fn update(&self, state: &mut Self::State, arrivals: &D) -> Result<UpdateOutcome, RockError>;

    /// Replays an update WAL over its base `artifact` to the
    /// bit-identical evolved state; the second return reports a torn
    /// (truncated) log tail.
    ///
    /// # Errors
    /// [`RockError::WalCorrupt`] / [`RockError::WalMismatch`] as for
    /// [`crate::incremental::IncrementalRockState::resume`].
    fn resume_updates(
        &self,
        artifact: &ModelArtifact,
        wal_bytes: &[u8],
    ) -> Result<(Self::State, bool), RockError>;

    /// Persists the evolved `state` as an updated (version-2) artifact
    /// at `path`, atomically as in [`ModelArtifact::save`].
    ///
    /// # Errors
    /// [`RockError::ArtifactIo`] on filesystem failure.
    fn save_updated(&self, state: &Self::State, path: &std::path::Path) -> Result<(), RockError>;
}

/// ROCK as a [`ClusterModel`]: the full governed Fig.-2 pipeline
/// ([`crate::rock::Rock::try_run`]) with a user-chosen similarity
/// measure baked in.
#[derive(Clone, Debug)]
pub struct RockModel<S> {
    rock: Rock,
    measure: S,
}

impl<S> RockModel<S> {
    /// Wraps a configured driver and measure.
    pub fn new(rock: Rock, measure: S) -> Self {
        RockModel { rock, measure }
    }

    /// The underlying driver (e.g. to reach its governor's cancel
    /// token).
    pub fn rock(&self) -> &Rock {
        &self.rock
    }

    /// Fits like [`ClusterModel::fit`] and additionally captures the
    /// drawn per-cluster labeling sets Lᵢ into a *servable*
    /// [`ModelArtifact`] — labeling through the artifact (live or
    /// reloaded, any thread count) is bit-identical to this run.
    ///
    /// # Errors
    /// As [`ClusterModel::fit`], plus [`RockError::ArtifactMismatch`]
    /// if the labeler disagrees with the fit (unreachable for a healthy
    /// pipeline).
    pub fn fit_artifact<P>(&self, data: &[P]) -> Result<(ModelFit, ModelArtifact), RockError>
    where
        P: ArtifactPoint + Clone + Sync,
        S: Similarity<P> + Sync,
    {
        let (result, report, labeler) = self.rock.try_run_labeled(data, &self.measure)?;
        let dendrogram = Dendrogram::from_run(&result.sample_run);
        let fit = ModelFit {
            clustering: result.full_clustering(),
            dendrogram,
            report,
        };
        let config = self.rock.config();
        let artifact = ModelArtifact::from_labeled(
            "rock",
            &fit,
            &labeler,
            config.labeling_fraction,
            config.hash_seed,
        )?;
        Ok((fit, artifact))
    }
}

impl<P, S> ClusterModel<[P]> for RockModel<S>
where
    P: Clone + Sync,
    S: Similarity<P> + Sync,
{
    fn name(&self) -> &'static str {
        "rock"
    }

    fn fit(&self, data: &[P]) -> Result<ModelFit, RockError> {
        let (result, report) = self.rock.try_run(data, &self.measure)?;
        let dendrogram = Dendrogram::from_run(&result.sample_run);
        Ok(ModelFit {
            clustering: result.full_clustering(),
            dendrogram,
            report,
        })
    }
}

impl<P, S> IncrementalModel<[P]> for RockModel<S>
where
    P: ArtifactPoint + Clone + Sync,
    S: Similarity<P> + Sync,
{
    type State = IncrementalRockState<P>;

    fn open_incremental(
        &self,
        artifact: &ModelArtifact,
        policy: StalenessPolicy,
    ) -> Result<Self::State, RockError> {
        IncrementalRockState::from_artifact(artifact, policy)
    }

    fn update(&self, state: &mut Self::State, arrivals: &[P]) -> Result<UpdateOutcome, RockError> {
        state.update(arrivals, &self.measure, self.rock.governor())
    }

    fn resume_updates(
        &self,
        artifact: &ModelArtifact,
        wal_bytes: &[u8],
    ) -> Result<(Self::State, bool), RockError> {
        IncrementalRockState::resume(artifact, wal_bytes, &self.measure)
    }

    fn save_updated(&self, state: &Self::State, path: &std::path::Path) -> Result<(), RockError> {
        state.to_artifact()?.save(path)
    }
}

//! The uniform `fit → labels + report` contract shared by ROCK and the
//! traditional baseline algorithms.
//!
//! | Model | Crate | Data type `D` |
//! |---|---|---|
//! | ROCK ([`RockModel`]) | `rock-core` | `[P]` + any [`Similarity`] |
//! | centroid hierarchical | `rock-baselines` | `[Vec<f64>]` |
//! | single-link (MST) / group-average | `rock-baselines` | any `PairwiseSimilarity` |
//! | k-means | `rock-baselines` | `[Vec<f64>]` |
//! | k-modes | `rock-baselines` | `[CategoricalRecord]` |
//! | CLARANS | `rock-baselines` | any `PairwiseSimilarity` |
//! | DBSCAN | `rock-baselines` | any `PairwiseSimilarity` |
//!
//! `rock-eval` scores a [`ModelFit`] against ground truth and
//! `rock-bench` times one generically, so adding an algorithm to the
//! comparison is one trait impl, not a bespoke driver.

use crate::cluster::Clustering;
use crate::dendrogram::Dendrogram;
use crate::error::RockError;
use crate::report::RunReport;
use crate::rock::Rock;
use crate::similarity::Similarity;

/// What any clustering model produces: a flat clustering, the merge
/// hierarchy when the algorithm has one, and the run's structured
/// report (per-phase timings, degradation/interruption outcome).
#[derive(Clone, Debug)]
pub struct ModelFit {
    /// The flat clustering over the input data (outliers separated).
    pub clustering: Clustering,
    /// The full merge tree, for hierarchical models whose trace can be
    /// replayed ([`Dendrogram::from_run`]); `None` for partitional
    /// models and weeded hierarchical runs.
    pub dendrogram: Option<Dendrogram>,
    /// Structured account of the run.
    pub report: RunReport,
}

impl ModelFit {
    /// Per-point cluster assignments over `n` points (`None` =
    /// outlier), the shape evaluation metrics consume.
    pub fn assignments(&self, n: usize) -> Vec<Option<usize>> {
        self.clustering.assignments(n)
    }
}

/// A clustering algorithm fit through the shared engine contract.
///
/// `D` is the unsized data view the model consumes (`[Vec<f64>]` for
/// geometric baselines, `[CategoricalRecord]` for k-modes, a
/// `PairwiseSimilarity` source for similarity-driven models). Models
/// are configured at construction — including their
/// [`crate::governor::RunGovernor`], so every implementation is
/// cancellable and budget-aware — and `fit` is reusable: each call is
/// an independent run.
pub trait ClusterModel<D: ?Sized> {
    /// Short stable model name (`"rock"`, `"kmeans"`, …), used as the
    /// row label by evaluation and benchmark tables.
    fn name(&self) -> &'static str;

    /// Runs the model over `data`.
    ///
    /// # Errors
    /// [`RockError::Interrupted`] when the model's governor trips, plus
    /// model-specific input errors.
    fn fit(&self, data: &D) -> Result<ModelFit, RockError>;
}

/// ROCK as a [`ClusterModel`]: the full governed Fig.-2 pipeline
/// ([`crate::rock::Rock::try_run`]) with a user-chosen similarity
/// measure baked in.
#[derive(Clone, Debug)]
pub struct RockModel<S> {
    rock: Rock,
    measure: S,
}

impl<S> RockModel<S> {
    /// Wraps a configured driver and measure.
    pub fn new(rock: Rock, measure: S) -> Self {
        RockModel { rock, measure }
    }

    /// The underlying driver (e.g. to reach its governor's cancel
    /// token).
    pub fn rock(&self) -> &Rock {
        &self.rock
    }
}

impl<P, S> ClusterModel<[P]> for RockModel<S>
where
    P: Clone + Sync,
    S: Similarity<P> + Sync,
{
    fn name(&self) -> &'static str {
        "rock"
    }

    fn fit(&self, data: &[P]) -> Result<ModelFit, RockError> {
        let (result, report) = self.rock.try_run(data, &self.measure)?;
        let dendrogram = Dendrogram::from_run(&result.sample_run);
        Ok(ModelFit {
            clustering: result.full_clustering(),
            dendrogram,
            report,
        })
    }
}

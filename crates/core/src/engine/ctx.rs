//! The shared per-run state threaded through every pipeline stage.

use crate::governor::{DegradationNote, DegradationPolicy, RunGovernor};
use crate::report::RunReport;
use crate::wal::MergeWal;
use rand::{rngs::StdRng, SeedableRng};

/// Everything one clustering run carries between stages.
///
/// A `RunCtx` is created by [`crate::engine::Pipeline`] and handed by
/// mutable reference to each [`crate::engine::Stage`]; it owns the
/// governor (budgets + cancellation), the optional merge WAL, the
/// sampling/labeling RNG stream, the seeded-hasher override, the
/// degradation policy and the report being accumulated.
///
/// | Field | Carries | Consumed by |
/// |---|---|---|
/// | `governor` | budgets, cancellation, kill injection | every stage entry + in-loop checkpoints |
/// | `wal` | merge journal / continuation log | merge + resume stages |
/// | `rng` | the seeded sampling/labeling stream | sample + label stages |
/// | `hash_seed` | hasher perturbation for the merge engine | merge + resume stages |
/// | `degradation` | what to do on a budget trip | links (downshift), pipeline (subsample/components) |
/// | `report` | per-phase timings, outcome counters | the pipeline runner |
/// | `note` | provenance of an applied degradation | links stage + pipeline runner |
#[derive(Debug)]
pub struct RunCtx<'w> {
    /// Budgets and cancellation for this run. Held by value: the
    /// governor is `Arc`-backed, so the pipeline can swap in a retry
    /// governor (subsample restart) while clones elsewhere keep sharing
    /// the original token, clock and memory meter.
    pub governor: RunGovernor,
    /// Merge write-ahead log, when the run journals its merge decisions
    /// (or writes a continuation log during resume). `None` for
    /// unjournaled runs.
    pub wal: Option<&'w mut MergeWal>,
    /// The run's RNG stream. Sampling and labeling draw from this one
    /// stream in stage order, which is what makes a seeded governed run
    /// reproduce the plain driver's draws exactly.
    pub rng: StdRng,
    /// Optional seed perturbing the merge engine's internal hash maps
    /// (see [`crate::algorithm::RockAlgorithm::with_hash_seed`]).
    /// `None` keeps the default hasher.
    pub hash_seed: Option<u64>,
    /// What to do when a governor budget trips mid-run.
    pub degradation: DegradationPolicy,
    /// The report accumulated across stages (phase timings are recorded
    /// by the pipeline runner; counters by the stages that own them).
    pub report: RunReport,
    /// Provenance of a degradation applied earlier in this run, if any;
    /// moved into [`RunReport::degraded`] when the run completes.
    pub note: Option<DegradationNote>,
}

impl<'w> RunCtx<'w> {
    /// A context with the given governor and policy, no WAL, and an RNG
    /// seeded from `seed` (or from the OS when `None`).
    pub fn new(
        governor: RunGovernor,
        degradation: DegradationPolicy,
        seed: Option<u64>,
        hash_seed: Option<u64>,
    ) -> Self {
        RunCtx {
            governor,
            wal: None,
            rng: match seed {
                Some(s) => StdRng::seed_from_u64(s),
                None => StdRng::from_os_rng(),
            },
            hash_seed,
            degradation,
            report: RunReport::new(),
            note: None,
        }
    }

    /// Attaches a merge WAL, rebinding the context lifetime to the
    /// journal borrow.
    pub fn with_wal(self, wal: &mut MergeWal) -> RunCtx<'_> {
        RunCtx {
            governor: self.governor,
            wal: Some(wal),
            rng: self.rng,
            hash_seed: self.hash_seed,
            degradation: self.degradation,
            report: self.report,
            note: self.note,
        }
    }
}

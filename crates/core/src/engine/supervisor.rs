//! The shard supervisor: retry, resume, quarantine and merge for
//! fault-isolated shard-and-merge runs.
//!
//! Each shard moves through a small state machine, driven entirely by
//! typed errors (never panics):
//!
//! ```text
//!   Pending ──► Running(attempt n) ──ok──────────────────────► Done
//!                  │        ▲
//!                  │ trip   │ backoff · carry shard WAL
//!                  ▼        │
//!              Retrying(n) ─┘──ladder exhausted / poisoned──► Quarantined
//! ```
//!
//! * **Running** — the shard's slice runs the staged
//!   [`Pipeline::fit_wal`] composition (θ-neighbors → journaled merge)
//!   under a *child* governor ([`RunGovernor::child`]): its own deadline
//!   and memory slice, the parent's cancellation token.
//! * **Retrying** — a deadline/memory/kill trip sleeps the configured
//!   (optionally seed-jittered) backoff, then resumes from the shard's
//!   carried WAL when the interruption was resumable — a replay is
//!   bit-identical to an uninterrupted run — or restarts from scratch
//!   when it was not (or the carried log turned out damaged).
//! * **Quarantined** — after `1 + max_retries` failed attempts (or
//!   immediately on a poisoned, NaN-producing shard: deterministic
//!   corruption is never retried), the shard's points are excluded and
//!   recorded as a [`ShardDegradationNote`] in the report. The run
//!   continues; one bad shard never takes down or silently skews the
//!   whole clustering.
//!
//! An externally cancelled parent is authoritative: it aborts the whole
//! run with [`RockError::Interrupted`], and is never masked as a
//! quarantine.
//!
//! Surviving shard clusters are merged by a coarse ROCK pass over their
//! `Lᵢ` representative sets ([`RepSetSimilarity`]), run under the same
//! retry ladder (fault plans address it by the sentinel shard index
//! `shard count`). If *that* ladder is exhausted, the run degrades to
//! the concatenation of shard-level clusters — recorded, never silent.

use crate::algorithm::{OutlierPolicy, RockRun};
use crate::cluster::Clustering;
use crate::engine::pipeline::Pipeline;
use crate::engine::shard::{
    shard_ranges, NoFaults, RepSetSimilarity, ShardConfig, ShardFaultPlan, ShardRun,
};
use crate::error::RockError;
use crate::governor::{DegradationPolicy, Phase, RunGovernor};
use crate::report::{PhaseTimer, RunReport, ShardDegradationNote};
use crate::rock::RockConfig;
use crate::similarity::{CheckedSimilarity, PairwiseSimilarity, PointsWith, Similarity};
use crate::wal::MergeWal;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Range;

/// A supervised multi-shard ROCK run: deterministic sharding, per-shard
/// fault isolation, representative-level merge.
///
/// Build one with [`ShardSupervisor::new`] (or
/// [`crate::rock::Rock::shard_supervisor`]) and call
/// [`ShardSupervisor::run`]. With `shards == 1` the result is
/// bit-identical to the unsharded journaled pipeline
/// ([`crate::rock::Rock::cluster_wal`]) at every thread count.
#[derive(Clone, Debug)]
pub struct ShardSupervisor {
    config: RockConfig,
    shard: ShardConfig,
    governor: RunGovernor,
}

/// The outcome of a supervised shard-and-merge run.
#[derive(Clone, Debug)]
pub struct ShardedRun {
    /// The final clustering over the full input, in global point ids.
    /// Points of quarantined shards appear in neither clusters nor
    /// outliers — they are listed in the report's shard notes.
    pub clustering: Clustering,
    /// The surviving shards' local runs, in shard order.
    pub shard_runs: Vec<ShardRun>,
    /// The aggregated report: shard count, per-phase timings and work
    /// counters summed across shards, and quarantine provenance.
    pub report: RunReport,
}

impl ShardedRun {
    /// Global ids of every point excluded by shard quarantine, sorted
    /// ascending (empty when every shard survived).
    pub fn excluded_points(&self) -> Vec<u32> {
        self.report.excluded_points()
    }
}

/// What one shard's retry ladder concluded.
enum ShardOutcome {
    Done { run: RockRun, attempts: u32 },
    Quarantined { attempts: u32, reason: String },
}

impl ShardSupervisor {
    /// Validates `shard` against `config` and builds a supervisor whose
    /// parent governor is `governor`.
    ///
    /// # Errors
    /// [`RockError::InvalidShardCount`] for zero shards,
    /// [`RockError::InvalidLabelingFraction`] for a representative
    /// fraction outside `(0, 1]`, [`RockError::InvalidTheta`] for a
    /// merge θ outside `[0, 1]`.
    pub fn new(
        config: RockConfig,
        shard: ShardConfig,
        governor: RunGovernor,
    ) -> Result<Self, RockError> {
        if shard.shards == 0 {
            return Err(RockError::InvalidShardCount(0));
        }
        if !(shard.representative_fraction > 0.0 && shard.representative_fraction <= 1.0) {
            return Err(RockError::InvalidLabelingFraction(
                shard.representative_fraction,
            ));
        }
        if let Some(t) = shard.merge_theta {
            if !(0.0..=1.0).contains(&t) {
                return Err(RockError::InvalidTheta(t));
            }
        }
        Ok(ShardSupervisor {
            config,
            shard,
            governor,
        })
    }

    /// The shard configuration this supervisor runs under.
    pub fn shard_config(&self) -> &ShardConfig {
        &self.shard
    }

    /// Runs the supervised shard-and-merge pipeline over `data`.
    ///
    /// # Errors
    /// [`RockError::Interrupted`] when the *parent* governor is
    /// cancelled or out of budget (per-shard failures quarantine instead
    /// of erroring), [`RockError::NonFiniteSimilarity`] never — a
    /// poisoned shard is quarantined with provenance.
    pub fn run<P, S>(&self, data: &[P], measure: &S) -> Result<ShardedRun, RockError>
    where
        P: Clone + Sync,
        S: Similarity<P> + Sync,
    {
        self.run_with_plan(data, measure, &NoFaults)
    }

    /// [`ShardSupervisor::run`] with a deterministic fault plan applied
    /// to every shard attempt (and to the coarse merge pass, addressed
    /// as shard index `shard count`) — the chaos-matrix test seam.
    ///
    /// # Errors
    /// As [`ShardSupervisor::run`].
    pub fn run_with_plan<P, S, F>(
        &self,
        data: &[P],
        measure: &S,
        plan: &F,
    ) -> Result<ShardedRun, RockError>
    where
        P: Clone + Sync,
        S: Similarity<P> + Sync,
        F: ShardFaultPlan,
    {
        self.run_inner(data, measure, plan, &[])
    }

    /// Runs only the shards *not* listed in `excluded` (fault-free),
    /// quarantining the excluded ones by fiat with zero attempts — the
    /// oracle the quarantine-ladder proptests compare a faulted run
    /// against: surviving output must be bit-identical.
    ///
    /// # Errors
    /// As [`ShardSupervisor::run`].
    pub fn run_excluding<P, S>(
        &self,
        data: &[P],
        measure: &S,
        excluded: &[usize],
    ) -> Result<ShardedRun, RockError>
    where
        P: Clone + Sync,
        S: Similarity<P> + Sync,
    {
        self.run_inner(data, measure, &NoFaults, excluded)
    }

    fn run_inner<P, S, F>(
        &self,
        data: &[P],
        measure: &S,
        plan: &F,
        excluded: &[usize],
    ) -> Result<ShardedRun, RockError>
    where
        P: Clone + Sync,
        S: Similarity<P> + Sync,
        F: ShardFaultPlan,
    {
        self.governor.arm();
        let ranges = shard_ranges(data.len(), self.shard.shards);
        let mut report = RunReport::new();
        report.records_read = data.len() as u64;
        report.shard_count = Some(ranges.len());

        // Phase "cluster": every shard's attempts. The perf counters are
        // process-global, so one snapshot window around the whole loop
        // sums the per-shard kernel work — satellite aggregation for
        // free, comparable with single-run reports.
        let t = PhaseTimer::start();
        let perf_before = crate::perf::snapshot();
        let mut shard_runs: Vec<ShardRun> = Vec::new();
        for (s, range) in ranges.iter().enumerate() {
            if excluded.contains(&s) {
                report.shard_notes.push(ShardDegradationNote {
                    shard: s,
                    points: range.clone().map(|i| i as u32).collect(),
                    attempts: 0,
                    reason: "excluded by caller".to_string(),
                });
                continue;
            }
            // tidy-allow(panic-reach): plan ranges partition 0..data.len() by construction in plan_shards
            let points = &data[range.clone()];
            match self.run_shard(points, measure, s, plan)? {
                ShardOutcome::Done { run, attempts } => shard_runs.push(ShardRun {
                    shard: s,
                    range: range.clone(),
                    attempts,
                    run,
                }),
                ShardOutcome::Quarantined { attempts, reason } => {
                    report.shard_notes.push(ShardDegradationNote {
                        shard: s,
                        points: range.clone().map(|i| i as u32).collect(),
                        attempts,
                        reason,
                    });
                }
            }
        }
        t.record(&mut report, "cluster");
        report.record_phase_perf("cluster", crate::perf::snapshot().since(&perf_before));

        // Phase "merge": the coarse representative-level pass.
        let t = PhaseTimer::start();
        let perf_before = crate::perf::snapshot();
        let clustering = self.merge(data, measure, ranges.len(), &shard_runs, plan, &mut report)?;
        t.record(&mut report, "merge");
        report.record_phase_perf("merge", crate::perf::snapshot().since(&perf_before));

        report.outliers = clustering.outliers.len() as u64;
        Ok(ShardedRun {
            clustering,
            shard_runs,
            report,
        })
    }

    /// The child governor a shard attempt starts from: shared parent
    /// cancellation, plus the configured per-shard budgets.
    fn child_governor(&self) -> RunGovernor {
        let mut g = self.governor.child();
        if let Some(d) = self.shard.shard_deadline {
            g = g.with_time_budget(d);
        }
        if let Some(m) = self.shard.shard_memory_budget {
            g = g.with_memory_budget(m);
        }
        g
    }

    /// One shard's retry ladder (see the module diagram).
    fn run_shard<P, S, F>(
        &self,
        points: &[P],
        measure: &S,
        shard: usize,
        plan: &F,
    ) -> Result<ShardOutcome, RockError>
    where
        P: Clone + Sync,
        S: Similarity<P> + Sync,
        F: ShardFaultPlan,
    {
        let attempts_budget = self.shard.retry.max_retries.saturating_add(1);
        let mut carried: Option<Vec<u8>> = None;
        let mut last_failure = String::new();
        let mut attempt = 0u32;
        while attempt < attempts_budget {
            // A cancelled or over-budget *parent* aborts the whole run;
            // quarantine never masks it.
            self.governor.check(Phase::Merge)?;
            let gov = plan.governor(shard, attempt, self.child_governor());
            gov.arm();
            let checked = CheckedSimilarity::new(measure);
            let pw = PointsWith::new(points, &checked);
            let mut wal = MergeWal::new();
            let pipeline = Pipeline::new(self.config, gov).attach_wal(&mut wal);
            let outcome = match carried.as_deref() {
                Some(bytes) => pipeline.resume(&pw, bytes),
                None => pipeline.fit_wal(&pw),
            };
            let failure = match outcome {
                Ok(run) => match checked.error() {
                    None => {
                        return Ok(ShardOutcome::Done {
                            run,
                            attempts: attempt + 1,
                        })
                    }
                    Some(e) => e,
                },
                Err(e) => e,
            };
            last_failure = failure.to_string();
            match failure {
                // A deterministic poison no retry can fix: quarantine
                // now (the corruption-never-retried rule).
                RockError::NonFiniteSimilarity { .. } => {
                    return Ok(ShardOutcome::Quarantined {
                        attempts: attempt + 1,
                        reason: last_failure,
                    });
                }
                RockError::Interrupted {
                    phase,
                    reason,
                    resumable,
                } => {
                    // Distinguish a real external cancellation (parent
                    // token fired) from an injected kill or a tripped
                    // per-shard budget: the former is authoritative.
                    if self.governor.cancel_token().is_cancelled() {
                        return Err(RockError::Interrupted {
                            phase,
                            reason,
                            resumable,
                        });
                    }
                    if resumable && !wal.is_empty() {
                        // Carry the shard's WAL into the next attempt:
                        // the resume replays to a bit-identical result.
                        // A log damaged in flight (torn write past the
                        // recoverable tail) is useless to resume from —
                        // validate now rather than burn a ladder rung on
                        // a doomed resume; torn *tails* parse fine and
                        // replay truncated.
                        let bytes = plan.wal_bytes(shard, attempt, wal.into_bytes());
                        if crate::wal::parse_wal(&bytes).is_ok() {
                            carried = Some(bytes);
                        }
                    }
                    // Otherwise keep whatever log the previous attempt
                    // carried (still valid to resume from), or None for
                    // a from-scratch retry.
                }
                // The carried log turned out damaged or foreign: drop it
                // and retry from scratch.
                RockError::WalCorrupt { .. } | RockError::WalMismatch { .. } => {
                    carried = None;
                }
                // Anything else burns a ladder rung too — the shard ends
                // in provenance-carrying quarantine, not a global abort.
                _ => {}
            }
            attempt += 1;
            if attempt < attempts_budget {
                let delay = self.shard.retry.backoff(attempt - 1);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
        }
        Ok(ShardOutcome::Quarantined {
            attempts: attempts_budget,
            reason: last_failure,
        })
    }

    /// Representative set `Lᵢ` of one shard cluster: all members at
    /// fraction 1.0, otherwise a deterministic seeded sample keyed by
    /// `(seed, shard, cluster)` — independent of retry history, so
    /// faulted and fault-free runs draw identical sets.
    fn representatives<P: Clone>(
        &self,
        shard: usize,
        cluster: usize,
        global: &[u32],
        data: &[P],
    ) -> Vec<P> {
        let frac = self.shard.representative_fraction;
        if frac >= 1.0 || global.is_empty() {
            return global
                .iter()
                .filter_map(|&g| data.get(g as usize).cloned())
                .collect();
        }
        let keep = ((global.len() as f64 * frac).ceil() as usize).clamp(1, global.len());
        let mix = crate::util::splitmix64(
            self.config.seed.unwrap_or(0)
                ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (cluster as u64).wrapping_mul(0xA24B_AED4_963E_E407),
        );
        let mut rng = StdRng::seed_from_u64(mix);
        crate::sampling::sample_indices(global.len(), keep, &mut rng)
            .iter()
            .filter_map(|&i| global.get(i).and_then(|&g| data.get(g as usize)).cloned())
            .collect()
    }

    /// The coarse merge: shard-level outliers become global outliers;
    /// surviving shard clusters become coarse points (their `Lᵢ`
    /// representative sets) clustered by a second ROCK pass on
    /// representative link density, then completed down to the target k
    /// by density single-link (tiny coarse graphs are often too
    /// link-starved for goodness-based merging alone). One surviving
    /// shard skips the pass outright — that is what makes `shards == 1`
    /// bit-identical to the unsharded pipeline.
    fn merge<P, S, F>(
        &self,
        data: &[P],
        measure: &S,
        num_shards: usize,
        shard_runs: &[ShardRun],
        plan: &F,
        report: &mut RunReport,
    ) -> Result<Clustering, RockError>
    where
        P: Clone + Sync,
        S: Similarity<P> + Sync,
        F: ShardFaultPlan,
    {
        let mut outliers: Vec<u32> = Vec::new();
        for sr in shard_runs {
            for &o in &sr.run.clustering.outliers {
                outliers.push(sr.range.start as u32 + o);
            }
        }
        if shard_runs.is_empty() {
            return Ok(Clustering::new(Vec::new(), outliers));
        }
        if let [only] = shard_runs {
            let base = only.range.start as u32;
            let clusters = only
                .run
                .clustering
                .clusters
                .iter()
                .map(|c| c.iter().map(|&p| base + p).collect())
                .collect();
            return Ok(Clustering::new(clusters, outliers));
        }

        // Coarse points: one per surviving shard cluster.
        let mut sets: Vec<Vec<P>> = Vec::new();
        let mut members: Vec<Vec<u32>> = Vec::new();
        for sr in shard_runs {
            for (ci, cluster) in sr.run.clustering.clusters.iter().enumerate() {
                let global: Vec<u32> = cluster
                    .iter()
                    .map(|&p| sr.range.start as u32 + p)
                    .collect();
                sets.push(self.representatives(sr.shard, ci, &global, data));
                members.push(global);
            }
        }

        let checked = CheckedSimilarity::new(measure);
        let sim = RepSetSimilarity::new(&sets, &checked, self.config.theta);
        let coarse_config = RockConfig {
            theta: self.shard.merge_theta.unwrap_or(self.config.theta),
            // Isolated shard clusters must stay clusters, not vanish as
            // coarse-level outliers.
            outliers: OutlierPolicy::disabled(),
            sample_size: None,
            degradation: DegradationPolicy::Fail,
            ..self.config
        };

        // The coarse pass runs the same retry ladder, addressed by the
        // sentinel shard index `num_shards`. Attempts restart from
        // scratch — the pass is tiny (one point per shard cluster).
        let attempts_budget = self.shard.retry.max_retries.saturating_add(1);
        let mut last_failure = String::new();
        let mut coarse: Option<RockRun> = None;
        let mut attempt = 0u32;
        let mut attempts_used = 0u32;
        while attempt < attempts_budget {
            self.governor.check(Phase::Merge)?;
            let gov = plan.governor(num_shards, attempt, self.child_governor());
            gov.arm();
            attempts_used = attempt + 1;
            match Pipeline::new(coarse_config, gov).fit_wal(&sim) {
                Ok(run) => match checked.error() {
                    None => {
                        coarse = Some(run);
                        break;
                    }
                    Some(e) => {
                        // Poisoned representatives: deterministic, so
                        // exhaust the ladder immediately.
                        last_failure = e.to_string();
                        break;
                    }
                },
                Err(e) => {
                    if self.governor.cancel_token().is_cancelled() {
                        return Err(e);
                    }
                    last_failure = e.to_string();
                    attempt += 1;
                    if attempt < attempts_budget {
                        let delay = self.shard.retry.backoff(attempt - 1);
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                        }
                    }
                }
            }
        }

        let Some(run) = coarse else {
            report.shard_notes.push(ShardDegradationNote {
                shard: num_shards,
                points: Vec::new(),
                attempts: attempts_used,
                reason: format!(
                    "coarse merge abandoned ({last_failure}); shard clusters kept unmerged"
                ),
            });
            return Ok(Clustering::new(members, outliers));
        };

        // Coarse groups of coarse-point ids. The coarse outlier policy
        // is disabled, but a coarse point can still end up outside every
        // cluster (e.g. pruned as neighborless); keep it as its own
        // group rather than dropping its points.
        let mut groups: Vec<Vec<u32>> = run.clustering.clusters.clone();
        for &cp in &run.clustering.outliers {
            groups.push(vec![cp]);
        }

        // Density single-link completion. ROCK's goodness needs *common*
        // neighbors, and a handful of coarse points rarely has any — a
        // split cluster whose two halves are each other's only neighbor
        // would stay split forever. Finish the agglomeration down to the
        // target k by merging the densest remaining pair of groups while
        // its best cross-pair representative density still clears the
        // coarse θ. Deterministic: first maximal pair in index order.
        while groups.len() > self.config.k {
            let mut best = (0usize, 0usize, f64::NEG_INFINITY);
            for i in 0..groups.len() {
                for j in (i + 1)..groups.len() {
                    let mut density = f64::NEG_INFINITY;
                    // tidy-allow(panic-reach): i < j < groups.len() by the loop bounds
                    for &a in &groups[i] {
                        for &b in &groups[j] {
                            let s = sim.sim(a as usize, b as usize);
                            if s > density {
                                density = s;
                            }
                        }
                    }
                    if density > best.2 {
                        best = (i, j, density);
                    }
                }
            }
            // Densities are finite in [0, 1] (or −∞ when a group pair
            // has no cross pairs), so `<` is the exact negation here.
            if best.2 < coarse_config.theta {
                break;
            }
            let absorbed = groups.swap_remove(best.1);
            // tidy-allow(panic-reach): best.0 < best.1 < groups.len() — the pair search only improves best with in-bounds indices, and the θ break above rejects the (0, 0, −∞) initial value
            groups[best.0].extend(absorbed);
        }

        // Map coarse groups back to global point sets.
        let clusters: Vec<Vec<u32>> = groups
            .iter()
            .map(|group| {
                group
                    .iter()
                    .flat_map(|&cp| members.get(cp as usize).into_iter().flatten().copied())
                    .collect()
            })
            .collect();
        Ok(Clustering::new(clusters, outliers))
    }
}

/// Supervised shard ranges of this run's input (see [`shard_ranges`]).
pub fn planned_ranges(data_len: usize, config: &ShardConfig) -> Vec<Range<usize>> {
    shard_ranges(data_len, config.shards)
}

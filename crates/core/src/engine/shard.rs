//! Sharding primitives for the fault-isolated shard-and-merge engine.
//!
//! The paper sidesteps scale by sampling once (Fig. 2); shard-and-merge
//! goes past it: the input is partitioned into deterministic contiguous
//! shards ([`shard_ranges`]), each shard is clustered by the staged
//! [`crate::engine::Pipeline`] under its own child governor, and the
//! shard-level clusters are merged by a second, coarse ROCK pass over
//! their representative sets ([`RepSetSimilarity`]) — He et al.'s
//! link-clustering view (PAPERS.md) justifies treating
//! representative-level links as a faithful clustering substrate, and
//! Genie motivates an outlier-resistant agglomerative merge.
//!
//! This module holds the *mechanism*: partitioning, the per-run knobs
//! ([`ShardConfig`]), the deterministic fault-injection seam
//! ([`ShardFaultPlan`]) and the coarse-pass similarity. The *policy* —
//! retry, resume-from-WAL, quarantine, merge — lives in
//! [`crate::engine::supervisor`].

use crate::governor::RunGovernor;
use crate::similarity::{PairwiseSimilarity, Similarity};
use crate::util::retry::RetryPolicy;
use std::ops::Range;
use std::time::Duration;

/// Deterministically partitions `0..n` into at most `shards` contiguous,
/// non-empty, size-balanced ranges (fewer when `n < shards`; none when
/// `n == 0`). A pure function of `(n, shards)`, so every retry, resume
/// and exclusion oracle sees the same partition.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    crate::util::balanced_ranges(n, shards.max(1), |_| 1)
}

/// Knobs of a supervised shard-and-merge run (see
/// [`crate::engine::supervisor::ShardSupervisor`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ShardConfig {
    /// How many shards to partition the input into (≥ 1; the effective
    /// count is lower for inputs smaller than this).
    pub shards: usize,
    /// Per-shard retry ladder: a shard gets `1 + retry.max_retries`
    /// attempts before quarantine, with `retry`'s (optionally
    /// seed-jittered) backoff between attempts. The same ladder guards
    /// the coarse merge pass.
    pub retry: RetryPolicy,
    /// Wall-clock budget per shard *attempt* (`None` = none): a hung
    /// shard is killed at its deadline and retried or resumed from its
    /// WAL instead of hanging the whole run.
    pub shard_deadline: Option<Duration>,
    /// Charged-memory slice per shard attempt (`None` = none).
    pub shard_memory_budget: Option<u64>,
    /// θ for the coarse merge pass over representative-set link
    /// densities (`None` = reuse the run's θ). Representative-level
    /// similarities concentrate below raw point similarities, so a
    /// looser threshold is often appropriate here.
    pub merge_theta: Option<f64>,
    /// Fraction of each shard cluster kept as its representative set
    /// `Lᵢ` for the coarse pass, in `(0, 1]`; `1.0` keeps every member.
    /// Sub-unit fractions draw a deterministic seeded sample per
    /// `(shard, cluster)`, independent of retry history.
    pub representative_fraction: f64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            retry: RetryPolicy {
                max_retries: 2,
                base_delay: Duration::ZERO,
                max_delay: Duration::ZERO,
                jitter_seed: None,
            },
            shard_deadline: None,
            shard_memory_budget: None,
            merge_theta: None,
            representative_fraction: 1.0,
        }
    }
}

impl ShardConfig {
    /// A default config over `shards` shards.
    pub fn new(shards: usize) -> Self {
        ShardConfig {
            shards,
            ..ShardConfig::default()
        }
    }
}

/// Per-(shard, attempt) fault hooks the supervisor applies before each
/// attempt — the seam deterministic chaos schedules plug into (see
/// `rock_data::faults::ShardFaultSchedule`). Both hooks default to
/// transparent pass-through; the supervisor itself always runs through
/// them, so a schedule can hit any shard at any retry round, and the
/// coarse merge pass under the sentinel shard index `shard count`.
pub trait ShardFaultPlan {
    /// The governor attempt `attempt` (0-based) of shard `shard` runs
    /// under. `base` is the supervisor-built child governor (shared
    /// cancellation token plus the configured per-shard budgets); a
    /// schedule injects a crash, hang or memory trip by rebuilding it.
    fn governor(&self, shard: usize, attempt: u32, base: RunGovernor) -> RunGovernor {
        let _ = (shard, attempt);
        base
    }

    /// Transforms the WAL bytes carried out of failed attempt `attempt`
    /// of shard `shard` into the next attempt's resume input — the
    /// torn-shard-WAL injection point.
    fn wal_bytes(&self, shard: usize, attempt: u32, bytes: Vec<u8>) -> Vec<u8> {
        let _ = (shard, attempt);
        bytes
    }
}

/// The transparent plan: no injected faults.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl ShardFaultPlan for NoFaults {}

/// One surviving shard's result within a
/// [`crate::engine::supervisor::ShardedRun`].
#[derive(Clone, Debug)]
pub struct ShardRun {
    /// Shard index (its position in [`shard_ranges`]).
    pub shard: usize,
    /// The global input range this shard covered.
    pub range: Range<usize>,
    /// Attempts it took to complete (1 = succeeded first try).
    pub attempts: u32,
    /// The shard-local clustering; point ids are relative to
    /// `range.start`.
    pub run: crate::algorithm::RockRun,
}

/// Pairwise similarity between shard-cluster representative sets — the
/// substrate of the coarse merge pass.
///
/// `sim(a, b)` is the *link density* between the two sets: the fraction
/// of cross pairs (one representative from each set) whose inner
/// similarity clears `theta`. It is symmetric, lies in `[0, 1]`, and
/// degenerates to the inner measure's neighbor indicator for singleton
/// sets; an empty set is similar to nothing.
pub struct RepSetSimilarity<'a, P, S> {
    sets: &'a [Vec<P>],
    measure: &'a S,
    theta: f64,
}

impl<'a, P, S: Similarity<P>> RepSetSimilarity<'a, P, S> {
    /// A representative-level similarity over `sets`, with inner
    /// neighbor threshold `theta`.
    pub fn new(sets: &'a [Vec<P>], measure: &'a S, theta: f64) -> Self {
        RepSetSimilarity {
            sets,
            measure,
            theta,
        }
    }
}

impl<P, S: Similarity<P>> PairwiseSimilarity for RepSetSimilarity<'_, P, S> {
    fn len(&self) -> usize {
        self.sets.len()
    }

    fn sim(&self, i: usize, j: usize) -> f64 {
        // tidy-allow(panic-reach): PairwiseSimilarity contract — callers pass i, j < self.len() == sets.len()
        let (a, b) = (&self.sets[i], &self.sets[j]);
        let total = a.len() * b.len();
        if total == 0 {
            return 0.0;
        }
        let mut hits = 0usize;
        for p in a {
            for q in b {
                if self.measure.similarity(p, q) >= self.theta {
                    hits += 1;
                }
            }
        }
        hits as f64 / total as f64
    }
}

//! The stage contract and the five concrete Fig.-2 stages.
//!
//! A stage is a plain struct carrying its inputs and knobs; running it
//! consumes it, reads/updates the shared [`RunCtx`], and returns its
//! typed output. Stages never place governor *entry* checkpoints
//! themselves — that is the pipeline runner's job
//! ([`crate::engine::Pipeline::stage`]) — but long-running stage kernels
//! keep their own in-loop checkpoints (merge batches, labeling batches).

use crate::algorithm::{RockAlgorithm, RockRun};
use crate::engine::ctx::RunCtx;
use crate::error::RockError;
use crate::governor::{DegradationNote, DegradationPolicy, Phase, TripReason};
use crate::labeling::{Labeler, Labeling};
use crate::links_matrix::{LinkKernel, LinkMatrix};
use crate::neighbors::NeighborGraph;
use crate::similarity::{PairwiseSimilarity, Similarity};

/// One step of the Fig.-2 pipeline.
///
/// Implementors are one-shot: `run` consumes the stage. The associated
/// `Out` type is the stage's product (sample indices, neighbor graph,
/// link matrix, merge run, labeling).
pub trait Stage {
    /// What the stage produces.
    type Out;

    /// The [`Phase`] this stage's *entry checkpoint* reports under.
    ///
    /// This is the phase label carried by an [`RockError::Interrupted`]
    /// raised at the stage boundary; it is chosen to match where the
    /// pre-engine driver placed the equivalent check (see the per-stage
    /// docs — the merge stage, for example, checkpoints under the phase
    /// whose memory charge it observes).
    fn phase(&self) -> Phase;

    /// Short stable stage name, for diagnostics.
    fn name(&self) -> &'static str;

    /// Executes the stage against the shared run context.
    ///
    /// # Errors
    /// [`RockError::Interrupted`] from an in-stage governor checkpoint,
    /// or any stage-specific error (invalid labeling parameters, WAL
    /// corruption on resume, …).
    fn run(self, ctx: &mut RunCtx<'_>) -> Result<Self::Out, RockError>;
}

/// Draws the Fig.-2 random sample from the run's RNG stream.
///
/// Produces indices into the input data. When no sample size is
/// configured (or it does not undercut the data), every index is kept —
/// the pipeline still runs uniformly through the labeling stage.
#[derive(Clone, Copy, Debug)]
pub struct SampleStage {
    /// Number of input records.
    pub data_len: usize,
    /// Configured sample size; `None` keeps all points.
    pub sample_size: Option<usize>,
}

impl Stage for SampleStage {
    type Out = Vec<usize>;

    fn phase(&self) -> Phase {
        Phase::Sample
    }

    fn name(&self) -> &'static str {
        "sample"
    }

    fn run(self, ctx: &mut RunCtx<'_>) -> Result<Vec<usize>, RockError> {
        Ok(match self.sample_size {
            Some(size) if size < self.data_len => {
                crate::sampling::sample_indices(self.data_len, size, &mut ctx.rng)
            }
            _ => (0..self.data_len).collect(),
        })
    }
}

/// Builds the θ-neighbor graph (§3.1), serial or parallel by thread
/// count. The result is bit-identical for every thread count.
#[derive(Debug)]
pub struct NeighborsStage<'a, PS> {
    /// Pairwise similarity source over the (sampled) points.
    pub sim: &'a PS,
    /// Similarity threshold θ.
    pub theta: f64,
    /// Worker threads (1 = serial).
    pub threads: usize,
}

impl<PS: PairwiseSimilarity + Sync> Stage for NeighborsStage<'_, PS> {
    type Out = NeighborGraph;

    fn phase(&self) -> Phase {
        Phase::Neighbors
    }

    fn name(&self) -> &'static str {
        "neighbors"
    }

    fn run(self, _ctx: &mut RunCtx<'_>) -> Result<NeighborGraph, RockError> {
        Ok(if self.threads > 1 {
            NeighborGraph::build_parallel(self.sim, self.theta, self.threads)
        } else {
            NeighborGraph::build(self.sim, self.theta)
        })
    }
}

/// Computes the link matrix (§3.2, §4.4) with the auto-chosen kernel,
/// applying the proactive [`DegradationPolicy::SparseLinks`] downshift:
/// if the dense kernel was chosen but its estimated footprint would
/// exceed the memory budget, the stage forces the sparse kernel instead
/// and records the downshift in the context's degradation note.
#[derive(Debug)]
pub struct LinksStage<'a> {
    /// The θ-neighbor graph to count common neighbors over.
    pub graph: &'a NeighborGraph,
    /// Worker threads (1 = serial).
    pub threads: usize,
}

impl Stage for LinksStage<'_> {
    type Out = LinkMatrix;

    fn phase(&self) -> Phase {
        Phase::Links
    }

    fn name(&self) -> &'static str {
        "links"
    }

    fn run(self, ctx: &mut RunCtx<'_>) -> Result<LinkMatrix, RockError> {
        let mut kernel = LinkMatrix::choose_kernel(self.graph);
        if kernel == LinkKernel::Dense
            && ctx.degradation == DegradationPolicy::SparseLinks
            && ctx
                .governor
                .would_exceed(LinkMatrix::estimated_dense_bytes(self.graph.len()))
        {
            kernel = LinkKernel::Sparse;
            ctx.note = Some(DegradationNote {
                policy: DegradationPolicy::SparseLinks,
                phase: Phase::Links,
                reason: TripReason::MemoryBudgetExceeded,
                detail: format!(
                    "dense link kernel (~{} bytes over {} points) downshifted to sparse",
                    LinkMatrix::estimated_dense_bytes(self.graph.len()),
                    self.graph.len(),
                ),
            });
        }
        Ok(LinkMatrix::compute_kernel(self.graph, self.threads, kernel))
    }
}

/// The governed §4.3 agglomeration, journaling to the context's WAL when
/// one is attached.
///
/// With precomputed `links` the merge loop runs directly over them;
/// without, the algorithm computes links itself (the journaled
/// whole-data path). The entry checkpoint reports under the phase whose
/// memory charge it observes — [`Phase::Links`] when links were just
/// charged by the pipeline, [`Phase::Neighbors`] when only the graph
/// was — exactly matching the pre-engine driver's checkpoint labels.
/// In-loop merge checkpoints inside the algorithm report under
/// [`Phase::Merge`].
#[derive(Debug)]
pub struct MergeStage<'a> {
    /// The θ-neighbor graph.
    pub graph: &'a NeighborGraph,
    /// Precomputed link matrix, if the pipeline already charged one.
    pub links: Option<&'a LinkMatrix>,
    /// The configured merge engine (goodness, k, outlier policy, hasher).
    pub algorithm: RockAlgorithm,
    /// Worker threads for the self-computed-links path.
    pub threads: usize,
}

impl Stage for MergeStage<'_> {
    type Out = RockRun;

    fn phase(&self) -> Phase {
        if self.links.is_some() {
            Phase::Links
        } else {
            Phase::Neighbors
        }
    }

    fn name(&self) -> &'static str {
        "merge"
    }

    fn run(self, ctx: &mut RunCtx<'_>) -> Result<RockRun, RockError> {
        match self.links {
            Some(links) => self.algorithm.run_with_matrix_governed(
                self.graph,
                links,
                &ctx.governor,
                ctx.wal.as_deref_mut(),
            ),
            None => self.algorithm.run_governed(
                self.graph,
                self.threads,
                &ctx.governor,
                ctx.wal.as_deref_mut(),
            ),
        }
    }
}

/// Labels every input point against the clustered sample (§4.6),
/// drawing the per-cluster labeling sets Lᵢ from the run's RNG stream
/// and checking the governor every labeling batch.
#[derive(Debug)]
pub struct LabelStage<'a, P, S> {
    /// The clustered sample points.
    pub sample: &'a [P],
    /// The sample clustering (sample-relative point ids).
    pub clusters: &'a [Vec<u32>],
    /// The full data set to label.
    pub data: &'a [P],
    /// The similarity measure.
    pub measure: &'a S,
    /// Fraction of each cluster used as its labeling set.
    pub fraction: f64,
    /// Similarity threshold θ.
    pub theta: f64,
    /// Resolved `f(θ)` for the labeling normalisation.
    pub ftheta: f64,
    /// Worker threads (1 = serial).
    pub threads: usize,
}

impl<P, S> Stage for LabelStage<'_, P, S>
where
    P: Clone + Sync,
    S: Similarity<P> + Sync,
{
    /// The drawn labeler travels with the labeling so callers can
    /// persist the exact Lᵢ sets (see [`crate::artifact`]) — labeling
    /// through a reloaded artifact is then bit-identical to this run.
    type Out = (Labeler<P>, Labeling);

    fn phase(&self) -> Phase {
        Phase::Labeling
    }

    fn name(&self) -> &'static str {
        "label"
    }

    fn run(self, ctx: &mut RunCtx<'_>) -> Result<(Labeler<P>, Labeling), RockError> {
        let labeler = Labeler::new(
            self.sample,
            self.clusters,
            self.fraction,
            self.theta,
            self.ftheta,
            &mut ctx.rng,
        )?;
        let labeling =
            labeler.label_all_governed(self.data, self.measure, self.threads, &ctx.governor)?;
        Ok((labeler, labeling))
    }
}

/// Replays an interrupted run's merge WAL to a bit-identical final
/// clustering, optionally writing a fresh continuation log to the
/// context's WAL handle.
///
/// With `graph` the links are recomputed and the replay is validated
/// against them; without, the merge state is restored from the log's
/// latest snapshot (failing with [`RockError::WalMismatch`] if there is
/// none). Callers invoke this stage without a pipeline entry checkpoint:
/// its first governor observation happens inside the replayed merge
/// loop, which keeps a re-interrupted resume `resumable`.
#[derive(Debug)]
pub struct ResumeStage<'a> {
    /// Bytes of the interrupted run's merge WAL.
    pub wal_bytes: &'a [u8],
    /// The rebuilt θ-neighbor graph, when the original data is at hand.
    pub graph: Option<&'a NeighborGraph>,
    /// The configured merge engine (must match the interrupted run).
    pub algorithm: RockAlgorithm,
    /// Worker threads for link recomputation.
    pub threads: usize,
}

impl Stage for ResumeStage<'_> {
    type Out = RockRun;

    fn phase(&self) -> Phase {
        Phase::Merge
    }

    fn name(&self) -> &'static str {
        "resume"
    }

    fn run(self, ctx: &mut RunCtx<'_>) -> Result<RockRun, RockError> {
        self.algorithm.resume(
            self.wal_bytes,
            self.graph,
            self.threads,
            &ctx.governor,
            ctx.wal.as_deref_mut(),
        )
    }
}

//! The staged pipeline engine behind the [`crate::rock::Rock`] driver.
//!
//! The paper's Fig.-2 driver is an explicit staged pipeline — draw a
//! sample, build the θ-neighbor graph, compute links, merge, label the
//! disk-resident remainder (§4.3–§4.6). This module makes that structure
//! a first-class contract instead of a hand-threaded monolith:
//!
//! ```text
//!            ┌────────┐   ┌───────────┐   ┌───────┐   ┌───────┐   ┌───────┐
//!  Pipeline  │ Sample │ → │ Neighbors │ → │ Links │ → │ Merge │ → │ Label │
//!            └────────┘   └───────────┘   └───────┘   └───────┘   └───────┘
//!                 ╲             │              │           │           ╱
//!                  ╲────────────┴──── RunCtx ──┴───────────┴──────────╱
//!                       governor · WAL · RNG · hash seed · policy · report
//! ```
//!
//! * [`Stage`](stage::Stage) — one pipeline step. A stage is a plain
//!   struct carrying its inputs and knobs; running it consumes it and
//!   returns its typed output.
//! * [`RunCtx`](ctx::RunCtx) — the shared run state every stage receives:
//!   the [`crate::governor::RunGovernor`], the optional
//!   [`crate::wal::MergeWal`] handle, the seeded sampling/labeling RNG,
//!   the seeded-hasher override, the
//!   [`crate::governor::DegradationPolicy`], and the
//!   [`crate::report::RunReport`] sink.
//! * [`Pipeline`](pipeline::Pipeline) — the thin runner that owns phase
//!   transitions (one governor checkpoint per stage entry), the
//!   memory-charge windows around the big structures, checkpoint
//!   boundaries and interruption/resume semantics.
//! * [`ClusterModel`](model::ClusterModel) — the uniform fit → labels +
//!   report contract implemented by ROCK here and by every traditional
//!   algorithm in `rock-baselines`, so evaluation and benchmarking run
//!   generically over any model.
//!
//! The engine is deliberately behavior-preserving: every governor
//! checkpoint, memory charge/release window, RNG draw and WAL append
//! happens in exactly the order the pre-engine `rock.rs` monolith
//! performed them, so clustering output, WAL bytes and crash-resume
//! continuations are bit-for-bit identical (enforced by the
//! `pipeline_equivalence` proptests).
//!
//! Above the single-run pipeline sits the fault-isolated
//! shard-and-merge layer: [`shard`] partitions the input and defines the
//! coarse representative-level similarity, and [`supervisor`] runs each
//! shard's pipeline under its own child governor with retry, WAL resume
//! and poisoned-shard quarantine, then merges the survivors.
//!
//! This module is panic-free by construction — no `unwrap`/`expect`/
//! `panic!`/`unreachable!` — and rock-tidy's `engine-contract` rule keeps
//! it that way.

/// Shared per-run state ([`RunCtx`]) threaded through every stage.
pub mod ctx;
/// The uniform [`ClusterModel`] fit contract and ROCK's implementation.
pub mod model;
/// The [`Pipeline`] runner: phase transitions, checkpoints, resume.
pub mod pipeline;
/// Sharding primitives: partitioning, knobs, fault seam, coarse similarity.
pub mod shard;
/// The [`Stage`] trait and the five Fig.-2 stages.
pub mod stage;
/// The shard supervisor: retry, resume, quarantine and merge.
pub mod supervisor;

pub use ctx::RunCtx;
pub use model::{ClusterModel, IncrementalModel, ModelFit};
pub use pipeline::Pipeline;
pub use shard::{shard_ranges, NoFaults, RepSetSimilarity, ShardConfig, ShardFaultPlan, ShardRun};
pub use stage::{LabelStage, LinksStage, MergeStage, NeighborsStage, ResumeStage, SampleStage, Stage};
pub use supervisor::{ShardSupervisor, ShardedRun};

//! The thin pipeline runner: stage sequencing, phase checkpoints,
//! memory-charge windows and interruption/resume semantics.

use crate::algorithm::{RockAlgorithm, RockRun};
use crate::components::neighbor_components;
use crate::engine::ctx::RunCtx;
use crate::engine::stage::{
    LabelStage, LinksStage, MergeStage, NeighborsStage, ResumeStage, SampleStage, Stage,
};
use crate::error::RockError;
use crate::goodness::{ConstantF, Goodness};
use crate::governor::{DegradationNote, DegradationPolicy, RunGovernor, TripReason};
use crate::labeling::Labeler;
use crate::neighbors::NeighborGraph;
use crate::report::{PhaseTimer, RunReport};
use crate::rock::{RockConfig, RockResult};
use crate::similarity::{CheckedSimilarity, PairwiseSimilarity, PointsWith, Similarity};
use crate::wal::MergeWal;

/// The staged Fig.-2 runner.
///
/// A `Pipeline` owns one run's [`RunCtx`] and sequences
/// [`Stage`]s through it: every [`Pipeline::stage`] call places one
/// governor checkpoint at the stage boundary (under the stage's
/// [`Stage::phase`] label), and the composition methods ([`fit`],
/// [`fit_wal`], [`resume`], …) own the memory charge/release windows
/// around the big structures plus the degradation fallbacks that span
/// stages (subsample restart, connected-components finish).
///
/// Construct one per run via [`crate::rock::Rock::session`]; the
/// pipeline consumes itself on the composition entry points.
///
/// [`fit`]: Pipeline::fit
/// [`fit_wal`]: Pipeline::fit_wal
/// [`resume`]: Pipeline::resume
#[derive(Debug)]
pub struct Pipeline<'w> {
    config: RockConfig,
    ctx: RunCtx<'w>,
}

impl Pipeline<'static> {
    /// A pipeline over `config`, governed by `governor`.
    ///
    /// The context's RNG, hasher seed and degradation policy come from
    /// the config; no WAL is attached (see [`Pipeline::attach_wal`]).
    pub fn new(config: RockConfig, governor: RunGovernor) -> Self {
        Pipeline {
            config,
            ctx: RunCtx::new(governor, config.degradation, config.seed, config.hash_seed),
        }
    }
}

impl<'w> Pipeline<'w> {
    /// Attaches a merge WAL: journaled compositions ([`Pipeline::fit_wal`])
    /// append every merge decision to it, and resume compositions write
    /// their continuation log through it.
    pub fn attach_wal(self, wal: &'w mut MergeWal) -> Pipeline<'w> {
        Pipeline {
            config: self.config,
            ctx: self.ctx.with_wal(wal),
        }
    }

    /// The validated configuration this pipeline runs under.
    pub fn config(&self) -> &RockConfig {
        &self.config
    }

    /// The run context (governor, report accumulated so far, …).
    pub fn ctx(&self) -> &RunCtx<'w> {
        &self.ctx
    }

    /// Runs one stage with its entry checkpoint: the governor is checked
    /// under the stage's [`Stage::phase`] label, then the stage executes
    /// against the shared context.
    ///
    /// # Errors
    /// [`RockError::Interrupted`] if a budget has tripped at the stage
    /// boundary, plus whatever the stage itself surfaces.
    pub fn stage<S: Stage>(&mut self, stage: S) -> Result<S::Out, RockError> {
        self.ctx.governor.check(stage.phase())?;
        stage.run(&mut self.ctx)
    }

    /// The merge engine configured for this run (goodness, `k`, outlier
    /// policy, optional hasher seed).
    fn algorithm(&self) -> RockAlgorithm {
        let goodness = Goodness::new(
            self.config.theta,
            ConstantF(self.config.ftheta),
            self.config.goodness_kind,
        );
        let algorithm = RockAlgorithm::new(goodness, self.config.k, self.config.outliers);
        match self.ctx.hash_seed {
            Some(seed) => algorithm.with_hash_seed(seed),
            None => algorithm,
        }
    }

    /// Governed links + merge over a prebuilt graph, with the
    /// cross-stage degradation fallback: a non-cancellation trip under
    /// [`DegradationPolicy::Components`] abandons the agglomeration and
    /// finishes via connected components of the θ-neighbor graph
    /// (recorded in the context's degradation note).
    /// [`DegradationPolicy::Subsample`] is handled one level up, in
    /// [`Pipeline::fit`], where the sample can be re-drawn. Cancellation
    /// is authoritative and never degrades.
    ///
    /// # Errors
    /// [`RockError::Interrupted`] when a budget trips and no policy
    /// absorbs it.
    pub fn merge_governed(&mut self, graph: &NeighborGraph) -> Result<RockRun, RockError> {
        let result = self.merge_budgeted(graph);
        match result {
            Err(RockError::Interrupted {
                phase,
                reason,
                resumable,
            }) if reason != TripReason::Cancelled => {
                if let DegradationPolicy::Components { min_cluster_size } = self.ctx.degradation {
                    let clustering = neighbor_components(graph, min_cluster_size);
                    self.ctx.note = Some(DegradationNote {
                        policy: self.ctx.degradation,
                        phase,
                        reason,
                        detail: format!(
                            "link agglomeration abandoned; finished as {} connected components",
                            clustering.num_clusters()
                        ),
                    });
                    Ok(RockRun {
                        clustering,
                        merges: Vec::new(),
                        initial_points: Vec::new(),
                    })
                } else {
                    Err(RockError::Interrupted {
                        phase,
                        reason,
                        resumable,
                    })
                }
            }
            other => other,
        }
    }

    /// The budget-observing core of [`Pipeline::merge_governed`]: the
    /// links stage (with its proactive sparse downshift), the link-bytes
    /// charge window, and the merge stage whose entry checkpoint
    /// observes that charge.
    fn merge_budgeted(&mut self, graph: &NeighborGraph) -> Result<RockRun, RockError> {
        let links = self.stage(LinksStage {
            graph,
            threads: self.config.threads,
        })?;
        let link_bytes = links.memory_bytes() as u64;
        self.ctx.governor.charge(link_bytes);
        let algorithm = self.algorithm();
        let result = self.stage(MergeStage {
            graph,
            links: Some(&links),
            algorithm,
            threads: self.config.threads,
        });
        self.ctx.governor.release(link_bytes);
        result
    }

    /// The full governed Fig.-2 composition: sample → neighbors → links
    /// → merge → label, with per-phase report timings, the non-finite
    /// similarity guard, and the configured degradation policy (the
    /// subsample restart lives here, where the sample can be re-drawn
    /// under a fresh budget that keeps the shared cancellation token).
    ///
    /// This composition never journals — the sampled pipeline prefers a
    /// restartable report over a merge log; any attached WAL is ignored.
    /// Use [`Pipeline::fit_wal`] for a journaled whole-data run.
    ///
    /// # Errors
    /// [`RockError::NonFiniteSimilarity`] if `measure` misbehaves,
    /// [`RockError::Interrupted`] if the governor trips with no policy
    /// able to absorb it.
    pub fn fit<P, S>(
        self,
        data: &[P],
        measure: &S,
    ) -> Result<(RockResult, RunReport), RockError>
    where
        P: Clone + Sync,
        S: Similarity<P> + Sync,
    {
        let (result, report, _labeler) = self.fit_with_labeler(data, measure)?;
        Ok((result, report))
    }

    /// [`Pipeline::fit`], additionally returning the [`Labeler`] whose
    /// Lᵢ sets produced the labeling — the ingredient
    /// [`crate::artifact::ModelArtifact`] persists so that labeling
    /// through a reloaded artifact is bit-identical to this run.
    ///
    /// # Errors
    /// As [`Pipeline::fit`].
    pub fn fit_with_labeler<P, S>(
        mut self,
        data: &[P],
        measure: &S,
    ) -> Result<(RockResult, RunReport, Labeler<P>), RockError>
    where
        P: Clone + Sync,
        S: Similarity<P> + Sync,
    {
        self.ctx.wal = None;
        let checked = CheckedSimilarity::new(measure);

        let t = PhaseTimer::start();
        let perf_before = crate::perf::snapshot();
        let mut sample_indices = self.stage(SampleStage {
            data_len: data.len(),
            sample_size: self.config.sample_size,
        })?;
        // tidy-allow(panic-reach): SampleStage yields indices drawn from 0..data_len == data.len()
        let mut sample: Vec<P> = sample_indices.iter().map(|&i| data[i].clone()).collect();
        t.record(&mut self.ctx.report, "sample");
        self.ctx
            .report
            .record_phase_perf("sample", crate::perf::snapshot().since(&perf_before));

        let t = PhaseTimer::start();
        let perf_before = crate::perf::snapshot();
        let outcome = {
            let pw = PointsWith::new(&sample, &checked);
            let graph = self.stage(NeighborsStage {
                sim: &pw,
                theta: self.config.theta,
                threads: self.config.threads,
            })?;
            if let Some(e) = checked.error() {
                return Err(e);
            }
            let graph_bytes = graph.memory_bytes() as u64;
            self.ctx.governor.charge(graph_bytes);
            // No explicit check here: a memory trip from the graph charge
            // is observed at the links-stage checkpoint inside, where the
            // degradation policies can still see the graph.
            let r = self.merge_governed(&graph);
            self.ctx.governor.release(graph_bytes);
            r
        };
        let sample_run = match outcome {
            Ok(run) => run,
            Err(RockError::Interrupted {
                phase,
                reason,
                resumable,
            }) if reason != TripReason::Cancelled => {
                if let DegradationPolicy::Subsample { fraction } = self.ctx.degradation {
                    let orig = sample.len();
                    let keep = ((orig as f64 * fraction).ceil() as usize)
                        .clamp(self.config.k.min(orig), orig);
                    let sub = crate::sampling::sample_indices(orig, keep, &mut self.ctx.rng);
                    // tidy-allow(panic-reach): sample_indices draws from 0..orig == sample.len() == sample_indices.len()
                    sample_indices = sub.iter().map(|&i| sample_indices[i]).collect();
                    sample = sub.iter().map(|&i| sample[i].clone()).collect();
                    let sub_note = Some(DegradationNote {
                        policy: self.ctx.degradation,
                        phase,
                        reason,
                        detail: format!(
                            "restarted on a {keep}-point subsample of the {orig}-point sample"
                        ),
                    });
                    // The retry drops the tripped budgets but keeps the
                    // shared cancellation token: cancellation stays
                    // authoritative. The original governor is restored
                    // for the labeling phase.
                    let retry =
                        RunGovernor::unlimited().with_cancel_token(self.ctx.governor.cancel_token());
                    let saved = std::mem::replace(&mut self.ctx.governor, retry);
                    let pw = PointsWith::new(&sample, &checked);
                    // The retry re-enters the neighbors stage without a
                    // fresh entry checkpoint or graph charge: its budgets
                    // were just dropped, and the original charge window
                    // already closed.
                    let graph = NeighborsStage {
                        sim: &pw,
                        theta: self.config.theta,
                        threads: self.config.threads,
                    }
                    .run(&mut self.ctx)?;
                    if let Some(e) = checked.error() {
                        return Err(e);
                    }
                    let run = self.merge_governed(&graph);
                    self.ctx.governor = saved;
                    // The run's provenance is the subsample note; any
                    // scratch note from the retry merge is discarded.
                    self.ctx.note = sub_note;
                    run?
                } else {
                    return Err(RockError::Interrupted {
                        phase,
                        reason,
                        resumable,
                    });
                }
            }
            Err(e) => return Err(e),
        };
        t.record(&mut self.ctx.report, "cluster");
        self.ctx
            .report
            .record_phase_perf("cluster", crate::perf::snapshot().since(&perf_before));

        let t = PhaseTimer::start();
        let perf_before = crate::perf::snapshot();
        let (labeler, labeling) = self.stage(LabelStage {
            sample: &sample,
            clusters: &sample_run.clustering.clusters,
            data,
            measure: &checked,
            fraction: self.config.labeling_fraction,
            theta: self.config.theta,
            ftheta: self.config.ftheta,
            threads: self.config.threads,
        })?;
        if let Some(e) = checked.error() {
            return Err(e);
        }
        t.record(&mut self.ctx.report, "label");
        self.ctx
            .report
            .record_phase_perf("label", crate::perf::snapshot().since(&perf_before));

        self.ctx.report.records_read = data.len() as u64;
        self.ctx.report.outliers = labeling.num_outliers as u64;
        self.ctx.report.degraded = self.ctx.note.take();
        Ok((
            RockResult {
                sample_indices,
                sample_run,
                labeling,
            },
            self.ctx.report,
            labeler,
        ))
    }

    /// The journaled whole-data composition: neighbors → merge, with
    /// every merge decision appended to the attached WAL and the graph
    /// bytes charged for the duration. The degradation policy
    /// deliberately does *not* apply — a WAL-journaled run prefers an
    /// exact resume over an approximate finish.
    ///
    /// # Errors
    /// [`RockError::Interrupted`] (with `resumable: true`) when the
    /// governor trips mid-merge.
    pub fn fit_wal<PS: PairwiseSimilarity + Sync>(
        mut self,
        sim: &PS,
    ) -> Result<RockRun, RockError> {
        let graph = self.stage(NeighborsStage {
            sim,
            theta: self.config.theta,
            threads: self.config.threads,
        })?;
        let graph_bytes = graph.memory_bytes() as u64;
        self.ctx.governor.charge(graph_bytes);
        let algorithm = self.algorithm();
        let result = self.stage(MergeStage {
            graph: &graph,
            links: None,
            algorithm,
            threads: self.config.threads,
        });
        self.ctx.governor.release(graph_bytes);
        result
    }

    /// The resume composition: rebuild the θ-neighbor graph from `sim`
    /// (the same points, in the same order, as the interrupted run) and
    /// replay `wal_bytes` to a bit-identical final clustering, writing a
    /// continuation log through the attached WAL if one is present.
    ///
    /// # Errors
    /// [`RockError::WalCorrupt`] / [`RockError::WalMismatch`] for a
    /// damaged or foreign log, [`RockError::Interrupted`] if the
    /// governor trips again.
    pub fn resume<PS: PairwiseSimilarity + Sync>(
        mut self,
        sim: &PS,
        wal_bytes: &[u8],
    ) -> Result<RockRun, RockError> {
        let graph = self.stage(NeighborsStage {
            sim,
            theta: self.config.theta,
            threads: self.config.threads,
        })?;
        // The rebuilt graph occupies the same memory as the original
        // run's: charge it against the budget exactly like fit_wal, so a
        // resume cannot silently escape the memory governor.
        let graph_bytes = graph.memory_bytes() as u64;
        self.ctx.governor.charge(graph_bytes);
        let algorithm = self.algorithm();
        let result = ResumeStage {
            wal_bytes,
            graph: Some(&graph),
            algorithm,
            threads: self.config.threads,
        }
        .run(&mut self.ctx);
        self.ctx.governor.release(graph_bytes);
        result
    }

    /// Resumes from a snapshot-bearing WAL without the original data:
    /// merge state is restored from the latest snapshot, links are not
    /// recomputed. No entry checkpoint is placed — the first governor
    /// observation happens inside the replayed merge loop, keeping a
    /// re-interrupted resume `resumable`.
    ///
    /// # Errors
    /// [`RockError::WalMismatch`] if the log carries no snapshot;
    /// otherwise as [`Pipeline::resume`].
    pub fn resume_snapshot(mut self, wal_bytes: &[u8]) -> Result<RockRun, RockError> {
        let algorithm = self.algorithm();
        ResumeStage {
            wal_bytes,
            graph: None,
            algorithm,
            threads: self.config.threads,
        }
        .run(&mut self.ctx)
    }
}

//! Durable fitted-model artifacts: a versioned, CRC-framed, atomically
//! written snapshot of a clustering that outlives the process that fit
//! it.
//!
//! The paper's Fig.-2 design — cluster a sample offline, label the rest
//! of the (disk-resident) data against it (§4.6) — implies a model that
//! is fit once and then *served*: new points are assigned against the
//! per-cluster representative sets without refitting. [`ModelArtifact`]
//! is that servable object. It persists the fitted parameters (θ,
//! `f(θ)`, labeling fraction, hash seed), the flat clustering, the
//! exact Lᵢ representative sets drawn at fit time, the dendrogram cut
//! when the run has one, and a provenance copy of the
//! [`crate::report::RunReport`] — so labeling through a reloaded
//! artifact is **bit-identical** to labeling on the live model.
//!
//! ## Binary format
//!
//! An artifact is `b"ROCKART1"` followed by CRC-framed sections (the
//! same frame codec as the merge WAL — [`crate::util::frame`]):
//!
//! ```text
//! frame    := type:u8  len:u32le  payload[len]  crc32:u32le
//! v1       := Header Clusters Representatives Dendrogram Report End
//! v2       := Header Clusters Representatives Dendrogram Report Update End
//! ```
//!
//! Version 2 (this build's native format) adds the **Update** section —
//! the evolving-model state of the online update path
//! ([`crate::incremental`]): cumulative
//! [`UpdateProvenance`](crate::incremental::UpdateProvenance), the
//! [`StalenessPolicy`](crate::incremental::StalenessPolicy) in force,
//! and the pending/dirty-link accumulators — and widens the per-phase
//! perf entries in the Report section with the update-path counters.
//! [`ModelArtifact::to_bytes`] writes version 1 whenever the artifact
//! carries no update state, so batch fits stay byte-identical to what
//! version-1 builds wrote, and [`ModelArtifact::from_bytes`] loads both
//! versions. [`ModelArtifact::from_bytes_capped`] models an older
//! reader: a version-2 image handed to a version-1 cap fails with
//! [`RockError::ArtifactVersion`], never `ArtifactCorrupt`.
//!
//! Unlike the WAL — whose torn tail is legitimately truncated, because
//! a crash mid-append is an expected state — an artifact is only ever
//! published whole (see [`ModelArtifact::save`]), so **any** damage is
//! fatal: a missing section, a frame that fails its CRC, a record that
//! does not decode, bytes after the End marker, or an internally
//! inconsistent section all surface as typed [`RockError`]s
//! ([`RockError::ArtifactCorrupt`] / [`RockError::ArtifactVersion`] /
//! [`RockError::ArtifactMismatch`]), never as a silently wrong
//! clustering. CRC-32 detects every burst error up to 32 bits, so every
//! single-byte flip and every truncation offset is caught.
//!
//! ## Atomicity
//!
//! [`ModelArtifact::save`] writes `<path>.tmp`, fsyncs it, and renames
//! it over `path` — a crash between write and rename leaves the
//! previous artifact intact and loadable. This module and
//! [`crate::wal`] are the only rock-core modules allowed to touch the
//! filesystem (rock-tidy's `file-io` rule enforces the boundary).

use crate::cluster::{Clustering, MergeRecord};
use crate::dendrogram::Dendrogram;
use crate::engine::model::ModelFit;
use crate::error::RockError;
use crate::governor::{DegradationNote, DegradationPolicy, Phase, TripReason};
use crate::incremental::{StalenessPolicy, UpdateProvenance};
use crate::labeling::Labeler;
use crate::perf::PerfCounters;
use crate::report::{PhasePerf, PhaseTiming, QuarantinedRecord, RunReport};
use crate::util::frame::{
    append_frame, put_f64, put_str, put_u32, put_u32_slice, put_u64, read_frame, Cursor,
};
use std::io::Write as _;
use std::path::Path;

/// The 8-byte magic prefix of every model artifact.
pub const ARTIFACT_MAGIC: &[u8; 8] = b"ROCKART1";

/// The newest artifact format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 2;

const SEC_HEADER: u8 = 1;
const SEC_CLUSTERS: u8 = 2;
const SEC_REPS: u8 = 3;
const SEC_DENDRO: u8 = 4;
const SEC_REPORT: u8 = 5;
const SEC_END: u8 = 6;
const SEC_UPDATE: u8 = 7;

/// Section frames between Header and End shared by every version, in
/// required order (version 2 appends the Update section after these).
const SECTION_ORDER: [u8; 4] = [SEC_CLUSTERS, SEC_REPS, SEC_DENDRO, SEC_REPORT];

/// A point type that can travel through an artifact's representative
/// section.
///
/// Encoding must be self-delimiting under [`Cursor`] reads and decode
/// must be total: any byte damage yields `None` (surfaced as a typed
/// error by the loader), never a panic. `decode` must also re-establish
/// the type's own invariants — artifact bytes are untrusted input.
pub trait ArtifactPoint: Sized {
    /// Appends this point's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes one point, or `None` if the bytes do not parse.
    fn decode(cursor: &mut Cursor<'_>) -> Option<Self>;
}

impl ArtifactPoint for crate::points::Transaction {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32_slice(buf, self.items());
    }

    fn decode(cursor: &mut Cursor<'_>) -> Option<Self> {
        // `new` re-sorts and dedups: decoded bytes are untrusted, and
        // the sorted-items invariant must hold by construction, not by
        // trust.
        Some(crate::points::Transaction::new(cursor.u32_vec()?))
    }
}

impl ArtifactPoint for Vec<f64> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.len() as u32);
        for &v in self {
            put_f64(buf, v);
        }
    }

    fn decode(cursor: &mut Cursor<'_>) -> Option<Self> {
        let n = cursor.u32()? as usize;
        if n > cursor.remaining() / 8 {
            return None;
        }
        (0..n).map(|_| cursor.f64()).collect()
    }
}

/// The per-cluster representative sets, stored as an encoded point pool
/// plus index lists into it.
#[derive(Clone, Debug, PartialEq)]
struct Representatives {
    /// Encoded points (each entry one [`ArtifactPoint::encode`] blob).
    pool: Vec<Vec<u8>>,
    /// `sets[i]` = pool indices of cluster `i`'s representatives.
    sets: Vec<Vec<u32>>,
}

/// A fitted clustering model, serialized and served from bytes.
///
/// Build one from a live fit ([`ModelArtifact::from_labeled`] for ROCK
/// runs with representative sets, [`ModelArtifact::from_fit`] for any
/// [`ModelFit`]), persist with [`ModelArtifact::save`], reload with
/// [`ModelArtifact::load`] / [`ModelArtifact::from_bytes`], and serve
/// queries through [`crate::serve::AssignService`].
#[derive(Clone, Debug, PartialEq)]
pub struct ModelArtifact {
    model: String,
    theta: f64,
    ftheta: f64,
    labeling_fraction: f64,
    hash_seed: Option<u64>,
    clustering: Clustering,
    representatives: Option<Representatives>,
    dendrogram: Option<ArtifactDendrogram>,
    report: RunReport,
    update: Option<UpdateExtension>,
}

/// The evolving-model state a version-2 artifact carries: everything
/// the online update path ([`crate::incremental::IncrementalRockState`])
/// needs to continue absorbing points exactly where the saved model
/// left off.
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateExtension {
    /// Cumulative update provenance since the batch fit.
    pub provenance: UpdateProvenance,
    /// The staleness/re-merge policy the model evolves under.
    pub policy: StalenessPolicy,
    /// Points absorbed since the last re-merge.
    pub pending: u64,
    /// Per-cluster dirty-link accumulators, parallel to the clustering.
    pub dirty: Vec<u64>,
    /// The next point id the update path will mint.
    pub next_point: u32,
}

/// The persisted dendrogram parts (kept pre-validated: construction
/// goes through [`Dendrogram::from_parts`]).
#[derive(Clone, Debug, PartialEq)]
struct ArtifactDendrogram {
    initial_points: Vec<u32>,
    merges: Vec<MergeRecord>,
    outliers: Vec<u32>,
}

impl ModelArtifact {
    /// An artifact of `fit` under model name `model`: clustering,
    /// dendrogram and report, but no representative section (labeling
    /// parameters default to the inert θ = 0, `f(θ)` = 0, fraction = 1).
    ///
    /// This is what the generic
    /// [`crate::engine::model::ClusterModel::save`] persists for
    /// baseline models; use [`ModelArtifact::from_labeled`] when the
    /// fit has representative sets to serve from.
    pub fn from_fit(model: &str, fit: &ModelFit) -> ModelArtifact {
        ModelArtifact {
            model: model.to_string(),
            theta: 0.0,
            ftheta: 0.0,
            labeling_fraction: 1.0,
            hash_seed: None,
            clustering: fit.clustering.clone(),
            representatives: None,
            dendrogram: fit.dendrogram.as_ref().map(|d| ArtifactDendrogram {
                initial_points: d.initial_points().to_vec(),
                merges: d.merges().to_vec(),
                outliers: d.outliers().to_vec(),
            }),
            report: fit.report.clone(),
            update: None,
        }
    }

    /// An artifact of a labeled fit: [`ModelArtifact::from_fit`] plus
    /// the exact Lᵢ representative sets of `labeler` (θ and `f(θ)` are
    /// taken from it), the labeling `fraction` the sets were drawn at,
    /// and the merge engine's `hash_seed`.
    ///
    /// # Errors
    /// [`RockError::ArtifactMismatch`] if the labeler's cluster count
    /// differs from the fit's — the sets would not index the clustering
    /// they claim to represent.
    pub fn from_labeled<P: ArtifactPoint + Clone>(
        model: &str,
        fit: &ModelFit,
        labeler: &Labeler<P>,
        fraction: f64,
        hash_seed: Option<u64>,
    ) -> Result<ModelArtifact, RockError> {
        if labeler.num_clusters() != fit.clustering.num_clusters() {
            return Err(RockError::ArtifactMismatch {
                detail: format!(
                    "cluster count mismatch: {} labeling sets for {} clusters",
                    labeler.num_clusters(),
                    fit.clustering.num_clusters()
                ),
            });
        }
        let mut pool = Vec::new();
        let mut sets = Vec::with_capacity(labeler.num_clusters());
        for set in labeler.sets() {
            let mut indices = Vec::with_capacity(set.len());
            for point in set {
                let mut blob = Vec::new();
                point.encode(&mut blob);
                indices.push(pool.len() as u32);
                pool.push(blob);
            }
            sets.push(indices);
        }
        let mut artifact = ModelArtifact::from_fit(model, fit);
        artifact.theta = labeler.theta();
        artifact.ftheta = labeler.ftheta();
        artifact.labeling_fraction = fraction;
        artifact.hash_seed = hash_seed;
        artifact.representatives = Some(Representatives { pool, sets });
        Ok(artifact)
    }

    /// The model name this artifact was saved under (`"rock"`, …).
    pub fn model(&self) -> &str {
        &self.model
    }

    /// The similarity threshold θ the model was fit at.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The resolved `f(θ)` used by labeling normalisation.
    pub fn ftheta(&self) -> f64 {
        self.ftheta
    }

    /// The fraction of each cluster drawn as its labeling set.
    pub fn labeling_fraction(&self) -> f64 {
        self.labeling_fraction
    }

    /// The merge engine's hash seed, if one was configured.
    pub fn hash_seed(&self) -> Option<u64> {
        self.hash_seed
    }

    /// The persisted flat clustering.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// The persisted run report (fit provenance).
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// Whether the artifact carries representative sets to serve from.
    pub fn has_representatives(&self) -> bool {
        self.representatives.is_some()
    }

    /// The evolving-model update state, if this artifact was saved by
    /// the online update path (version-2 artifacts only).
    pub fn update_state(&self) -> Option<&UpdateExtension> {
        self.update.as_ref()
    }

    pub(crate) fn set_update_state(&mut self, ext: Option<UpdateExtension>) {
        self.update = ext;
    }

    /// Rebuilds the persisted dendrogram, if the fit had one.
    pub fn dendrogram(&self) -> Option<Dendrogram> {
        self.dendrogram.as_ref().and_then(|d| {
            Dendrogram::from_parts(
                d.initial_points.clone(),
                d.merges.clone(),
                d.outliers.clone(),
            )
        })
    }

    /// Rebuilds the [`Labeler`] from the representative section —
    /// labeling through it is bit-identical to the run that saved the
    /// artifact.
    ///
    /// # Errors
    /// [`RockError::ArtifactMismatch`] when the artifact has no
    /// representative section or a pooled point does not decode as `P`.
    pub fn labeler<P: ArtifactPoint + Clone>(&self) -> Result<Labeler<P>, RockError> {
        let Some(reps) = &self.representatives else {
            return Err(RockError::ArtifactMismatch {
                detail: "artifact has no representative section to label with".into(),
            });
        };
        let mut decoded = Vec::with_capacity(reps.pool.len());
        for (i, blob) in reps.pool.iter().enumerate() {
            let mut cursor = Cursor::new(blob);
            let point = P::decode(&mut cursor).filter(|_| cursor.done());
            match point {
                Some(p) => decoded.push(p),
                None => {
                    return Err(RockError::ArtifactMismatch {
                        detail: format!("representative {i} does not decode as the point type"),
                    })
                }
            }
        }
        let sets = reps
            .sets
            .iter()
            .map(|indices| {
                indices
                    .iter()
                    .map(|&i| {
                        decoded.get(i as usize).cloned().ok_or_else(|| {
                            RockError::ArtifactMismatch {
                                detail: format!(
                                    "representative index {i} out of range ({} pooled)",
                                    decoded.len()
                                ),
                            }
                        })
                    })
                    .collect::<Result<Vec<P>, RockError>>()
            })
            .collect::<Result<Vec<Vec<P>>, RockError>>()?;
        Labeler::from_sets(sets, self.theta, self.ftheta)
    }

    /// Reassembles the [`ModelFit`] this artifact persists.
    pub fn to_fit(&self) -> ModelFit {
        ModelFit {
            clustering: self.clustering.clone(),
            dendrogram: self.dendrogram(),
            report: self.report.clone(),
        }
    }

    /// Serializes the artifact (magic + framed sections) at the lowest
    /// format version that can represent it: version 1 when there is no
    /// update state (byte-identical to what version-1 builds wrote),
    /// version 2 otherwise.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.encode(if self.update.is_some() { 2 } else { 1 })
    }

    /// Serializes the artifact at an explicit format `version` — the
    /// compatibility seam for writing images an older reader accepts.
    ///
    /// # Errors
    /// [`RockError::ArtifactVersion`] when `version` is not one this
    /// build writes, and [`RockError::ArtifactMismatch`] when the
    /// artifact carries update state that `version` cannot represent.
    pub fn to_bytes_versioned(&self, version: u32) -> Result<Vec<u8>, RockError> {
        if !(1..=FORMAT_VERSION).contains(&version) {
            return Err(RockError::ArtifactVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        if version < 2 && self.update.is_some() {
            return Err(RockError::ArtifactMismatch {
                detail: "update state cannot be represented in a version-1 artifact".into(),
            });
        }
        Ok(self.encode(version))
    }

    fn encode(&self, version: u32) -> Vec<u8> {
        let mut buf = ARTIFACT_MAGIC.to_vec();

        let mut p = Vec::new();
        put_u32(&mut p, version);
        put_str(&mut p, &self.model);
        put_f64(&mut p, self.theta);
        put_f64(&mut p, self.ftheta);
        put_f64(&mut p, self.labeling_fraction);
        put_option_u64(&mut p, self.hash_seed);
        append_frame(&mut buf, SEC_HEADER, &p);

        let mut p = Vec::new();
        put_u32(&mut p, self.clustering.clusters.len() as u32);
        for members in &self.clustering.clusters {
            put_u32_slice(&mut p, members);
        }
        put_u32_slice(&mut p, &self.clustering.outliers);
        append_frame(&mut buf, SEC_CLUSTERS, &p);

        let mut p = Vec::new();
        match &self.representatives {
            None => p.push(0),
            Some(reps) => {
                p.push(1);
                put_u32(&mut p, reps.pool.len() as u32);
                for blob in &reps.pool {
                    put_u32(&mut p, blob.len() as u32);
                    p.extend_from_slice(blob);
                }
                put_u32(&mut p, reps.sets.len() as u32);
                for indices in &reps.sets {
                    put_u32_slice(&mut p, indices);
                }
            }
        }
        append_frame(&mut buf, SEC_REPS, &p);

        let mut p = Vec::new();
        match &self.dendrogram {
            None => p.push(0),
            Some(d) => {
                p.push(1);
                put_u32_slice(&mut p, &d.initial_points);
                put_u64(&mut p, d.merges.len() as u64);
                for m in &d.merges {
                    put_u32(&mut p, m.left);
                    put_u32(&mut p, m.right);
                    put_u32(&mut p, m.merged);
                    put_u64(&mut p, m.sizes.0 as u64);
                    put_u64(&mut p, m.sizes.1 as u64);
                    put_u64(&mut p, m.cross_links);
                    put_f64(&mut p, m.goodness);
                }
                put_u32_slice(&mut p, &d.outliers);
            }
        }
        append_frame(&mut buf, SEC_DENDRO, &p);

        let mut p = Vec::new();
        encode_report(&mut p, &self.report, version);
        append_frame(&mut buf, SEC_REPORT, &p);

        let mut sections = 1 + SECTION_ORDER.len() as u32;
        if version >= 2 {
            let mut p = Vec::new();
            match &self.update {
                None => p.push(0),
                Some(ext) => {
                    p.push(1);
                    encode_update_ext(&mut p, ext);
                }
            }
            append_frame(&mut buf, SEC_UPDATE, &p);
            sections += 1;
        }

        let mut p = Vec::new();
        put_u32(&mut p, sections);
        append_frame(&mut buf, SEC_END, &p);
        buf
    }

    /// Parses and validates an artifact image.
    ///
    /// # Errors
    /// [`RockError::ArtifactCorrupt`] for structural damage (bad magic,
    /// torn/CRC-failing/undecodable frames, missing or out-of-order
    /// sections, trailing bytes), [`RockError::ArtifactVersion`] for a
    /// format version this build does not read, and
    /// [`RockError::ArtifactMismatch`] for sections that decode but
    /// contradict each other.
    pub fn from_bytes(bytes: &[u8]) -> Result<ModelArtifact, RockError> {
        ModelArtifact::from_bytes_capped(bytes, FORMAT_VERSION)
    }

    /// [`ModelArtifact::from_bytes`] as a reader supporting only format
    /// versions up to `max_version` would behave — the compatibility
    /// seam the backward/forward tests pin: a newer image fails with
    /// [`RockError::ArtifactVersion`] (the version is decoded before
    /// anything else), never `ArtifactCorrupt`.
    ///
    /// # Errors
    /// As [`ModelArtifact::from_bytes`], with
    /// [`RockError::ArtifactVersion`] for any version outside
    /// `1..=max_version`.
    pub fn from_bytes_capped(bytes: &[u8], max_version: u32) -> Result<ModelArtifact, RockError> {
        // tidy-allow(panic-reach): the length check short-circuits before the magic slice
        if bytes.len() < ARTIFACT_MAGIC.len() || &bytes[..ARTIFACT_MAGIC.len()] != ARTIFACT_MAGIC {
            return Err(RockError::ArtifactCorrupt {
                offset: 0,
                detail: "missing ROCKART1 magic".into(),
            });
        }
        let mut at = ARTIFACT_MAGIC.len();
        let next_frame = |expect: u8, at: &mut usize| -> Result<Vec<u8>, RockError> {
            let Some((kind, payload, end)) = read_frame(bytes, *at) else {
                return Err(RockError::ArtifactCorrupt {
                    offset: *at as u64,
                    detail: "truncated or damaged frame".into(),
                });
            };
            if kind != expect {
                return Err(RockError::ArtifactCorrupt {
                    offset: *at as u64,
                    detail: format!("expected section {expect}, found {kind}"),
                });
            }
            let payload = payload.to_vec();
            *at = end;
            Ok(payload)
        };

        let header = next_frame(SEC_HEADER, &mut at)?;
        let header_offset = ARTIFACT_MAGIC.len() as u64;
        let mut c = Cursor::new(&header);
        let version = c.u32().ok_or_else(|| RockError::ArtifactCorrupt {
            offset: header_offset,
            detail: "header record does not decode".into(),
        })?;
        if !(1..=max_version).contains(&version) {
            return Err(RockError::ArtifactVersion {
                found: version,
                supported: max_version,
            });
        }
        let header_fields = (|| {
            let model = c.str()?;
            let theta = c.f64()?;
            let ftheta = c.f64()?;
            let fraction = c.f64()?;
            let hash_seed = read_option_u64(&mut c)?;
            c.done().then_some((model, theta, ftheta, fraction, hash_seed))
        })();
        let Some((model, theta, ftheta, labeling_fraction, hash_seed)) = header_fields else {
            return Err(RockError::ArtifactCorrupt {
                offset: header_offset,
                detail: "header record does not decode".into(),
            });
        };

        let mut payloads = Vec::with_capacity(SECTION_ORDER.len());
        for kind in SECTION_ORDER {
            let offset = at as u64;
            payloads.push((next_frame(kind, &mut at)?, offset));
        }
        let mut sections = 1 + SECTION_ORDER.len() as u32;
        let update = if version >= 2 {
            sections += 1;
            let offset = at as u64;
            let payload = next_frame(SEC_UPDATE, &mut at)?;
            parse_update_ext(&payload).ok_or_else(|| RockError::ArtifactCorrupt {
                offset,
                detail: "update record does not decode".into(),
            })?
        } else {
            None
        };
        let end = next_frame(SEC_END, &mut at)?;
        let mut c = Cursor::new(&end);
        if c.u32() != Some(sections) || !c.done() {
            return Err(RockError::ArtifactCorrupt {
                offset: at as u64,
                detail: "end marker section count mismatch".into(),
            });
        }
        if at != bytes.len() {
            return Err(RockError::ArtifactCorrupt {
                offset: at as u64,
                detail: format!("{} trailing bytes after end marker", bytes.len() - at),
            });
        }

        let corrupt = |&(_, offset): &(Vec<u8>, u64), what: &str| RockError::ArtifactCorrupt {
            offset,
            detail: format!("{what} record does not decode"),
        };
        // tidy-allow(panic-reach): payloads has exactly SECTION_ORDER.len() == 4 entries — the loop above pushed one per section or returned early
        let clustering = parse_clusters(&payloads[0].0)
            .ok_or_else(|| corrupt(&payloads[0], "clusters"))?;
        // tidy-allow(panic-reach): payloads has exactly SECTION_ORDER.len() == 4 entries — the loop above pushed one per section or returned early
        let representatives = parse_representatives(&payloads[1].0)
            .ok_or_else(|| corrupt(&payloads[1], "representatives"))?;
        // tidy-allow(panic-reach): payloads has exactly SECTION_ORDER.len() == 4 entries — the loop above pushed one per section or returned early
        let dendro_parts = parse_dendrogram(&payloads[2].0)
            .ok_or_else(|| corrupt(&payloads[2], "dendrogram"))?;
        // tidy-allow(panic-reach): payloads has exactly SECTION_ORDER.len() == 4 entries — the loop above pushed one per section or returned early
        let report = parse_report(&payloads[3].0, version)
            .ok_or_else(|| corrupt(&payloads[3], "report"))?;

        let artifact = ModelArtifact {
            model,
            theta,
            ftheta,
            labeling_fraction,
            hash_seed,
            clustering,
            representatives,
            dendrogram: dendro_parts,
            report,
            update,
        };
        artifact.validate()?;
        Ok(artifact)
    }

    /// Cross-section consistency checks on a decoded artifact.
    fn validate(&self) -> Result<(), RockError> {
        let mismatch = |detail: String| Err(RockError::ArtifactMismatch { detail });
        if !(0.0..=1.0).contains(&self.theta) {
            return mismatch(format!("theta {} outside [0, 1]", self.theta));
        }
        if !(self.ftheta.is_finite() && self.ftheta >= 0.0) {
            return mismatch(format!("f(theta) {} not finite and non-negative", self.ftheta));
        }
        if !(self.labeling_fraction > 0.0 && self.labeling_fraction <= 1.0) {
            return mismatch(format!(
                "labeling fraction {} outside (0, 1]",
                self.labeling_fraction
            ));
        }
        if let Some(reps) = &self.representatives {
            if reps.sets.len() != self.clustering.clusters.len() {
                return mismatch(format!(
                    "cluster count mismatch: {} representative sets for {} clusters",
                    reps.sets.len(),
                    self.clustering.clusters.len()
                ));
            }
            for indices in &reps.sets {
                for &i in indices {
                    if i as usize >= reps.pool.len() {
                        return mismatch(format!(
                            "representative index {i} out of range ({} pooled)",
                            reps.pool.len()
                        ));
                    }
                }
            }
        }
        if let Some(d) = &self.dendrogram {
            if Dendrogram::from_parts(
                d.initial_points.clone(),
                d.merges.clone(),
                d.outliers.clone(),
            )
            .is_none()
            {
                return mismatch("dendrogram merge trace does not replay".into());
            }
        }
        if let Some(ext) = &self.update {
            if let Err(detail) = ext.policy.check() {
                return mismatch(detail);
            }
            if ext.dirty.len() != self.clustering.clusters.len() {
                return mismatch(format!(
                    "dirty-link count mismatch: {} accumulators for {} clusters",
                    ext.dirty.len(),
                    self.clustering.clusters.len()
                ));
            }
        }
        Ok(())
    }

    /// Atomically writes the artifact to `path`: the bytes go to
    /// `<path>.tmp`, are fsync'd, and the tmp file is renamed over
    /// `path` (with a best-effort fsync of the parent directory). A
    /// crash at any point leaves either the old artifact or the new one
    /// — never a torn mix.
    ///
    /// # Errors
    /// [`RockError::ArtifactIo`] on any filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), RockError> {
        let io_err = |op: &str, e: std::io::Error| RockError::ArtifactIo {
            detail: format!("{op} {}: {e}", path.display()),
        };
        let tmp = tmp_path(path);
        let bytes = self.to_bytes();
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("create", e))?;
        f.write_all(&bytes).map_err(|e| io_err("write", e))?;
        f.sync_all().map_err(|e| io_err("sync", e))?;
        drop(f);
        std::fs::rename(&tmp, path).map_err(|e| io_err("rename", e))?;
        // Publishing the rename durably needs the directory entry
        // flushed too; failure here does not un-publish the file.
        if let Some(parent) = path.parent() {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    /// Loads and validates an artifact from `path`.
    ///
    /// # Errors
    /// [`RockError::ArtifactIo`] if the file cannot be read, otherwise
    /// as [`ModelArtifact::from_bytes`].
    pub fn load(path: &Path) -> Result<ModelArtifact, RockError> {
        let bytes = std::fs::read(path).map_err(|e| RockError::ArtifactIo {
            detail: format!("read {}: {e}", path.display()),
        })?;
        ModelArtifact::from_bytes(&bytes)
    }
}

/// The sibling temp path `save` stages into before renaming.
fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// A pluggable byte source for artifact images — the seam the serve
/// layer's bounded retry wraps (see
/// [`crate::serve::load_artifact_with_retry`]) and rock-data's fault
/// injectors implement.
pub trait ArtifactSource {
    /// Reads one complete artifact image.
    ///
    /// # Errors
    /// Any I/O failure; transient kinds (`WouldBlock`, `TimedOut`,
    /// `Interrupted`) are retried by the serve layer.
    fn fetch(&mut self) -> std::io::Result<Vec<u8>>;
}

/// The plain filesystem [`ArtifactSource`]: reads the artifact file on
/// every fetch.
#[derive(Clone, Debug)]
pub struct FileSource {
    path: std::path::PathBuf,
}

impl FileSource {
    /// A source reading `path`.
    pub fn new(path: impl Into<std::path::PathBuf>) -> Self {
        FileSource { path: path.into() }
    }
}

impl ArtifactSource for FileSource {
    fn fetch(&mut self) -> std::io::Result<Vec<u8>> {
        std::fs::read(&self.path)
    }
}

fn put_option_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            put_u64(buf, x);
        }
    }
}

fn read_option_u64(c: &mut Cursor<'_>) -> Option<Option<u64>> {
    match c.u8()? {
        0 => Some(None),
        1 => Some(Some(c.u64()?)),
        _ => None,
    }
}

fn parse_clusters(payload: &[u8]) -> Option<Clustering> {
    let mut c = Cursor::new(payload);
    let n = c.u32()? as usize;
    if n > payload.len() / 4 {
        return None; // each cluster costs at least a 4-byte length
    }
    let mut clusters = Vec::with_capacity(n);
    for _ in 0..n {
        clusters.push(c.u32_vec()?);
    }
    let outliers = c.u32_vec()?;
    if !c.done() {
        return None;
    }
    // Round-trip through the normalising constructor and require a
    // fixpoint: an artifact must store the canonical order, otherwise
    // cluster indices would silently shift on load.
    let clustering = Clustering {
        clusters,
        outliers,
    };
    let normalized = Clustering::new(clustering.clusters.clone(), clustering.outliers.clone());
    (normalized == clustering).then_some(clustering)
}

fn parse_representatives(payload: &[u8]) -> Option<Option<Representatives>> {
    let mut c = Cursor::new(payload);
    match c.u8()? {
        0 => c.done().then_some(None),
        1 => {
            let pool_len = c.u32()? as usize;
            if pool_len > payload.len() / 4 {
                return None;
            }
            let mut pool = Vec::with_capacity(pool_len);
            for _ in 0..pool_len {
                let blob_len = c.u32()? as usize;
                pool.push(c.take(blob_len)?.to_vec());
            }
            let num_sets = c.u32()? as usize;
            if num_sets > payload.len() / 4 {
                return None;
            }
            let mut sets = Vec::with_capacity(num_sets);
            for _ in 0..num_sets {
                sets.push(c.u32_vec()?);
            }
            c.done().then_some(Some(Representatives { pool, sets }))
        }
        _ => None,
    }
}

fn parse_dendrogram(payload: &[u8]) -> Option<Option<ArtifactDendrogram>> {
    let mut c = Cursor::new(payload);
    match c.u8()? {
        0 => c.done().then_some(None),
        1 => {
            let initial_points = c.u32_vec()?;
            let n = c.u64()? as usize;
            if n > payload.len() / 44 {
                return None; // each merge record is 44 encoded bytes
            }
            let mut merges = Vec::with_capacity(n);
            for _ in 0..n {
                merges.push(MergeRecord {
                    left: c.u32()?,
                    right: c.u32()?,
                    merged: c.u32()?,
                    sizes: (c.u64()? as usize, c.u64()? as usize),
                    cross_links: c.u64()?,
                    goodness: c.f64()?,
                });
            }
            let outliers = c.u32_vec()?;
            c.done().then_some(Some(ArtifactDendrogram {
                initial_points,
                merges,
                outliers,
            }))
        }
        _ => None,
    }
}

fn phase_code(p: Phase) -> u8 {
    match p {
        Phase::Sample => 0,
        Phase::Neighbors => 1,
        Phase::Links => 2,
        Phase::Merge => 3,
        Phase::Labeling => 4,
    }
}

fn phase_from(code: u8) -> Option<Phase> {
    Some(match code {
        0 => Phase::Sample,
        1 => Phase::Neighbors,
        2 => Phase::Links,
        3 => Phase::Merge,
        4 => Phase::Labeling,
        _ => return None,
    })
}

fn reason_code(r: TripReason) -> u8 {
    match r {
        TripReason::Cancelled => 0,
        TripReason::DeadlineExceeded => 1,
        TripReason::MemoryBudgetExceeded => 2,
    }
}

fn reason_from(code: u8) -> Option<TripReason> {
    Some(match code {
        0 => TripReason::Cancelled,
        1 => TripReason::DeadlineExceeded,
        2 => TripReason::MemoryBudgetExceeded,
        _ => return None,
    })
}

fn encode_policy(buf: &mut Vec<u8>, p: &DegradationPolicy) {
    match p {
        DegradationPolicy::Fail => buf.push(0),
        DegradationPolicy::SparseLinks => buf.push(1),
        DegradationPolicy::Subsample { fraction } => {
            buf.push(2);
            put_f64(buf, *fraction);
        }
        DegradationPolicy::Components { min_cluster_size } => {
            buf.push(3);
            put_u64(buf, *min_cluster_size as u64);
        }
    }
}

fn decode_policy(c: &mut Cursor<'_>) -> Option<DegradationPolicy> {
    Some(match c.u8()? {
        0 => DegradationPolicy::Fail,
        1 => DegradationPolicy::SparseLinks,
        2 => DegradationPolicy::Subsample { fraction: c.f64()? },
        3 => DegradationPolicy::Components {
            min_cluster_size: c.u64()? as usize,
        },
        _ => return None,
    })
}

fn encode_update_ext(buf: &mut Vec<u8>, ext: &UpdateExtension) {
    let pv = &ext.provenance;
    put_u64(buf, pv.updates_applied);
    put_u64(buf, pv.points_absorbed);
    put_u64(buf, pv.points_rejected);
    put_u64(buf, pv.relabels);
    put_u64(buf, pv.dirty_links);
    put_u64(buf, pv.remerges);
    put_u64(buf, pv.remerge_merges);
    let p = &ext.policy;
    put_u64(buf, p.max_pending);
    put_f64(buf, p.max_dirty_fraction);
    put_f64(buf, p.min_goodness);
    put_u64(buf, p.max_merges);
    put_u64(buf, p.min_clusters as u64);
    put_f64(buf, p.max_cluster_fraction);
    put_u64(buf, p.rep_cap as u64);
    put_u64(buf, ext.pending);
    put_u32(buf, ext.next_point);
    put_u32(buf, ext.dirty.len() as u32);
    for &d in &ext.dirty {
        put_u64(buf, d);
    }
}

/// Decodes the Update section payload: presence byte, then the
/// extension. Outer `None` = does not decode; inner `None` = no update
/// state recorded.
fn parse_update_ext(payload: &[u8]) -> Option<Option<UpdateExtension>> {
    let mut c = Cursor::new(payload);
    match c.u8()? {
        0 => c.done().then_some(None),
        1 => {
            let provenance = UpdateProvenance {
                updates_applied: c.u64()?,
                points_absorbed: c.u64()?,
                points_rejected: c.u64()?,
                relabels: c.u64()?,
                dirty_links: c.u64()?,
                remerges: c.u64()?,
                remerge_merges: c.u64()?,
            };
            let policy = StalenessPolicy {
                max_pending: c.u64()?,
                max_dirty_fraction: c.f64()?,
                min_goodness: c.f64()?,
                max_merges: c.u64()?,
                min_clusters: c.u64()? as usize,
                max_cluster_fraction: c.f64()?,
                rep_cap: c.u64()? as usize,
            };
            let pending = c.u64()?;
            let next_point = c.u32()?;
            let n = c.u32()? as usize;
            if n > payload.len() / 8 {
                return None; // each dirty accumulator is 8 bytes
            }
            let mut dirty = Vec::with_capacity(n);
            for _ in 0..n {
                dirty.push(c.u64()?);
            }
            c.done().then_some(Some(UpdateExtension {
                provenance,
                policy,
                pending,
                dirty,
                next_point,
            }))
        }
        _ => None,
    }
}

fn encode_report(buf: &mut Vec<u8>, r: &RunReport, version: u32) {
    put_u64(buf, r.records_read);
    put_u64(buf, r.records_skipped);
    put_u64(buf, r.records_quarantined);
    put_u32(buf, r.quarantined.len() as u32);
    for q in &r.quarantined {
        put_u64(buf, q.line);
        put_str(buf, &q.reason);
    }
    put_u64(buf, r.transient_io_errors);
    put_u64(buf, r.io_retries);
    put_u64(buf, r.outliers);
    put_u64(buf, r.checkpoints_written);
    put_option_u64(buf, r.resumed_from_offset);
    put_u32(buf, r.phases.len() as u32);
    for p in &r.phases {
        put_str(buf, &p.name);
        put_u64(buf, p.duration.as_secs());
        put_u32(buf, p.duration.subsec_nanos());
    }
    put_u32(buf, r.phase_perf.len() as u32);
    for p in &r.phase_perf {
        put_str(buf, &p.name);
        put_u64(buf, p.counters.pairs_emitted);
        put_u64(buf, p.counters.bytes_touched);
        put_u64(buf, p.counters.sim_evals);
        put_u64(buf, p.counters.scratch_reused);
        put_u64(buf, p.counters.allocs);
        put_u64(buf, p.counters.alloc_bytes);
        // Version 1 predates the update-path counters; they are always
        // zero on the batch fits a v1 image can represent.
        if version >= 2 {
            put_u64(buf, p.counters.relabels);
            put_u64(buf, p.counters.dirty_links);
            put_u64(buf, p.counters.remerges);
        }
    }
    match &r.degraded {
        None => buf.push(0),
        Some(note) => {
            buf.push(1);
            encode_policy(buf, &note.policy);
            buf.push(phase_code(note.phase));
            buf.push(reason_code(note.reason));
            put_str(buf, &note.detail);
        }
    }
    match &r.interrupted {
        None => buf.push(0),
        Some((phase, reason)) => {
            buf.push(1);
            buf.push(phase_code(*phase));
            buf.push(reason_code(*reason));
        }
    }
}

fn parse_report(payload: &[u8], version: u32) -> Option<RunReport> {
    let mut c = Cursor::new(payload);
    let mut r = RunReport::new();
    r.records_read = c.u64()?;
    r.records_skipped = c.u64()?;
    r.records_quarantined = c.u64()?;
    let nq = c.u32()? as usize;
    if nq > payload.len() / 12 {
        return None; // each quarantine entry costs at least 12 bytes
    }
    for _ in 0..nq {
        r.quarantined.push(QuarantinedRecord {
            line: c.u64()?,
            reason: c.str()?,
        });
    }
    r.transient_io_errors = c.u64()?;
    r.io_retries = c.u64()?;
    r.outliers = c.u64()?;
    r.checkpoints_written = c.u64()?;
    r.resumed_from_offset = read_option_u64(&mut c)?;
    let np = c.u32()? as usize;
    if np > payload.len() / 16 {
        return None; // each phase timing costs at least 16 bytes
    }
    for _ in 0..np {
        let name = c.str()?;
        let secs = c.u64()?;
        let nanos = c.u32()?;
        if nanos >= 1_000_000_000 {
            return None; // would carry into secs and could overflow
        }
        r.phases.push(PhaseTiming {
            name,
            duration: std::time::Duration::new(secs, nanos),
        });
    }
    let npp = c.u32()? as usize;
    let per_entry = if version >= 2 { 76 } else { 52 };
    if npp > payload.len() / per_entry {
        return None; // entry = 4-byte name length + 6 (v1) or 9 (v2) u64s
    }
    for _ in 0..npp {
        let name = c.str()?;
        let mut counters = PerfCounters {
            pairs_emitted: c.u64()?,
            bytes_touched: c.u64()?,
            sim_evals: c.u64()?,
            scratch_reused: c.u64()?,
            allocs: c.u64()?,
            alloc_bytes: c.u64()?,
            ..PerfCounters::default()
        };
        if version >= 2 {
            counters.relabels = c.u64()?;
            counters.dirty_links = c.u64()?;
            counters.remerges = c.u64()?;
        }
        r.phase_perf.push(PhasePerf { name, counters });
    }
    r.degraded = match c.u8()? {
        0 => None,
        1 => Some(DegradationNote {
            policy: decode_policy(&mut c)?,
            phase: phase_from(c.u8()?)?,
            reason: reason_from(c.u8()?)?,
            detail: c.str()?,
        }),
        _ => return None,
    };
    r.interrupted = match c.u8()? {
        0 => None,
        1 => Some((phase_from(c.u8()?)?, reason_from(c.u8()?)?)),
        _ => return None,
    };
    c.done().then_some(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::Transaction;
    use std::time::Duration;

    fn sample_report() -> RunReport {
        let mut r = RunReport::new();
        r.records_read = 100;
        r.records_skipped = 2;
        r.quarantine(17, "bad token", 8);
        r.transient_io_errors = 1;
        r.io_retries = 1;
        r.outliers = 3;
        r.resumed_from_offset = Some(512);
        r.record_phase("sample", Duration::from_micros(1500));
        r.record_phase("cluster", Duration::new(2, 345));
        r.record_phase_perf(
            "cluster",
            PerfCounters {
                pairs_emitted: 4242,
                bytes_touched: 1 << 20,
                sim_evals: 99,
                scratch_reused: 7,
                ..PerfCounters::default()
            },
        );
        r.degraded = Some(DegradationNote {
            policy: DegradationPolicy::Subsample { fraction: 0.5 },
            phase: Phase::Merge,
            reason: TripReason::MemoryBudgetExceeded,
            detail: "restarted on a smaller sample".into(),
        });
        r.interrupted = Some((Phase::Labeling, TripReason::Cancelled));
        r
    }

    fn sample_fit() -> ModelFit {
        ModelFit {
            clustering: Clustering::new(vec![vec![0, 1, 2], vec![3, 4]], vec![5]),
            dendrogram: None,
            report: sample_report(),
        }
    }

    fn sample_labeler() -> Labeler<Transaction> {
        Labeler::from_sets(
            vec![
                vec![Transaction::from([1, 2, 3]), Transaction::from([1, 2, 4])],
                vec![Transaction::from([10, 11])],
            ],
            0.4,
            1.0 / 3.0,
        )
        .unwrap()
    }

    fn sample_artifact() -> ModelArtifact {
        ModelArtifact::from_labeled("rock", &sample_fit(), &sample_labeler(), 0.25, Some(7))
            .unwrap()
    }

    #[test]
    fn bytes_round_trip_exactly() {
        let artifact = sample_artifact();
        let reloaded = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap();
        assert_eq!(reloaded, artifact);
        assert_eq!(reloaded.model(), "rock");
        assert_eq!(reloaded.hash_seed(), Some(7));
        assert_eq!(reloaded.report(), &sample_report());
        let labeler: Labeler<Transaction> = reloaded.labeler().unwrap();
        assert_eq!(labeler.sets(), sample_labeler().sets());
        assert_eq!(labeler.theta(), 0.4);
    }

    #[test]
    fn fit_artifact_without_representatives_round_trips() {
        let artifact = ModelArtifact::from_fit("kmeans", &sample_fit());
        let reloaded = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap();
        assert_eq!(reloaded, artifact);
        assert!(!reloaded.has_representatives());
        assert!(matches!(
            reloaded.labeler::<Transaction>(),
            Err(RockError::ArtifactMismatch { .. })
        ));
        let fit = reloaded.to_fit();
        assert_eq!(fit.clustering, sample_fit().clustering);
    }

    #[test]
    fn vec_f64_points_round_trip() {
        let labeler: Labeler<Vec<f64>> = Labeler::from_sets(
            vec![vec![vec![1.0, -0.0], vec![f64::MIN_POSITIVE, 2.5]], vec![]],
            0.7,
            0.25,
        )
        .unwrap();
        let artifact =
            ModelArtifact::from_labeled("centroid", &sample_fit(), &labeler, 1.0, None).unwrap();
        let reloaded = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap();
        let back: Labeler<Vec<f64>> = reloaded.labeler().unwrap();
        assert_eq!(back.sets(), labeler.sets());
        // -0.0 survives as exact bits.
        assert!(back.sets()[0][0][1].is_sign_negative());
    }

    #[test]
    fn cluster_count_mismatch_is_typed_at_build() {
        let labeler: Labeler<Transaction> =
            Labeler::from_sets(vec![vec![Transaction::from([1])]], 0.4, 0.3).unwrap();
        assert!(matches!(
            ModelArtifact::from_labeled("rock", &sample_fit(), &labeler, 0.25, None),
            Err(RockError::ArtifactMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        assert!(matches!(
            ModelArtifact::from_bytes(b"NOTANART"),
            Err(RockError::ArtifactCorrupt { offset: 0, .. })
        ));
        // Flip the version field to 9 and re-frame the header.
        let artifact = sample_artifact();
        let bytes = artifact.to_bytes();
        let (_, header, _) = read_frame(&bytes, ARTIFACT_MAGIC.len()).unwrap();
        let mut forged = header.to_vec();
        forged[0] = 9;
        let mut out = ARTIFACT_MAGIC.to_vec();
        append_frame(&mut out, SEC_HEADER, &forged);
        assert!(matches!(
            ModelArtifact::from_bytes(&out),
            Err(RockError::ArtifactVersion {
                found: 9,
                supported: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn representative_index_out_of_range_is_typed() {
        let mut artifact = sample_artifact();
        let reps = artifact.representatives.as_mut().unwrap();
        reps.sets[0][0] = reps.pool.len() as u32;
        assert!(matches!(
            ModelArtifact::from_bytes(&artifact.to_bytes()),
            Err(RockError::ArtifactMismatch { detail })
                if detail.contains("representative index")
        ));
    }

    #[test]
    fn cluster_count_mismatch_is_typed_at_load() {
        let mut artifact = sample_artifact();
        artifact.representatives.as_mut().unwrap().sets.pop();
        assert!(matches!(
            ModelArtifact::from_bytes(&artifact.to_bytes()),
            Err(RockError::ArtifactMismatch { detail })
                if detail.contains("cluster count mismatch")
        ));
    }

    #[test]
    fn non_canonical_clustering_is_rejected() {
        // Hand-craft a clusters section whose members are unsorted; the
        // loader must reject it rather than shift cluster semantics.
        let mut artifact = sample_artifact();
        artifact.representatives = None;
        artifact.clustering.clusters[0] = vec![2, 1, 0];
        assert!(matches!(
            ModelArtifact::from_bytes(&artifact.to_bytes()),
            Err(RockError::ArtifactCorrupt { .. })
        ));
    }

    fn sample_update_ext() -> UpdateExtension {
        UpdateExtension {
            provenance: UpdateProvenance {
                updates_applied: 3,
                points_absorbed: 40,
                points_rejected: 2,
                relabels: 42,
                dirty_links: 120,
                remerges: 1,
                remerge_merges: 2,
            },
            policy: StalenessPolicy::default(),
            pending: 5,
            dirty: vec![7, 0], // sample_fit has two clusters
            next_point: 46,
        }
    }

    fn sample_v2_artifact() -> ModelArtifact {
        let mut artifact = sample_artifact();
        artifact.report.record_phase_perf(
            "update",
            PerfCounters {
                relabels: 42,
                dirty_links: 120,
                remerges: 1,
                ..PerfCounters::default()
            },
        );
        artifact.update = Some(sample_update_ext());
        artifact
    }

    /// The version field of an encoded image (first 4 bytes of the
    /// header payload).
    fn encoded_version(bytes: &[u8]) -> u32 {
        let (kind, header, _) = read_frame(bytes, ARTIFACT_MAGIC.len()).unwrap();
        assert_eq!(kind, SEC_HEADER);
        Cursor::new(header).u32().unwrap()
    }

    #[test]
    fn batch_artifacts_still_write_version_1() {
        let bytes = sample_artifact().to_bytes();
        assert_eq!(encoded_version(&bytes), 1);
        assert_eq!(sample_artifact().to_bytes_versioned(1).unwrap(), bytes);
    }

    #[test]
    fn v2_round_trips_exactly() {
        let artifact = sample_v2_artifact();
        let bytes = artifact.to_bytes();
        assert_eq!(encoded_version(&bytes), 2);
        let reloaded = ModelArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(reloaded, artifact);
        assert_eq!(reloaded.update_state(), Some(&sample_update_ext()));
        let perf = reloaded.report().phase_counters("update").unwrap();
        assert_eq!(perf.relabels, 42);
        assert_eq!(perf.dirty_links, 120);
        assert_eq!(perf.remerges, 1);
    }

    #[test]
    fn explicit_v2_without_update_state_round_trips() {
        let artifact = sample_artifact();
        let bytes = artifact.to_bytes_versioned(2).unwrap();
        assert_eq!(encoded_version(&bytes), 2);
        let reloaded = ModelArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(reloaded, artifact);
        assert!(reloaded.update_state().is_none());
    }

    #[test]
    fn to_bytes_versioned_rejects_unrepresentable_requests() {
        assert!(matches!(
            sample_v2_artifact().to_bytes_versioned(1),
            Err(RockError::ArtifactMismatch { .. })
        ));
        for v in [0, 3] {
            assert!(matches!(
                sample_artifact().to_bytes_versioned(v),
                Err(RockError::ArtifactVersion {
                    found,
                    supported: FORMAT_VERSION
                }) if found == v
            ));
        }
    }

    #[test]
    fn v2_image_under_a_v1_cap_is_a_version_error_not_corrupt() {
        let bytes = sample_v2_artifact().to_bytes();
        assert!(matches!(
            ModelArtifact::from_bytes_capped(&bytes, 1),
            Err(RockError::ArtifactVersion {
                found: 2,
                supported: 1
            })
        ));
        // A v1 image loads under any cap that includes version 1.
        let v1 = sample_artifact().to_bytes();
        assert!(ModelArtifact::from_bytes_capped(&v1, 1).is_ok());
        assert!(ModelArtifact::from_bytes_capped(&v1, 2).is_ok());
    }

    #[test]
    fn dirty_accumulator_count_mismatch_is_typed() {
        let mut artifact = sample_v2_artifact();
        artifact.update.as_mut().unwrap().dirty.pop();
        assert!(matches!(
            ModelArtifact::from_bytes(&artifact.to_bytes()),
            Err(RockError::ArtifactMismatch { detail })
                if detail.contains("dirty-link count mismatch")
        ));
    }

    #[test]
    fn invalid_policy_in_update_section_is_typed() {
        let mut artifact = sample_v2_artifact();
        artifact.update.as_mut().unwrap().policy.max_pending = 0;
        assert!(matches!(
            ModelArtifact::from_bytes(&artifact.to_bytes()),
            Err(RockError::ArtifactMismatch { detail })
                if detail.contains("staleness policy")
        ));
    }

    #[test]
    fn v2_every_single_byte_flip_is_typed_never_silent() {
        let bytes = sample_v2_artifact().to_bytes();
        for i in 0..bytes.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut bad = bytes.clone();
                bad[i] ^= bit;
                match ModelArtifact::from_bytes(&bad) {
                    Err(
                        RockError::ArtifactCorrupt { .. }
                        | RockError::ArtifactVersion { .. }
                        | RockError::ArtifactMismatch { .. },
                    ) => {}
                    Err(other) => panic!("flip at {i}: unexpected error {other}"),
                    Ok(_) => panic!("flip at {i} bit {bit:#x} loaded successfully"),
                }
            }
        }
    }

    #[test]
    fn v2_every_truncation_is_typed_never_silent() {
        let bytes = sample_v2_artifact().to_bytes();
        for cut in 0..bytes.len() {
            match ModelArtifact::from_bytes(&bytes[..cut]) {
                Err(RockError::ArtifactCorrupt { .. }) => {}
                Err(other) => panic!("cut at {cut}: unexpected error {other}"),
                Ok(_) => panic!("cut at {cut} loaded successfully"),
            }
        }
    }

    #[test]
    fn every_single_byte_flip_is_typed_never_silent() {
        let artifact = sample_artifact();
        let bytes = artifact.to_bytes();
        for i in 0..bytes.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut bad = bytes.clone();
                bad[i] ^= bit;
                match ModelArtifact::from_bytes(&bad) {
                    Err(
                        RockError::ArtifactCorrupt { .. }
                        | RockError::ArtifactVersion { .. }
                        | RockError::ArtifactMismatch { .. },
                    ) => {}
                    Err(other) => panic!("flip at {i}: unexpected error {other}"),
                    Ok(_) => panic!("flip at {i} bit {bit:#x} loaded successfully"),
                }
            }
        }
    }

    #[test]
    fn every_truncation_is_typed_never_silent() {
        let artifact = sample_artifact();
        let bytes = artifact.to_bytes();
        for cut in 0..bytes.len() {
            match ModelArtifact::from_bytes(&bytes[..cut]) {
                Err(RockError::ArtifactCorrupt { .. }) => {}
                Err(other) => panic!("cut at {cut}: unexpected error {other}"),
                Ok(_) => panic!("cut at {cut} loaded successfully"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample_artifact().to_bytes();
        bytes.push(0);
        assert!(matches!(
            ModelArtifact::from_bytes(&bytes),
            Err(RockError::ArtifactCorrupt { detail, .. }) if detail.contains("trailing")
        ));
    }

    #[test]
    fn atomic_save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("rock-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("roundtrip-{}.rockart", std::process::id()));
        let artifact = sample_artifact();
        artifact.save(&path).unwrap();
        assert!(!tmp_path(&path).exists(), "tmp staging file left behind");
        let reloaded = ModelArtifact::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(reloaded, artifact);
    }

    #[test]
    fn kill_between_write_and_rename_leaves_previous_artifact_loadable() {
        let dir = std::env::temp_dir().join("rock-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("killed-{}.rockart", std::process::id()));
        let v1 = sample_artifact();
        v1.save(&path).unwrap();
        // Simulate a crash mid-save of v2: the staging tmp exists (even
        // torn) but the rename never happened.
        let mut v2 = sample_artifact();
        v2.model = "rock-v2".into();
        let torn: Vec<u8> = v2.to_bytes().into_iter().take(10).collect();
        std::fs::write(tmp_path(&path), torn).unwrap();
        let reloaded = ModelArtifact::load(&path).unwrap();
        assert_eq!(reloaded, v1, "previous artifact must stay loadable");
        // A subsequent completed save replaces both.
        v2.save(&path).unwrap();
        assert_eq!(ModelArtifact::load(&path).unwrap().model(), "rock-v2");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_source_fetches_saved_bytes() {
        let dir = std::env::temp_dir().join("rock-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("source-{}.rockart", std::process::id()));
        let artifact = sample_artifact();
        artifact.save(&path).unwrap();
        let mut source = FileSource::new(&path);
        let bytes = source.fetch().unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(bytes, artifact.to_bytes());
    }

    #[test]
    fn dendrogram_section_round_trips() {
        use crate::algorithm::{OutlierPolicy, RockAlgorithm};
        use crate::goodness::{ConstantF, Goodness, GoodnessKind};
        use crate::neighbors::NeighborGraph;
        use crate::similarity::{Jaccard, PointsWith};
        let ts = crate::testdata::figure1_transactions();
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let goodness = Goodness::new(0.5, ConstantF(1.0), GoodnessKind::Normalized);
        let run = RockAlgorithm::new(goodness, 2, OutlierPolicy::default()).run(&g);
        let fit = ModelFit {
            clustering: run.clustering.clone(),
            dendrogram: Dendrogram::from_run(&run),
            report: RunReport::new(),
        };
        assert!(fit.dendrogram.is_some());
        let artifact = ModelArtifact::from_fit("rock", &fit);
        let reloaded = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap();
        let d = reloaded.dendrogram().expect("dendrogram preserved");
        assert_eq!(d.cut(2), run.clustering);
    }
}

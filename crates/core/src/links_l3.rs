//! Alternative link definition: paths of length 3 (§3.2).
//!
//! The paper: "Alternative definitions for links, based on paths of
//! length 3 or more, are certainly possible; however, we do not consider
//! these…" for cost reasons and because "the additional information
//! gained … may not be as valuable". This module implements the
//! length-3 variant so that claim can be tested (see
//! `bench/benches/ablation.rs` and the unit tests below):
//!
//! * `link₃(i, j)` = number of *simple* length-3 neighbor paths
//!   `i → k → l → j` (k, l distinct from each other and from i, j);
//! * [`combine_links`] forms `link₂ + w·link₃` tables for the merge loop.
//!
//! Computed from the walk count `A³[i][j]` with the standard correction
//! for non-simple walks: for `i ≠ j`,
//! `paths₃ = A³ − A[i][j]·(deg(i) + deg(j) − 1)`
//! (walks revisiting `i` as the second vertex, revisiting `j` as the
//! first intermediate, with the doubly-degenerate `i→j→i→j` walk counted
//! once in each term and present `A[i][j]` times). O(n²·m) time via
//! per-vertex two-hop counting — intended for analysis, not production.

use crate::links::LinkTable;
use crate::neighbors::NeighborGraph;

/// Number of simple length-3 neighbor paths for every pair.
pub fn compute_links_l3(graph: &NeighborGraph) -> LinkTable {
    let n = graph.len();
    // two_hop[x] = walks of length 2 ending at each vertex, i.e. row x of
    // A². Reused across i via recomputation per source — O(n · Σ deg)
    // memory-light variant: for each i compute w2 = A² row, then
    // w3[j] = Σ_l w2[l]·A[l][j] accumulated by scanning neighbors of l.
    let mut table = LinkTable::new(n);
    let mut w2 = vec![0u32; n];
    let mut w3 = vec![0u64; n];
    let mut emitted = 0u64;
    // tidy:kernel-hot-loop — length-3 path counting over all sources
    for i in 0..n {
        w2.iter_mut().for_each(|x| *x = 0);
        w3.iter_mut().for_each(|x| *x = 0);
        for &k in graph.neighbors(i) {
            for &l in graph.neighbors(k as usize) {
                w2[l as usize] += 1;
            }
        }
        for (l, &count) in w2.iter().enumerate() {
            if count == 0 {
                continue;
            }
            for &j in graph.neighbors(l) {
                w3[j as usize] += u64::from(count);
            }
        }
        for (j, &walks) in w3.iter().enumerate().skip(i + 1) {
            let a_ij = u64::from(graph.are_neighbors(i, j));
            let degenerate =
                a_ij * (graph.degree(i) as u64 + graph.degree(j) as u64 - 1);
            let paths = walks.saturating_sub(degenerate);
            if paths > 0 {
                table.add(i, j, u32::try_from(paths).unwrap_or(u32::MAX));
                emitted += 1;
            }
        }
    }
    // tidy:end-kernel-hot-loop
    crate::perf::count_pairs_emitted(emitted);
    crate::perf::count_scratch_reused(2 * n as u64);
    table
}

/// As [`compute_links_l3`], with source rows sharded across `threads`
/// rayon workers.
///
/// Each worker owns a contiguous range of sources `i` and produces the
/// complete set of `(i, j)` entries for its range (the sequential kernel
/// is already per-source independent), so the resulting table is
/// identical to the sequential one for every thread count.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn compute_links_l3_parallel(graph: &NeighborGraph, threads: usize) -> LinkTable {
    assert!(threads > 0, "need at least one thread");
    let n = graph.len();
    if threads == 1 || n < 64 {
        return compute_links_l3(graph);
    }
    let chunk = n.div_ceil(threads);
    let mut partials: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); threads.min(n)];
    rayon::scope(|scope| {
        for (t, out) in partials.iter_mut().enumerate() {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            scope.spawn(move |_| {
                let mut w2 = vec![0u32; n];
                let mut w3 = vec![0u64; n];
                // tidy:kernel-hot-loop — length-3 path counting, one source shard
                for i in lo..hi {
                    w2.iter_mut().for_each(|x| *x = 0);
                    w3.iter_mut().for_each(|x| *x = 0);
                    for &k in graph.neighbors(i) {
                        for &l in graph.neighbors(k as usize) {
                            w2[l as usize] += 1;
                        }
                    }
                    for (l, &count) in w2.iter().enumerate() {
                        if count == 0 {
                            continue;
                        }
                        for &j in graph.neighbors(l) {
                            w3[j as usize] += u64::from(count);
                        }
                    }
                    for (j, &walks) in w3.iter().enumerate().skip(i + 1) {
                        let a_ij = u64::from(graph.are_neighbors(i, j));
                        let degenerate =
                            a_ij * (graph.degree(i) as u64 + graph.degree(j) as u64 - 1);
                        let paths = walks.saturating_sub(degenerate);
                        if paths > 0 {
                            out.push((
                                i as u32,
                                j as u32,
                                u32::try_from(paths).unwrap_or(u32::MAX),
                            ));
                        }
                    }
                }
                // tidy:end-kernel-hot-loop
                crate::perf::count_pairs_emitted(out.len() as u64);
                crate::perf::count_scratch_reused(2 * n as u64);
            });
        }
    });
    let mut table = LinkTable::new(n);
    for (i, j, c) in partials.into_iter().flatten() {
        table.add(i as usize, j as usize, c);
    }
    table
}

/// Combines two link tables as `base + weight · extra`, rounding down —
/// e.g. `link₂ + ½·link₃` (§3.2's hypothetical richer link).
///
/// # Panics
/// Panics if the tables cover different point counts or `weight` is
/// negative/non-finite.
pub fn combine_links(base: &LinkTable, extra: &LinkTable, weight: f64) -> LinkTable {
    assert_eq!(
        base.num_points(),
        extra.num_points(),
        "link tables must cover the same points"
    );
    assert!(
        weight.is_finite() && weight >= 0.0,
        "weight must be finite and non-negative"
    );
    let mut out = LinkTable::new(base.num_points());
    for ((i, j), c) in base.iter() {
        out.add(i as usize, j as usize, c);
    }
    for ((i, j), c) in extra.iter() {
        let add = (f64::from(c) * weight).floor() as u32;
        if add > 0 {
            out.add(i as usize, j as usize, add);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::SimilarityMatrix;

    /// Builds a graph from an explicit edge list.
    fn graph_of(n: usize, edges: &[(usize, usize)]) -> NeighborGraph {
        let mut m = SimilarityMatrix::new(n);
        for &(a, b) in edges {
            m.set(a, b, 1.0);
        }
        NeighborGraph::build(&m, 0.9)
    }

    /// Exhaustive reference: enumerate simple paths i→k→l→j.
    fn brute_paths3(graph: &NeighborGraph, i: usize, j: usize) -> u64 {
        let mut count = 0;
        for &k in graph.neighbors(i) {
            let k = k as usize;
            if k == j {
                continue;
            }
            for &l in graph.neighbors(k) {
                let l = l as usize;
                if l == i || l == j || l == k {
                    continue;
                }
                if graph.are_neighbors(l, j) {
                    count += 1;
                }
            }
        }
        count
    }

    #[test]
    fn path_of_length_three_on_a_chain() {
        // 0-1-2-3: exactly one simple 3-path between 0 and 3.
        let g = graph_of(4, &[(0, 1), (1, 2), (2, 3)]);
        let t = compute_links_l3(&g);
        assert_eq!(t.count(0, 3), 1);
        assert_eq!(t.count(0, 2), 0); // only a 2-path
        assert_eq!(t.count(0, 1), 0); // direct edge, no 3-path
    }

    #[test]
    fn triangle_plus_edge() {
        // Triangle 0-1-2 plus edge 2-3: 3-paths from 0 to 3: 0→1→2→3.
        let g = graph_of(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let t = compute_links_l3(&g);
        assert_eq!(t.count(0, 3), 1);
        // Between adjacent triangle vertices 0 and 1: 3-paths need two
        // distinct intermediates ∉ {0,1}: 0→2→3? 3 not adjacent to 1. None.
        assert_eq!(t.count(0, 1), 0);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..5u64 {
            let n = 14;
            let m = SimilarityMatrix::from_fn(n, |i, j| {
                let h = (i as u64 * 2654435761 + j as u64 * 97 + seed * 131) % 100;
                h as f64 / 100.0
            });
            let g = NeighborGraph::build(&m, 0.55);
            let t = compute_links_l3(&g);
            for i in 0..n {
                for j in (i + 1)..n {
                    assert_eq!(
                        u64::from(t.count(i, j)),
                        brute_paths3(&g, i, j),
                        "seed {seed}, pair ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_l3_matches_serial() {
        let m = SimilarityMatrix::from_fn(90, |i, j| {
            ((i * j).wrapping_mul(2654435761) % 100) as f64 / 100.0
        });
        let g = NeighborGraph::build(&m, 0.5);
        let serial = compute_links_l3(&g);
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                compute_links_l3_parallel(&g, threads),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn combine_links_weights() {
        let g2 = graph_of(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let l2 = crate::links::compute_links_sparse(&g2);
        let l3 = compute_links_l3(&g2);
        let combined = combine_links(&l2, &l3, 2.0);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert_eq!(
                        combined.count(i, j),
                        l2.count(i, j) + 2 * l3.count(i, j),
                        "pair ({i},{j})"
                    );
                }
            }
        }
        // Zero weight reduces to the base table.
        let same = combine_links(&l2, &l3, 0.0);
        assert_eq!(same, l2);
    }

    #[test]
    fn l3_links_degrade_figure1() {
        // Reproduction finding supporting §3.2's decision to stop at
        // length 2: on Fig. 1, length-3 paths flow disproportionately
        // *through* the shared {1,2,x} bridge between the two clusters,
        // so mixing them into the link counts makes the big cluster
        // swallow {1,2,6} and {1,2,7} — plain link₂ recovers the correct
        // (10, 4) split, link₂ + ½·link₃ does not. Longer paths are not
        // merely "not as valuable" (§3.2); here they are actively worse.
        let ts = crate::testdata::figure1_transactions();
        let g = NeighborGraph::build(
            &crate::similarity::PointsWith::new(&ts, crate::similarity::Jaccard),
            0.5,
        );
        let l2 = crate::links::compute_links_sparse(&g);
        let l3 = compute_links_l3(&g);
        let goodness = crate::goodness::Goodness::new(
            0.5,
            crate::goodness::ConstantF(1.0),
            crate::goodness::GoodnessKind::Normalized,
        );
        let algo = crate::algorithm::RockAlgorithm::new(
            goodness,
            2,
            crate::algorithm::OutlierPolicy::default(),
        );
        let plain = algo.run_with_links(&g, &l2);
        assert_eq!(plain.clustering.sizes(), vec![10, 4]);
        let combined = combine_links(&l2, &l3, 0.5);
        let mixed = algo.run_with_links(&g, &combined);
        assert_eq!(mixed.clustering.sizes(), vec![12, 2]);
    }
}

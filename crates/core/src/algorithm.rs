//! ROCK's agglomerative clustering loop (§4.3, Fig. 3) with outlier
//! handling (§4.6).
//!
//! The algorithm maintains, per live cluster `i`, a *local heap* `q[i]` of
//! merge candidates ordered by the goodness measure, plus a *global heap*
//! `Q` ordering clusters by the goodness of their best candidate. Every
//! iteration merges the globally best pair and patches the heaps of all
//! clusters linked to either side — O(n² log n) worst case (§4.5). That
//! mutable heap + link-map state lives in
//! [`crate::incremental::IncrementalState`], shared bit-for-bit with the
//! online update path; this module owns the batch driver around it.
//!
//! Deviations from Fig. 3, all from the paper's own prose:
//!
//! * the loop also stops when no remaining pair of clusters has links
//!   (§4.3: "it also stops clustering if the number of links between every
//!   pair of the remaining clusters becomes zero" — this is how the
//!   mushroom run ends at 21 clusters instead of the requested 20);
//! * §4.6 outlier handling: points with too few neighbors are discarded
//!   up front, and optionally the merge loop pauses when the cluster count
//!   falls to `⌈stop_multiple · k⌉`, weeds clusters below a support
//!   threshold, and then continues towards `k`.

use crate::cluster::{Clustering, MergeRecord};
use crate::error::RockError;
use crate::goodness::{Goodness, GoodnessKind};
use crate::governor::{Phase, RunGovernor};
use crate::incremental::IncrementalState;
use crate::links::LinkTable;
use crate::links_matrix::LinkMatrix;
use crate::neighbors::NeighborGraph;
use crate::util::FxBuildHasher;
use crate::wal::{parse_wal, MergeWal, WalBegin, WalSnapshot};

/// §4.6 outlier handling knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OutlierPolicy {
    /// Discard, before clustering, every point with fewer than this many
    /// neighbors. `0` disables pruning (every point has ≥ 0 neighbors).
    /// The paper's "first pruning": isolated points never participate.
    pub min_neighbors: usize,
    /// If set, pause the merge loop when `⌈stop_multiple · k⌉` clusters
    /// remain and weed out clusters smaller than `min_cluster_size` —
    /// the paper's "small groups of points that are loosely connected".
    pub weed: Option<WeedPolicy>,
}

/// The mid-flight weeding step of §4.6.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeedPolicy {
    /// Multiple of `k` at which to weed (the paper's "small multiple of
    /// the expected number of clusters"). Must be ≥ 1.
    pub stop_multiple: f64,
    /// Clusters strictly smaller than this are discarded as outliers.
    pub min_cluster_size: usize,
}

impl OutlierPolicy {
    /// No outlier handling at all.
    pub fn disabled() -> Self {
        OutlierPolicy {
            min_neighbors: 0,
            weed: None,
        }
    }
}

impl Default for OutlierPolicy {
    /// Prune neighbor-less points; no mid-flight weeding.
    fn default() -> Self {
        OutlierPolicy {
            min_neighbors: 1,
            weed: None,
        }
    }
}

/// The clustering engine: goodness measure + target cluster count +
/// outlier policy.
#[derive(Clone, Copy, Debug)]
pub struct RockAlgorithm {
    goodness: Goodness,
    k: usize,
    outliers: OutlierPolicy,
    hasher: FxBuildHasher,
}

/// Full output of a clustering run, including the merge trace.
#[derive(Clone, Debug, Default)]
pub struct RockRun {
    /// The final clusters and outliers.
    pub clustering: Clustering,
    /// One record per merge, in merge order. Arena cluster ids: id `i <
    /// initial_points.len()` is the singleton `{initial_points[i]}`; each
    /// merge mints the next id.
    pub merges: Vec<MergeRecord>,
    /// Point id of each initial (post-pruning) singleton cluster.
    pub initial_points: Vec<u32>,
}

impl RockAlgorithm {
    /// Creates the engine.
    ///
    /// # Panics
    /// Panics if `k == 0` or a weed policy has `stop_multiple < 1`.
    pub fn new(goodness: Goodness, k: usize, outliers: OutlierPolicy) -> Self {
        assert!(k >= 1, "need at least one target cluster");
        if let Some(w) = &outliers.weed {
            assert!(w.stop_multiple >= 1.0, "stop_multiple must be ≥ 1");
        }
        RockAlgorithm {
            goodness,
            k,
            outliers,
            hasher: FxBuildHasher::default(),
        }
    }

    /// Perturbs the engine's internal hash maps with `seed`.
    ///
    /// The clustering result is bit-identical for every seed — the merge
    /// loop's ordering decisions all go through sorted structures or
    /// key-tie-broken heaps, never raw map iteration order. That claim is
    /// enforced two ways: statically by rock-tidy's `nondeterministic-iter`
    /// rule, and dynamically by the hasher-independence property test,
    /// which runs this engine under several seeds and diffs the outputs.
    #[must_use]
    pub fn with_hash_seed(mut self, seed: u64) -> Self {
        self.hasher = FxBuildHasher::with_seed(seed);
        self
    }

    /// The goodness measure in use.
    pub fn goodness(&self) -> &Goodness {
        &self.goodness
    }

    /// The target number of clusters `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Clusters the points of `graph`: computes links (auto-selected CSR
    /// kernel, see [`LinkMatrix::compute_auto`]) and runs the merge loop
    /// (Fig. 3), single-threaded.
    pub fn run(&self, graph: &NeighborGraph) -> RockRun {
        self.run_parallel(graph, 1)
    }

    /// As [`run`](Self::run) with the link computation spread over
    /// `threads` workers. The clustering result is bit-identical to the
    /// single-threaded run for every thread count (the link kernels are
    /// deterministic; the merge loop is sequential either way).
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn run_parallel(&self, graph: &NeighborGraph, threads: usize) -> RockRun {
        let links = LinkMatrix::compute_auto(graph, threads);
        self.run_with_matrix(graph, &links)
    }

    /// As [`run`](Self::run), with a precomputed CSR link matrix.
    ///
    /// # Panics
    /// Panics if `links` is not defined over exactly `graph.len()` points.
    pub fn run_with_matrix(&self, graph: &NeighborGraph, links: &LinkMatrix) -> RockRun {
        assert_eq!(
            links.num_points(),
            graph.len(),
            "link matrix and neighbor graph disagree on point count"
        );
        self.run_from_pairs(graph, links.iter_upper())
    }

    /// As [`run`](Self::run), with a precomputed link table (e.g. from
    /// [`crate::links::compute_links_dense`] or
    /// [`crate::links_l3::combine_links`]).
    ///
    /// # Panics
    /// Panics if `links` is not defined over exactly `graph.len()` points.
    pub fn run_with_links(&self, graph: &NeighborGraph, links: &LinkTable) -> RockRun {
        assert_eq!(
            links.num_points(),
            graph.len(),
            "link table and neighbor graph disagree on point count"
        );
        // tidy-allow(nondeterministic-iter): pair order folds into keyed maps and heaps; AddressableHeap breaks goodness ties by the larger key, so iteration order cannot reach the merge sequence
        self.run_from_pairs(graph, links.iter())
    }

    /// As [`run_parallel`](Self::run_parallel), but governed: budgets and
    /// cancellation are checked at phase boundaries and every
    /// `check_every` merges, and every merge decision is appended to
    /// `wal` (if given) *before* it is counted as done, so an
    /// interrupted run can be continued by [`resume`](Self::resume).
    ///
    /// With an unlimited governor the result is bit-identical to
    /// [`run_parallel`](Self::run_parallel).
    ///
    /// # Errors
    /// [`RockError::Interrupted`] when the governor trips; `resumable`
    /// is `true` iff a WAL was being written.
    pub fn run_governed(
        &self,
        graph: &NeighborGraph,
        threads: usize,
        governor: &RunGovernor,
        wal: Option<&mut MergeWal>,
    ) -> Result<RockRun, RockError> {
        governor.check(Phase::Links)?;
        let links = LinkMatrix::compute_auto(graph, threads);
        let link_bytes = links.memory_bytes() as u64;
        governor.charge(link_bytes);
        let result = governor
            .check(Phase::Links)
            .and_then(|()| self.run_with_matrix_governed(graph, &links, governor, wal));
        governor.release(link_bytes);
        result
    }

    /// As [`run_with_matrix`](Self::run_with_matrix), governed and
    /// optionally WAL-logged (see [`run_governed`](Self::run_governed)).
    ///
    /// # Errors
    /// [`RockError::Interrupted`] when the governor trips.
    ///
    /// # Panics
    /// Panics if `links` is not defined over exactly `graph.len()` points.
    pub fn run_with_matrix_governed(
        &self,
        graph: &NeighborGraph,
        links: &LinkMatrix,
        governor: &RunGovernor,
        mut wal: Option<&mut MergeWal>,
    ) -> Result<RockRun, RockError> {
        assert_eq!(
            links.num_points(),
            graph.len(),
            "link matrix and neighbor graph disagree on point count"
        );
        let mut engine = self.init_from_pairs(graph, links.iter_upper());
        if let Some(w) = wal.as_deref_mut() {
            w.append_begin(&self.wal_begin(graph.len(), &engine));
        }
        self.drive(&mut engine, governor, wal.as_deref_mut())?;
        Ok(self.finish(engine, wal))
    }

    /// Resumes an interrupted run from the bytes of a merge WAL:
    /// replays the logged prefix (verifying every record against the
    /// deterministically re-derived state) and continues the merge loop
    /// to completion. The final clustering, merge trace and dendrogram
    /// are **bit-identical** to those of an uninterrupted run.
    ///
    /// If the WAL carries a snapshot, `graph` may be `None` — the state
    /// is restored from the snapshot and links are not recomputed.
    /// Without a snapshot the original neighbor graph is required.
    ///
    /// A fresh, self-contained continuation log is written to `wal_out`
    /// (if given): the full merge history is re-logged and a snapshot of
    /// the restored state appended, so a chain of interruptions can be
    /// resumed WAL-from-WAL without ever revisiting the input data.
    ///
    /// # Errors
    /// * [`RockError::WalCorrupt`] — the log is damaged beyond its torn
    ///   tail (bad magic / Begin).
    /// * [`RockError::WalMismatch`] — the log is from a different
    ///   configuration or input, or contradicts the replayed state.
    /// * [`RockError::Interrupted`] — the governor tripped again.
    pub fn resume(
        &self,
        wal_bytes: &[u8],
        graph: Option<&NeighborGraph>,
        threads: usize,
        governor: &RunGovernor,
        mut wal_out: Option<&mut MergeWal>,
    ) -> Result<RockRun, RockError> {
        let replay = parse_wal(wal_bytes)?;
        self.validate_begin(&replay.begin, graph)?;

        let mut engine = match &replay.snapshot {
            Some(snap) => self.engine_from_snapshot(&replay.begin, &replay.merges, snap)?,
            None => {
                let Some(graph) = graph else {
                    return Err(RockError::WalMismatch {
                        detail: "WAL carries no snapshot; the neighbor graph is required \
                                 to resume"
                            .into(),
                    });
                };
                let links = LinkMatrix::compute_auto(graph, threads);
                let engine = self.init_from_pairs(graph, links.iter_upper());
                if engine.initial_points != replay.begin.initial_points
                    || engine.outliers != replay.begin.pruned_outliers
                {
                    return Err(RockError::WalMismatch {
                        detail: "initial singletons differ from the logged run \
                                 (different input data or θ?)"
                            .into(),
                    });
                }
                engine
            }
        };

        // Replay the logged merges the snapshot hasn't already baked in.
        let already = engine.merges.len();
        for rec in &replay.merges[already..] {
            self.replay_one(&mut engine, rec)?;
        }

        // Make the continuation log self-contained before continuing.
        if let Some(w) = wal_out.as_deref_mut() {
            w.append_begin(&replay.begin);
            for rec in &engine.merges {
                w.append_merge(rec);
            }
            w.append_snapshot(&engine.snapshot());
        }
        self.drive(&mut engine, governor, wal_out.as_deref_mut())?;
        Ok(self.finish(engine, wal_out))
    }

    /// The Fig.-3 merge loop seeded from a stream of `((i, j), count)`
    /// linked pairs (`i < j`, each pair at most once, any order).
    fn run_from_pairs(
        &self,
        graph: &NeighborGraph,
        pairs: impl Iterator<Item = ((u32, u32), u32)>,
    ) -> RockRun {
        let mut engine = self.init_from_pairs(graph, pairs);
        let governor = RunGovernor::unlimited();
        self.drive(&mut engine, &governor, None)
            // tidy-allow(panic): an unlimited governor has no budgets, no deadline and no cancel token, so drive() cannot trip
            .expect("an unlimited governor never trips");
        self.finish(engine, None)
    }

    /// Builds the initial engine state: §4.6 first pruning, singleton
    /// clusters, cross-link maps and the two-level heaps.
    fn init_from_pairs(
        &self,
        graph: &NeighborGraph,
        pairs: impl Iterator<Item = ((u32, u32), u32)>,
    ) -> Engine {
        let n = graph.len();

        // §4.6 first pruning: points with too few neighbors are outliers.
        let mut outliers: Vec<u32> = Vec::new();
        let mut cluster_of_point: Vec<Option<u32>> = vec![None; n];
        let mut members: Vec<Option<Vec<u32>>> = Vec::new();
        let mut initial_points: Vec<u32> = Vec::new();
        for (p, slot) in cluster_of_point.iter_mut().enumerate() {
            if graph.degree(p) < self.outliers.min_neighbors {
                outliers.push(p as u32);
            } else {
                *slot = Some(members.len() as u32);
                members.push(Some(vec![p as u32]));
                initial_points.push(p as u32);
            }
        }
        let initial = members.len();
        let mut state = IncrementalState::new(members, self.goodness, self.hasher);

        // Initial cross-link maps and local heaps from the linked pairs.
        for ((i, j), c) in pairs {
            let (Some(ci), Some(cj)) = (
                cluster_of_point[i as usize],
                cluster_of_point[j as usize],
            ) else {
                continue; // link to a pruned outlier
            };
            state.links[ci as usize].insert(cj, u64::from(c));
            state.links[cj as usize].insert(ci, u64::from(c));
            let g = self.goodness.merge_goodness(u64::from(c), 1, 1);
            state.local[ci as usize].insert(cj, g);
            state.local[cj as usize].insert(ci, g);
        }
        for id in 0..initial {
            state.refresh_global(id as u32);
        }

        Engine {
            state,
            outliers,
            initial_points,
            merges: Vec::new(),
            weeded: false,
        }
    }

    /// The §4.6 weeding trigger: live-cluster count at which to weed.
    fn weed_threshold(&self) -> Option<(usize, WeedPolicy)> {
        self.outliers.weed.map(|w| {
            let at = ((w.stop_multiple * self.k as f64).ceil() as usize).max(self.k);
            (at, w)
        })
    }

    /// One transition of the merge loop. Weeding and early stops are
    /// *derived* (not logged): replay re-takes the same transitions.
    fn step(&self, engine: &mut Engine) -> Step {
        if engine.state.live <= self.k {
            return Step::Done;
        }
        if let Some((at, w)) = self.weed_threshold() {
            if !engine.weeded && engine.state.live <= at {
                engine.state.weed(w.min_cluster_size, &mut engine.outliers);
                engine.weeded = true;
                return Step::Weeded;
            }
        }
        let Some((u, best)) = engine.state.global.peek() else {
            return Step::Done;
        };
        if best.is_infinite() && best < 0.0 {
            // No cluster has any linked partner left (§4.3's early stop).
            return Step::Done;
        }
        Step::Merged(engine.state.merge(u))
    }

    /// Runs the merge loop to completion (or a governor trip), logging
    /// each committed merge — and periodic snapshots — to `wal`.
    fn drive(
        &self,
        engine: &mut Engine,
        governor: &RunGovernor,
        mut wal: Option<&mut MergeWal>,
    ) -> Result<(), RockError> {
        loop {
            if let Err(e) = governor.check_at(Phase::Merge, engine.merges.len() as u64) {
                return Err(mark_resumable(e, wal.is_some()));
            }
            match self.step(engine) {
                Step::Done => return Ok(()),
                Step::Weeded => continue,
                Step::Merged(rec) => {
                    if let Some(w) = wal.as_deref_mut() {
                        w.append_merge(&rec);
                    }
                    engine.merges.push(rec);
                    if let Some(w) = wal.as_deref_mut() {
                        let every = w.snapshot_every();
                        if every > 0 && (engine.merges.len() as u64).is_multiple_of(every) {
                            w.append_snapshot(&engine.snapshot());
                        }
                    }
                }
            }
        }
    }

    /// Post-loop weeding (if still pending), the Finish record, and the
    /// final [`RockRun`].
    fn finish(&self, mut engine: Engine, wal: Option<&mut MergeWal>) -> RockRun {
        // If the loop ended before the weed threshold was reached (small
        // inputs), still apply the weeding so the policy is honoured.
        if let (Some(w), false) = (self.outliers.weed, engine.weeded) {
            engine.state.weed(w.min_cluster_size, &mut engine.outliers);
        }
        if let Some(w) = wal {
            w.append_finish(engine.merges.len() as u64);
        }
        let clusters: Vec<Vec<u32>> = engine.state.members.into_iter().flatten().collect();
        RockRun {
            clustering: Clustering::new(clusters, engine.outliers),
            merges: engine.merges,
            initial_points: engine.initial_points,
        }
    }

    /// Applies one logged merge during replay, verifying it against the
    /// deterministically re-derived state.
    fn replay_one(&self, engine: &mut Engine, rec: &MergeRecord) -> Result<(), RockError> {
        loop {
            match self.step(engine) {
                Step::Weeded => continue,
                Step::Done => {
                    return Err(RockError::WalMismatch {
                        detail: format!(
                            "log records merge #{} but the replayed run is already \
                             finished",
                            engine.merges.len()
                        ),
                    });
                }
                Step::Merged(applied) => {
                    if applied != *rec {
                        return Err(RockError::WalMismatch {
                            detail: format!(
                                "merge #{} diverges from the log: logged {rec:?}, \
                                 replayed {applied:?}",
                                engine.merges.len()
                            ),
                        });
                    }
                    engine.merges.push(applied);
                    return Ok(());
                }
            }
        }
    }

    /// The Begin record for a fresh WAL: configuration fingerprint plus
    /// the initial arena.
    fn wal_begin(&self, n_points: usize, engine: &Engine) -> WalBegin {
        WalBegin {
            n_points: n_points as u32,
            k: self.k as u32,
            exponent_bits: self.goodness.exponent().to_bits(),
            kind: kind_code(self.goodness.kind()),
            min_neighbors: self.outliers.min_neighbors as u32,
            weed: self
                .outliers
                .weed
                .map(|w| (w.stop_multiple.to_bits(), w.min_cluster_size as u32)),
            initial_points: engine.initial_points.clone(),
            pruned_outliers: engine.outliers.clone(),
        }
    }

    /// Checks a logged configuration fingerprint against this engine
    /// (and `graph`, when supplied).
    fn validate_begin(
        &self,
        begin: &WalBegin,
        graph: Option<&NeighborGraph>,
    ) -> Result<(), RockError> {
        let mismatch = |detail: String| Err(RockError::WalMismatch { detail });
        if begin.k as usize != self.k {
            return mismatch(format!("target k differs: log {}, engine {}", begin.k, self.k));
        }
        if begin.exponent_bits != self.goodness.exponent().to_bits() {
            return mismatch("goodness exponent differs from the logged run".into());
        }
        if begin.kind != kind_code(self.goodness.kind()) {
            return mismatch("goodness kind differs from the logged run".into());
        }
        if begin.min_neighbors as usize != self.outliers.min_neighbors {
            return mismatch("outlier pruning threshold differs from the logged run".into());
        }
        let weed = self
            .outliers
            .weed
            .map(|w| (w.stop_multiple.to_bits(), w.min_cluster_size as u32));
        if begin.weed != weed {
            return mismatch("weed policy differs from the logged run".into());
        }
        if let Some(g) = graph {
            if g.len() != begin.n_points as usize {
                return mismatch(format!(
                    "point count differs: log {}, graph {}",
                    begin.n_points,
                    g.len()
                ));
            }
        }
        Ok(())
    }

    /// Rebuilds the engine from a WAL snapshot. The Fig.-3 heaps are not
    /// stored in the log; they are reconstructed here from the invariant
    /// that every heap entry is `goodness(link[i][j], |i|, |j|)`.
    fn engine_from_snapshot(
        &self,
        begin: &WalBegin,
        merges: &[MergeRecord],
        snap: &WalSnapshot,
    ) -> Result<Engine, RockError> {
        let mismatch = |detail: String| RockError::WalMismatch { detail };
        let arena_len = snap.arena_len as usize;
        if arena_len != begin.initial_points.len() + snap.merges_done as usize {
            return Err(mismatch(
                "snapshot arena length inconsistent with its merge count".into(),
            ));
        }
        let mut members: Vec<Option<Vec<u32>>> = vec![None; arena_len];
        for (id, m) in &snap.clusters {
            let slot = members
                .get_mut(*id as usize)
                .ok_or_else(|| mismatch(format!("snapshot cluster id {id} out of range")))?;
            if slot.is_some() {
                return Err(mismatch(format!("snapshot repeats cluster id {id}")));
            }
            if m.is_empty() {
                return Err(mismatch(format!("snapshot cluster {id} is empty")));
            }
            *slot = Some(m.clone());
        }
        let mut state = IncrementalState::new(members, self.goodness, self.hasher);
        state.live = snap.clusters.len();
        // tidy-allow(nondeterministic-iter): snap.links is a Vec canonically sorted by Engine::snapshot, not a hash map; the name merely shadows the links field
        for &(i, j, c) in &snap.links {
            let live = |x: u32| {
                state
                    .members
                    .get(x as usize)
                    .is_some_and(|m| m.is_some())
            };
            if i >= j || !live(i) || !live(j) || c == 0 {
                return Err(mismatch(format!(
                    "snapshot link ({i}, {j}, {c}) is malformed or references a dead \
                     cluster"
                )));
            }
            state.links[i as usize].insert(j, c);
            state.links[j as usize].insert(i, c);
            let g = self
                .goodness
                .merge_goodness(c, state.size(i), state.size(j));
            state.local[i as usize].insert(j, g);
            state.local[j as usize].insert(i, g);
        }
        for (id, _) in &snap.clusters {
            state.refresh_global(*id);
        }
        Ok(Engine {
            state,
            outliers: snap.outliers.clone(),
            initial_points: begin.initial_points.clone(),
            merges: merges[..snap.merges_done as usize].to_vec(),
            weeded: snap.weeded,
        })
    }
}

/// Outcome of one merge-loop transition.
enum Step {
    /// The loop is finished (target reached or no links remain).
    Done,
    /// The §4.6 weeding fired; re-evaluate the loop condition.
    Weeded,
    /// One merge committed.
    Merged(MergeRecord),
}

/// In-flight run: mutable state plus the trace needed to finish, log and
/// snapshot it.
struct Engine {
    state: IncrementalState,
    /// Outliers accumulated so far (pruned up front, then weeded).
    outliers: Vec<u32>,
    initial_points: Vec<u32>,
    merges: Vec<MergeRecord>,
    weeded: bool,
}

impl Engine {
    /// A full state image for the WAL. Canonical: clusters ascend by
    /// arena id, links ascend by `(i, j)` — identical state produces
    /// identical snapshot bytes (see
    /// [`IncrementalState::live_clusters`] and
    /// [`IncrementalState::canonical_links`]).
    fn snapshot(&self) -> WalSnapshot {
        WalSnapshot {
            merges_done: self.merges.len() as u64,
            arena_len: self.state.members.len() as u64,
            weeded: self.weeded,
            outliers: self.outliers.clone(),
            clusters: self.state.live_clusters(),
            links: self.state.canonical_links(),
        }
    }
}

/// Stable on-log discriminant of the goodness kind.
fn kind_code(kind: GoodnessKind) -> u8 {
    match kind {
        GoodnessKind::Normalized => 0,
        GoodnessKind::RawLinks => 1,
    }
}

/// Sets the `resumable` flag on an [`RockError::Interrupted`].
pub(crate) fn mark_resumable(mut err: RockError, resumable: bool) -> RockError {
    if let RockError::Interrupted { resumable: r, .. } = &mut err {
        *r = resumable;
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goodness::{BasketF, GoodnessKind};
    use crate::points::Transaction;
    use crate::similarity::{Jaccard, PointsWith, SimilarityMatrix};

    fn basket_engine(theta: f64, k: usize) -> RockAlgorithm {
        RockAlgorithm::new(
            Goodness::new(theta, BasketF, GoodnessKind::Normalized),
            k,
            OutlierPolicy::default(),
        )
    }

    /// Fig. 1's two overlapping clusters must be recovered at θ = 0.5
    /// (§3.2: "our link-based approach would generate the correct
    /// clusters shown in Figure 1").
    ///
    /// §3.3 defines f(θ) by "each point belonging to cluster Cᵢ has
    /// approximately nᵢ^{f(θ)} neighbors in Cᵢ" and stresses it is
    /// data-set dependent. In the Fig.-1 construction every transaction
    /// neighbors (almost) its entire cluster, so the faithful estimate is
    /// f ≈ 1 — not the market-basket `(1−θ)/(1+θ)` derived for sparse
    /// uniformly-spread baskets. See `figure1_f_sensitivity` below.
    #[test]
    fn recovers_figure1_clusters() {
        let ts = crate::testdata::figure1_transactions();
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let engine = RockAlgorithm::new(
            Goodness::new(0.5, crate::goodness::ConstantF(1.0), GoodnessKind::Normalized),
            2,
            OutlierPolicy::default(),
        );
        let run = engine.run(&g);
        let c = &run.clustering;
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.sizes(), vec![10, 4]);
        // The big cluster is exactly the 3-subsets of {1..5} (ids 0..10).
        assert_eq!(c.clusters[0], (0u32..10).collect::<Vec<_>>());
        assert_eq!(c.clusters[1], (10u32..14).collect::<Vec<_>>());
    }

    /// Reproduction note: with the market-basket estimate f = 1/3 the
    /// criterion function E_l itself (§3.3) scores the "A swallows
    /// {1,2,6},{1,2,7}" split *higher* than the intended Fig.-1 clusters,
    /// and the greedy faithfully chases it. This pins down that behaviour
    /// so the f-sensitivity is documented rather than accidental.
    #[test]
    fn figure1_f_sensitivity() {
        use crate::criterion_fn::criterion_value;
        let ts = crate::testdata::figure1_transactions();
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let links = crate::links::compute_links_sparse(&g);
        let correct = vec![(0u32..10).collect::<Vec<_>>(), (10u32..14).collect()];
        let swallowed = vec![(0u32..12).collect::<Vec<_>>(), (12u32..14).collect()];
        let basket = Goodness::new(0.5, BasketF, GoodnessKind::Normalized);
        assert!(
            criterion_value(&links, &swallowed, &basket)
                > criterion_value(&links, &correct, &basket),
            "with f = 1/3, E_l prefers the swallowed split on this data"
        );
        let run = basket_engine(0.5, 2).run(&g);
        assert_eq!(run.clustering.sizes(), vec![12, 2]);
        // With the density-faithful f = 1 the preference flips.
        let dense = Goodness::new(0.5, crate::goodness::ConstantF(1.0), GoodnessKind::Normalized);
        assert!(
            criterion_value(&links, &correct, &dense)
                > criterion_value(&links, &swallowed, &dense)
        );
    }

    /// Example 1.1: `{1,4}` and `{6}` share no items, so ROCK must never
    /// put them in one cluster (they have no links).
    #[test]
    fn example_1_1_no_spurious_merge() {
        let ts = vec![
            Transaction::from([1, 2, 3, 5]),
            Transaction::from([2, 3, 4, 5]),
            Transaction::from([1, 4]),
            Transaction::from([6]),
        ];
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.2);
        // Ask for 2 clusters with outlier pruning off so all points remain.
        let engine = RockAlgorithm::new(
            Goodness::new(0.2, BasketF, GoodnessKind::Normalized),
            2,
            OutlierPolicy::disabled(),
        );
        let run = engine.run(&g);
        let c = &run.clustering;
        // {6} has no neighbors ⇒ no links ⇒ it can never merge; the loop
        // stops early with ≥ 2 clusters and 2 and 3 never share a cluster
        // with disjoint transactions... 2 ({1,4}) links to 0 and 1.
        let a = c.cluster_of(2);
        let b = c.cluster_of(3);
        assert!(a.is_some() && b.is_some());
        assert_ne!(a, b, "disjoint transactions must not be merged");
    }

    #[test]
    fn stops_when_no_links_remain() {
        // Two separated cliques, k = 1: the loop cannot produce one
        // cluster because no cross links exist; it must stop at 2 (§4.3).
        let ts = vec![
            Transaction::from([1, 2, 3]),
            Transaction::from([1, 2, 4]),
            Transaction::from([1, 3, 4]),
            Transaction::from([10, 11, 12]),
            Transaction::from([10, 11, 13]),
            Transaction::from([10, 12, 13]),
        ];
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let run = basket_engine(0.5, 1).run(&g);
        assert_eq!(run.clustering.num_clusters(), 2);
        assert_eq!(run.clustering.sizes(), vec![3, 3]);
    }

    #[test]
    fn isolated_points_pruned_as_outliers() {
        let ts = vec![
            Transaction::from([1, 2, 3]),
            Transaction::from([1, 2, 4]),
            Transaction::from([1, 3, 4]),
            Transaction::from([99]),
        ];
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let run = basket_engine(0.5, 1).run(&g);
        assert_eq!(run.clustering.outliers, vec![3]);
        assert_eq!(run.clustering.num_clusters(), 1);
    }

    #[test]
    fn weeding_removes_small_clusters() {
        // One clear 4-clique plus a loose pair far away. Weeding with
        // min_cluster_size 3 must discard the pair.
        let ts = vec![
            Transaction::from([1, 2, 3]),
            Transaction::from([1, 2, 4]),
            Transaction::from([1, 3, 4]),
            Transaction::from([2, 3, 4]),
            Transaction::from([50, 51, 52]),
            Transaction::from([50, 51, 53]),
        ];
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let engine = RockAlgorithm::new(
            Goodness::new(0.5, BasketF, GoodnessKind::Normalized),
            1,
            OutlierPolicy {
                min_neighbors: 1,
                weed: Some(WeedPolicy {
                    stop_multiple: 2.0,
                    min_cluster_size: 3,
                }),
            },
        );
        let run = engine.run(&g);
        assert_eq!(run.clustering.num_clusters(), 1);
        assert_eq!(run.clustering.clusters[0], vec![0, 1, 2, 3]);
        assert_eq!(run.clustering.outliers, vec![4, 5]);
    }

    #[test]
    fn merge_records_are_consistent() {
        let ts = crate::testdata::figure1_transactions();
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let run = basket_engine(0.5, 2).run(&g);
        // 14 points → 2 clusters needs exactly 12 merges.
        assert_eq!(run.merges.len(), 12);
        for m in &run.merges {
            assert!(m.cross_links > 0, "merged pairs must share links");
            assert!(m.goodness > 0.0);
            assert!(m.sizes.0 >= 1 && m.sizes.1 >= 1);
        }
    }

    #[test]
    fn k_greater_than_n_returns_singletons() {
        let m = SimilarityMatrix::from_fn(3, |_, _| 1.0);
        let g = NeighborGraph::build(&m, 0.5);
        let run = RockAlgorithm::new(
            Goodness::new(0.5, BasketF, GoodnessKind::Normalized),
            10,
            OutlierPolicy::disabled(),
        )
        .run(&g);
        assert_eq!(run.clustering.num_clusters(), 3);
        assert!(run.merges.is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let ts = crate::testdata::figure1_transactions();
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let a = basket_engine(0.5, 2).run(&g).clustering;
        let b = basket_engine(0.5, 2).run(&g).clustering;
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one target cluster")]
    fn zero_k_panics() {
        let _ = RockAlgorithm::new(
            Goodness::new(0.5, BasketF, GoodnessKind::Normalized),
            0,
            OutlierPolicy::disabled(),
        );
    }
}

//! Structured run reporting for graceful degradation.
//!
//! The paper's Fig.-2 pipeline touches a disk-resident database — the one
//! place this reproduction meets the messy outside world. When the
//! resilient drivers skip a comment line, quarantine a malformed record,
//! retry a transient read or drop a point as an outlier, that decision
//! must be *visible*, not silent. [`RunReport`] is the single structured
//! account of everything a run tolerated, returned alongside the results
//! by [`crate::rock::Rock::try_run`] and by
//! `rock_data::resilient::label_stream_resilient`.

use crate::governor::{DegradationNote, Phase, TripReason};
use crate::perf::PerfCounters;
use std::fmt;
use std::time::{Duration, Instant};

/// One malformed or unlabelable input record set aside instead of
/// aborting the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedRecord {
    /// 1-based line number in the input stream.
    pub line: u64,
    /// Human-readable reason (parse failure, non-finite similarity, …).
    pub reason: String,
}

/// In-flight wall-clock measurement of one pipeline phase.
///
/// This is the only sanctioned way for pipeline code to time a phase:
/// report.rs owns the process's wall-clock dependency, so the
/// deterministic modules (`rock.rs`, `algorithm.rs`, …) never read
/// `Instant::now` themselves — rock-tidy's `wall-clock` rule enforces
/// that boundary.
#[derive(Debug)]
pub struct PhaseTimer {
    started: Instant,
}

impl PhaseTimer {
    /// Starts the clock.
    #[must_use]
    pub fn start() -> Self {
        PhaseTimer {
            started: Instant::now(),
        }
    }

    /// Stops the clock and appends the phase timing to `report`.
    pub fn record(self, report: &mut RunReport, name: &str) {
        report.record_phase(name, self.started.elapsed());
    }
}

/// Wall-clock duration of one pipeline phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Phase name (`"sample"`, `"cluster"`, `"label"`, …).
    pub name: String,
    /// Elapsed wall-clock time.
    pub duration: Duration,
}

/// Work counters attributed to one pipeline phase.
///
/// Unlike [`PhaseTiming`] these are *work* measurements, not time:
/// pairs emitted, bytes touched, similarity evaluations (see
/// [`crate::perf`]). They are deterministic for a given input — the
/// same run produces the same counters at every thread count — so they
/// are safe to persist and compare across hosts, where wall-clock
/// numbers are not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhasePerf {
    /// Phase name (`"sample"`, `"cluster"`, `"label"`, …).
    pub name: String,
    /// Counter deltas attributed to this phase.
    pub counters: PerfCounters,
}

/// Provenance of one quarantined shard in a shard-and-merge run (see
/// `crate::engine::supervisor::ShardSupervisor`): after the supervisor's
/// retry ladder is exhausted, the shard's points are excluded from the
/// final clustering and this note records exactly what was lost and why —
/// mirroring the Subsample degradation provenance of single runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardDegradationNote {
    /// Index of the quarantined shard. By convention the supervisor uses
    /// `shard == shard count` (one past the last shard) for a degraded
    /// coarse merge pass, which excludes no points — the shard-level
    /// clusters are kept unmerged instead.
    pub shard: usize,
    /// Every excluded point, as global input ids. Empty for a degraded
    /// merge pass.
    pub points: Vec<u32>,
    /// Attempts spent before giving up.
    pub attempts: u32,
    /// The final failure, rendered.
    pub reason: String,
}

impl fmt::Display for ShardDegradationNote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} quarantined after {} attempt{}: {} ({} points excluded)",
            self.shard,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.reason,
            self.points.len()
        )
    }
}

/// Structured account of a run: what was read, what was tolerated, and
/// where the time went.
///
/// Counter fields are cumulative over one driver invocation. A resumed
/// invocation starts its own report (with
/// [`RunReport::resumed_from_offset`] set); cumulative progress across
/// invocations lives in the checkpoint, not the report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Records successfully ingested and processed.
    pub records_read: u64,
    /// Blank and `#`-comment lines skipped by the basket format.
    pub records_skipped: u64,
    /// Malformed or unlabelable records set aside (≤ the configured cap).
    pub records_quarantined: u64,
    /// Detail for the first quarantined records (bounded; the counter
    /// above is authoritative).
    pub quarantined: Vec<QuarantinedRecord>,
    /// Transient I/O errors observed (each consumed one retry attempt).
    pub transient_io_errors: u64,
    /// Read attempts retried after a transient error.
    pub io_retries: u64,
    /// Points labeled as outliers (no neighbors in any labeling set).
    pub outliers: u64,
    /// Checkpoints emitted during the run.
    pub checkpoints_written: u64,
    /// Byte offset this run resumed from, if it continued a checkpoint.
    pub resumed_from_offset: Option<u64>,
    /// Per-phase wall-clock timings, in execution order.
    pub phases: Vec<PhaseTiming>,
    /// Per-phase work counters, in execution order. Only phases that
    /// did counted work appear; zero deltas are skipped by
    /// [`RunReport::record_phase_perf`].
    pub phase_perf: Vec<PhasePerf>,
    /// Provenance of a graceful degradation, if one fired: which
    /// [`crate::governor::DegradationPolicy`] was applied, in which
    /// phase, and why (see [`crate::rock::RockBuilder::degradation`]).
    pub degraded: Option<DegradationNote>,
    /// Where a governed run was interrupted, if it did not complete:
    /// the phase that observed the trip and the reason. Set on reports
    /// that travel with partial results (e.g. a resilient ingest error);
    /// completed runs leave it `None`.
    pub interrupted: Option<(Phase, TripReason)>,
    /// How many shards a shard-and-merge run partitioned the input into
    /// (`None` for unsharded runs). Per-phase timings and work counters
    /// of a sharded report are sums across these shards.
    pub shard_count: Option<usize>,
    /// Quarantine provenance of a shard-and-merge run, one note per
    /// shard the supervisor gave up on; empty when every shard
    /// completed.
    pub shard_notes: Vec<ShardDegradationNote>,
}

impl RunReport {
    /// An empty report.
    pub fn new() -> Self {
        RunReport::default()
    }

    /// Appends a phase timing.
    pub fn record_phase(&mut self, name: &str, duration: Duration) {
        self.phases.push(PhaseTiming {
            name: name.to_string(),
            duration,
        });
    }

    /// Appends a phase's work-counter delta, unless it is all zeros.
    ///
    /// Callers snapshot [`crate::perf::snapshot`] before the phase and
    /// pass `after.since(&before)`; a phase that touched no counted
    /// kernel leaves no entry, keeping reports for non-ROCK models
    /// (and their persisted artifacts) byte-identical to before.
    pub fn record_phase_perf(&mut self, name: &str, counters: PerfCounters) {
        if counters.is_zero() {
            return;
        }
        self.phase_perf.push(PhasePerf {
            name: name.to_string(),
            counters,
        });
    }

    /// The recorded work counters of phase `name`, if present.
    pub fn phase_counters(&self, name: &str) -> Option<PerfCounters> {
        self.phase_perf
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.counters)
    }

    /// The recorded duration of phase `name`, if present.
    pub fn phase_duration(&self, name: &str) -> Option<Duration> {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.duration)
    }

    /// Total wall-clock time across all recorded phases.
    pub fn total_duration(&self) -> Duration {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// Counts a quarantined record, keeping detail for at most
    /// `detail_cap` of them.
    pub fn quarantine(&mut self, line: u64, reason: impl Into<String>, detail_cap: usize) {
        self.records_quarantined += 1;
        if self.quarantined.len() < detail_cap {
            self.quarantined.push(QuarantinedRecord {
                line,
                reason: reason.into(),
            });
        }
    }

    /// Whether the run degraded in any visible way (quarantines, retries,
    /// transient errors, an applied degradation policy or an
    /// interruption). Outliers are a normal ROCK outcome and do not
    /// count as degradation.
    pub fn degraded(&self) -> bool {
        self.records_quarantined > 0
            || self.transient_io_errors > 0
            || self.io_retries > 0
            || self.degraded.is_some()
            || self.interrupted.is_some()
            || !self.shard_notes.is_empty()
    }

    /// Global ids of every point excluded by shard quarantine, sorted
    /// ascending (empty for unsharded or fully surviving runs).
    pub fn excluded_points(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .shard_notes
            .iter()
            .flat_map(|n| n.points.iter().copied())
            .collect();
        out.sort_unstable();
        out
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "run report:")?;
        writeln!(
            f,
            "  records: {} read, {} skipped, {} quarantined",
            self.records_read, self.records_skipped, self.records_quarantined
        )?;
        writeln!(
            f,
            "  io: {} transient errors, {} retries",
            self.transient_io_errors, self.io_retries
        )?;
        writeln!(f, "  outliers: {}", self.outliers)?;
        match self.resumed_from_offset {
            Some(off) => writeln!(
                f,
                "  checkpoints: {} written (resumed from byte {off})",
                self.checkpoints_written
            )?,
            None => writeln!(f, "  checkpoints: {} written", self.checkpoints_written)?,
        }
        if !self.phases.is_empty() {
            write!(f, "  phases:")?;
            for p in &self.phases {
                write!(f, " {} {:.1?}", p.name, p.duration)?;
            }
            writeln!(f)?;
        }
        for p in &self.phase_perf {
            writeln!(f, "  perf: {} [{}]", p.name, p.counters)?;
        }
        if let Some(shards) = self.shard_count {
            writeln!(
                f,
                "  shards: {} total, {} quarantined",
                shards,
                self.shard_notes.len()
            )?;
        }
        if let Some(note) = &self.degraded {
            writeln!(f, "  degraded: {note}")?;
        }
        for note in &self.shard_notes {
            writeln!(f, "  degraded: {note}")?;
        }
        if let Some((phase, reason)) = &self.interrupted {
            writeln!(f, "  interrupted: {phase} phase ({reason})")?;
        }
        for q in &self.quarantined {
            writeln!(f, "  quarantined line {}: {}", q.line, q.reason)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_caps_detail_but_counts_all() {
        let mut r = RunReport::new();
        for i in 0..10 {
            r.quarantine(i, "bad token", 3);
        }
        assert_eq!(r.records_quarantined, 10);
        assert_eq!(r.quarantined.len(), 3);
        assert!(r.degraded());
    }

    #[test]
    fn phases_accumulate_and_sum() {
        let mut r = RunReport::new();
        r.record_phase("sample", Duration::from_millis(2));
        r.record_phase("cluster", Duration::from_millis(5));
        assert_eq!(r.phase_duration("cluster"), Some(Duration::from_millis(5)));
        assert_eq!(r.phase_duration("label"), None);
        assert_eq!(r.total_duration(), Duration::from_millis(7));
    }

    #[test]
    fn phase_perf_skips_zero_deltas_and_displays_nonzero() {
        let mut r = RunReport::new();
        r.record_phase_perf("sample", PerfCounters::default());
        assert!(r.phase_perf.is_empty(), "zero delta must leave no entry");

        let counters = PerfCounters {
            pairs_emitted: 12,
            bytes_touched: 4096,
            ..PerfCounters::default()
        };
        r.record_phase_perf("cluster", counters);
        assert_eq!(r.phase_counters("cluster"), Some(counters));
        assert_eq!(r.phase_counters("sample"), None);
        let s = r.to_string();
        assert!(s.contains("perf: cluster"), "missing perf line in:\n{s}");
        assert!(s.contains("pairs=12"), "missing counter in:\n{s}");
    }

    #[test]
    fn clean_run_is_not_degraded() {
        let mut r = RunReport::new();
        r.records_read = 100;
        r.outliers = 5;
        assert!(!r.degraded());
    }

    #[test]
    fn shard_notes_count_as_degradation_and_display() {
        let mut r = RunReport::new();
        r.shard_count = Some(4);
        assert!(!r.degraded(), "a fully surviving sharded run is clean");
        r.shard_notes.push(ShardDegradationNote {
            shard: 2,
            points: vec![20, 21, 22],
            attempts: 3,
            reason: "run interrupted in merge phase: cancelled".into(),
        });
        assert!(r.degraded());
        assert_eq!(r.excluded_points(), vec![20, 21, 22]);
        let s = r.to_string();
        assert!(s.contains("shards: 4 total, 1 quarantined"), "{s}");
        assert!(s.contains("shard 2 quarantined after 3 attempts"), "{s}");
        assert!(s.contains("3 points excluded"), "{s}");
    }

    #[test]
    fn excluded_points_merge_sorted_across_notes() {
        let mut r = RunReport::new();
        for (shard, points) in [(1usize, vec![7u32, 9]), (0, vec![1, 3])] {
            r.shard_notes.push(ShardDegradationNote {
                shard,
                points,
                attempts: 1,
                reason: "x".into(),
            });
        }
        assert_eq!(r.excluded_points(), vec![1, 3, 7, 9]);
    }

    #[test]
    fn display_mentions_every_counter() {
        let mut r = RunReport::new();
        r.records_read = 42;
        r.records_skipped = 3;
        r.transient_io_errors = 2;
        r.io_retries = 2;
        r.outliers = 7;
        r.checkpoints_written = 1;
        r.resumed_from_offset = Some(512);
        r.quarantine(17, "bad item token \"x\"", 8);
        let s = r.to_string();
        for needle in ["42", "3 skipped", "2 retries", "7", "512", "line 17"] {
            assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
        }
    }
}

//! Corruption-tolerant assign service: batched §4.6 labeling queries
//! against a loaded [`ModelArtifact`].
//!
//! The paper's Fig.-2 split — cluster a sample once, then label the
//! rest of the data against the per-cluster representative sets Lᵢ —
//! makes the fitted model a *servable* object: an
//! [`AssignService`] answers "which cluster does this point belong to"
//! queries long after the fit, from an artifact reloaded off disk.
//! The service layers the repo's robustness machinery around that
//! query path:
//!
//! * **Bounded retry** around a pluggable [`ArtifactSource`]
//!   ([`load_artifact_with_retry`]): transient I/O errors
//!   (`WouldBlock`, `TimedOut`, `Interrupted`) are retried with capped
//!   exponential backoff; anything else — including artifact
//!   corruption, which retrying cannot fix — surfaces immediately as a
//!   typed [`RockError`].
//! * **Per-batch deadline and cancellation** via the existing
//!   [`RunGovernor`]: every query is a [`Phase::Labeling`] checkpoint.
//! * **Degradation ladder** ([`ServeDegradation`]): when the batch
//!   deadline trips mid-batch, the service either fails the batch
//!   ([`ServeDegradation::Fail`]) or downshifts from full
//!   representative scoring to a single centroid per cluster
//!   ([`ServeDegradation::Centroid`]) — O(k) instead of O(Σ|Lᵢ|) per
//!   query — and finishes the batch, recording the switch in the
//!   [`ServeReport`]. Cancellation always aborts.
//! * **Quarantine**: a query whose similarity evaluation degenerates
//!   (NaN/±∞ from a user measure) is recorded and left unassigned
//!   instead of poisoning the batch.
//! * **Lifetime stats**: the service keeps cumulative
//!   [`ServeStats`] counters and a bounded log of recent
//!   [`ServeDegradationNote`]s across every batch it has served
//!   ([`AssignService::lifetime_stats`]), updated *after* each batch
//!   completes so no lock is ever held across a user similarity call.
//!   The two interior locks follow one service-wide acquisition order —
//!   stats before the degradation log — checked statically by
//!   `rock-tidy`'s lock-order rule.
//!
//! Queries borrow the service immutably, so one service instance
//! safely serves concurrent reader threads.
//!
//! **Online mode** ([`OnlineAssignService`]) pairs the read path with an
//! evolving model: one writer absorbs arrival batches into an
//! [`IncrementalRockState`] (update-WAL-logged, bounded re-merges) and
//! publishes each changed model as a fresh [`AssignService`] snapshot
//! behind an `Arc` swap, so concurrent readers are never blocked behind
//! an update or re-merge.

use crate::artifact::{ArtifactPoint, ArtifactSource, ModelArtifact};
use crate::error::RockError;
use crate::governor::{Phase, RunGovernor, TripReason};
use crate::incremental::{IncrementalRockState, StalenessPolicy, UpdateOutcome};
use crate::labeling::Labeler;
use crate::report::QuarantinedRecord;
use crate::similarity::Similarity;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What to do when the batch deadline trips mid-batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServeDegradation {
    /// Abort the batch with [`RockError::Interrupted`].
    Fail,
    /// Downshift to centroid-of-representatives scoring for the rest of
    /// the batch and complete it (the default).
    #[default]
    Centroid,
}

impl std::fmt::Display for ServeDegradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeDegradation::Fail => write!(f, "fail"),
            ServeDegradation::Centroid => write!(f, "centroid"),
        }
    }
}

pub use crate::util::retry::RetryPolicy;

/// Serving knobs for an [`AssignService`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Wall-clock budget per [`AssignService::assign_batch`] call;
    /// `None` = no deadline.
    pub batch_deadline: Option<Duration>,
    /// What a mid-batch deadline trip does.
    pub degradation: ServeDegradation,
    /// Retry policy for [`AssignService::from_source`].
    pub retry: RetryPolicy,
    /// At most this many quarantined queries keep a detailed record
    /// per batch (the count is always exact).
    pub quarantine_detail_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_deadline: None,
            degradation: ServeDegradation::default(),
            retry: RetryPolicy::default(),
            quarantine_detail_cap: 32,
        }
    }
}

/// A mid-batch downshift, as recorded in the [`ServeReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct ServeDegradationNote {
    /// The policy that was applied.
    pub policy: ServeDegradation,
    /// Index of the first query served degraded.
    pub at_query: u64,
    /// Which budget tripped.
    pub reason: TripReason,
    /// Human-readable explanation.
    pub detail: String,
}

impl std::fmt::Display for ServeDegradationNote {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "degraded to {} from query {} ({}): {}",
            self.policy, self.at_query, self.reason, self.detail
        )
    }
}

/// Structured account of one served batch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeReport {
    /// Queries in the batch.
    pub queries: u64,
    /// Queries assigned to a cluster.
    pub assigned: u64,
    /// Queries labeled as outliers (no neighbors in any labeling set).
    pub unassigned: u64,
    /// Queries quarantined (non-finite similarity) — always exact, even
    /// past the detail cap.
    pub records_quarantined: u64,
    /// Detailed records for the first
    /// [`ServeConfig::quarantine_detail_cap`] quarantined queries
    /// (`line` = query index within the batch).
    pub quarantined: Vec<QuarantinedRecord>,
    /// The mid-batch downshift, if the deadline tripped.
    pub degraded: Option<ServeDegradationNote>,
}

/// One served batch: per-query assignments plus the report.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeBatch {
    /// `assignments[i]` = cluster index for query `i`, or `None` for
    /// outliers and quarantined queries.
    pub assignments: Vec<Option<usize>>,
    /// What happened while serving.
    pub report: ServeReport,
}

/// Cumulative counters over every batch one [`AssignService`] instance
/// has served (see [`AssignService::lifetime_stats`]). All counts are
/// exact: they are folded in under a lock after each batch completes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Batches served to completion (aborted batches are not counted).
    pub batches: u64,
    /// Queries across all completed batches.
    pub queries: u64,
    /// Queries assigned to a cluster.
    pub assigned: u64,
    /// Queries labeled as outliers.
    pub unassigned: u64,
    /// Queries quarantined for non-finite similarity.
    pub quarantined: u64,
    /// Batches that finished degraded (deadline tripped mid-batch).
    pub degraded_batches: u64,
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} batches ({} degraded): {} queries = {} assigned + {} unassigned + {} quarantined",
            self.batches,
            self.degraded_batches,
            self.queries,
            self.assigned,
            self.unassigned,
            self.quarantined
        )
    }
}

/// How many [`ServeDegradationNote`]s the service retains: the log keeps
/// the most recent `DEGRADATION_LOG_CAP` notes and drops the oldest
/// (the exact count survives in [`ServeStats::degraded_batches`]).
pub const DEGRADATION_LOG_CAP: usize = 16;

/// A point type whose representative set can collapse to one summary
/// point — the degraded scoring mode of [`ServeDegradation::Centroid`].
pub trait Centroid: Sized {
    /// A single point summarising `reps`, or `None` when `reps` is
    /// empty. Must be deterministic.
    fn centroid(reps: &[Self]) -> Option<Self>;
}

impl Centroid for crate::points::Transaction {
    /// Majority vote: keeps every item present in at least half of the
    /// representatives (2·count ≥ |reps|).
    fn centroid(reps: &[Self]) -> Option<Self> {
        if reps.is_empty() {
            return None;
        }
        let mut counts = std::collections::BTreeMap::new();
        for t in reps {
            for &item in t.items() {
                *counts.entry(item).or_insert(0usize) += 1;
            }
        }
        let items = counts
            .into_iter()
            .filter(|&(_, n)| n * 2 >= reps.len())
            .map(|(item, _)| item)
            .collect();
        Some(crate::points::Transaction::new(items))
    }
}

impl Centroid for Vec<f64> {
    /// Componentwise mean over the shortest common prefix.
    fn centroid(reps: &[Self]) -> Option<Self> {
        if reps.is_empty() {
            return None;
        }
        let len = reps.iter().map(Vec::len).min().unwrap_or(0);
        Some(
            (0..len)
                // tidy-allow(panic-reach): i < len == the minimum rep length, so every r[i] is in bounds
                .map(|i| reps.iter().map(|r| r[i]).sum::<f64>() / reps.len() as f64)
                .collect(),
        )
    }
}

/// Fetches and parses an artifact through `source`, retrying transient
/// I/O errors with capped exponential backoff. Returns the artifact and
/// the number of retries it took.
///
/// # Errors
/// [`RockError::ArtifactIo`] when a non-transient error occurs or the
/// retry budget is exhausted; parse/validation errors as
/// [`ModelArtifact::from_bytes`] (corruption is *not* retried — a
/// deterministic reread cannot fix it).
pub fn load_artifact_with_retry(
    source: &mut dyn ArtifactSource,
    retry: &RetryPolicy,
) -> Result<(ModelArtifact, u64), RockError> {
    let mut retries = 0u64;
    loop {
        match source.fetch() {
            Ok(bytes) => return ModelArtifact::from_bytes(&bytes).map(|a| (a, retries)),
            Err(e)
                if RetryPolicy::is_transient_kind(e.kind())
                    && retries < u64::from(retry.max_retries) =>
            {
                std::thread::sleep(retry.backoff(retries as u32));
                retries += 1;
            }
            Err(e) => {
                return Err(RockError::ArtifactIo {
                    detail: format!("artifact fetch failed after {retries} retries: {e}"),
                })
            }
        }
    }
}

/// A loaded model serving batched assign/label queries.
///
/// All query methods take `&self`; the service is `Sync` (for `Sync`
/// point and measure types) and one instance serves concurrent reader
/// threads. Lifetime counters live behind interior locks with one
/// service-wide acquisition order: `stats` strictly before
/// `degradations`, never the reverse — every path that needs both takes
/// them in that order, so the two locks cannot deadlock.
#[derive(Debug)]
pub struct AssignService<P, S> {
    full: Labeler<P>,
    centroid: Labeler<P>,
    measure: S,
    config: ServeConfig,
    stats: Mutex<ServeStats>,
    degradations: Mutex<VecDeque<ServeDegradationNote>>,
}

impl<P: Clone, S: Clone> Clone for AssignService<P, S> {
    /// The clone starts from a snapshot of the source's lifetime stats;
    /// the two services count independently afterwards.
    fn clone(&self) -> Self {
        let (stats, notes) = self.lifetime_stats();
        AssignService {
            full: self.full.clone(),
            centroid: self.centroid.clone(),
            measure: self.measure.clone(),
            config: self.config.clone(),
            stats: Mutex::new(stats),
            degradations: Mutex::new(notes.into()),
        }
    }
}

impl<P, S> AssignService<P, S> {
    /// A consistent snapshot of the lifetime counters and the retained
    /// degradation log (most recent last, at most
    /// [`DEGRADATION_LOG_CAP`] notes).
    ///
    /// Both locks are taken in the service-wide order — stats, then the
    /// degradation log — so the counters and the log describe the same
    /// prefix of served batches even under concurrent writers.
    pub fn lifetime_stats(&self) -> (ServeStats, Vec<ServeDegradationNote>) {
        // Both locked regions are call-free (ServeStats is Copy;
        // `.cloned()` never names a workspace `clone`), so the static
        // lock-order analysis sees no lock held across an outbound call.
        let stats = self.stats.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // tidy-allow(lock-order): service-wide order is stats → degradations; record_batch nests identically
        let log = self.degradations.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        (*stats, log.iter().cloned().collect())
    }

    /// Folds one completed batch into the lifetime counters. Called
    /// after the batch loop finishes — never while a query (and thus a
    /// user similarity measure) is in flight.
    fn record_batch(&self, report: &ServeReport) {
        let note = report.degraded.clone();
        let mut stats = self.stats.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        stats.batches += 1;
        stats.queries += report.queries;
        stats.assigned += report.assigned;
        stats.unassigned += report.unassigned;
        stats.quarantined += report.records_quarantined;
        if let Some(note) = note {
            stats.degraded_batches += 1;
            // tidy-allow(lock-order): service-wide order is stats → degradations; lifetime_stats nests identically
            let mut log = self.degradations.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if log.len() == DEGRADATION_LOG_CAP {
                log.pop_front();
            }
            log.push_back(note);
        }
    }
}

impl<P, S> AssignService<P, S>
where
    P: ArtifactPoint + Centroid + Clone,
    S: Similarity<P>,
{
    /// A service over `artifact`'s representative sets.
    ///
    /// # Errors
    /// [`RockError::ArtifactMismatch`] when the artifact has no
    /// representative section or its points do not decode as `P`.
    pub fn new(artifact: &ModelArtifact, measure: S, config: ServeConfig) -> Result<Self, RockError> {
        let full = artifact.labeler::<P>()?;
        let centroid_sets = full
            .sets()
            .iter()
            .map(|set| P::centroid(set).map_or_else(Vec::new, |c| vec![c]))
            .collect();
        let centroid = Labeler::from_sets(centroid_sets, full.theta(), full.ftheta())?;
        Ok(AssignService {
            full,
            centroid,
            measure,
            config,
            stats: Mutex::new(ServeStats::default()),
            degradations: Mutex::new(VecDeque::new()),
        })
    }

    /// Loads the artifact through `source` (with the config's retry
    /// policy) and builds the service. Returns the service and the
    /// number of fetch retries.
    ///
    /// # Errors
    /// As [`load_artifact_with_retry`] and [`AssignService::new`].
    pub fn from_source(
        source: &mut dyn ArtifactSource,
        measure: S,
        config: ServeConfig,
    ) -> Result<(Self, u64), RockError> {
        let (artifact, retries) = load_artifact_with_retry(source, &config.retry)?;
        Ok((AssignService::new(&artifact, measure, config)?, retries))
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Number of clusters queries are assigned into.
    pub fn num_clusters(&self) -> usize {
        self.full.num_clusters()
    }

    /// Serves one batch under the configured deadline
    /// ([`ServeConfig::batch_deadline`]).
    ///
    /// # Errors
    /// [`RockError::Interrupted`] when cancelled, or when the deadline
    /// trips under [`ServeDegradation::Fail`].
    pub fn assign_batch(&self, queries: &[P]) -> Result<ServeBatch, RockError> {
        let mut governor = RunGovernor::unlimited().with_check_every(1);
        if let Some(deadline) = self.config.batch_deadline {
            governor = governor.with_time_budget(deadline);
        }
        self.assign_batch_governed(queries, &governor)
    }

    /// Serves one batch under an injected governor — the seam for
    /// shared cancellation tokens and deterministic deadline tests.
    /// Every query is a [`Phase::Labeling`] checkpoint.
    ///
    /// # Errors
    /// As [`AssignService::assign_batch`].
    pub fn assign_batch_governed(
        &self,
        queries: &[P],
        governor: &RunGovernor,
    ) -> Result<ServeBatch, RockError> {
        governor.arm();
        let mut report = ServeReport {
            queries: queries.len() as u64,
            ..ServeReport::default()
        };
        let mut assignments = Vec::with_capacity(queries.len());
        for (i, query) in queries.iter().enumerate() {
            if let Err(trip) = governor.check_at(Phase::Labeling, i as u64) {
                let RockError::Interrupted { reason, .. } = trip else {
                    return Err(trip);
                };
                let may_degrade = reason == TripReason::DeadlineExceeded
                    && self.config.degradation == ServeDegradation::Centroid;
                match (may_degrade, &report.degraded) {
                    // Already degraded: the deadline stays tripped for
                    // the rest of the batch; keep completing it.
                    (true, Some(_)) => {}
                    (true, None) => {
                        report.degraded = Some(ServeDegradationNote {
                            policy: ServeDegradation::Centroid,
                            at_query: i as u64,
                            reason,
                            detail: format!(
                                "batch deadline tripped at query {i}/{}; finishing with \
                                 centroid-of-representatives scoring",
                                queries.len()
                            ),
                        });
                    }
                    // Cancellation, memory trips and the Fail policy
                    // always abort.
                    (false, _) => {
                        return Err(RockError::Interrupted {
                            phase: Phase::Labeling,
                            reason,
                            resumable: false,
                        })
                    }
                }
            }
            let labeler = if report.degraded.is_some() {
                &self.centroid
            } else {
                &self.full
            };
            match labeler.label_point_checked(query, &self.measure) {
                Ok(assignment) => {
                    match assignment {
                        Some(_) => report.assigned += 1,
                        None => report.unassigned += 1,
                    }
                    assignments.push(assignment);
                }
                Err(RockError::NonFiniteSimilarity { value }) => {
                    report.records_quarantined += 1;
                    if report.quarantined.len() < self.config.quarantine_detail_cap {
                        report.quarantined.push(QuarantinedRecord {
                            line: i as u64,
                            reason: format!("non-finite similarity {value}"),
                        });
                    }
                    assignments.push(None);
                }
                Err(other) => return Err(other),
            }
        }
        self.record_batch(&report);
        Ok(ServeBatch {
            assignments,
            report,
        })
    }
}

/// An assign service over an *evolving* model.
///
/// Pairs an [`IncrementalRockState`] (the single writer) with an
/// atomically swappable [`AssignService`] snapshot (any number of
/// readers). Readers take an `Arc` snapshot via
/// [`OnlineAssignService::service`] and keep serving queries from it;
/// [`OnlineAssignService::absorb_batch`] applies an update, builds the
/// *next* snapshot entirely off-lock, and publishes it with a single
/// pointer swap — readers are never blocked behind an update or a
/// re-merge. Snapshots taken before a swap keep answering from the
/// pre-update model until their holders re-fetch (the usual
/// read-copy-update trade), and each snapshot keeps its own lifetime
/// stats.
///
/// Durability follows the incremental contract: the state's update WAL
/// ([`OnlineAssignService::state`] → [`IncrementalRockState::wal`])
/// replays to the bit-identical evolved model, and
/// [`OnlineAssignService::persist`] saves it as a version-2 artifact.
pub struct OnlineAssignService<P, S> {
    state: IncrementalRockState<P>,
    measure: S,
    config: ServeConfig,
    current: Mutex<Arc<AssignService<P, S>>>,
}

impl<P, S> OnlineAssignService<P, S>
where
    P: ArtifactPoint + Centroid + Clone,
    S: Similarity<P> + Clone,
{
    /// Opens `artifact` for online serving under `policy`.
    ///
    /// # Errors
    /// As [`IncrementalRockState::from_artifact`] and
    /// [`AssignService::new`].
    pub fn new(
        artifact: &ModelArtifact,
        measure: S,
        config: ServeConfig,
        policy: StalenessPolicy,
    ) -> Result<Self, RockError> {
        let state = IncrementalRockState::from_artifact(artifact, policy)?;
        let service = AssignService::new(artifact, measure.clone(), config.clone())?;
        Ok(OnlineAssignService {
            state,
            measure,
            config,
            current: Mutex::new(Arc::new(service)),
        })
    }

    /// The current service snapshot. Cheap (one brief lock around an
    /// `Arc` clone); hold the returned `Arc` for a whole batch and
    /// re-fetch per batch to observe model swaps.
    pub fn service(&self) -> Arc<AssignService<P, S>> {
        let guard = self
            .current
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(&guard)
    }

    /// Serves one batch against the current snapshot (convenience for
    /// [`OnlineAssignService::service`] + [`AssignService::assign_batch`]).
    ///
    /// # Errors
    /// As [`AssignService::assign_batch`].
    pub fn assign_batch(&self, queries: &[P]) -> Result<ServeBatch, RockError> {
        self.service().assign_batch(queries)
    }

    /// Absorbs one batch of arrivals into the evolving model and — when
    /// the batch changed it (any point absorbed, or a re-merge ran) —
    /// swaps a freshly built service snapshot in for subsequent
    /// readers. The snapshot is constructed before the swap lock is
    /// taken; the lock covers only the pointer store.
    ///
    /// # Errors
    /// As [`IncrementalRockState::update`] (the model may then be torn
    /// — discard and resume from the WAL; the published snapshot is
    /// unaffected), plus artifact/service rebuild errors.
    pub fn absorb_batch(
        &mut self,
        arrivals: &[P],
        governor: &RunGovernor,
    ) -> Result<UpdateOutcome, RockError> {
        let outcome = self.state.update(arrivals, &self.measure, governor)?;
        if outcome.absorbed > 0 || !outcome.remerged.is_empty() {
            let artifact = self.state.to_artifact()?;
            let next = Arc::new(AssignService::new(
                &artifact,
                self.measure.clone(),
                self.config.clone(),
            )?);
            let mut guard = self
                .current
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *guard = next;
        }
        Ok(outcome)
    }

    /// The evolving model behind the service (read access to clusters,
    /// provenance and the update WAL).
    pub fn state(&self) -> &IncrementalRockState<P> {
        &self.state
    }

    /// Saves the evolved model as a version-2 artifact at `path`
    /// (atomic write-then-rename, as [`ModelArtifact::save`]).
    ///
    /// # Errors
    /// [`RockError::ArtifactIo`] on filesystem failure.
    pub fn persist(&self, path: &std::path::Path) -> Result<(), RockError> {
        self.state.to_artifact()?.save(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;
    use crate::engine::model::ModelFit;
    use crate::governor::CancellationToken;
    use crate::points::Transaction;
    use crate::report::RunReport;
    use crate::similarity::Jaccard;

    fn sample_artifact() -> ModelArtifact {
        let fit = ModelFit {
            clustering: Clustering::new(vec![vec![0, 1, 2], vec![3, 4]], vec![]),
            dendrogram: None,
            report: RunReport::new(),
        };
        let labeler: Labeler<Transaction> = Labeler::from_sets(
            vec![
                vec![
                    Transaction::from([0, 1, 2]),
                    Transaction::from([0, 1, 3]),
                    Transaction::from([0, 2, 3]),
                ],
                vec![Transaction::from([10, 11, 12]), Transaction::from([10, 11, 13])],
            ],
            0.5,
            1.0,
        )
        .unwrap();
        ModelArtifact::from_labeled("rock", &fit, &labeler, 1.0, None).unwrap()
    }

    fn queries() -> Vec<Transaction> {
        vec![
            Transaction::from([0, 1, 2, 3]), // cluster 0
            Transaction::from([10, 11]),     // cluster 1
            Transaction::from([77, 78]),     // outlier
        ]
    }

    #[test]
    fn assign_batch_matches_live_labeler() {
        let artifact = sample_artifact();
        let service: AssignService<Transaction, Jaccard> =
            AssignService::new(&artifact, Jaccard, ServeConfig::default()).unwrap();
        let batch = service.assign_batch(&queries()).unwrap();
        let live: Labeler<Transaction> = artifact.labeler().unwrap();
        let expected: Vec<Option<usize>> = queries()
            .iter()
            .map(|q| live.label_point(q, &Jaccard))
            .collect();
        assert_eq!(batch.assignments, expected);
        assert_eq!(batch.assignments, vec![Some(0), Some(1), None]);
        assert_eq!(batch.report.queries, 3);
        assert_eq!(batch.report.assigned, 2);
        assert_eq!(batch.report.unassigned, 1);
        assert_eq!(batch.report.records_quarantined, 0);
        assert!(batch.report.degraded.is_none());
    }

    #[test]
    fn tripped_deadline_degrades_to_centroid_and_completes() {
        let service: AssignService<Transaction, Jaccard> =
            AssignService::new(&sample_artifact(), Jaccard, ServeConfig::default()).unwrap();
        let governor = RunGovernor::unlimited()
            .with_check_every(1)
            .with_time_budget(Duration::ZERO);
        governor.arm();
        std::thread::sleep(Duration::from_millis(1));
        let batch = service.assign_batch_governed(&queries(), &governor).unwrap();
        let note = batch.report.degraded.expect("deadline must be recorded");
        assert_eq!(note.policy, ServeDegradation::Centroid);
        assert_eq!(note.at_query, 0);
        assert_eq!(note.reason, TripReason::DeadlineExceeded);
        // The whole batch was served via centroids and still completed.
        assert_eq!(batch.assignments.len(), 3);
        // Centroid of cluster 0 reps {0,1,2},{0,1,3},{0,2,3} is {0,1,2,3};
        // of cluster 1 reps it is {10,11}. The clean queries still land.
        assert_eq!(batch.assignments[0], Some(0));
        assert_eq!(batch.assignments[1], Some(1));
        assert_eq!(batch.assignments[2], None);
    }

    #[test]
    fn tripped_deadline_with_fail_policy_aborts() {
        let config = ServeConfig {
            degradation: ServeDegradation::Fail,
            ..ServeConfig::default()
        };
        let service: AssignService<Transaction, Jaccard> =
            AssignService::new(&sample_artifact(), Jaccard, config).unwrap();
        let governor = RunGovernor::unlimited()
            .with_check_every(1)
            .with_time_budget(Duration::ZERO);
        governor.arm();
        std::thread::sleep(Duration::from_millis(1));
        assert!(matches!(
            service.assign_batch_governed(&queries(), &governor),
            Err(RockError::Interrupted {
                phase: Phase::Labeling,
                reason: TripReason::DeadlineExceeded,
                ..
            })
        ));
    }

    #[test]
    fn cancellation_aborts_even_under_centroid_policy() {
        let service: AssignService<Transaction, Jaccard> =
            AssignService::new(&sample_artifact(), Jaccard, ServeConfig::default()).unwrap();
        let token = CancellationToken::new();
        token.cancel();
        let governor = RunGovernor::unlimited()
            .with_check_every(1)
            .with_cancel_token(token);
        assert!(matches!(
            service.assign_batch_governed(&queries(), &governor),
            Err(RockError::Interrupted {
                reason: TripReason::Cancelled,
                ..
            })
        ));
    }

    /// Jaccard, except any transaction containing the marker item
    /// evaluates to NaN — a deterministic stand-in for a degenerate
    /// user measure.
    struct NanOn(u32);

    impl Similarity<Transaction> for NanOn {
        fn similarity(&self, a: &Transaction, b: &Transaction) -> f64 {
            if a.items().contains(&self.0) || b.items().contains(&self.0) {
                f64::NAN
            } else {
                Jaccard.similarity(a, b)
            }
        }
    }

    #[test]
    fn non_finite_queries_are_quarantined_not_fatal() {
        let service: AssignService<Transaction, NanOn> =
            AssignService::new(&sample_artifact(), NanOn(99), ServeConfig::default()).unwrap();
        let mut qs = queries();
        qs.insert(1, Transaction::from([99, 0, 1]));
        let batch = service.assign_batch(&qs).unwrap();
        assert_eq!(batch.assignments, vec![Some(0), None, Some(1), None]);
        assert_eq!(batch.report.records_quarantined, 1);
        assert_eq!(batch.report.quarantined.len(), 1);
        assert_eq!(batch.report.quarantined[0].line, 1);
        assert!(batch.report.quarantined[0].reason.contains("non-finite"));
        assert_eq!(batch.report.assigned, 2);
        assert_eq!(batch.report.unassigned, 1);
    }

    #[test]
    fn quarantine_detail_is_capped_but_count_is_exact() {
        let config = ServeConfig {
            quarantine_detail_cap: 2,
            ..ServeConfig::default()
        };
        let service: AssignService<Transaction, NanOn> =
            AssignService::new(&sample_artifact(), NanOn(99), config).unwrap();
        let qs: Vec<Transaction> = (0..5).map(|i| Transaction::from([99, i])).collect();
        let batch = service.assign_batch(&qs).unwrap();
        assert_eq!(batch.report.records_quarantined, 5);
        assert_eq!(batch.report.quarantined.len(), 2);
    }

    #[test]
    fn lifetime_stats_accumulate_across_batches() {
        let service: AssignService<Transaction, NanOn> =
            AssignService::new(&sample_artifact(), NanOn(99), ServeConfig::default()).unwrap();
        assert_eq!(service.lifetime_stats(), (ServeStats::default(), vec![]));
        service.assign_batch(&queries()).unwrap();
        let mut qs = queries();
        qs.push(Transaction::from([99, 1]));
        service.assign_batch(&qs).unwrap();
        let (stats, notes) = service.lifetime_stats();
        assert_eq!(
            stats,
            ServeStats {
                batches: 2,
                queries: 7,
                assigned: 4,
                unassigned: 2,
                quarantined: 1,
                degraded_batches: 0,
            }
        );
        assert!(notes.is_empty());
        assert_eq!(stats.to_string(), "2 batches (0 degraded): 7 queries = 4 assigned + 2 unassigned + 1 quarantined");
    }

    #[test]
    fn aborted_batches_do_not_count() {
        let config = ServeConfig {
            degradation: ServeDegradation::Fail,
            ..ServeConfig::default()
        };
        let service: AssignService<Transaction, Jaccard> =
            AssignService::new(&sample_artifact(), Jaccard, config).unwrap();
        let governor = RunGovernor::unlimited()
            .with_check_every(1)
            .with_time_budget(Duration::ZERO);
        governor.arm();
        std::thread::sleep(Duration::from_millis(1));
        assert!(service.assign_batch_governed(&queries(), &governor).is_err());
        assert_eq!(service.lifetime_stats().0, ServeStats::default());
    }

    #[test]
    fn degradation_log_is_capped_most_recent_kept() {
        let service: AssignService<Transaction, Jaccard> =
            AssignService::new(&sample_artifact(), Jaccard, ServeConfig::default()).unwrap();
        for round in 0..(DEGRADATION_LOG_CAP as u64 + 3) {
            let governor = RunGovernor::unlimited()
                .with_check_every(1)
                .with_time_budget(Duration::ZERO);
            governor.arm();
            std::thread::sleep(Duration::from_millis(1));
            let qs = queries()[..1 + (round as usize % 2)].to_vec();
            service.assign_batch_governed(&qs, &governor).unwrap();
        }
        let (stats, notes) = service.lifetime_stats();
        assert_eq!(stats.degraded_batches, DEGRADATION_LOG_CAP as u64 + 3);
        assert_eq!(stats.batches, DEGRADATION_LOG_CAP as u64 + 3);
        assert_eq!(notes.len(), DEGRADATION_LOG_CAP);
        for note in &notes {
            assert_eq!(note.reason, TripReason::DeadlineExceeded);
        }
    }

    #[test]
    fn clone_snapshots_then_counts_independently() {
        let service: AssignService<Transaction, Jaccard> =
            AssignService::new(&sample_artifact(), Jaccard, ServeConfig::default()).unwrap();
        service.assign_batch(&queries()).unwrap();
        let fork = service.clone();
        assert_eq!(fork.lifetime_stats(), service.lifetime_stats());
        fork.assign_batch(&queries()).unwrap();
        assert_eq!(fork.lifetime_stats().0.batches, 2);
        assert_eq!(service.lifetime_stats().0.batches, 1);
    }

    #[test]
    fn concurrent_batches_keep_exact_totals() {
        let service: AssignService<Transaction, Jaccard> =
            AssignService::new(&sample_artifact(), Jaccard, ServeConfig::default()).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let service = &service;
                scope.spawn(move || {
                    for _ in 0..25 {
                        service.assign_batch(&queries()).unwrap();
                    }
                });
            }
        });
        let (stats, _) = service.lifetime_stats();
        assert_eq!(stats.batches, 100);
        assert_eq!(stats.queries, 300);
        assert_eq!(stats.assigned, 200);
        assert_eq!(stats.unassigned, 100);
    }

    /// An [`ArtifactSource`] that fails transiently `fail` times before
    /// serving the bytes.
    struct FlakySource {
        bytes: Vec<u8>,
        fail: u32,
        kind: std::io::ErrorKind,
    }

    impl ArtifactSource for FlakySource {
        fn fetch(&mut self) -> std::io::Result<Vec<u8>> {
            if self.fail > 0 {
                self.fail -= 1;
                Err(std::io::Error::from(self.kind))
            } else {
                Ok(self.bytes.clone())
            }
        }
    }

    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(50),
            jitter_seed: None,
        }
    }

    #[test]
    fn transient_fetch_errors_are_retried() {
        let mut source = FlakySource {
            bytes: sample_artifact().to_bytes(),
            fail: 2,
            kind: std::io::ErrorKind::WouldBlock,
        };
        let (artifact, retries) = load_artifact_with_retry(&mut source, &fast_retry()).unwrap();
        assert_eq!(retries, 2);
        assert_eq!(artifact.model(), "rock");
    }

    #[test]
    fn exhausted_retries_and_hard_errors_are_typed() {
        let mut source = FlakySource {
            bytes: sample_artifact().to_bytes(),
            fail: 10,
            kind: std::io::ErrorKind::TimedOut,
        };
        assert!(matches!(
            load_artifact_with_retry(&mut source, &fast_retry()),
            Err(RockError::ArtifactIo { detail }) if detail.contains("after 3 retries")
        ));
        let mut source = FlakySource {
            bytes: Vec::new(),
            fail: 1,
            kind: std::io::ErrorKind::NotFound,
        };
        assert!(matches!(
            load_artifact_with_retry(&mut source, &fast_retry()),
            Err(RockError::ArtifactIo { detail }) if detail.contains("after 0 retries")
        ));
    }

    #[test]
    fn corruption_is_not_retried() {
        struct CountingSource {
            bytes: Vec<u8>,
            fetches: u32,
        }
        impl ArtifactSource for CountingSource {
            fn fetch(&mut self) -> std::io::Result<Vec<u8>> {
                self.fetches += 1;
                Ok(self.bytes.clone())
            }
        }
        let mut bytes = sample_artifact().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let mut source = CountingSource { bytes, fetches: 0 };
        assert!(load_artifact_with_retry(&mut source, &fast_retry()).is_err());
        assert_eq!(source.fetches, 1, "a deterministic reread cannot fix corruption");
    }

    #[test]
    fn from_source_builds_a_working_service() {
        let mut source = FlakySource {
            bytes: sample_artifact().to_bytes(),
            fail: 1,
            kind: std::io::ErrorKind::Interrupted,
        };
        let config = ServeConfig {
            retry: fast_retry(),
            ..ServeConfig::default()
        };
        let (service, retries): (AssignService<Transaction, Jaccard>, u64) =
            AssignService::from_source(&mut source, Jaccard, config).unwrap();
        assert_eq!(retries, 1);
        assert_eq!(service.num_clusters(), 2);
        let batch = service.assign_batch(&queries()).unwrap();
        assert_eq!(batch.assignments, vec![Some(0), Some(1), None]);
    }

    #[test]
    fn concurrent_readers_agree() {
        let service: AssignService<Transaction, Jaccard> =
            AssignService::new(&sample_artifact(), Jaccard, ServeConfig::default()).unwrap();
        let qs = queries();
        let expected = service.assign_batch(&qs).unwrap().assignments;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let (service, qs, expected) = (&service, &qs, &expected);
                    scope.spawn(move || {
                        for _ in 0..50 {
                            let batch = service.assign_batch(qs).unwrap();
                            assert_eq!(&batch.assignments, expected);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    #[test]
    fn transaction_centroid_is_majority_vote() {
        let reps = [
            Transaction::from([0, 1, 2]),
            Transaction::from([0, 1, 3]),
            Transaction::from([0, 2, 3]),
        ];
        // 0 in 3/3, 1 in 2/3, 2 in 2/3, 3 in 2/3 — all ≥ half.
        assert_eq!(
            Transaction::centroid(&reps),
            Some(Transaction::from([0, 1, 2, 3]))
        );
        let reps = [Transaction::from([5]), Transaction::from([6]), Transaction::from([5])];
        assert_eq!(Transaction::centroid(&reps), Some(Transaction::from([5])));
        assert_eq!(Transaction::centroid(&[]), None);
    }

    #[test]
    fn vec_f64_centroid_is_componentwise_mean() {
        let reps = [vec![1.0, 2.0], vec![3.0, 6.0]];
        assert_eq!(<Vec<f64> as Centroid>::centroid(&reps), Some(vec![2.0, 4.0]));
        assert_eq!(<Vec<f64> as Centroid>::centroid(&[]), None);
    }

    #[test]
    fn backoff_is_capped() {
        let retry = RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(25),
            jitter_seed: None,
        };
        assert_eq!(retry.backoff(0), Duration::from_millis(10));
        assert_eq!(retry.backoff(1), Duration::from_millis(20));
        assert_eq!(retry.backoff(2), Duration::from_millis(25));
        assert_eq!(retry.backoff(63), Duration::from_millis(25));
    }

    fn calm_policy() -> StalenessPolicy {
        StalenessPolicy {
            max_pending: 1_000_000,
            max_dirty_fraction: 1e9,
            ..StalenessPolicy::default()
        }
    }

    #[test]
    fn online_absorb_swaps_the_snapshot_without_touching_held_readers() {
        let artifact = sample_artifact();
        let mut online: OnlineAssignService<Transaction, Jaccard> =
            OnlineAssignService::new(&artifact, Jaccard, ServeConfig::default(), calm_policy())
                .unwrap();
        let before = online.service();

        let out = online
            .absorb_batch(&[Transaction::from([0, 1, 2])], &RunGovernor::unlimited())
            .unwrap();
        assert_eq!(out.absorbed, 1);
        let after = online.service();
        // The absorbed point produced a new snapshot; the old Arc still
        // serves the pre-update model untouched.
        assert!(!Arc::ptr_eq(&before, &after));
        let old_batch = before.assign_batch(&queries()).unwrap();
        assert_eq!(old_batch.assignments, vec![Some(0), Some(1), None]);
        let new_batch = after.assign_batch(&queries()).unwrap();
        assert_eq!(new_batch.assignments, vec![Some(0), Some(1), None]);
        // The evolving state recorded the arrival (point id 5).
        assert_eq!(online.state().clusters()[0], vec![0, 1, 2, 5]);
        assert_eq!(online.state().provenance().points_absorbed, 1);
    }

    #[test]
    fn online_rejected_only_batch_keeps_the_snapshot() {
        let artifact = sample_artifact();
        let mut online: OnlineAssignService<Transaction, Jaccard> =
            OnlineAssignService::new(&artifact, Jaccard, ServeConfig::default(), calm_policy())
                .unwrap();
        let before = online.service();
        let out = online
            .absorb_batch(&[Transaction::from([77, 78])], &RunGovernor::unlimited())
            .unwrap();
        assert_eq!((out.absorbed, out.rejected), (0, 1));
        // Outliers do not change the served representative pools: no swap.
        assert!(Arc::ptr_eq(&before, &online.service()));
        assert_eq!(online.state().outliers(), &[5]);
    }

    #[test]
    fn online_state_replays_to_the_served_model() {
        let artifact = sample_artifact();
        let mut online: OnlineAssignService<Transaction, Jaccard> =
            OnlineAssignService::new(&artifact, Jaccard, ServeConfig::default(), calm_policy())
                .unwrap();
        online
            .absorb_batch(
                &[Transaction::from([0, 1, 2]), Transaction::from([10, 11, 12])],
                &RunGovernor::unlimited(),
            )
            .unwrap();
        let wal = online.state().wal().as_bytes().to_vec();
        let (replayed, truncated) =
            IncrementalRockState::<Transaction>::resume(&artifact, &wal, &Jaccard).unwrap();
        assert!(!truncated);
        assert_eq!(replayed.digest(), online.state().digest());
    }
}

//! Merge write-ahead log: crash-safe persistence of the §4.3 merge loop.
//!
//! The agglomeration phase is deterministic — given the same neighbor
//! graph, configuration and merge prefix, the loop continues identically
//! (heap ties break on keys, so peeks are pure functions of heap
//! *content*). That makes the merge sequence itself the ideal durable
//! artifact: logging every merge decision as it commits lets a crashed or
//! interrupted run be replayed to the exact state it died in and then
//! continued, with a final clustering, dendrogram and criterion profile
//! **bit-identical** to an uninterrupted run.
//!
//! ## Format
//!
//! A WAL is `b"ROCKWAL1"` followed by CRC-framed records:
//!
//! ```text
//! frame   := type:u8  len:u32le  payload[len]  crc32:u32le
//! crc32   := CRC-32/IEEE over type ‖ len ‖ payload
//! records := Begin (Merge | Snapshot)* Finish?
//! ```
//!
//! The frame codec is shared with the fitted-model artifact
//! ([`crate::artifact`]); see [`crate::util::frame`].
//!
//! * **Begin** — configuration fingerprint (k, goodness exponent/kind,
//!   outlier policy) plus the initial arena: point id of every
//!   post-pruning singleton and the pruned outliers.
//! * **Merge** — one [`MergeRecord`]: pair ids, minted id, sizes, cross
//!   links and the goodness value (exact f64 bits).
//! * **Snapshot** — a periodic full image of the live clustering state
//!   (arena occupancy, members, cross-link table, weed status). The
//!   two-level heaps of Fig. 3 are *not* stored: every heap entry is
//!   `goodness(link[i][j], |i|, |j|)` by invariant, so heaps are rebuilt
//!   from the link table on restore. A snapshot makes a WAL
//!   self-contained — resumption needs no neighbor graph.
//! * **Finish** — marks a run that completed; replaying it is optional.
//!
//! ## Update logs
//!
//! The online update path ([`crate::incremental`]) keeps its own log
//! under the same magic and frame codec, with a disjoint record grammar:
//!
//! ```text
//! records := UpdateBase Update*
//! ```
//!
//! * **UpdateBase** — the evolving model's fingerprint (θ, `f(θ)`,
//!   labeling fraction, hash seed — exact f64 bits), the
//!   [`crate::incremental::StalenessPolicy`] in force, and a CRC-32
//!   digest of the base model's canonical state image.
//! * **Update** — one applied update batch: its sequence number, the
//!   encoded arrival points (self-contained
//!   [`crate::artifact::ArtifactPoint`] blobs), and the digest of the
//!   canonical state image *after* the batch applied. Updates are
//!   deterministic, so replaying the blobs from the base model
//!   reproduces each digest bit-for-bit — [`parse_update_wal`] applies
//!   the merge-WAL torn-tail discipline (damage to magic/UpdateBase is
//!   [`RockError::WalCorrupt`]; later damage or an out-of-sequence
//!   record truncates).
//!
//! The record-type spaces are disjoint (Begin..Finish = 1..=4,
//! UpdateBase/Update = 5/6), so a log handed to the wrong parser
//! degrades into a typed error or an empty truncated replay — never a
//! misread record.
//!
//! ## Torn tails
//!
//! Crashes tear the last frame. [`parse_wal`] accepts any log whose
//! magic and Begin record are intact, and *truncates* at the first frame
//! that is incomplete, fails its CRC, or has an unknown type — reporting
//! [`WalReplay::truncated`] rather than an error. Only damage to the
//! magic/Begin prefix (nothing to resume from) is a
//! [`RockError::WalCorrupt`].
//!
//! Entry points: [`crate::algorithm::RockAlgorithm::run_governed`]
//! (writes), [`crate::algorithm::RockAlgorithm::resume`] (replays), and
//! [`crate::rock::Rock::cluster_wal`] / [`crate::rock::Rock::resume_cluster`].

use crate::cluster::MergeRecord;
use crate::error::RockError;
use crate::incremental::StalenessPolicy;
use crate::util::frame::{
    append_frame, put_f64, put_u32, put_u32_slice, put_u64, read_frame, Cursor,
};
use std::io::Write as _;
use std::path::Path;

/// The 8-byte magic prefix of every merge WAL.
pub const WAL_MAGIC: &[u8; 8] = b"ROCKWAL1";

const REC_BEGIN: u8 = 1;
const REC_MERGE: u8 = 2;
const REC_SNAPSHOT: u8 = 3;
const REC_FINISH: u8 = 4;
const REC_UBASE: u8 = 5;
const REC_UPDATE: u8 = 6;

/// Configuration fingerprint + initial arena, logged once at the head of
/// every WAL.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct WalBegin {
    /// Number of input points the run was started on.
    pub n_points: u32,
    /// Target cluster count `k`.
    pub k: u32,
    /// Bits of the goodness exponent `1 + 2·f(θ)`.
    pub exponent_bits: u64,
    /// Goodness kind discriminant (0 = normalized, 1 = raw links).
    pub kind: u8,
    /// `OutlierPolicy::min_neighbors`.
    pub min_neighbors: u32,
    /// Weed policy, if any: `(stop_multiple bits, min_cluster_size)`.
    pub weed: Option<(u64, u32)>,
    /// Point id of each initial (post-pruning) singleton cluster.
    pub initial_points: Vec<u32>,
    /// Points pruned up front as neighbor-less outliers.
    pub pruned_outliers: Vec<u32>,
}

/// A full image of the merge-loop state at `merges_done` merges.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct WalSnapshot {
    /// Merges applied when the snapshot was taken.
    pub merges_done: u64,
    /// Length of the cluster-id arena (initial clusters + merges done).
    pub arena_len: u64,
    /// Whether the §4.6 mid-flight weeding has already fired.
    pub weeded: bool,
    /// All outliers accumulated so far (pruned + weeded).
    pub outliers: Vec<u32>,
    /// Live clusters: `(arena id, member point ids)`.
    pub clusters: Vec<(u32, Vec<u32>)>,
    /// Cross-link table, upper triangle: `(i, j, count)` with `i < j`,
    /// sorted ascending. Heaps are derived from this on restore.
    pub links: Vec<(u32, u32, u64)>,
}

/// The evolving-model fingerprint logged once at the head of every
/// update WAL: the labeling parameters the model serves under, the
/// staleness policy in force, and a digest of the base model's
/// canonical state image.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct UpdateBase {
    /// Exact bits of the similarity threshold θ.
    pub theta_bits: u64,
    /// Exact bits of the resolved `f(θ)`.
    pub ftheta_bits: u64,
    /// Exact bits of the labeling fraction.
    pub fraction_bits: u64,
    /// The merge engine's hash seed, if one was configured.
    pub hash_seed: Option<u64>,
    /// The staleness/re-merge policy the updates were applied under.
    pub policy: StalenessPolicy,
    /// CRC-32 of the base model's canonical state image.
    pub base_digest: u32,
}

/// One applied update batch: sequence number, encoded arrival points,
/// and the digest of the canonical state image after it applied.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct UpdateRecord {
    /// 0-based batch index; must equal the number of updates before it.
    pub seq: u64,
    /// Self-contained [`crate::artifact::ArtifactPoint`] encodings of
    /// the arrivals, in arrival order.
    pub points: Vec<Vec<u8>>,
    /// CRC-32 of the canonical state image after this batch applied.
    pub post_digest: u32,
}

/// An append-only, CRC-framed merge log held in memory.
///
/// Obtain the bytes with [`as_bytes`](MergeWal::as_bytes) (persist them
/// however suits the deployment — [`write_to`](MergeWal::write_to) is
/// the simple file path) and hand them back to
/// [`crate::algorithm::RockAlgorithm::resume`] to continue an
/// interrupted run.
#[derive(Clone, Debug)]
pub struct MergeWal {
    buf: Vec<u8>,
    snapshot_every: u64,
}

impl Default for MergeWal {
    fn default() -> Self {
        MergeWal::new()
    }
}

impl MergeWal {
    /// An empty WAL (magic only), snapshotting every 512 merges.
    pub fn new() -> Self {
        MergeWal {
            buf: WAL_MAGIC.to_vec(),
            snapshot_every: 512,
        }
    }

    /// Sets the snapshot cadence: a full state image every `n` merges
    /// (`0` disables snapshots; such a WAL needs the neighbor graph to
    /// resume).
    pub fn with_snapshot_every(mut self, n: u64) -> Self {
        self.snapshot_every = n;
        self
    }

    /// The configured snapshot cadence (0 = disabled).
    pub fn snapshot_every(&self) -> u64 {
        self.snapshot_every
    }

    /// The encoded log bytes (magic + frames).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the WAL, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Encoded size in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the WAL holds no records yet (magic only).
    pub fn is_empty(&self) -> bool {
        self.buf.len() <= WAL_MAGIC.len()
    }

    /// Writes the encoded log to `path`, fsync'd.
    ///
    /// # Errors
    /// Any I/O error from create/write/sync.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.buf)?;
        f.sync_all()
    }

    fn frame(&mut self, kind: u8, payload: &[u8]) {
        append_frame(&mut self.buf, kind, payload);
    }

    pub(crate) fn append_begin(&mut self, b: &WalBegin) {
        let mut p = Vec::new();
        put_u32(&mut p, b.n_points);
        put_u32(&mut p, b.k);
        put_u64(&mut p, b.exponent_bits);
        p.push(b.kind);
        put_u32(&mut p, b.min_neighbors);
        match b.weed {
            Some((mult_bits, min_size)) => {
                p.push(1);
                put_u64(&mut p, mult_bits);
                put_u32(&mut p, min_size);
            }
            None => p.push(0),
        }
        put_u32_slice(&mut p, &b.initial_points);
        put_u32_slice(&mut p, &b.pruned_outliers);
        self.frame(REC_BEGIN, &p);
    }

    pub(crate) fn append_merge(&mut self, m: &MergeRecord) {
        let mut p = Vec::with_capacity(44);
        put_u32(&mut p, m.left);
        put_u32(&mut p, m.right);
        put_u32(&mut p, m.merged);
        put_u64(&mut p, m.sizes.0 as u64);
        put_u64(&mut p, m.sizes.1 as u64);
        put_u64(&mut p, m.cross_links);
        put_u64(&mut p, m.goodness.to_bits());
        self.frame(REC_MERGE, &p);
    }

    pub(crate) fn append_snapshot(&mut self, s: &WalSnapshot) {
        let mut p = Vec::new();
        put_u64(&mut p, s.merges_done);
        put_u64(&mut p, s.arena_len);
        p.push(u8::from(s.weeded));
        put_u32_slice(&mut p, &s.outliers);
        put_u32(&mut p, s.clusters.len() as u32);
        for (id, members) in &s.clusters {
            put_u32(&mut p, *id);
            put_u32_slice(&mut p, members);
        }
        put_u64(&mut p, s.links.len() as u64);
        for &(i, j, c) in &s.links {
            put_u32(&mut p, i);
            put_u32(&mut p, j);
            put_u64(&mut p, c);
        }
        self.frame(REC_SNAPSHOT, &p);
    }

    pub(crate) fn append_finish(&mut self, merges_total: u64) {
        let mut p = Vec::with_capacity(8);
        put_u64(&mut p, merges_total);
        self.frame(REC_FINISH, &p);
    }
}

/// An append-only, CRC-framed update log held in memory — the
/// durability companion of the online update path
/// ([`crate::incremental::IncrementalRockState`]).
///
/// Encoding is deterministic, so replaying the same updates from the
/// same base model regenerates the log byte-for-byte: resumption never
/// needs to splice onto old bytes.
#[derive(Clone, Debug, Default)]
pub struct UpdateWal {
    buf: Vec<u8>,
}

impl UpdateWal {
    /// An empty update WAL (magic only).
    pub fn new() -> Self {
        UpdateWal {
            buf: WAL_MAGIC.to_vec(),
        }
    }

    /// The encoded log bytes (magic + frames).
    pub fn as_bytes(&self) -> &[u8] {
        if self.buf.is_empty() {
            // `Default` derives an empty buffer; expose it as a valid
            // (magic-only) image anyway.
            WAL_MAGIC
        } else {
            &self.buf
        }
    }

    /// Consumes the WAL, returning the encoded bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.buf.is_empty() {
            self.buf = WAL_MAGIC.to_vec();
        }
        self.buf
    }

    /// Encoded size in bytes.
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// Whether the WAL holds no records yet (magic only).
    pub fn is_empty(&self) -> bool {
        self.len() <= WAL_MAGIC.len()
    }

    /// Writes the encoded log to `path`, fsync'd.
    ///
    /// # Errors
    /// Any I/O error from create/write/sync.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.as_bytes())?;
        f.sync_all()
    }

    fn frame(&mut self, kind: u8, payload: &[u8]) {
        if self.buf.is_empty() {
            self.buf = WAL_MAGIC.to_vec();
        }
        append_frame(&mut self.buf, kind, payload);
    }

    pub(crate) fn append_base(&mut self, b: &UpdateBase) {
        let mut p = Vec::new();
        put_u64(&mut p, b.theta_bits);
        put_u64(&mut p, b.ftheta_bits);
        put_u64(&mut p, b.fraction_bits);
        match b.hash_seed {
            None => p.push(0),
            Some(seed) => {
                p.push(1);
                put_u64(&mut p, seed);
            }
        }
        put_u64(&mut p, b.policy.max_pending);
        put_f64(&mut p, b.policy.max_dirty_fraction);
        put_f64(&mut p, b.policy.min_goodness);
        put_u64(&mut p, b.policy.max_merges);
        put_u64(&mut p, b.policy.min_clusters as u64);
        put_f64(&mut p, b.policy.max_cluster_fraction);
        put_u64(&mut p, b.policy.rep_cap as u64);
        put_u32(&mut p, b.base_digest);
        self.frame(REC_UBASE, &p);
    }

    pub(crate) fn append_update(&mut self, u: &UpdateRecord) {
        let mut p = Vec::new();
        put_u64(&mut p, u.seq);
        put_u32(&mut p, u.points.len() as u32);
        for blob in &u.points {
            put_u32(&mut p, blob.len() as u32);
            p.extend_from_slice(blob);
        }
        put_u32(&mut p, u.post_digest);
        self.frame(REC_UPDATE, &p);
    }
}

/// The replayable content of a parsed WAL.
#[derive(Clone, Debug)]
pub struct WalReplay {
    pub(crate) begin: WalBegin,
    /// Every logged merge, in commit order (complete from merge 0, even
    /// past snapshots — resumption re-logs the prefix into fresh WALs).
    pub(crate) merges: Vec<MergeRecord>,
    /// The latest intact snapshot, if any.
    pub(crate) snapshot: Option<WalSnapshot>,
    /// Whether a Finish record was seen (the run completed).
    pub finished: bool,
    /// Whether a torn tail was truncated during parsing.
    pub truncated: bool,
}

impl WalReplay {
    /// Number of merges recoverable from the log.
    pub fn num_merges(&self) -> usize {
        self.merges.len()
    }

    /// The logged merges, in commit order.
    pub fn merges(&self) -> &[MergeRecord] {
        &self.merges
    }

    /// Whether the log carries a snapshot (and can thus be resumed
    /// without recomputing the neighbor graph).
    pub fn has_snapshot(&self) -> bool {
        self.snapshot.is_some()
    }

    /// Number of input points the logged run started from.
    pub fn num_points(&self) -> usize {
        self.begin.n_points as usize
    }
}

fn parse_begin(payload: &[u8]) -> Option<WalBegin> {
    let mut c = Cursor::new(payload);
    let n_points = c.u32()?;
    let k = c.u32()?;
    let exponent_bits = c.u64()?;
    let kind = c.u8()?;
    let min_neighbors = c.u32()?;
    let weed = match c.u8()? {
        0 => None,
        1 => Some((c.u64()?, c.u32()?)),
        _ => return None,
    };
    let initial_points = c.u32_vec()?;
    let pruned_outliers = c.u32_vec()?;
    c.done().then_some(WalBegin {
        n_points,
        k,
        exponent_bits,
        kind,
        min_neighbors,
        weed,
        initial_points,
        pruned_outliers,
    })
}

fn parse_merge(payload: &[u8]) -> Option<MergeRecord> {
    let mut c = Cursor::new(payload);
    let rec = MergeRecord {
        left: c.u32()?,
        right: c.u32()?,
        merged: c.u32()?,
        sizes: (c.u64()? as usize, c.u64()? as usize),
        cross_links: c.u64()?,
        goodness: f64::from_bits(c.u64()?),
    };
    c.done().then_some(rec)
}

fn parse_snapshot(payload: &[u8]) -> Option<WalSnapshot> {
    let mut c = Cursor::new(payload);
    let merges_done = c.u64()?;
    let arena_len = c.u64()?;
    let weeded = match c.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let outliers = c.u32_vec()?;
    let num_clusters = c.u32()? as usize;
    let mut clusters = Vec::new();
    for _ in 0..num_clusters {
        let id = c.u32()?;
        let members = c.u32_vec()?;
        clusters.push((id, members));
    }
    let num_links = c.u64()? as usize;
    if num_links > payload.len() / 16 {
        return None; // each link entry is 16 bytes; length is lying
    }
    let mut links = Vec::with_capacity(num_links);
    for _ in 0..num_links {
        links.push((c.u32()?, c.u32()?, c.u64()?));
    }
    c.done().then_some(WalSnapshot {
        merges_done,
        arena_len,
        weeded,
        outliers,
        clusters,
        links,
    })
}

/// Parses a merge WAL, truncating any torn tail.
///
/// # Errors
/// [`RockError::WalCorrupt`] when the magic or the Begin record is
/// missing or damaged — there is nothing to resume from. Damage *after*
/// a valid Begin is treated as a torn tail: the valid prefix is kept and
/// [`WalReplay::truncated`] is set.
pub fn parse_wal(bytes: &[u8]) -> Result<WalReplay, RockError> {
    // tidy-allow(panic-reach): the length check short-circuits before the magic slice
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(RockError::WalCorrupt {
            offset: 0,
            detail: "missing ROCKWAL1 magic".into(),
        });
    }

    let mut at = WAL_MAGIC.len();
    let mut begin: Option<WalBegin> = None;
    let mut merges: Vec<MergeRecord> = Vec::new();
    let mut snapshot: Option<WalSnapshot> = None;
    let mut finished = false;
    let mut truncated = false;

    while at < bytes.len() {
        // Frame = type(1) + len(4) + payload + crc(4).
        let frame = read_frame(bytes, at);
        let Some((kind, payload, next)) = frame else {
            truncated = true;
            break;
        };
        let record_ok = match kind {
            REC_BEGIN if begin.is_none() && merges.is_empty() => {
                begin = parse_begin(payload);
                begin.is_some()
            }
            REC_MERGE if begin.is_some() && !finished => match parse_merge(payload) {
                Some(m) => {
                    merges.push(m);
                    true
                }
                None => false,
            },
            REC_SNAPSHOT if begin.is_some() && !finished => match parse_snapshot(payload) {
                // A snapshot claiming more merges than are logged before
                // it cannot be replayed; treat it as tail damage.
                Some(s) if s.merges_done as usize <= merges.len() => {
                    snapshot = Some(s);
                    true
                }
                _ => false,
            },
            REC_FINISH if begin.is_some() && !finished => {
                let mut c = Cursor::new(payload);
                match c.u64() {
                    Some(total) if c.done() && total as usize == merges.len() => {
                        finished = true;
                        true
                    }
                    _ => false,
                }
            }
            _ => false, // unknown type or record out of order
        };
        if !record_ok {
            if begin.is_none() {
                return Err(RockError::WalCorrupt {
                    offset: at as u64,
                    detail: "damaged Begin record".into(),
                });
            }
            truncated = true;
            break;
        }
        at = next;
    }

    let Some(begin) = begin else {
        return Err(RockError::WalCorrupt {
            offset: at as u64,
            detail: "log ends before a complete Begin record".into(),
        });
    };
    Ok(WalReplay {
        begin,
        merges,
        snapshot,
        finished,
        truncated,
    })
}

/// The replayable content of a parsed update WAL.
#[derive(Clone, Debug)]
pub struct UpdateReplay {
    pub(crate) base: UpdateBase,
    /// Every intact update record, in sequence order.
    pub(crate) updates: Vec<UpdateRecord>,
    /// Whether a torn tail was truncated during parsing.
    pub truncated: bool,
}

impl UpdateReplay {
    /// Number of update batches recoverable from the log.
    pub fn num_updates(&self) -> usize {
        self.updates.len()
    }
}

fn parse_update_base(payload: &[u8]) -> Option<UpdateBase> {
    let mut c = Cursor::new(payload);
    let theta_bits = c.u64()?;
    let ftheta_bits = c.u64()?;
    let fraction_bits = c.u64()?;
    let hash_seed = match c.u8()? {
        0 => None,
        1 => Some(c.u64()?),
        _ => return None,
    };
    let policy = StalenessPolicy {
        max_pending: c.u64()?,
        max_dirty_fraction: c.f64()?,
        min_goodness: c.f64()?,
        max_merges: c.u64()?,
        min_clusters: c.u64()? as usize,
        max_cluster_fraction: c.f64()?,
        rep_cap: c.u64()? as usize,
    };
    let base_digest = c.u32()?;
    if policy.check().is_err() {
        return None;
    }
    c.done().then_some(UpdateBase {
        theta_bits,
        ftheta_bits,
        fraction_bits,
        hash_seed,
        policy,
        base_digest,
    })
}

fn parse_update_record(payload: &[u8]) -> Option<UpdateRecord> {
    let mut c = Cursor::new(payload);
    let seq = c.u64()?;
    let n = c.u32()? as usize;
    if n > payload.len() / 4 {
        return None; // each blob costs at least a 4-byte length
    }
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let blob_len = c.u32()? as usize;
        points.push(c.take(blob_len)?.to_vec());
    }
    let post_digest = c.u32()?;
    c.done().then_some(UpdateRecord {
        seq,
        points,
        post_digest,
    })
}

/// Parses an update WAL, truncating any torn tail.
///
/// The discipline mirrors [`parse_wal`]: damage to the magic or the
/// UpdateBase record (nothing to replay onto) is fatal, while a frame
/// after a valid base that is incomplete, fails its CRC, has an unknown
/// type, or carries an out-of-sequence number truncates the log there
/// with [`UpdateReplay::truncated`] set.
///
/// # Errors
/// [`RockError::WalCorrupt`] when the magic or the UpdateBase record is
/// missing or damaged.
pub fn parse_update_wal(bytes: &[u8]) -> Result<UpdateReplay, RockError> {
    // tidy-allow(panic-reach): the length check short-circuits before the magic slice
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(RockError::WalCorrupt {
            offset: 0,
            detail: "missing ROCKWAL1 magic".into(),
        });
    }

    let mut at = WAL_MAGIC.len();
    let mut base: Option<UpdateBase> = None;
    let mut updates: Vec<UpdateRecord> = Vec::new();
    let mut truncated = false;

    while at < bytes.len() {
        let frame = read_frame(bytes, at);
        let Some((kind, payload, next)) = frame else {
            truncated = true;
            break;
        };
        let record_ok = match kind {
            REC_UBASE if base.is_none() && updates.is_empty() => {
                base = parse_update_base(payload);
                base.is_some()
            }
            REC_UPDATE if base.is_some() => match parse_update_record(payload) {
                Some(u) if u.seq as usize == updates.len() => {
                    updates.push(u);
                    true
                }
                _ => false,
            },
            _ => false, // unknown type or record out of order
        };
        if !record_ok {
            if base.is_none() {
                return Err(RockError::WalCorrupt {
                    offset: at as u64,
                    detail: "damaged UpdateBase record".into(),
                });
            }
            truncated = true;
            break;
        }
        at = next;
    }

    let Some(base) = base else {
        return Err(RockError::WalCorrupt {
            offset: at as u64,
            detail: "log ends before a complete UpdateBase record".into(),
        });
    };
    Ok(UpdateReplay {
        base,
        updates,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_begin() -> WalBegin {
        WalBegin {
            n_points: 6,
            k: 2,
            exponent_bits: 1.5f64.to_bits(),
            kind: 0,
            min_neighbors: 1,
            weed: Some((2.0f64.to_bits(), 3)),
            initial_points: vec![0, 1, 2, 4, 5],
            pruned_outliers: vec![3],
        }
    }

    fn sample_merge(i: u32) -> MergeRecord {
        MergeRecord {
            left: i,
            right: i + 1,
            merged: 5 + i,
            sizes: (1, 2),
            cross_links: 7,
            goodness: 0.25 + f64::from(i),
        }
    }

    fn sample_snapshot() -> WalSnapshot {
        WalSnapshot {
            merges_done: 2,
            arena_len: 7,
            weeded: false,
            outliers: vec![3],
            clusters: vec![(4, vec![5]), (6, vec![0, 1, 2, 4])],
            links: vec![(4, 6, 9)],
        }
    }

    #[test]
    fn round_trips_all_record_types() {
        let mut wal = MergeWal::new();
        wal.append_begin(&sample_begin());
        wal.append_merge(&sample_merge(0));
        wal.append_merge(&sample_merge(1));
        wal.append_snapshot(&sample_snapshot());
        wal.append_finish(2);

        let replay = parse_wal(wal.as_bytes()).unwrap();
        assert_eq!(replay.begin, sample_begin());
        assert_eq!(replay.merges, vec![sample_merge(0), sample_merge(1)]);
        assert_eq!(replay.snapshot, Some(sample_snapshot()));
        assert!(replay.finished);
        assert!(!replay.truncated);
    }

    #[test]
    fn goodness_bits_survive_exactly() {
        let mut wal = MergeWal::new();
        wal.append_begin(&sample_begin());
        let mut m = sample_merge(0);
        m.goodness = f64::from_bits(0x3FF7_1234_5678_9ABC);
        wal.append_merge(&m);
        let replay = parse_wal(wal.as_bytes()).unwrap();
        assert_eq!(replay.merges[0].goodness.to_bits(), m.goodness.to_bits());
    }

    #[test]
    fn empty_or_bad_magic_is_corrupt() {
        assert!(matches!(
            parse_wal(b""),
            Err(RockError::WalCorrupt { .. })
        ));
        assert!(matches!(
            parse_wal(b"NOTAWAL!rest"),
            Err(RockError::WalCorrupt { .. })
        ));
    }

    #[test]
    fn torn_begin_is_corrupt_torn_tail_is_truncated() {
        let mut wal = MergeWal::new();
        wal.append_begin(&sample_begin());
        let begin_end = wal.len();
        wal.append_merge(&sample_merge(0));
        let merge0_end = wal.len();
        wal.append_merge(&sample_merge(1));
        let bytes = wal.as_bytes();

        // Any cut inside the Begin record (past the magic) is fatal.
        for cut in WAL_MAGIC.len()..begin_end {
            assert!(
                matches!(parse_wal(&bytes[..cut]), Err(RockError::WalCorrupt { .. })),
                "cut at {cut} should be corrupt"
            );
        }
        // Any cut after Begin only truncates; cuts landing exactly on a
        // frame boundary leave a clean (un-torn) shorter log.
        for cut in begin_end..bytes.len() {
            let replay = parse_wal(&bytes[..cut]).unwrap();
            let boundary = cut == begin_end || cut == merge0_end;
            assert_eq!(replay.truncated, !boundary, "cut at {cut}");
            assert!(replay.num_merges() <= 2);
        }
        // The full log parses both merges.
        assert_eq!(parse_wal(bytes).unwrap().num_merges(), 2);
    }

    #[test]
    fn bit_flip_in_a_merge_record_truncates_there() {
        let mut wal = MergeWal::new();
        wal.append_begin(&sample_begin());
        wal.append_merge(&sample_merge(0));
        let first_merge_end = wal.len();
        wal.append_merge(&sample_merge(1));
        let mut bytes = wal.into_bytes();
        bytes[first_merge_end + 7] ^= 0x40; // inside the second merge frame
        let replay = parse_wal(&bytes).unwrap();
        assert!(replay.truncated);
        assert_eq!(replay.merges, vec![sample_merge(0)]);
    }

    #[test]
    fn snapshot_claiming_unlogged_merges_is_tail_damage() {
        let mut wal = MergeWal::new();
        wal.append_begin(&sample_begin());
        wal.append_merge(&sample_merge(0));
        let mut snap = sample_snapshot();
        snap.merges_done = 5; // only 1 merge logged before it
        wal.append_snapshot(&snap);
        let replay = parse_wal(wal.as_bytes()).unwrap();
        assert!(replay.truncated);
        assert!(replay.snapshot.is_none());
        assert_eq!(replay.num_merges(), 1);
    }

    #[test]
    fn records_after_finish_are_truncated() {
        let mut wal = MergeWal::new();
        wal.append_begin(&sample_begin());
        wal.append_merge(&sample_merge(0));
        wal.append_finish(1);
        wal.append_merge(&sample_merge(1));
        let replay = parse_wal(wal.as_bytes()).unwrap();
        assert!(replay.finished);
        assert!(replay.truncated);
        assert_eq!(replay.num_merges(), 1);
    }

    fn sample_update_base() -> UpdateBase {
        UpdateBase {
            theta_bits: 0.5f64.to_bits(),
            ftheta_bits: 1.0f64.to_bits(),
            fraction_bits: 0.25f64.to_bits(),
            hash_seed: Some(7),
            policy: StalenessPolicy::default(),
            base_digest: 0xDEAD_BEEF,
        }
    }

    fn sample_update(seq: u64) -> UpdateRecord {
        UpdateRecord {
            seq,
            points: vec![vec![1, 2, 3], vec![], vec![9]],
            post_digest: 0x1234_0000 + seq as u32,
        }
    }

    #[test]
    fn update_log_round_trips() {
        let mut wal = UpdateWal::new();
        wal.append_base(&sample_update_base());
        wal.append_update(&sample_update(0));
        wal.append_update(&sample_update(1));
        let replay = parse_update_wal(wal.as_bytes()).unwrap();
        assert_eq!(replay.base, sample_update_base());
        assert_eq!(replay.updates, vec![sample_update(0), sample_update(1)]);
        assert!(!replay.truncated);
        assert_eq!(replay.num_updates(), 2);
    }

    #[test]
    fn default_update_wal_is_a_valid_empty_image() {
        let wal = UpdateWal::default();
        assert!(wal.is_empty());
        assert_eq!(wal.as_bytes(), WAL_MAGIC);
        assert!(matches!(
            parse_update_wal(wal.as_bytes()),
            Err(RockError::WalCorrupt { .. })
        ));
    }

    #[test]
    fn torn_update_base_is_corrupt_torn_tail_is_truncated() {
        let mut wal = UpdateWal::new();
        wal.append_base(&sample_update_base());
        let base_end = wal.len();
        wal.append_update(&sample_update(0));
        let bytes = wal.as_bytes();
        for cut in WAL_MAGIC.len()..base_end {
            assert!(
                matches!(
                    parse_update_wal(&bytes[..cut]),
                    Err(RockError::WalCorrupt { .. })
                ),
                "cut at {cut} should be corrupt"
            );
        }
        for cut in base_end..bytes.len() {
            let replay = parse_update_wal(&bytes[..cut]).unwrap();
            assert_eq!(replay.truncated, cut != base_end, "cut at {cut}");
            assert!(replay.updates.is_empty());
        }
        assert_eq!(parse_update_wal(bytes).unwrap().num_updates(), 1);
    }

    #[test]
    fn out_of_sequence_update_truncates() {
        let mut wal = UpdateWal::new();
        wal.append_base(&sample_update_base());
        wal.append_update(&sample_update(0));
        wal.append_update(&sample_update(2)); // gap: seq 1 missing
        let replay = parse_update_wal(wal.as_bytes()).unwrap();
        assert!(replay.truncated);
        assert_eq!(replay.updates, vec![sample_update(0)]);
    }

    #[test]
    fn bit_flip_in_an_update_record_truncates_there() {
        let mut wal = UpdateWal::new();
        wal.append_base(&sample_update_base());
        wal.append_update(&sample_update(0));
        let first_end = wal.len();
        wal.append_update(&sample_update(1));
        let mut bytes = wal.into_bytes();
        bytes[first_end + 7] ^= 0x40; // inside the second update frame
        let replay = parse_update_wal(&bytes).unwrap();
        assert!(replay.truncated);
        assert_eq!(replay.updates, vec![sample_update(0)]);
    }

    #[test]
    fn merge_records_in_an_update_log_truncate() {
        // Record-type spaces are disjoint: a Merge frame after the
        // UpdateBase reads as an unknown type and truncates.
        let mut wal = UpdateWal::new();
        wal.append_base(&sample_update_base());
        let mut p = Vec::new();
        put_u64(&mut p, 1);
        append_frame(&mut wal.buf, REC_MERGE, &p);
        let replay = parse_update_wal(wal.as_bytes()).unwrap();
        assert!(replay.truncated);
        assert!(replay.updates.is_empty());
        // And the other way round: an update log handed to the merge
        // parser fails on its (damaged-looking) head.
        assert!(matches!(
            parse_wal(wal.as_bytes()),
            Err(RockError::WalCorrupt { .. })
        ));
    }

    #[test]
    fn update_base_with_invalid_policy_is_corrupt() {
        let mut base = sample_update_base();
        base.policy.rep_cap = 0;
        let mut wal = UpdateWal::new();
        wal.append_base(&base);
        assert!(matches!(
            parse_update_wal(wal.as_bytes()),
            Err(RockError::WalCorrupt { .. })
        ));
    }

    #[test]
    fn update_file_round_trip() {
        let mut wal = UpdateWal::new();
        wal.append_base(&sample_update_base());
        wal.append_update(&sample_update(0));
        let dir = std::env::temp_dir().join("rock-wal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("update-roundtrip-{}.wal", std::process::id()));
        wal.write_to(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(bytes, wal.as_bytes());
        assert_eq!(parse_update_wal(&bytes).unwrap().num_updates(), 1);
    }

    #[test]
    fn file_round_trip() {
        let mut wal = MergeWal::new();
        wal.append_begin(&sample_begin());
        wal.append_merge(&sample_merge(0));
        let dir = std::env::temp_dir().join("rock-wal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("roundtrip-{}.wal", std::process::id()));
        wal.write_to(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(bytes, wal.as_bytes());
        assert_eq!(parse_wal(&bytes).unwrap().num_merges(), 1);
    }
}

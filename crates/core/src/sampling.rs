//! Random sampling (§4.6, [Vit85]).
//!
//! ROCK clusters a main-memory random sample and labels the rest of the
//! data afterwards. The paper defers to Vitter's reservoir algorithms for
//! drawing the sample; both the classic Algorithm R and the skip-based
//! Algorithm X are implemented here over arbitrary iterators (a stream of
//! records "on disk" need never fit in memory).

use rand::Rng;

/// Reservoir sampling, Algorithm R: processes every element, replacing a
/// random reservoir slot with decreasing probability.
///
/// Returns `min(k, stream length)` elements. Every subset of size `k` is
/// equally likely. O(n) random draws.
pub fn reservoir_sample_r<T, I, R>(stream: I, k: usize, rng: &mut R) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    R: Rng + ?Sized,
{
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    if k == 0 {
        return reservoir;
    }
    for (seen, item) in stream.into_iter().enumerate() {
        if seen < k {
            reservoir.push(item);
        } else {
            let j = rng.random_range(0..=seen);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

/// Reservoir sampling, Algorithm X: like Algorithm R but computes how many
/// records to *skip* before the next replacement, drawing O(k·(1+log(n/k)))
/// random variates instead of n — the point of [Vit85] for disk-resident
/// data.
pub fn reservoir_sample_x<T, I, R>(stream: I, k: usize, rng: &mut R) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    R: Rng + ?Sized,
{
    let mut it = stream.into_iter();
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    if k == 0 {
        return reservoir;
    }
    for item in it.by_ref().take(k) {
        reservoir.push(item);
    }
    if reservoir.len() < k {
        return reservoir; // stream shorter than k
    }
    // t = number of records seen so far.
    let mut t = k;
    loop {
        // Draw the skip S: the number of records passed over before the
        // next record enters the reservoir. Algorithm X finds the smallest
        // s with  V >  (t+1−k)(t+2−k)…(t+s+1−k) / ((t+1)(t+2)…(t+s+1))
        // by linear search over the cumulative product.
        let v: f64 = rng.random::<f64>();
        let mut s = 0usize;
        // quot = P(skip > s): product over the first s+1 records of the
        // probability that each is NOT selected.
        let mut quot = (t + 1 - k) as f64 / (t + 1) as f64;
        while quot > v {
            s += 1;
            let tt = t + s;
            quot *= (tt + 1 - k) as f64 / (tt + 1) as f64;
        }
        // Skip s records, then replace a random slot with the next one.
        match it.nth(s) {
            Some(item) => {
                let slot = rng.random_range(0..k);
                reservoir[slot] = item;
                t += s + 1;
            }
            None => break,
        }
    }
    reservoir
}

/// Draws `k` distinct indices from `0..n` (a sample of *positions*), via
/// Algorithm R over the index range.
pub fn sample_indices<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    let mut idx = reservoir_sample_r(0..n, k, rng);
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn r_returns_k_elements() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = reservoir_sample_r(0..1000, 50, &mut rng);
        assert_eq!(s.len(), 50);
        let mut uniq = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 50, "sampled without replacement");
        assert!(uniq.iter().all(|&x| x < 1000));
    }

    #[test]
    fn r_short_stream_returns_all() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = reservoir_sample_r(0..5, 10, &mut rng);
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn x_matches_contract() {
        let mut rng = StdRng::seed_from_u64(13);
        let s = reservoir_sample_x(0..1000, 50, &mut rng);
        assert_eq!(s.len(), 50);
        let mut uniq = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 50);
    }

    #[test]
    fn x_short_stream_returns_all() {
        let mut rng = StdRng::seed_from_u64(13);
        let s = reservoir_sample_x(0..3, 10, &mut rng);
        assert_eq!(s, vec![0, 1, 2]);
    }

    #[test]
    fn k_zero_is_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(reservoir_sample_r(0..100, 0, &mut rng).is_empty());
        assert!(reservoir_sample_x(0..100, 0, &mut rng).is_empty());
    }

    /// χ²-style sanity check that each element is selected with roughly
    /// uniform probability k/n.
    fn uniformity_of(sampler: fn(std::ops::Range<u32>, usize, &mut StdRng) -> Vec<u32>) {
        let (n, k, trials) = (100u32, 10usize, 4000usize);
        let mut counts = vec![0u32; n as usize];
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..trials {
            for x in sampler(0..n, k, &mut rng) {
                counts[x as usize] += 1;
            }
        }
        let expected = trials as f64 * k as f64 / n as f64; // 400
        for (i, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expected).abs() / expected;
            assert!(dev < 0.25, "element {i} selected {c} times, expected ~{expected}");
        }
    }

    #[test]
    fn r_is_roughly_uniform() {
        uniformity_of(reservoir_sample_r);
    }

    #[test]
    fn x_is_roughly_uniform() {
        uniformity_of(reservoir_sample_x);
    }

    #[test]
    fn sample_indices_sorted_distinct() {
        let mut rng = StdRng::seed_from_u64(5);
        let idx = sample_indices(500, 40, &mut rng);
        assert_eq!(idx.len(), 40);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
    }
}

//! The reusable incremental clustering core.
//!
//! [`IncrementalState`] is the goodness-heap + link-map state of the
//! Fig.-3 merge loop, extracted from [`crate::algorithm`] so that two
//! drivers can share it bit-for-bit:
//!
//! * the **batch** driver ([`crate::algorithm::RockAlgorithm`]), which
//!   seeds it from a link matrix and runs the agglomeration to `k`;
//! * the **update** driver ([`IncrementalRockState`], added further down
//!   in this module), which labels arriving points against the fitted
//!   model's representative sets (§4.6), accumulates per-cluster *dirty
//!   links*, and — when a [`StalenessPolicy`] criterion trips — rebuilds
//!   an [`IncrementalState`] over the affected clusters and runs a
//!   *bounded* re-merge ([`IncrementalState::bounded_merge`]).
//!
//! The state is serializable in the same sense as the merge WAL: heaps
//! are never persisted; [`IncrementalState::live_clusters`] and
//! [`IncrementalState::canonical_links`] image the state canonically and
//! [`IncrementalState::from_clusters`] rebuilds the heaps from the
//! invariant that every heap entry is `goodness(link[i][j], |i|, |j|)`.
//!
//! The bounded re-merge is the Genie-style constraint (see PAPERS.md)
//! that keeps online updates from degenerating: a [`MergeBound`] caps
//! the number of merges, the minimum surviving cluster count, the
//! minimum acceptable goodness and the maximum merged-cluster size, so
//! drift can never collapse the model into one giant cluster.

use crate::artifact::{ArtifactPoint, ModelArtifact, UpdateExtension};
use crate::cluster::{Clustering, MergeRecord};
use crate::engine::model::ModelFit;
use crate::error::RockError;
use crate::goodness::{ConstantF, Goodness, GoodnessKind};
use crate::governor::{Phase, RunGovernor};
use crate::heap::{AddressableHeap, HeapPool};
use crate::labeling::Labeler;
use crate::perf::PerfCounters;
use crate::report::RunReport;
use crate::similarity::Similarity;
use crate::util::frame::{put_f64, put_u32, put_u32_slice, put_u64, Cursor};
use crate::util::{crc32, FxBuildHasher, FxHashMap};
use crate::wal::{parse_update_wal, UpdateBase, UpdateRecord, UpdateWal};

/// Mutable clustering state: an arena of clusters plus the two-level heap
/// structure of Fig. 3.
///
/// Constructed either by the batch driver (from a link matrix, via
/// `RockAlgorithm`) or from explicit cluster member lists and cross-link
/// counts ([`IncrementalState::from_clusters`]). Heaps are derived state:
/// identical `(members, links)` always rebuild identical heaps, which is
/// what makes WAL snapshots and incremental checkpoints replayable to
/// bit-identity.
pub struct IncrementalState {
    /// Arena: `None` once a cluster has been merged away or weeded.
    pub(crate) members: Vec<Option<Vec<u32>>>,
    /// `links[i][j]` = cross links between live clusters `i` and `j`.
    pub(crate) links: Vec<FxHashMap<u32, u64>>,
    /// Local heaps `q[i]`: candidates ordered by goodness.
    pub(crate) local: Vec<AddressableHeap<u32>>,
    /// Global heap `Q`: cluster → goodness of its best candidate
    /// (−∞ for clusters with no linked partner).
    pub(crate) global: AddressableHeap<u32>,
    /// Number of live clusters.
    pub(crate) live: usize,
    pub(crate) goodness: Goodness,
    /// Recycled candidate-heap buffers: every merge retires `q[u]` and
    /// `q[v]` and builds one `q[w]`, so the pool keeps the agglomeration
    /// phase at a handful of heap/map allocations total instead of
    /// O(merges). Pool state never affects results (see
    /// [`HeapPool`]).
    pub(crate) heap_pool: HeapPool<u32>,
}

/// Caps for one [`IncrementalState::bounded_merge`] pass.
///
/// The constrained-agglomeration guard: without it, repeatedly re-merging
/// an evolving model would drift towards a single giant cluster (the
/// failure mode Genie's constraint is designed against — see PAPERS.md).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MergeBound {
    /// Stop as soon as the best available goodness falls below this.
    pub min_goodness: f64,
    /// Never merge below this many live clusters.
    pub min_clusters: usize,
    /// At most this many merges per pass.
    pub max_merges: usize,
    /// Stop rather than commit a merge whose result would exceed this
    /// many points.
    pub max_cluster_size: usize,
}

/// When an evolving model must stop absorbing and re-merge, plus the
/// caps handed to the bounded re-merge pass when it does.
///
/// The staleness criterion trips when either `max_pending` absorbed
/// points or `max_dirty_fraction` of the clustered point count in dirty
/// links have accumulated since the last re-merge. The remaining fields
/// parameterise the [`MergeBound`] of the pass itself.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StalenessPolicy {
    /// Re-merge after this many absorbed points are pending (≥ 1).
    pub max_pending: u64,
    /// Re-merge once total dirty links reach this fraction of the
    /// clustered point count (finite, > 0).
    pub max_dirty_fraction: f64,
    /// Bounded re-merge: minimum acceptable merge goodness (never NaN;
    /// `f64::NEG_INFINITY` disables the floor).
    pub min_goodness: f64,
    /// Bounded re-merge: at most this many merges per pass.
    pub max_merges: u64,
    /// Bounded re-merge: never drop below this many clusters (≥ 1).
    pub min_clusters: usize,
    /// Bounded re-merge: no merged cluster may exceed this fraction of
    /// all clustered points (in `(0, 1]`).
    pub max_cluster_fraction: f64,
    /// Per-cluster representative pool cap: absorbed points join Lᵢ
    /// only while it holds fewer than this many representatives (≥ 1).
    pub rep_cap: usize,
}

impl Default for StalenessPolicy {
    fn default() -> Self {
        StalenessPolicy {
            max_pending: 64,
            max_dirty_fraction: 0.5,
            min_goodness: 0.0,
            max_merges: 32,
            min_clusters: 2,
            max_cluster_fraction: 0.6,
            rep_cap: 64,
        }
    }
}

impl StalenessPolicy {
    /// Field-range check; `Err` carries a human-readable detail (callers
    /// wrap it in the typed error of their layer).
    pub(crate) fn check(&self) -> Result<(), String> {
        if self.max_pending == 0 {
            return Err("staleness policy: max_pending must be ≥ 1".into());
        }
        if !(self.max_dirty_fraction.is_finite() && self.max_dirty_fraction > 0.0) {
            return Err(format!(
                "staleness policy: max_dirty_fraction {} not finite and positive",
                self.max_dirty_fraction
            ));
        }
        if self.min_goodness.is_nan() {
            return Err("staleness policy: min_goodness is NaN".into());
        }
        if self.min_clusters == 0 {
            return Err("staleness policy: min_clusters must be ≥ 1".into());
        }
        if !(self.max_cluster_fraction > 0.0 && self.max_cluster_fraction <= 1.0) {
            return Err(format!(
                "staleness policy: max_cluster_fraction {} outside (0, 1]",
                self.max_cluster_fraction
            ));
        }
        if self.rep_cap == 0 {
            return Err("staleness policy: rep_cap must be ≥ 1".into());
        }
        Ok(())
    }

    /// The [`MergeBound`] a re-merge pass runs under when the model
    /// holds `clustered_points` points across its clusters.
    pub(crate) fn merge_bound(&self, clustered_points: usize) -> MergeBound {
        let cap = (clustered_points as f64 * self.max_cluster_fraction).floor() as usize;
        MergeBound {
            min_goodness: self.min_goodness,
            min_clusters: self.min_clusters,
            max_merges: self.max_merges.min(usize::MAX as u64) as usize,
            max_cluster_size: cap.max(1),
        }
    }
}

/// Cumulative provenance of an evolving model: how much the update path
/// has changed it since the batch fit it started from.
///
/// Persisted in version-2 artifacts and mirrored into
/// [`crate::report::RunReport::phase_perf`] under the `"update"` phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UpdateProvenance {
    /// Update batches applied so far.
    pub updates_applied: u64,
    /// Arrivals absorbed into a cluster.
    pub points_absorbed: u64,
    /// Arrivals rejected as outliers (no representative neighbor).
    pub points_rejected: u64,
    /// §4.6 labeling decisions taken by the update path.
    pub relabels: u64,
    /// Dirty links accumulated across all updates.
    pub dirty_links: u64,
    /// Bounded re-merge passes triggered by the staleness criterion.
    pub remerges: u64,
    /// Merges committed across all re-merge passes.
    pub remerge_merges: u64,
}

impl IncrementalState {
    pub(crate) fn new(
        members: Vec<Option<Vec<u32>>>,
        goodness: Goodness,
        hasher: FxBuildHasher,
    ) -> Self {
        let n = members.len();
        IncrementalState {
            live: n,
            links: vec![FxHashMap::with_hasher(hasher); n],
            local: (0..n).map(|_| AddressableHeap::new()).collect(),
            global: AddressableHeap::with_capacity(n),
            members,
            goodness,
            heap_pool: HeapPool::new(),
        }
    }

    /// Rebuilds merge-ready state from explicit cluster member lists and
    /// cross-link counts, reconstructing the Fig.-3 heaps from the
    /// invariant that every heap entry is `goodness(link[i][j], |i|, |j|)`
    /// — the same reconstruction [`crate::algorithm::RockAlgorithm::resume`]
    /// performs on a WAL snapshot.
    ///
    /// `links` entries are `(i, j, count)` with `i < j` indexing
    /// `clusters`, each unordered pair at most once and `count > 0`.
    ///
    /// # Panics
    /// Panics if a cluster is empty or a link entry is malformed (out of
    /// range, `i >= j`, repeated pair, or zero count).
    pub fn from_clusters(
        clusters: Vec<Vec<u32>>,
        links: &[(u32, u32, u64)],
        goodness: Goodness,
        hasher: FxBuildHasher,
    ) -> Self {
        assert!(
            clusters.iter().all(|c| !c.is_empty()),
            "clusters must be non-empty"
        );
        let n = clusters.len();
        let members: Vec<Option<Vec<u32>>> = clusters.into_iter().map(Some).collect();
        let mut state = IncrementalState::new(members, goodness, hasher);
        // tidy-allow(nondeterministic-iter): `links` is the caller's slice, not a hash map; its order only keys deterministic per-pair inserts
        for &(i, j, c) in links {
            assert!(
                i < j && (j as usize) < n && c > 0,
                "malformed link ({i}, {j}, {c}) over {n} clusters"
            );
            // tidy-allow(panic-reach): i < j < n was asserted just above, and both arena slots are occupied by construction
            let fresh = state.links[i as usize].insert(j, c).is_none();
            assert!(fresh, "link pair ({i}, {j}) repeated");
            let g = state.goodness.merge_goodness(c, state.size(i), state.size(j));
            // tidy-allow(panic-reach): i < j < n was asserted just above the first insert
            state.links[j as usize].insert(i, c);
            // tidy-allow(panic-reach): i < j < n was asserted just above the first insert
            state.local[i as usize].insert(j, g);
            // tidy-allow(panic-reach): i < j < n was asserted just above the first insert
            state.local[j as usize].insert(i, g);
        }
        for id in 0..n {
            state.refresh_global(id as u32);
        }
        state
    }

    /// Number of live clusters.
    pub fn num_live(&self) -> usize {
        self.live
    }

    /// The live clusters as `(arena id, sorted-as-stored members)` pairs,
    /// ascending by arena id. One half of the canonical state image (the
    /// other is [`canonical_links`](Self::canonical_links)): identical
    /// state produces identical images.
    pub fn live_clusters(&self) -> Vec<(u32, Vec<u32>)> {
        let mut clusters = Vec::with_capacity(self.live);
        for (id, m) in self.members.iter().enumerate() {
            if let Some(m) = m {
                clusters.push((id as u32, m.clone()));
            }
        }
        clusters
    }

    /// The live cross-link counts as upper-triangle `(i, j, count)`
    /// entries (`i < j`), sorted ascending — the canonical link image
    /// consumed by [`from_clusters`](Self::from_clusters) (after arena
    /// ids are compacted) and by WAL snapshots.
    pub fn canonical_links(&self) -> Vec<(u32, u32, u64)> {
        let mut links = Vec::new();
        // tidy-allow(nondeterministic-iter): every surviving entry lands in `links`, which is sorted before returning
        for (i, l) in self.links.iter().enumerate() {
            // tidy-allow(panic-reach): links and members are parallel arenas; i enumerates links
            if self.members[i].is_none() {
                continue;
            }
            for (&j, &c) in l {
                // tidy-allow(panic-reach): j is a cluster id minted into the arena, so it indexes members in range
                if (j as usize) > i && self.members[j as usize].is_some() {
                    links.push((i as u32, j, c));
                }
            }
        }
        links.sort_unstable();
        links
    }

    /// Runs merges while the globally best pair stays inside `bound`;
    /// returns the committed merge records in order.
    ///
    /// Unlike the batch loop (which drives towards a target `k`), this
    /// pass stops at the *first* violated cap — including a best pair
    /// whose merged size would exceed `max_cluster_size`; skipping past
    /// it would reorder the agglomeration, so the pass ends instead.
    pub fn bounded_merge(&mut self, bound: &MergeBound) -> Vec<MergeRecord> {
        let mut out = Vec::new();
        while self.live > bound.min_clusters && out.len() < bound.max_merges {
            let Some((u, best)) = self.global.peek() else {
                break;
            };
            // −∞ (no linked partner anywhere) always fails this test;
            // goodness is never NaN (similarities are finite-checked
            // upstream), so the total order agrees with the partial one.
            if best.total_cmp(&bound.min_goodness).is_lt() {
                break;
            }
            // tidy-allow(panic-reach): u came off the global heap with finite goodness, so its local heap exists and is non-empty
            let Some((v, _)) = self.local[u as usize].peek() else {
                break;
            };
            if self.size(u) + self.size(v) > bound.max_cluster_size {
                break;
            }
            out.push(self.merge(u));
        }
        out
    }

    pub(crate) fn size(&self, id: u32) -> usize {
        // tidy-allow(panic-reach): size() is only called on live cluster ids, which index the arena in range with occupied slots
        self.members[id as usize]
            .as_ref()
            // tidy-allow(panic): size() is only called on cluster ids still live in the merge loop, whose slots are occupied
            .expect("live cluster")
            .len()
    }

    /// Re-derives cluster `id`'s entry in the global heap from its local
    /// heap (Fig. 3 steps 14 and 16).
    pub(crate) fn refresh_global(&mut self, id: u32) {
        // tidy-allow(panic-reach): refresh_global is only called with arena ids minted in range
        let best = self.local[id as usize]
            .peek()
            .map_or(f64::NEG_INFINITY, |(_, g)| g);
        self.global.insert(id, best);
    }

    /// Merges the globally best cluster `u` with its best partner
    /// (Fig. 3 steps 6–17); returns the merge record.
    pub(crate) fn merge(&mut self, u: u32) -> MergeRecord {
        // tidy-allow(panic-reach): u is a live arena id from the global heap, in range by construction
        let (v, guv) = self.local[u as usize]
            .peek()
            // tidy-allow(panic): drive() only merges ids whose global goodness is finite, which requires a non-empty local heap
            .expect("merge called on cluster with candidates");
        // tidy-allow(panic-reach): v came from u's local heap, so links[u] has an entry for v
        let cross = self.links[u as usize][&v];
        let record = MergeRecord {
            left: u,
            right: v,
            merged: self.members.len() as u32,
            sizes: (self.size(u), self.size(v)),
            cross_links: cross,
            goodness: guv,
        };

        self.global.remove(&u);
        self.global.remove(&v);

        // Step 9: w := merge(u, v).
        // tidy-allow(panic): u and v come from live heap entries; each slot is taken here exactly once
        // tidy-allow(panic-reach): u and v are live heap entries indexing occupied arena slots
        let mut merged = self.members[u as usize].take().expect("live");
        // tidy-allow(panic): u and v come from live heap entries; each slot is taken here exactly once
        // tidy-allow(panic-reach): u and v are live heap entries indexing occupied arena slots
        merged.extend(self.members[v as usize].take().expect("live"));
        let w = self.members.len() as u32;
        let w_size = merged.len();
        self.members.push(Some(merged));

        // link[x, w] := link[x, u] + link[x, v] for all linked x.
        // tidy-allow(panic-reach): u indexes the links arena, which parallels members
        let mut lw = std::mem::take(&mut self.links[u as usize]);
        // tidy-allow(panic-reach): v indexes the links arena, which parallels members
        // tidy-allow(nondeterministic-iter): counts accumulate with commutative `+=`; visit order cannot affect the sums
        for (x, c) in std::mem::take(&mut self.links[v as usize]) {
            *lw.entry(x).or_insert(0) += c;
        }
        lw.remove(&u);
        lw.remove(&v);

        let mut qw = self.heap_pool.acquire();
        // tidy-allow(nondeterministic-iter): each iteration updates only x-keyed state, and heap orderings break goodness ties by key, so visit order cannot affect any outcome
        for (&x, &cxw) in &lw {
            // Steps 11–14: replace u, v by w in x's bookkeeping.
            // tidy-allow(panic-reach): x is a live partner id recorded in the links arena, in range by construction
            let xl = &mut self.links[x as usize];
            xl.remove(&u);
            xl.remove(&v);
            xl.insert(w, cxw);
            let g = self
                .goodness
                .merge_goodness(cxw, self.size(x), w_size);
            // tidy-allow(panic-reach): x is a live partner id recorded in the links arena, in range by construction
            let xq = &mut self.local[x as usize];
            xq.remove(&u);
            xq.remove(&v);
            xq.insert(w, g);
            self.refresh_global(x);
            qw.insert(x, g);
        }

        // Step 17: deallocate q[u], q[v] — their buffers return to the
        // pool and come back as future merges' candidate heaps.
        // tidy-allow(panic-reach): u and v index the local arena, which parallels members
        std::mem::take(&mut self.local[u as usize]).recycle_into(&mut self.heap_pool);
        std::mem::take(&mut self.local[v as usize]).recycle_into(&mut self.heap_pool);
        self.links.push(lw);
        self.local.push(qw);
        self.refresh_global(w);
        self.live -= 1;
        record
    }

    /// §4.6 weeding: kills every live cluster smaller than `min_size`,
    /// appending its members to `outliers`.
    pub(crate) fn weed(&mut self, min_size: usize, outliers: &mut Vec<u32>) {
        let victims: Vec<u32> = self
            .members
            .iter()
            .enumerate()
            .filter_map(|(id, m)| {
                m.as_ref()
                    .filter(|m| m.len() < min_size)
                    .map(|_| id as u32)
            })
            .collect();
        for o in victims {
            // tidy-allow(panic): victims were collected from occupied slots and are distinct, so each take() hits Some
            // tidy-allow(panic-reach): victims index the arena in range by construction
            let m = self.members[o as usize].take().expect("live");
            outliers.extend(m);
            // tidy-allow(panic-reach): o indexes the links arena, which parallels members
            // tidy-allow(nondeterministic-iter): the loop performs keyed removals on partners' maps and heaps; per-partner updates are independent of visit order
            for (x, _) in std::mem::take(&mut self.links[o as usize]) {
                // A partner may itself have just been weeded.
                // tidy-allow(panic-reach): x is a partner id recorded in the links arena, in range by construction
                if self.members[x as usize].is_none() {
                    continue;
                }
                // tidy-allow(panic-reach): x was bounds-checked by the members access just above; links and local parallel members
                self.links[x as usize].remove(&o);
                self.local[x as usize].remove(&o);
                self.refresh_global(x);
            }
            // tidy-allow(panic-reach): o indexes the local arena, which parallels members
            self.local[o as usize].clear();
            self.global.remove(&o);
            self.live -= 1;
        }
    }
}

/// What one [`IncrementalRockState::update`] batch did.
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateOutcome {
    /// Per arrival: the cluster it was absorbed into, or `None` for a
    /// rejected outlier. Indices refer to the canonical clustering *as
    /// it was when the batch arrived* — a re-merge or size change at
    /// the end of the batch may reorder clusters afterwards.
    pub assignments: Vec<Option<usize>>,
    /// Arrivals absorbed into a cluster.
    pub absorbed: u64,
    /// Arrivals rejected as outliers.
    pub rejected: u64,
    /// Dirty links this batch added.
    pub dirty_links: u64,
    /// Merges committed by the re-merge pass, if the staleness
    /// criterion tripped (empty otherwise).
    pub remerged: Vec<MergeRecord>,
}

/// An evolving fitted model: the state the online update path drives.
///
/// Built from a served [`ModelArtifact`]
/// ([`IncrementalRockState::from_artifact`]), it absorbs arrival batches
/// with [`IncrementalRockState::update`]: each arrival is labeled
/// against the per-cluster Lᵢ representative sets (§4.6 semantics,
/// bit-identical to [`crate::labeling::Labeler::label_point_checked`]),
/// absorbed points accumulate per-cluster *dirty links*, and when the
/// [`StalenessPolicy`] criterion trips the affected clusters are
/// rebuilt into an [`IncrementalState`] and re-merged under the
/// policy's [`MergeBound`].
///
/// ## Durability
///
/// Every applied batch is appended to an internal
/// [`crate::wal::UpdateWal`] as a self-contained record (encoded
/// arrival points + a post-state digest). Updates are deterministic, so
/// [`IncrementalRockState::resume`] replays the log from the base
/// artifact to the **bit-identical** state — each replayed batch's
/// digest is verified against the logged one. Persist the evolved model
/// itself with [`IncrementalRockState::to_artifact`] (a version-2
/// artifact carrying the evolved representative pools and update
/// provenance).
///
/// ## Failure atomicity
///
/// The WAL gains a record only *after* a batch fully applies; an error
/// mid-update (a governor trip during the re-merge, a non-finite
/// similarity after absorption began) can leave the in-memory state
/// torn. Discard the state and [`IncrementalRockState::resume`] from
/// the artifact + WAL bytes: the half-applied batch was never logged,
/// so the replay lands exactly before it.
#[derive(Clone, Debug)]
pub struct IncrementalRockState<P> {
    model: String,
    /// Canonical clustering: members sorted ascending, clusters ordered
    /// by (size desc, smallest member asc) — the [`Clustering::new`]
    /// fixpoint, so artifact round-trips never shift cluster indices.
    clusters: Vec<Vec<u32>>,
    outliers: Vec<u32>,
    /// Per-cluster representative pools, parallel to `clusters`.
    reps: Vec<Vec<P>>,
    /// Per-cluster dirty-link accumulators, parallel to `clusters`.
    dirty: Vec<u64>,
    theta: f64,
    ftheta: f64,
    labeling_fraction: f64,
    hash_seed: Option<u64>,
    next_point: u32,
    pending: u64,
    policy: StalenessPolicy,
    provenance: UpdateProvenance,
    wal: UpdateWal,
}

impl<P: ArtifactPoint + Clone> IncrementalRockState<P> {
    /// Opens an artifact for online updates under `default_policy`
    /// (an update state already stored in a version-2 artifact wins
    /// over the default, so an evolved model keeps its policy).
    ///
    /// # Errors
    /// [`RockError::ArtifactMismatch`] when the artifact has no
    /// representative sets, a pooled point does not decode as `P`, or
    /// the resolved policy fails its range checks.
    pub fn from_artifact(
        artifact: &ModelArtifact,
        default_policy: StalenessPolicy,
    ) -> Result<Self, RockError> {
        let policy = artifact
            .update_state()
            .map_or(default_policy, |ext| ext.policy);
        if let Err(detail) = policy.check() {
            return Err(RockError::ArtifactMismatch { detail });
        }
        let labeler: Labeler<P> = artifact.labeler()?;
        let reps = labeler.sets().to_vec();
        let clustering = artifact.clustering();
        let clusters = clustering.clusters.clone();
        let outliers = clustering.outliers.clone();
        let (dirty, pending, provenance, next_point) = match artifact.update_state() {
            Some(ext) => (
                ext.dirty.clone(),
                ext.pending,
                ext.provenance,
                ext.next_point,
            ),
            None => {
                let max_id = clusters
                    .iter()
                    .flatten()
                    .chain(outliers.iter())
                    .copied()
                    .max();
                (
                    vec![0; clusters.len()],
                    0,
                    UpdateProvenance::default(),
                    max_id.map_or(0, |m| m + 1),
                )
            }
        };
        let mut state = IncrementalRockState {
            model: artifact.model().to_string(),
            clusters,
            outliers,
            reps,
            dirty,
            theta: artifact.theta(),
            ftheta: artifact.ftheta(),
            labeling_fraction: artifact.labeling_fraction(),
            hash_seed: artifact.hash_seed(),
            next_point,
            pending,
            policy,
            provenance,
            wal: UpdateWal::new(),
        };
        let base = UpdateBase {
            theta_bits: state.theta.to_bits(),
            ftheta_bits: state.ftheta.to_bits(),
            fraction_bits: state.labeling_fraction.to_bits(),
            hash_seed: state.hash_seed,
            policy: state.policy,
            base_digest: state.digest(),
        };
        state.wal.append_base(&base);
        Ok(state)
    }

    /// Rebuilds an evolving model from its base artifact and the bytes
    /// of its update WAL, replaying every intact logged batch. A torn
    /// WAL tail is truncated (the second return value reports it), the
    /// same discipline as the merge WAL.
    ///
    /// # Errors
    /// [`RockError::WalCorrupt`] for a damaged log head, and
    /// [`RockError::WalMismatch`] when the log does not belong to this
    /// artifact (fingerprint/digest mismatch), a logged point does not
    /// decode, or a replayed batch diverges from its logged digest.
    /// Replayed updates run ungoverned, so [`RockError::Interrupted`]
    /// cannot occur; labeling errors surface as in
    /// [`IncrementalRockState::update`].
    pub fn resume<S: Similarity<P>>(
        artifact: &ModelArtifact,
        wal_bytes: &[u8],
        measure: &S,
    ) -> Result<(Self, bool), RockError> {
        let replay = parse_update_wal(wal_bytes)?;
        let base = &replay.base;
        let mut state = IncrementalRockState::from_artifact(artifact, base.policy)?;
        let fingerprint_ok = base.theta_bits == state.theta.to_bits()
            && base.ftheta_bits == state.ftheta.to_bits()
            && base.fraction_bits == state.labeling_fraction.to_bits()
            && base.hash_seed == state.hash_seed
            && base.policy == state.policy;
        if !fingerprint_ok {
            return Err(RockError::WalMismatch {
                detail: "update log fingerprint does not match the artifact".into(),
            });
        }
        if base.base_digest != state.digest() {
            return Err(RockError::WalMismatch {
                detail: "update log base digest does not match the artifact".into(),
            });
        }
        let governor = RunGovernor::unlimited();
        for rec in &replay.updates {
            let points = decode_update_points::<P>(rec)?;
            state.update(&points, measure, &governor)?;
            if state.digest() != rec.post_digest {
                return Err(RockError::WalMismatch {
                    detail: format!("replayed update #{} diverges from its logged digest", rec.seq),
                });
            }
        }
        Ok((state, replay.truncated))
    }

    /// Absorbs one batch of arrivals.
    ///
    /// The batch proceeds in phases: (1) every arrival is scored
    /// against the *pre-batch* representative pools (§4.6: assign to
    /// the cluster maximising `Nᵢ / (|Lᵢ| + 1)^{f(θ)}`, ties to the
    /// smaller index, no representative neighbor anywhere → outlier);
    /// (2) absorbed points join their cluster (and its representative
    /// pool while it holds fewer than `rep_cap` points), adding their
    /// representative-neighbor count to the cluster's dirty links;
    /// (3) if the [`StalenessPolicy`] trips, cross-links are recounted
    /// over the representative pools of every pair involving a dirty
    /// cluster and a bounded re-merge runs; (4) the clustering is
    /// re-canonicalised and the batch is logged to the update WAL.
    ///
    /// `governor` is consulted before the batch
    /// (`check_at(Labeling, updates_applied)`) and before a re-merge
    /// (`check_at(Merge, remerges)`) — kill/resume tests hook both.
    ///
    /// # Errors
    /// [`RockError::Interrupted`] (marked resumable) on a governor
    /// trip, [`RockError::NonFiniteSimilarity`] from a degenerate
    /// measure. See the type docs for failure atomicity: after an error
    /// past phase 1 the in-memory state is torn — discard it and
    /// [`IncrementalRockState::resume`].
    pub fn update<S: Similarity<P>>(
        &mut self,
        arrivals: &[P],
        measure: &S,
        governor: &RunGovernor,
    ) -> Result<UpdateOutcome, RockError> {
        governor
            .check_at(Phase::Labeling, self.provenance.updates_applied)
            .map_err(|e| crate::algorithm::mark_resumable(e, true))?;

        // Phase 1: pure scoring against the pre-batch pools. Local
        // tallies only — the process-global perf counters are bumped
        // once by the exact amounts, never via snapshot deltas (other
        // threads' kernels would pollute a delta).
        let set_points: u64 = self.reps.iter().map(|s| s.len() as u64).sum();
        let mut scored: Vec<Option<(usize, u64)>> = Vec::with_capacity(arrivals.len());
        // tidy:kernel-hot-loop — per-arrival §4.6 scoring
        for point in arrivals {
            let mut best: Option<(usize, u64, f64)> = None;
            for (i, set) in self.reps.iter().enumerate() {
                let mut neighbors = 0u64;
                for l in set {
                    let s = measure.similarity(point, l);
                    if !s.is_finite() {
                        return Err(RockError::NonFiniteSimilarity { value: s });
                    }
                    if s >= self.theta {
                        neighbors += 1;
                    }
                }
                if neighbors == 0 {
                    continue;
                }
                let norm = ((set.len() + 1) as f64).powf(self.ftheta);
                let score = neighbors as f64 / norm;
                let better = match best {
                    None => true,
                    Some((_, _, b)) => score > b,
                };
                if better {
                    best = Some((i, neighbors, score));
                }
            }
            scored.push(best.map(|(i, n, _)| (i, n)));
        }
        // tidy:end-kernel-hot-loop
        let mut sims = arrivals.len() as u64 * set_points;

        // Phase 2: absorb.
        let mut absorbed = 0u64;
        let mut rejected = 0u64;
        let mut new_dirty = 0u64;
        let assignments: Vec<Option<usize>> = scored.iter().map(|s| s.map(|(i, _)| i)).collect();
        for (point, &slot) in arrivals.iter().zip(&scored) {
            let id = self.next_point;
            self.next_point += 1;
            match slot {
                Some((c, neighbors)) => {
                    // tidy-allow(panic-reach): c came from enumerate() over reps, and clusters/reps/dirty are parallel
                    self.clusters[c].push(id);
                    // tidy-allow(panic-reach): c came from enumerate() over reps, and clusters/reps/dirty are parallel
                    if self.reps[c].len() < self.policy.rep_cap {
                        // tidy-allow(panic-reach): c came from enumerate() over reps, and clusters/reps/dirty are parallel
                        self.reps[c].push(point.clone());
                    }
                    // tidy-allow(panic-reach): c came from enumerate() over reps, and clusters/reps/dirty are parallel
                    self.dirty[c] += neighbors;
                    new_dirty += neighbors;
                    absorbed += 1;
                    self.pending += 1;
                }
                None => {
                    self.outliers.push(id);
                    rejected += 1;
                }
            }
        }

        // Phase 3: staleness check and bounded re-merge.
        let clustered_points: usize = self.clusters.iter().map(Vec::len).sum();
        let dirty_total: u64 = self.dirty.iter().sum();
        let stale = self.pending >= self.policy.max_pending
            || dirty_total as f64 >= self.policy.max_dirty_fraction * clustered_points as f64;
        let mut remerged = Vec::new();
        let mut did_remerge = false;
        if stale && self.clusters.len() > self.policy.min_clusters {
            governor
                .check_at(Phase::Merge, self.provenance.remerges)
                .map_err(|e| crate::algorithm::mark_resumable(e, true))?;
            let (records, merge_sims) = self.remerge(measure, clustered_points)?;
            sims += merge_sims;
            remerged = records;
            did_remerge = true;
        }

        // Phase 4: restore the canonical clustering order, account, log.
        self.canonicalize();
        self.provenance.updates_applied += 1;
        self.provenance.points_absorbed += absorbed;
        self.provenance.points_rejected += rejected;
        self.provenance.relabels += arrivals.len() as u64;
        self.provenance.dirty_links += new_dirty;
        if did_remerge {
            self.provenance.remerges += 1;
            self.provenance.remerge_merges += remerged.len() as u64;
            crate::perf::count_remerges(1);
        }
        crate::perf::count_relabels(arrivals.len() as u64);
        crate::perf::count_dirty_links(new_dirty);
        crate::perf::count_sim_evals(sims);
        let record = UpdateRecord {
            seq: self.provenance.updates_applied - 1,
            points: arrivals
                .iter()
                .map(|p| {
                    let mut blob = Vec::new();
                    p.encode(&mut blob);
                    blob
                })
                .collect(),
            post_digest: self.digest(),
        };
        self.wal.append_update(&record);

        Ok(UpdateOutcome {
            assignments,
            absorbed,
            rejected,
            dirty_links: new_dirty,
            remerged,
        })
    }

    /// Recounts representative cross-links over every pair involving a
    /// dirty cluster, runs the bounded merge, and folds the committed
    /// merges back into the parallel `(clusters, reps)` arrays. Dirty
    /// accumulators and the pending count reset afterwards. Returns the
    /// merge records and the number of similarity evaluations spent.
    fn remerge<S: Similarity<P>>(
        &mut self,
        measure: &S,
        clustered_points: usize,
    ) -> Result<(Vec<MergeRecord>, u64), RockError> {
        let n = self.clusters.len();
        let mut sims = 0u64;
        let mut fresh_links: Vec<(u32, u32, u64)> = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                // tidy-allow(panic-reach): i < j < n index the parallel dirty/reps arrays
                if self.dirty[i] == 0 && self.dirty[j] == 0 {
                    continue;
                }
                let mut count = 0u64;
                // tidy-allow(panic-reach): i < j < n index the parallel dirty/reps arrays
                sims += self.reps[i].len() as u64 * self.reps[j].len() as u64;
                // tidy-allow(panic-reach): i < j < n index the parallel dirty/reps arrays
                for a in &self.reps[i] {
                    // tidy-allow(panic-reach): i < j < n index the parallel dirty/reps arrays
                    for b in &self.reps[j] {
                        let s = measure.similarity(a, b);
                        if !s.is_finite() {
                            return Err(RockError::NonFiniteSimilarity { value: s });
                        }
                        if s >= self.theta {
                            count += 1;
                        }
                    }
                }
                if count > 0 {
                    fresh_links.push((i as u32, j as u32, count));
                }
            }
        }
        // The artifact does not persist a goodness kind; re-merges always
        // run the paper's §3.3 normalised criterion, matching the batch
        // engine's default.
        let goodness = Goodness::new(self.theta, ConstantF(self.ftheta), GoodnessKind::Normalized);
        let hasher = self
            .hash_seed
            .map_or_else(FxBuildHasher::default, FxBuildHasher::with_seed);
        let mut st = IncrementalState::from_clusters(
            std::mem::take(&mut self.clusters),
            &fresh_links,
            goodness,
            hasher,
        );
        let records = st.bounded_merge(&self.policy.merge_bound(clustered_points));

        // Fold committed merges into the parallel representative pools:
        // an arena slot per pre-merge cluster, each record concatenating
        // its operands' pools (capped) into the slot of the merged id —
        // the same id-minting order as the merge arena itself.
        let mut rep_arena: Vec<Option<Vec<P>>> =
            std::mem::take(&mut self.reps).into_iter().map(Some).collect();
        for rec in &records {
            debug_assert_eq!(rec.merged as usize, rep_arena.len());
            // tidy-allow(panic-reach): merge records reference operand ids already minted into the arena
            let mut pool = rep_arena[rec.left as usize].take().unwrap_or_default();
            // tidy-allow(panic-reach): merge records reference operand ids already minted into the arena
            pool.extend(rep_arena[rec.right as usize].take().unwrap_or_default());
            pool.truncate(self.policy.rep_cap);
            rep_arena.push(Some(pool));
        }
        for (id, members) in st.live_clusters() {
            self.clusters.push(members);
            // tidy-allow(panic-reach): live arena ids index rep_arena, which grew in lockstep with the merge arena
            self.reps.push(rep_arena[id as usize].take().unwrap_or_default());
        }
        self.dirty = vec![0; self.clusters.len()];
        self.pending = 0;
        Ok((records, sims))
    }

    /// Restores the [`Clustering::new`] canonical order in place: members
    /// ascending within each cluster, clusters by (size desc, smallest
    /// member asc), the parallel `reps`/`dirty` arrays permuted in
    /// lockstep, outliers sorted. Clusters are disjoint and non-empty, so
    /// the order is total and the permutation unique — which is what
    /// makes the digest canonical.
    fn canonicalize(&mut self) {
        for c in &mut self.clusters {
            c.sort_unstable();
        }
        let clusters = &self.clusters;
        let mut order: Vec<usize> = (0..clusters.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            // tidy-allow(panic-reach): a and b are drawn from 0..len, and clusters are never empty
            let (ca, cb) = (&clusters[a], &clusters[b]);
            cb.len().cmp(&ca.len()).then(ca[0].cmp(&cb[0]))
        });
        let mut clusters = Vec::with_capacity(order.len());
        let mut reps = Vec::with_capacity(order.len());
        let mut dirty = Vec::with_capacity(order.len());
        for &i in &order {
            // tidy-allow(panic-reach): order is a permutation of 0..len over the parallel arrays
            clusters.push(std::mem::take(&mut self.clusters[i]));
            // tidy-allow(panic-reach): order is a permutation of 0..len over the parallel arrays
            reps.push(std::mem::take(&mut self.reps[i]));
            // tidy-allow(panic-reach): order is a permutation of 0..len over the parallel arrays
            dirty.push(self.dirty[i]);
        }
        self.clusters = clusters;
        self.reps = reps;
        self.dirty = dirty;
        self.outliers.sort_unstable();
    }

    /// Persists the evolved model as a (version-2) artifact: the current
    /// clustering and representative pools plus the update extension
    /// (provenance, policy, pending/dirty accumulators). Loading it back
    /// through [`IncrementalRockState::from_artifact`] reproduces this
    /// state digest-identically.
    ///
    /// # Errors
    /// Propagates [`crate::labeling::Labeler::from_sets`] and
    /// [`ModelArtifact::from_labeled`] validation failures.
    pub fn to_artifact(&self) -> Result<ModelArtifact, RockError> {
        let labeler = Labeler::from_sets(self.reps.clone(), self.theta, self.ftheta)?;
        let mut report = RunReport::new();
        report.record_phase_perf(
            "update",
            PerfCounters {
                relabels: self.provenance.relabels,
                dirty_links: self.provenance.dirty_links,
                remerges: self.provenance.remerges,
                ..PerfCounters::default()
            },
        );
        let fit = ModelFit {
            clustering: Clustering::new(self.clusters.clone(), self.outliers.clone()),
            dendrogram: None,
            report,
        };
        let mut artifact = ModelArtifact::from_labeled(
            &self.model,
            &fit,
            &labeler,
            self.labeling_fraction,
            self.hash_seed,
        )?;
        artifact.set_update_state(Some(UpdateExtension {
            provenance: self.provenance,
            policy: self.policy,
            pending: self.pending,
            dirty: self.dirty.clone(),
            next_point: self.next_point,
        }));
        Ok(artifact)
    }

    /// The model name inherited from the base artifact.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Current number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// The canonical clusters (point ids, members ascending).
    pub fn clusters(&self) -> &[Vec<u32>] {
        &self.clusters
    }

    /// Point ids rejected as outliers, ascending.
    pub fn outliers(&self) -> &[u32] {
        &self.outliers
    }

    /// Absorbed points pending since the last re-merge.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// The staleness policy in force.
    pub fn policy(&self) -> StalenessPolicy {
        self.policy
    }

    /// Cumulative update provenance.
    pub fn provenance(&self) -> UpdateProvenance {
        self.provenance
    }

    /// The update WAL accumulated by this state (base record plus one
    /// record per applied batch) — persist its bytes to make
    /// [`IncrementalRockState::resume`] possible.
    pub fn wal(&self) -> &UpdateWal {
        &self.wal
    }

    /// CRC-32 digest of the canonical state image (everything but the
    /// WAL). Equal digests mean bit-identical evolved models.
    pub fn digest(&self) -> u32 {
        crc32(&self.canonical_bytes())
    }

    fn canonical_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u64(&mut buf, self.theta.to_bits());
        put_u64(&mut buf, self.ftheta.to_bits());
        put_u64(&mut buf, self.labeling_fraction.to_bits());
        match self.hash_seed {
            Some(s) => {
                buf.push(1);
                put_u64(&mut buf, s);
            }
            None => buf.push(0),
        }
        put_u64(&mut buf, self.policy.max_pending);
        put_f64(&mut buf, self.policy.max_dirty_fraction);
        put_f64(&mut buf, self.policy.min_goodness);
        put_u64(&mut buf, self.policy.max_merges);
        put_u64(&mut buf, self.policy.min_clusters as u64);
        put_f64(&mut buf, self.policy.max_cluster_fraction);
        put_u64(&mut buf, self.policy.rep_cap as u64);
        put_u32(&mut buf, self.next_point);
        put_u64(&mut buf, self.pending);
        let pv = &self.provenance;
        for v in [
            pv.updates_applied,
            pv.points_absorbed,
            pv.points_rejected,
            pv.relabels,
            pv.dirty_links,
            pv.remerges,
            pv.remerge_merges,
        ] {
            put_u64(&mut buf, v);
        }
        put_u32(&mut buf, self.clusters.len() as u32);
        for c in &self.clusters {
            put_u32_slice(&mut buf, c);
        }
        put_u32_slice(&mut buf, &self.outliers);
        for &d in &self.dirty {
            put_u64(&mut buf, d);
        }
        put_u32(&mut buf, self.reps.len() as u32);
        for set in &self.reps {
            put_u32(&mut buf, set.len() as u32);
            for p in set {
                let mut blob = Vec::new();
                p.encode(&mut blob);
                put_u32(&mut buf, blob.len() as u32);
                buf.extend_from_slice(&blob);
            }
        }
        buf
    }
}

/// Decodes one logged update batch back into points; a blob that does
/// not decode exactly means the log belongs to a different point type.
fn decode_update_points<P: ArtifactPoint>(rec: &UpdateRecord) -> Result<Vec<P>, RockError> {
    let mut points = Vec::with_capacity(rec.points.len());
    for blob in &rec.points {
        let mut cursor = Cursor::new(blob);
        let decoded = P::decode(&mut cursor).filter(|_| cursor.done());
        let Some(p) = decoded else {
            return Err(RockError::WalMismatch {
                detail: format!("update #{} logs a point that does not decode", rec.seq),
            });
        };
        points.push(p);
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goodness::{ConstantF, GoodnessKind};

    fn goodness() -> Goodness {
        Goodness::new(0.5, ConstantF(1.0), GoodnessKind::Normalized)
    }

    fn singleton_state(n: u32, links: &[(u32, u32, u64)]) -> IncrementalState {
        let clusters: Vec<Vec<u32>> = (0..n).map(|p| vec![p]).collect();
        IncrementalState::from_clusters(clusters, links, goodness(), FxBuildHasher::default())
    }

    #[test]
    fn image_round_trips_through_from_clusters() {
        let mut a = singleton_state(4, &[(0, 1, 3), (0, 2, 1), (1, 2, 2)]);
        let rec = a.merge(a.global.peek().unwrap().0);
        assert_eq!(rec.merged, 4);

        // Re-image, compact arena ids, rebuild, and compare images.
        let clusters: Vec<Vec<u32>> = a.live_clusters().into_iter().map(|(_, m)| m).collect();
        let remap: std::collections::BTreeMap<u32, u32> = a
            .live_clusters()
            .iter()
            .enumerate()
            .map(|(new, (old, _))| (*old, new as u32))
            .collect();
        let links: Vec<(u32, u32, u64)> = a
            .canonical_links()
            .into_iter()
            .map(|(i, j, c)| {
                let (i, j) = (remap[&i], remap[&j]);
                (i.min(j), i.max(j), c)
            })
            .collect();
        let b = IncrementalState::from_clusters(
            clusters.clone(),
            &links,
            goodness(),
            FxBuildHasher::with_seed(99),
        );
        assert_eq!(
            b.live_clusters().into_iter().map(|(_, m)| m).collect::<Vec<_>>(),
            clusters
        );
        let mut want = links;
        want.sort_unstable();
        assert_eq!(b.canonical_links(), want);
        // The rebuilt heaps agree on the next merge decision.
        assert_eq!(b.global.peek().map(|(_, g)| g), a.global.peek().map(|(_, g)| g));
    }

    #[test]
    fn bounded_merge_respects_every_cap() {
        let links = &[(0, 1, 4), (1, 2, 3), (2, 3, 2), (3, 4, 1)];

        // max_merges caps the pass length.
        let mut s = singleton_state(5, links);
        let bound = MergeBound {
            min_goodness: f64::NEG_INFINITY,
            min_clusters: 1,
            max_merges: 2,
            max_cluster_size: usize::MAX,
        };
        assert_eq!(s.bounded_merge(&bound).len(), 2);

        // min_clusters floors the surviving count.
        let mut s = singleton_state(5, links);
        let merges = s.bounded_merge(&MergeBound {
            min_clusters: 3,
            max_merges: usize::MAX,
            ..bound
        });
        assert_eq!(merges.len(), 2);
        assert_eq!(s.num_live(), 3);

        // min_goodness stops low-quality merges.
        let mut s = singleton_state(5, links);
        let all = s.bounded_merge(&MergeBound {
            min_clusters: 1,
            max_merges: usize::MAX,
            ..bound
        });
        let cutoff = all[all.len() - 1].goodness + 1e-9;
        let mut s2 = singleton_state(5, links);
        let some = s2.bounded_merge(&MergeBound {
            min_goodness: cutoff,
            min_clusters: 1,
            max_merges: usize::MAX,
            max_cluster_size: usize::MAX,
        });
        assert!(some.len() < all.len());

        // max_cluster_size stops the pass before a giant cluster forms.
        let mut s = singleton_state(5, links);
        let small = s.bounded_merge(&MergeBound {
            min_goodness: f64::NEG_INFINITY,
            min_clusters: 1,
            max_merges: usize::MAX,
            max_cluster_size: 2,
        });
        assert!(small.iter().all(|m| m.sizes.0 + m.sizes.1 <= 2));
    }

    #[test]
    fn unlinked_state_never_merges() {
        let mut s = singleton_state(3, &[]);
        let merges = s.bounded_merge(&MergeBound {
            min_goodness: f64::NEG_INFINITY,
            min_clusters: 1,
            max_merges: usize::MAX,
            max_cluster_size: usize::MAX,
        });
        assert!(merges.is_empty());
        assert_eq!(s.num_live(), 3);
    }

    #[test]
    #[should_panic(expected = "malformed link")]
    fn malformed_link_panics() {
        let _ = singleton_state(2, &[(1, 1, 3)]);
    }

    use crate::points::Transaction;
    use crate::similarity::Jaccard;

    fn t(items: &[u32]) -> Transaction {
        Transaction::new(items.to_vec())
    }

    /// Two well-separated basket clusters: "baby products" (points
    /// 0..=2) and "imported foods" (points 3..=5), θ = 0.5.
    fn baskets_artifact() -> ModelArtifact {
        let sets = vec![
            vec![t(&[0, 1, 2]), t(&[0, 1, 3]), t(&[0, 2, 3])],
            vec![t(&[10, 11, 12]), t(&[10, 11, 13]), t(&[10, 12, 13])],
        ];
        let labeler = Labeler::from_sets(sets, 0.5, 1.0).unwrap();
        let fit = ModelFit {
            clustering: Clustering::new(vec![vec![0, 1, 2], vec![3, 4, 5]], vec![]),
            dendrogram: None,
            report: RunReport::new(),
        };
        ModelArtifact::from_labeled("rock", &fit, &labeler, 1.0, Some(7)).unwrap()
    }

    /// A lenient policy that never trips staleness in short tests.
    fn calm_policy() -> StalenessPolicy {
        StalenessPolicy {
            max_pending: 1_000_000,
            max_dirty_fraction: 1e9,
            ..StalenessPolicy::default()
        }
    }

    #[test]
    fn update_absorbs_neighbors_and_rejects_strangers() {
        let artifact = baskets_artifact();
        let mut state: IncrementalRockState<Transaction> =
            IncrementalRockState::from_artifact(&artifact, calm_policy()).unwrap();
        let arrivals = vec![t(&[0, 1, 2]), t(&[99, 100])];
        let out = state
            .update(&arrivals, &Jaccard, &RunGovernor::unlimited())
            .unwrap();
        assert_eq!(out.assignments, vec![Some(0), None]);
        assert_eq!((out.absorbed, out.rejected), (1, 1));
        assert!(out.remerged.is_empty());
        // Point ids continue from the base fit: 6 absorbed, 7 rejected.
        assert_eq!(state.clusters(), &[vec![0, 1, 2, 6], vec![3, 4, 5]]);
        assert_eq!(state.outliers(), &[7]);
        assert_eq!(state.pending(), 1);
        // The duplicate of {0,1,2} neighbors all three representatives.
        assert_eq!(out.dirty_links, 3);
        let pv = state.provenance();
        assert_eq!(pv.updates_applied, 1);
        assert_eq!(pv.relabels, 2);
        assert_eq!(pv.remerges, 0);
    }

    #[test]
    fn staleness_trip_runs_a_bounded_remerge_and_resets_accumulators() {
        let artifact = baskets_artifact();
        let policy = StalenessPolicy {
            max_pending: 1,
            min_clusters: 1,
            ..StalenessPolicy::default()
        };
        let mut state: IncrementalRockState<Transaction> =
            IncrementalRockState::from_artifact(&artifact, policy).unwrap();
        let out = state
            .update(&[t(&[0, 1, 2])], &Jaccard, &RunGovernor::unlimited())
            .unwrap();
        // The two basket clusters share no items, so the pass commits no
        // merges — but it still counts as a re-merge and resets state.
        assert!(out.remerged.is_empty());
        assert_eq!(state.pending(), 0);
        assert_eq!(state.provenance().remerges, 1);
        assert_eq!(state.num_clusters(), 2);
    }

    #[test]
    fn overlapping_clusters_remerge_when_stale() {
        // Three clusters where the first two share enough items to link.
        let sets = vec![
            vec![t(&[0, 1, 2]), t(&[0, 1, 3])],
            vec![t(&[0, 2, 3]), t(&[1, 2, 3])],
            vec![t(&[10, 11, 12]), t(&[10, 11, 13])],
        ];
        let labeler = Labeler::from_sets(sets, 0.5, 1.0).unwrap();
        let fit = ModelFit {
            clustering: Clustering::new(vec![vec![0, 1], vec![2, 3], vec![4, 5]], vec![]),
            dendrogram: None,
            report: RunReport::new(),
        };
        let artifact = ModelArtifact::from_labeled("rock", &fit, &labeler, 1.0, None).unwrap();
        let policy = StalenessPolicy {
            max_pending: 1,
            min_clusters: 2,
            max_cluster_fraction: 1.0,
            ..StalenessPolicy::default()
        };
        let mut state: IncrementalRockState<Transaction> =
            IncrementalRockState::from_artifact(&artifact, policy).unwrap();
        let out = state
            .update(&[t(&[0, 1, 2])], &Jaccard, &RunGovernor::unlimited())
            .unwrap();
        assert_eq!(out.remerged.len(), 1);
        assert_eq!(state.num_clusters(), 2);
        assert_eq!(state.provenance().remerge_merges, 1);
        // The merged cluster absorbed both overlapping basket clusters
        // plus the arrival (point 6) and leads the canonical order.
        assert_eq!(state.clusters()[0], vec![0, 1, 2, 3, 6]);
    }

    #[test]
    fn wal_replay_reaches_the_bit_identical_state() {
        let artifact = baskets_artifact();
        let policy = StalenessPolicy {
            max_pending: 3,
            min_clusters: 1,
            ..StalenessPolicy::default()
        };
        let mut state: IncrementalRockState<Transaction> =
            IncrementalRockState::from_artifact(&artifact, policy).unwrap();
        state
            .update(&[t(&[0, 1, 2]), t(&[10, 11, 12])], &Jaccard, &RunGovernor::unlimited())
            .unwrap();
        state
            .update(&[t(&[0, 1, 3]), t(&[77])], &Jaccard, &RunGovernor::unlimited())
            .unwrap();
        let wal_bytes = state.wal().as_bytes().to_vec();

        let (replayed, truncated) =
            IncrementalRockState::<Transaction>::resume(&artifact, &wal_bytes, &Jaccard).unwrap();
        assert!(!truncated);
        assert_eq!(replayed.digest(), state.digest());
        assert_eq!(replayed.canonical_bytes(), state.canonical_bytes());
        // Deterministic encoding regenerates the log byte-for-byte.
        assert_eq!(replayed.wal().as_bytes(), &wal_bytes[..]);

        // A torn tail replays the intact prefix and reports truncation.
        let torn = &wal_bytes[..wal_bytes.len() - 3];
        let (prefix, truncated) =
            IncrementalRockState::<Transaction>::resume(&artifact, torn, &Jaccard).unwrap();
        assert!(truncated);
        assert_eq!(prefix.provenance().updates_applied, 1);
    }

    #[test]
    fn foreign_wal_is_a_typed_mismatch() {
        let artifact = baskets_artifact();
        let mut state: IncrementalRockState<Transaction> =
            IncrementalRockState::from_artifact(&artifact, calm_policy()).unwrap();
        state
            .update(&[t(&[0, 1, 2])], &Jaccard, &RunGovernor::unlimited())
            .unwrap();
        let wal_bytes = state.wal().as_bytes().to_vec();

        // Same shape, different θ: the fingerprint must reject it.
        let sets = vec![
            vec![t(&[0, 1, 2]), t(&[0, 1, 3]), t(&[0, 2, 3])],
            vec![t(&[10, 11, 12]), t(&[10, 11, 13]), t(&[10, 12, 13])],
        ];
        let labeler = Labeler::from_sets(sets, 0.75, 1.0).unwrap();
        let fit = ModelFit {
            clustering: Clustering::new(vec![vec![0, 1, 2], vec![3, 4, 5]], vec![]),
            dendrogram: None,
            report: RunReport::new(),
        };
        let other = ModelArtifact::from_labeled("rock", &fit, &labeler, 1.0, Some(7)).unwrap();
        let err = IncrementalRockState::<Transaction>::resume(&other, &wal_bytes, &Jaccard)
            .unwrap_err();
        assert!(matches!(err, RockError::WalMismatch { .. }), "{err}");
    }

    #[test]
    fn evolved_artifact_round_trips_digest_identically() {
        let artifact = baskets_artifact();
        let mut state: IncrementalRockState<Transaction> =
            IncrementalRockState::from_artifact(&artifact, calm_policy()).unwrap();
        state
            .update(&[t(&[0, 1, 2]), t(&[42])], &Jaccard, &RunGovernor::unlimited())
            .unwrap();

        let evolved = state.to_artifact().unwrap();
        assert!(evolved.update_state().is_some());
        let bytes = evolved.to_bytes();
        let loaded = ModelArtifact::from_bytes(&bytes).unwrap();
        let reopened: IncrementalRockState<Transaction> =
            IncrementalRockState::from_artifact(&loaded, calm_policy()).unwrap();
        assert_eq!(reopened.digest(), state.digest());
        // The stored policy wins over the caller's default.
        assert_eq!(reopened.policy(), state.policy());
        assert_eq!(reopened.provenance(), state.provenance());
    }

    #[test]
    fn interrupted_update_is_resumable_and_unlogged() {
        let artifact = baskets_artifact();
        let mut state: IncrementalRockState<Transaction> =
            IncrementalRockState::from_artifact(&artifact, calm_policy()).unwrap();
        let governor = RunGovernor::unlimited().with_kill_at(Phase::Labeling, 0);
        let err = state
            .update(&[t(&[0, 1, 2])], &Jaccard, &governor)
            .unwrap_err();
        assert!(
            matches!(err, RockError::Interrupted { resumable: true, .. }),
            "{err}"
        );
        // Nothing was applied or logged: replay lands on the base state.
        let (replayed, _) =
            IncrementalRockState::<Transaction>::resume(&artifact, state.wal().as_bytes(), &Jaccard)
                .unwrap();
        assert_eq!(replayed.provenance().updates_applied, 0);
        assert_eq!(replayed.digest(), state.digest());
    }
}

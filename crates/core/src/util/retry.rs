//! Bounded retry-with-backoff — the one policy shared by every
//! transient-failure site in the workspace.
//!
//! Before this module existed, the artifact serve layer
//! ([`crate::serve`]) and rock-data's resilient ingest each carried a
//! private copy of the same capped-exponential backoff policy. Both now
//! share this one. The unified policy adds a capability the copies
//! lacked: *deterministic, seed-derived jitter*
//! ([`RetryPolicy::with_jitter_seed`]) — each retry's delay is scattered
//! within `[delay/2, delay)` by a [`splitmix64`] stream of the seed, so
//! many retriers backing off from a shared resource do not thunder in
//! lockstep, while a given seed reproduces the exact delay schedule
//! (the property every fault-matrix test relies on).
//!
//! Two semantics are deliberately *not* this module's business and stay
//! at the call sites:
//!
//! * **what counts as transient** is offered as a default
//!   ([`RetryPolicy::is_transient`]) but callers may refine it;
//! * **corruption is never retried** — parse and validation failures
//!   surface immediately at every call site, because a deterministic
//!   re-read of bad bytes cannot succeed.

use crate::util::splitmix::splitmix64;
use std::io;
use std::time::Duration;

/// Bounded capped-exponential backoff for transient failures.
///
/// Delay before retry `n` (0-based) is `base_delay · 2ⁿ`, capped at
/// `max_delay`, optionally jittered deterministically (see
/// [`RetryPolicy::jitter_seed`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = try once, never retry).
    pub max_retries: u32,
    /// Delay before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
    /// When set, each delay is scaled into `[delay/2, delay)` by a
    /// SplitMix64 stream of this seed — deterministic per `(seed,
    /// attempt)`, so schedules de-synchronize across retriers without
    /// losing reproducibility. `None` keeps the exact
    /// capped-exponential schedule.
    pub jitter_seed: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            jitter_seed: None,
        }
    }
}

impl RetryPolicy {
    /// A policy retrying up to `max_retries` times with no sleeping —
    /// what tests and in-memory sources want.
    pub fn no_backoff(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_seed: None,
        }
    }

    /// Enables deterministic seed-derived jitter (see
    /// [`RetryPolicy::jitter_seed`]).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// The delay before retry number `attempt` (0-based): `base · 2ᵃ`
    /// capped at `max_delay`, then jittered into `[delay/2, delay)`
    /// when a jitter seed is set.
    pub fn backoff(&self, attempt: u32) -> Duration {
        // Shift capped well past any real max_delay; saturating_mul
        // absorbs the rest.
        let factor = 1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX);
        let full = self.base_delay.saturating_mul(factor).min(self.max_delay);
        match self.jitter_seed {
            None => full,
            Some(seed) => {
                let h = splitmix64(seed ^ u64::from(attempt).wrapping_mul(0xA24B_AED4_963E_E407));
                // Top 53 bits as a dyadic fraction in [0, 1).
                let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
                full.mul_f64(0.5 + frac * 0.5)
            }
        }
    }

    /// Whether an I/O error is worth retrying. Interrupted reads,
    /// would-block and timeouts are transient; everything else —
    /// including corruption, which a deterministic re-read cannot fix —
    /// should fail fast.
    pub fn is_transient(e: &io::Error) -> bool {
        Self::is_transient_kind(e.kind())
    }

    /// [`RetryPolicy::is_transient`], on a bare [`io::ErrorKind`].
    pub fn is_transient_kind(kind: io::ErrorKind) -> bool {
        matches!(
            kind,
            io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(25),
            jitter_seed: None,
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(25));
        // A huge attempt index must not overflow the shift.
        assert_eq!(p.backoff(63), Duration::from_millis(25));
    }

    #[test]
    fn no_backoff_never_sleeps() {
        let p = RetryPolicy::no_backoff(3);
        assert_eq!(p.max_retries, 3);
        for attempt in 0..8 {
            assert_eq!(p.backoff(attempt), Duration::ZERO);
        }
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let base = RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(10),
            jitter_seed: None,
        };
        let jittered = base.with_jitter_seed(7);
        for attempt in 0..5 {
            let full = base.backoff(attempt);
            let j = jittered.backoff(attempt);
            // Deterministic: same (seed, attempt) → same delay.
            assert_eq!(j, jittered.backoff(attempt));
            // Bounded: within [full/2, full).
            assert!(j >= full / 2, "attempt {attempt}: {j:?} < {:?}", full / 2);
            assert!(j < full, "attempt {attempt}: {j:?} >= {full:?}");
        }
        // Different seeds scatter differently somewhere in the schedule.
        let other = base.with_jitter_seed(8);
        assert!((0..5).any(|a| jittered.backoff(a) != other.backoff(a)));
    }

    #[test]
    fn transient_kinds_are_the_retryable_trio() {
        for kind in [
            io::ErrorKind::Interrupted,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::TimedOut,
        ] {
            assert!(RetryPolicy::is_transient(&io::Error::new(kind, "x")));
        }
        for kind in [
            io::ErrorKind::NotFound,
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::InvalidData,
            io::ErrorKind::UnexpectedEof,
        ] {
            assert!(!RetryPolicy::is_transient(&io::Error::new(kind, "x")));
        }
    }
}

//! Internal utilities: fast hashing, bitsets, checksums and stateless
//! mixing.

pub mod bitset;
pub mod crc32;
pub mod fxhash;
pub mod splitmix;

pub use bitset::BitSet;
pub use crc32::crc32;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use splitmix::{seeded_hit, splitmix64};

//! Internal utilities: fast hashing, bitsets, checksums, CRC framing,
//! stateless mixing and retry backoff.

pub mod bitset;
pub mod crc32;
pub mod frame;
pub mod fxhash;
pub mod ranges;
pub mod retry;
pub mod splitmix;

pub use bitset::BitSet;
pub use crc32::crc32;
pub use frame::{append_frame, read_frame, Cursor};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ranges::balanced_ranges;
pub use retry::RetryPolicy;
pub use splitmix::{seeded_hit, splitmix64};

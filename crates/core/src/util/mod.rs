//! Internal utilities: fast hashing, bitsets and stateless mixing.

pub mod bitset;
pub mod fxhash;
pub mod splitmix;

pub use bitset::BitSet;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use splitmix::{seeded_hit, splitmix64};

//! Internal utilities: fast hashing and bitsets.

pub mod bitset;
pub mod fxhash;

pub use bitset::BitSet;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};

//! SplitMix64 — a tiny, high-quality 64-bit mixing function.
//!
//! Used wherever the workspace needs a *stateless* deterministic hash of a
//! counter or seed — most prominently the fault-injection harnesses
//! ([`crate::similarity::FaultySimilarity`], `rock_data::faults`), which must
//! derive reproducible fault schedules from `(seed, index)` pairs without
//! threading an `Rng` through every call site.

/// Mixes `x` through the SplitMix64 finalizer (Steele, Lea & Flood 2014).
///
/// The output is a bijection of the input with excellent avalanche
/// behaviour, so `splitmix64(seed ^ i)` over a counter `i` behaves like an
/// independent uniform `u64` stream per seed.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministically decides a Bernoulli(`rate`) trial for event `index` of
/// stream `(seed, stream)`.
///
/// The decision is a pure function of its arguments, so fault schedules are
/// reproducible across runs, platforms and resumptions.
pub fn seeded_hit(seed: u64, stream: u64, index: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let h = splitmix64(seed ^ stream.wrapping_mul(0xA24B_AED4_963E_E407) ^ index);
    // Compare the top 53 bits against the rate as a dyadic rational.
    ((h >> 11) as f64) < rate * (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Known vector from the reference implementation seeded with 0.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn hit_rate_extremes() {
        assert!(!seeded_hit(1, 2, 3, 0.0));
        assert!(seeded_hit(1, 2, 3, 1.0));
    }

    #[test]
    fn hit_rate_is_roughly_calibrated() {
        let hits = (0..10_000)
            .filter(|&i| seeded_hit(42, 7, i, 0.1))
            .count();
        assert!((800..1200).contains(&hits), "got {hits} hits at rate 0.1");
    }

    #[test]
    fn different_streams_decorrelate() {
        let a: Vec<bool> = (0..64).map(|i| seeded_hit(5, 0, i, 0.5)).collect();
        let b: Vec<bool> = (0..64).map(|i| seeded_hit(5, 1, i, 0.5)).collect();
        assert_ne!(a, b);
    }
}

//! Cost-balanced contiguous range splitting for sharded kernels.

use std::ops::Range;

/// Splits `0..n` into at most `threads` contiguous ranges of roughly
/// equal total `cost`. Never returns an empty range; returns fewer
/// ranges when `n < threads` or the cost mass is concentrated.
///
/// Every sharded kernel (sparse links, dense links, parallel neighbor
/// build) balances its shards with this function, each supplying its own
/// per-index cost: emitted-pair count for the sparse link kernel,
/// upper-triangle row length for the dense square and the neighbor
/// build. The split only affects which worker computes what — kernel
/// outputs are pinned bit-identical across arbitrary splits by
/// `tests/kernel_invariance.rs`.
pub fn balanced_ranges(
    n: usize,
    threads: usize,
    cost: impl Fn(usize) -> u64,
) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let total: u64 = (0..n).map(&cost).sum();
    let target = total / threads as u64 + 1;
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0;
    let mut acc = 0u64;
    for i in 0..n {
        acc += cost(i);
        let remaining_shards = threads - ranges.len();
        if acc >= target && remaining_shards > 1 && i + 1 < n {
            ranges.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
        if ranges.len() + 1 == threads {
            break;
        }
    }
    ranges.push(start..n);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_ranges_cover_everything() {
        for (n, threads) in [(10, 3), (1, 8), (100, 1), (7, 7), (5, 16)] {
            let ranges = balanced_ranges(n, threads, |i| (i as u64 % 5) + 1);
            assert!(ranges.len() <= threads);
            assert_eq!(ranges.first().map(|r| r.start), Some(0));
            assert_eq!(ranges.last().map(|r| r.end), Some(n));
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "gap or overlap");
            }
            assert!(ranges.iter().all(|r| !r.is_empty()));
        }
        assert!(balanced_ranges(0, 4, |_| 1).is_empty());
    }

    #[test]
    fn heavy_head_gets_its_own_shard() {
        // One index carries nearly all the mass: it should not drag the
        // whole prefix into a single shard.
        let ranges = balanced_ranges(8, 4, |i| if i == 0 { 1000 } else { 1 });
        assert_eq!(ranges.first(), Some(&(0..1)));
        assert_eq!(ranges.last().map(|r| r.end), Some(8));
    }

    #[test]
    fn zero_mass_collapses_to_one_range() {
        assert_eq!(balanced_ranges(5, 3, |_| 0), vec![0..5]);
    }
}

//! Fixed-width bitsets used by the dense link-computation path.
//!
//! §4.4 of the paper observes that the link matrix is `A × A` for the 0/1
//! neighbor-adjacency matrix `A`. Because `A` is boolean, the `(i, j)` entry
//! of the square is exactly the number of common neighbors, i.e.
//! `popcount(row_i & row_j)`. Packing rows into `u64` words turns the naive
//! O(n³) multiplication into O(n³ / 64) word operations, which is the dense
//! comparator the bench suite measures against the sparse Fig.-4 algorithm.

/// A fixed-capacity bitset backed by `u64` words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    nbits: usize,
}

impl BitSet {
    /// Creates an empty bitset able to hold `nbits` bits.
    pub fn new(nbits: usize) -> Self {
        BitSet {
            words: vec![0; nbits.div_ceil(64)],
            nbits,
        }
    }

    /// Number of bits this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= capacity()`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.nbits, "bit index {i} out of range {}", self.nbits);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= capacity()`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.nbits, "bit index {i} out of range {}", self.nbits);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Returns whether bit `i` is set.
    ///
    /// # Panics
    /// Panics if `i >= capacity()`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.nbits, "bit index {i} out of range {}", self.nbits);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of bits set in both `self` and `other`
    /// (the popcount of the intersection).
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.nbits, other.nbits, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let tz = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_contains_clear() {
        let mut b = BitSet::new(130);
        assert!(!b.contains(0));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.contains(0) && b.contains(63) && b.contains(64) && b.contains(129));
        assert_eq!(b.count_ones(), 4);
        b.clear(64);
        assert!(!b.contains(64));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn intersection_count_matches_manual() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        for i in (0..200).step_by(3) {
            a.set(i);
        }
        for i in (0..200).step_by(5) {
            b.set(i);
        }
        // Multiples of 15 in [0, 200): 0, 15, ..., 195 → 14 values.
        assert_eq!(a.intersection_count(&b), 14);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = BitSet::new(300);
        let idx = [0usize, 1, 63, 64, 65, 128, 255, 299];
        for &i in &idx {
            b.set(i);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, idx);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut b = BitSet::new(10);
        b.set(10);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn intersection_capacity_mismatch_panics() {
        let a = BitSet::new(10);
        let b = BitSet::new(11);
        let _ = a.intersection_count(&b);
    }
}

//! Shared CRC-32 frame codec for the workspace's durable binary formats.
//!
//! Both the merge WAL ([`crate::wal`]) and the fitted-model artifact
//! ([`crate::artifact`]) persist themselves as a magic prefix followed by
//! CRC-framed records:
//!
//! ```text
//! frame := type:u8  len:u32le  payload[len]  crc32:u32le
//! crc32 := CRC-32/IEEE over type ‖ len ‖ payload
//! ```
//!
//! This module is the single implementation of that frame (writer,
//! checked reader, bounds-checked payload cursor and the little-endian
//! `put_*` helpers); the formats differ only in their record vocabulary
//! and damage semantics (the WAL truncates torn tails, the artifact
//! rejects any damage outright).

use crate::util::crc32;

/// Appends one CRC-framed record to `buf`.
pub fn append_frame(buf: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    let mut head = Vec::with_capacity(5 + payload.len());
    head.push(kind);
    head.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    head.extend_from_slice(payload);
    let crc = crc32(&head);
    buf.extend_from_slice(&head);
    buf.extend_from_slice(&crc.to_le_bytes());
}

/// Reads and CRC-verifies the frame at `at`; returns
/// `(type, payload, offset past the frame)` or `None` if the frame is
/// incomplete or fails its checksum.
pub fn read_frame(bytes: &[u8], at: usize) -> Option<(u8, &[u8], usize)> {
    // Every access below is `get`-checked: this function parses bytes
    // straight off disk, so no index may assume anything about them —
    // and `checked_add` keeps a hostile `at`/`len` from overflowing.
    let kind = *bytes.get(at)?;
    let header_end = at.checked_add(5)?;
    let len_bytes: [u8; 4] = bytes.get(at + 1..header_end)?.try_into().ok()?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    let payload_end = header_end.checked_add(len)?;
    let frame_end = payload_end.checked_add(4)?;
    let crc_bytes: [u8; 4] = bytes.get(payload_end..frame_end)?.try_into().ok()?;
    let stored = u32::from_le_bytes(crc_bytes);
    if crc32(bytes.get(at..payload_end)?) != stored {
        return None;
    }
    Some((kind, bytes.get(header_end..payload_end)?, frame_end))
}

/// A forward-only, bounds-checked byte reader for record payloads.
///
/// Every accessor returns `None` past the end (or when a length prefix
/// promises more items than bytes remain), so a damaged payload can never
/// index out of bounds or over-allocate.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    /// Takes the next `n` bytes, if present.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).and_then(|s| s.first().copied())
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let bytes: [u8; 4] = self.take(4)?.try_into().ok()?;
        Some(u32::from_le_bytes(bytes))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let bytes: [u8; 8] = self.take(8)?.try_into().ok()?;
        Some(u64::from_le_bytes(bytes))
    }

    /// Reads an `f64` persisted as exact bits (see [`put_f64`]).
    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Reads a `u32`-counted `u32` list (see [`put_u32_slice`]).
    pub fn u32_vec(&mut self) -> Option<Vec<u32>> {
        let n = self.u32()? as usize;
        // A length prefix can never promise more items than bytes remain.
        if n > (self.bytes.len() - self.at) / 4 {
            return None;
        }
        (0..n).map(|_| self.u32()).collect()
    }

    /// Reads a `u32`-length-prefixed UTF-8 string (see [`put_str`]).
    pub fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// Bytes remaining past the cursor.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    /// Whether the payload was consumed exactly.
    pub fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

/// Appends a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its exact bit pattern (round-trips NaN payloads
/// and signed zeros — bit-identity is the repo's core guarantee).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Appends a `u32` count followed by each element (see
/// [`Cursor::u32_vec`]).
pub fn put_u32_slice(buf: &mut Vec<u8>, vs: &[u32]) {
    put_u32(buf, vs.len() as u32);
    for &v in vs {
        put_u32(buf, v);
    }
}

/// Appends a `u32`-length-prefixed UTF-8 string (see [`Cursor::str`]).
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        append_frame(&mut buf, 7, b"payload");
        append_frame(&mut buf, 9, b"");
        let (kind, payload, next) = read_frame(&buf, 0).unwrap();
        assert_eq!((kind, payload), (7, &b"payload"[..]));
        let (kind2, payload2, end) = read_frame(&buf, next).unwrap();
        assert_eq!((kind2, payload2), (9, &b""[..]));
        assert_eq!(end, buf.len());
    }

    #[test]
    fn any_single_byte_flip_is_detected() {
        let mut buf = Vec::new();
        append_frame(&mut buf, 3, b"abcdef");
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x55;
            // A flipped length field may make the frame "incomplete";
            // any other flip fails the CRC. Either way: None.
            assert!(read_frame(&bad, 0).is_none(), "flip at {i} undetected");
        }
    }

    #[test]
    fn any_truncation_is_detected() {
        let mut buf = Vec::new();
        append_frame(&mut buf, 3, b"abcdef");
        for cut in 0..buf.len() {
            assert!(read_frame(&buf[..cut], 0).is_none(), "cut at {cut} undetected");
        }
    }

    #[test]
    fn cursor_reads_and_bounds() {
        let mut p = Vec::new();
        put_u32(&mut p, 17);
        put_u64(&mut p, u64::MAX);
        put_f64(&mut p, -0.0);
        put_u32_slice(&mut p, &[1, 2, 3]);
        put_str(&mut p, "rock");
        let mut c = Cursor::new(&p);
        assert_eq!(c.u32(), Some(17));
        assert_eq!(c.u64(), Some(u64::MAX));
        assert_eq!(c.f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(c.u32_vec(), Some(vec![1, 2, 3]));
        assert_eq!(c.str().as_deref(), Some("rock"));
        assert!(c.done());
        assert_eq!(c.u8(), None);
    }

    #[test]
    fn lying_length_prefixes_fail_cleanly() {
        let mut p = Vec::new();
        put_u32(&mut p, u32::MAX); // promises 4 billion items
        assert_eq!(Cursor::new(&p).u32_vec(), None);
        let mut q = Vec::new();
        put_u32(&mut q, 100); // promises 100 string bytes, has none
        assert_eq!(Cursor::new(&q).str(), None);
    }

    #[test]
    fn non_utf8_string_is_none() {
        let mut p = Vec::new();
        put_u32(&mut p, 2);
        p.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(Cursor::new(&p).str(), None);
    }
}

//! A small Fx-style hasher for hot integer-keyed maps.
//!
//! Link computation (Fig. 4 of the paper) increments counters keyed by
//! `(u32, u32)` point-id pairs billions of times on large samples, and the
//! merge loop keeps a per-cluster `HashMap<ClusterId, u64>` of cross-link
//! counts. `std`'s default SipHash 1-3 is DoS-resistant but needlessly slow
//! for short, trusted integer keys, so we use the multiply-and-rotate scheme
//! popularised by Firefox and rustc ("FxHash"). Implementing it in-tree
//! (~30 lines) keeps the dependency set to the sanctioned crates.
//!
//! The ablation bench `bench/benches/links.rs` compares this hasher against
//! `std`'s default on the link-table workload.

use std::hash::{BuildHasher, Hasher};

/// Multiplicative constant from the Fx hash (64-bit golden-ratio based).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for short integer-like keys.
///
/// Not DoS-resistant: only use for keys that are not attacker-controlled
/// (point ids, cluster ids, item ids).
#[derive(Default, Clone, Copy, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path: fold 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // tidy-allow(panic): chunks_exact(8) yields exactly 8-byte slices; the conversion is infallible
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`], carrying an optional seed.
///
/// The seed perturbs the initial hasher state, which scrambles bucket
/// assignment — and therefore iteration order — of every map built from
/// it. Output must not depend on that order: the engine's results are
/// asserted bit-identical across seeds by the hasher-independence
/// property test (`tests/hasher_independence.rs`), and rock-tidy's
/// `nondeterministic-iter` rule polices new iteration sites statically.
/// `Default` is seed 0, which reproduces the classic unseeded FxHash.
#[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
pub struct FxBuildHasher {
    seed: u64,
}

impl FxBuildHasher {
    /// A build-hasher whose hashers start from `seed` instead of 0.
    pub const fn with_seed(seed: u64) -> Self {
        FxBuildHasher { seed }
    }

    /// The seed this build-hasher perturbs its hashers with.
    pub const fn seed(&self) -> u64 {
        self.seed
    }
}

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher { hash: self.seed }
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i + 1), u64::from(i) * 3);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m[&(i, i + 1)], u64::from(i) * 3);
        }
    }

    #[test]
    fn distinct_keys_distinct_hashes_mostly() {
        // Sanity: over small dense integer keys the hash should not collapse.
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(b.hash_one(i));
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn seed_changes_hashes_but_not_lookups() {
        use std::hash::BuildHasher;
        let a = FxBuildHasher::default();
        let b = FxBuildHasher::with_seed(0x9e37_79b9_7f4a_7c15);
        // The seed must actually perturb hash values…
        assert!((0..64u64).any(|i| a.hash_one(i) != b.hash_one(i)));
        // …while seeded maps still behave as maps.
        let mut m = std::collections::HashMap::with_hasher(b);
        for i in 0..1000u32 {
            m.insert(i, i * 7);
        }
        for i in 0..1000u32 {
            assert_eq!(m[&i], i * 7);
        }
    }

    #[test]
    fn byte_stream_path_consistent() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let h1 = b.hash_one("hello world, categorical clustering");
        let h2 = b.hash_one("hello world, categorical clustering");
        assert_eq!(h1, h2);
    }
}

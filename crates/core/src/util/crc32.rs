//! CRC-32 (IEEE 802.3 polynomial) for framing the merge write-ahead log.
//!
//! A torn tail — the classic crash failure mode of an append-only log —
//! must be *detected*, not interpreted. Every WAL frame therefore carries
//! a CRC over its header and payload; [`crate::wal`] truncates the log at
//! the first frame whose checksum fails. The implementation is the plain
//! reflected table-driven CRC-32 (polynomial `0xEDB88320`), built at
//! compile time so the hot loop is one table lookup per byte.

/// The reflected CRC-32 lookup table for polynomial `0xEDB88320`.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE, as used by zlib/PNG/Ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_any_flip() {
        let base = crc32(b"merge record payload");
        let mut bytes = b"merge record payload".to_vec();
        for i in 0..bytes.len() {
            bytes[i] ^= 0x01;
            assert_ne!(crc32(&bytes), base, "flip at byte {i} went undetected");
            bytes[i] ^= 0x01;
        }
    }
}

//! The merge goodness measure (§4.2) and the neighbor-exponent function
//! f(θ) (§3.3).
//!
//! ROCK merges, at every step, the pair of clusters maximising
//!
//! ```text
//!                         link[Cᵢ, Cⱼ]
//! g(Cᵢ, Cⱼ) = ─────────────────────────────────────────
//!             (nᵢ+nⱼ)^(1+2f(θ)) − nᵢ^(1+2f(θ)) − nⱼ^(1+2f(θ))
//! ```
//!
//! The denominator is the *expected* number of cross links under the
//! heuristic that each point of a cluster of size `n` has about `n^{f(θ)}`
//! neighbors inside it; dividing by it stops large clusters (which always
//! have many raw cross links) from swallowing everything.

/// Estimate of the exponent f(θ) such that a point in cluster `Cᵢ` has
/// about `nᵢ^{f(θ)}` neighbors within the cluster (§3.3).
///
/// The paper stresses that an "inaccurate but reasonable" estimate works
/// well because every cluster is normalised the same way.
pub trait FTheta {
    /// The exponent for similarity threshold `theta ∈ [0, 1]`.
    fn f(&self, theta: f64) -> f64;
}

impl<T: FTheta + ?Sized> FTheta for &T {
    fn f(&self, theta: f64) -> f64 {
        (**self).f(theta)
    }
}

/// The paper's market-basket estimate `f(θ) = (1−θ)/(1+θ)` (§3.3),
/// derived for transactions of roughly uniform size uniformly spread over
/// a cluster's items. At θ = 1 every point's only neighbor is itself
/// (f = 0); at θ = 0 every point neighbors every other point (f = 1).
///
/// This is the default and is used for all of the paper's experiments
/// (§5: "we used ... f(θ) = (1−θ)/(1+θ)").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BasketF;

impl FTheta for BasketF {
    fn f(&self, theta: f64) -> f64 {
        (1.0 - theta) / (1.0 + theta)
    }
}

/// A constant, data-set-supplied exponent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConstantF(pub f64);

impl FTheta for ConstantF {
    fn f(&self, _theta: f64) -> f64 {
        self.0
    }
}

/// Which numerator/denominator the merge criterion uses — the ablation
/// §4.2 motivates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GoodnessKind {
    /// The paper's measure: cross links divided by their expectation.
    #[default]
    Normalized,
    /// The naive measure the paper argues against: raw cross-link count.
    /// Kept for the ablation bench; large clusters swallow small ones.
    RawLinks,
}

/// Precomputed parameters of the goodness measure for a fixed θ and f.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Goodness {
    /// The exponent `1 + 2·f(θ)`.
    exponent: f64,
    kind: GoodnessKind,
}

impl Goodness {
    /// Builds the measure for threshold `theta` with estimate `f`.
    ///
    /// # Panics
    /// Panics if `theta ∉ [0, 1]` or `f(θ)` is not finite and non-negative.
    pub fn new<F: FTheta>(theta: f64, f: F, kind: GoodnessKind) -> Self {
        assert!(
            (0.0..=1.0).contains(&theta),
            "theta must be in [0, 1], got {theta}"
        );
        let ftheta = f.f(theta);
        assert!(
            ftheta.is_finite() && ftheta >= 0.0,
            "f(theta) must be finite and non-negative, got {ftheta}"
        );
        Goodness {
            exponent: 1.0 + 2.0 * ftheta,
            kind,
        }
    }

    /// The exponent `1 + 2·f(θ)` used in the expected-link counts.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The configured numerator/denominator variant.
    pub fn kind(&self) -> GoodnessKind {
        self.kind
    }

    /// Expected number of links between pairs of points *within* one
    /// cluster of size `n`: `n^{1+2f(θ)}` (§3.3).
    #[inline]
    pub fn expected_within(&self, n: usize) -> f64 {
        (n as f64).powf(self.exponent)
    }

    /// Expected number of *cross* links created by merging clusters of
    /// sizes `n1` and `n2` (the denominator of g).
    #[inline]
    pub fn expected_cross(&self, n1: usize, n2: usize) -> f64 {
        self.expected_within(n1 + n2) - self.expected_within(n1) - self.expected_within(n2)
    }

    /// The goodness `g(Cᵢ, Cⱼ)` of merging clusters of sizes `n1`, `n2`
    /// with `links` cross links.
    ///
    /// Always finite; with zero cross links the goodness is 0.
    #[inline]
    pub fn merge_goodness(&self, links: u64, n1: usize, n2: usize) -> f64 {
        match self.kind {
            GoodnessKind::Normalized => {
                if links == 0 {
                    0.0
                } else {
                    links as f64 / self.expected_cross(n1, n2)
                }
            }
            GoodnessKind::RawLinks => links as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basket_f_endpoints() {
        assert_eq!(BasketF.f(1.0), 0.0);
        assert_eq!(BasketF.f(0.0), 1.0);
        assert!((BasketF.f(0.5) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn exponent_at_half_theta() {
        // θ = 0.5 → f = 1/3 → exponent 5/3 (§4.4 uses this to argue
        // m_a ≈ n^{1/3}).
        let g = Goodness::new(0.5, BasketF, GoodnessKind::Normalized);
        assert!((g.exponent() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn expected_cross_is_positive_and_monotone() {
        let g = Goodness::new(0.5, BasketF, GoodnessKind::Normalized);
        let mut prev = 0.0;
        for n in 1..50 {
            let e = g.expected_cross(n, n);
            assert!(e > prev, "expected cross links grow with cluster size");
            prev = e;
        }
    }

    #[test]
    fn normalization_penalises_large_clusters() {
        // Equal cross links: merging two small clusters must look better
        // than merging two large ones (§4.2's anti-swallowing argument).
        let g = Goodness::new(0.5, BasketF, GoodnessKind::Normalized);
        let small = g.merge_goodness(10, 3, 3);
        let large = g.merge_goodness(10, 300, 300);
        assert!(small > large);
    }

    #[test]
    fn raw_kind_ignores_sizes() {
        let g = Goodness::new(0.5, BasketF, GoodnessKind::RawLinks);
        assert_eq!(g.merge_goodness(10, 3, 3), 10.0);
        assert_eq!(g.merge_goodness(10, 300, 300), 10.0);
    }

    #[test]
    fn zero_links_zero_goodness() {
        for kind in [GoodnessKind::Normalized, GoodnessKind::RawLinks] {
            let g = Goodness::new(0.8, BasketF, kind);
            assert_eq!(g.merge_goodness(0, 5, 7), 0.0);
        }
    }

    #[test]
    fn theta_one_singletons() {
        // f = 0 → exponent 1 → expected cross links (n1+n2) − n1 − n2 = 0;
        // goodness must stay finite (we define 0/0 = 0 via the links == 0
        // branch, and links > 0 with zero expectation → +inf would mean the
        // estimate is inconsistent; exercise the defined branch only).
        let g = Goodness::new(1.0, BasketF, GoodnessKind::Normalized);
        assert_eq!(g.merge_goodness(0, 1, 1), 0.0);
    }

    #[test]
    fn constant_f_passthrough() {
        let g = Goodness::new(0.3, ConstantF(0.25), GoodnessKind::Normalized);
        assert!((g.exponent() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "theta must be in [0, 1]")]
    fn invalid_theta_panics() {
        let _ = Goodness::new(-0.1, BasketF, GoodnessKind::Normalized);
    }
}

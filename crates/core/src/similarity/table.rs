//! Expert-provided similarity tables (§1.2).
//!
//! ROCK "naturally extends to non-metric similarity measures that are
//! relevant in situations where a domain expert/similarity table is the
//! only source of knowledge". [`SimilarityMatrix`] is that table: an
//! explicit symmetric n×n matrix of similarities, stored as the lower
//! triangle.

use super::PairwiseSimilarity;

/// A symmetric matrix of pairwise similarities in `[0, 1]`.
///
/// Stored as the strict lower triangle plus an implicit unit diagonal,
/// i.e. `n·(n−1)/2` entries.
///
/// # Examples
/// ```
/// use rock_core::similarity::{PairwiseSimilarity, SimilarityMatrix};
///
/// let mut m = SimilarityMatrix::new(3);
/// m.set(0, 1, 0.8);
/// m.set(1, 2, 0.3);
/// assert_eq!(m.sim(1, 0), 0.8);
/// assert_eq!(m.sim(0, 2), 0.0);
/// assert_eq!(m.sim(2, 2), 1.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SimilarityMatrix {
    n: usize,
    /// Row-major strict lower triangle: entry (i, j) with i > j lives at
    /// `i·(i−1)/2 + j`.
    tri: Vec<f64>,
}

impl SimilarityMatrix {
    /// Creates an n×n table with all off-diagonal similarities 0.
    pub fn new(n: usize) -> Self {
        SimilarityMatrix {
            n,
            tri: vec![0.0; n * n.saturating_sub(1) / 2],
        }
    }

    /// Builds the table by evaluating `f(i, j)` for every pair `i > j`.
    ///
    /// # Panics
    /// Panics if `f` returns a value outside `[0, 1]`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(n: usize, mut f: F) -> Self {
        let mut m = SimilarityMatrix::new(n);
        for i in 1..n {
            for j in 0..i {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i > j);
        i * (i - 1) / 2 + j
    }

    /// Sets the similarity of the (unordered) pair `{i, j}`.
    ///
    /// # Panics
    /// Panics if `i == j`, if either index is out of range, or if `value`
    /// is outside `[0, 1]`.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "index out of range");
        assert!(i != j, "the diagonal is fixed at 1");
        assert!(
            (0.0..=1.0).contains(&value),
            "similarity must be in [0, 1], got {value}"
        );
        let (i, j) = if i > j { (i, j) } else { (j, i) };
        let idx = self.index(i, j);
        self.tri[idx] = value;
    }
}

impl PairwiseSimilarity for SimilarityMatrix {
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn sim(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of range");
        match i.cmp(&j) {
            std::cmp::Ordering::Equal => 1.0,
            std::cmp::Ordering::Greater => self.tri[self.index(i, j)],
            std::cmp::Ordering::Less => self.tri[self.index(j, i)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_symmetric() {
        let mut m = SimilarityMatrix::new(4);
        m.set(2, 0, 0.25);
        m.set(1, 3, 0.75);
        assert_eq!(m.sim(0, 2), 0.25);
        assert_eq!(m.sim(2, 0), 0.25);
        assert_eq!(m.sim(3, 1), 0.75);
        assert_eq!(m.sim(1, 3), 0.75);
    }

    #[test]
    fn diagonal_is_one() {
        let m = SimilarityMatrix::new(3);
        for i in 0..3 {
            assert_eq!(m.sim(i, i), 1.0);
        }
    }

    #[test]
    fn from_fn_fills_all_pairs() {
        let m = SimilarityMatrix::from_fn(5, |i, j| (i + j) as f64 / 10.0);
        for i in 0..5 {
            for j in 0..5 {
                if i != j {
                    assert_eq!(m.sim(i, j), (i + j) as f64 / 10.0);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn out_of_range_value_panics() {
        let mut m = SimilarityMatrix::new(2);
        m.set(0, 1, 1.5);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn setting_diagonal_panics() {
        let mut m = SimilarityMatrix::new(2);
        m.set(1, 1, 0.5);
    }
}

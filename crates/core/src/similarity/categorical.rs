//! Jaccard similarity over categorical records with missing values
//! (§3.1.2).

use super::Similarity;
use crate::points::CategoricalRecord;

/// How missing attribute values participate in the similarity (§3.1.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MissingPolicy {
    /// The paper's default: a record maps to the transaction of its
    /// non-missing `A.v` items; a missing attribute simply contributes no
    /// item to either the intersection or that record's side of the union.
    #[default]
    Ignore,
    /// The paper's time-series refinement: for each *pair* of records, only
    /// attributes with values present in **both** records are considered.
    /// Two records identical on their common attributes are maximally
    /// similar even if one has many missing values (e.g. a young mutual
    /// fund with no prices before its launch date).
    CommonAttributes,
}

/// Jaccard similarity between categorical records (§3.1.2).
///
/// Conceptually each record is the transaction `{A.v : value of A is v}`;
/// the similarity is the Jaccard coefficient of the two induced
/// transactions. Under [`MissingPolicy::CommonAttributes`] the induced
/// transactions are restricted, per pair, to the attributes observed in
/// both records.
///
/// Implemented directly on the records (one linear pass over the attribute
/// arrays) rather than by materialising transactions, since the transaction
/// view of a record is pair-dependent under `CommonAttributes`.
///
/// # Examples
/// ```
/// use rock_core::points::CategoricalRecord;
/// use rock_core::similarity::{CategoricalJaccard, MissingPolicy, Similarity};
///
/// let a = CategoricalRecord::new(vec![Some(0), Some(1), None]);
/// let b = CategoricalRecord::new(vec![Some(0), Some(2), Some(1)]);
///
/// // Ignore-missing: items {A0.0, A1.1} vs {A0.0, A1.2, A2.1} → 1/4.
/// let ignore = CategoricalJaccard::new(MissingPolicy::Ignore);
/// assert_eq!(ignore.similarity(&a, &b), 0.25);
///
/// // Common-attributes: only A0 and A1 are present in both → 1/3.
/// let common = CategoricalJaccard::new(MissingPolicy::CommonAttributes);
/// assert!((common.similarity(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CategoricalJaccard {
    policy: MissingPolicy,
}

impl CategoricalJaccard {
    /// Creates the measure with the given missing-value policy.
    pub fn new(policy: MissingPolicy) -> Self {
        CategoricalJaccard { policy }
    }

    /// The configured missing-value policy.
    pub fn policy(&self) -> MissingPolicy {
        self.policy
    }
}

impl Similarity<CategoricalRecord> for CategoricalJaccard {
    fn similarity(&self, a: &CategoricalRecord, b: &CategoricalRecord) -> f64 {
        assert_eq!(
            a.arity(),
            b.arity(),
            "records must share a schema (same arity)"
        );
        let mut matches = 0usize; // attributes where both present and equal
        let mut both = 0usize; // attributes where both present
        let mut present_a = 0usize;
        let mut present_b = 0usize;
        for (va, vb) in a.values().iter().zip(b.values()) {
            if va.is_some() {
                present_a += 1;
            }
            if vb.is_some() {
                present_b += 1;
            }
            if let (Some(x), Some(y)) = (va, vb) {
                both += 1;
                if x == y {
                    matches += 1;
                }
            }
        }
        let (inter, union) = match self.policy {
            // |T_a ∩ T_b| = matches; |T_a ∪ T_b| = present_a + present_b − matches.
            MissingPolicy::Ignore => (matches, present_a + present_b - matches),
            // Restricted to common attributes: each contributes one item per
            // record; matching attributes contribute the same item.
            MissingPolicy::CommonAttributes => (matches, 2 * both - matches),
        };
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::{CategoricalSchema, Transaction};

    fn rec(vals: &[Option<u32>]) -> CategoricalRecord {
        CategoricalRecord::new(vals.to_vec())
    }

    #[test]
    fn complete_records_match_transaction_jaccard() {
        // With no missing values the two policies coincide and must equal
        // Jaccard on the schema-induced transactions.
        let schema = CategoricalSchema::from_attributes(&[
            ("a", vec!["x", "y", "z"]),
            ("b", vec!["x", "y"]),
            ("c", vec!["p", "q", "r", "s"]),
        ]);
        let r1 = CategoricalRecord::complete(vec![0, 1, 3]);
        let r2 = CategoricalRecord::complete(vec![0, 0, 3]);
        let t1: Transaction = schema.to_transaction(&r1);
        let t2: Transaction = schema.to_transaction(&r2);
        let expected = t1.jaccard(&t2);
        for policy in [MissingPolicy::Ignore, MissingPolicy::CommonAttributes] {
            let got = CategoricalJaccard::new(policy).similarity(&r1, &r2);
            assert!((got - expected).abs() < 1e-12, "{policy:?}");
        }
    }

    #[test]
    fn common_attributes_ignores_one_sided_missing() {
        // Identical on common attributes → similarity 1 under the
        // time-series policy, regardless of missing values (young funds).
        let old_fund = rec(&[Some(1), Some(0), Some(2), Some(1)]);
        let young_fund = rec(&[None, None, Some(2), Some(1)]);
        let common = CategoricalJaccard::new(MissingPolicy::CommonAttributes);
        assert_eq!(common.similarity(&old_fund, &young_fund), 1.0);
        // The default policy penalises the missing prefix instead.
        let ignore = CategoricalJaccard::new(MissingPolicy::Ignore);
        assert_eq!(ignore.similarity(&old_fund, &young_fund), 0.5);
    }

    #[test]
    fn no_overlap_in_presence_is_zero() {
        let a = rec(&[Some(0), None]);
        let b = rec(&[None, Some(1)]);
        for policy in [MissingPolicy::Ignore, MissingPolicy::CommonAttributes] {
            assert_eq!(CategoricalJaccard::new(policy).similarity(&a, &b), 0.0);
        }
    }

    #[test]
    fn all_missing_is_zero() {
        let a = rec(&[None, None]);
        for policy in [MissingPolicy::Ignore, MissingPolicy::CommonAttributes] {
            assert_eq!(CategoricalJaccard::new(policy).similarity(&a, &a), 0.0);
        }
    }

    #[test]
    fn symmetry() {
        let a = rec(&[Some(0), Some(1), None, Some(2)]);
        let b = rec(&[Some(0), None, Some(3), Some(1)]);
        for policy in [MissingPolicy::Ignore, MissingPolicy::CommonAttributes] {
            let m = CategoricalJaccard::new(policy);
            assert_eq!(m.similarity(&a, &b), m.similarity(&b, &a));
        }
    }

    #[test]
    #[should_panic(expected = "same arity")]
    fn arity_mismatch_panics() {
        let a = rec(&[Some(0)]);
        let b = rec(&[Some(0), Some(1)]);
        let _ = CategoricalJaccard::default().similarity(&a, &b);
    }
}

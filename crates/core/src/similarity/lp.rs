//! Metric-space similarities derived from Lp distances (§1.2, §3.1).
//!
//! ROCK's neighbor definition only needs a normalized similarity; for
//! numeric data the paper mentions L₁/L₂ distances as possible bases. These
//! adapters convert a distance into `[0, 1]` via a caller-provided scale.

use super::Similarity;

/// Similarity `max(0, 1 − Lp(a, b) / scale)` over numeric vectors.
///
/// `scale` should be an upper bound on distances that should still count as
/// "somewhat similar" — e.g. the diameter of the data's bounding box. Any
/// pair at distance ≥ `scale` has similarity 0.
///
/// `p = f64::INFINITY` selects the L∞ (Chebyshev) distance.
///
/// # Examples
/// ```
/// use rock_core::similarity::{NormalizedLp, Similarity};
/// let sim = NormalizedLp::new(2.0, 10.0);
/// let a = [0.0, 0.0];
/// let b = [3.0, 4.0]; // L2 distance 5
/// assert_eq!(sim.similarity(&a[..], &b[..]), 0.5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NormalizedLp {
    p: f64,
    scale: f64,
}

impl NormalizedLp {
    /// Creates the measure for exponent `p ≥ 1` and distance scale
    /// `scale > 0`.
    ///
    /// # Panics
    /// Panics if `p < 1` or `scale` is not strictly positive and finite.
    pub fn new(p: f64, scale: f64) -> Self {
        assert!(p >= 1.0, "Lp requires p >= 1, got {p}");
        assert!(
            scale > 0.0 && scale.is_finite(),
            "scale must be positive and finite, got {scale}"
        );
        NormalizedLp { p, scale }
    }

    /// The raw Lp distance between `a` and `b`.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        if self.p.is_infinite() {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max)
        } else if self.p == 1.0 {
            a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
        } else if self.p == 2.0 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        } else {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs().powf(self.p))
                .sum::<f64>()
                .powf(1.0 / self.p)
        }
    }
}

impl Similarity<[f64]> for NormalizedLp {
    fn similarity(&self, a: &[f64], b: &[f64]) -> f64 {
        (1.0 - self.distance(a, b) / self.scale).max(0.0)
    }
}

impl Similarity<Vec<f64>> for NormalizedLp {
    fn similarity(&self, a: &Vec<f64>, b: &Vec<f64>) -> f64 {
        self.similarity(a.as_slice(), b.as_slice())
    }
}

/// Simple-matching similarity over equal-length symbol sequences: the
/// fraction of positions with equal values (1 − normalized Hamming
/// distance).
///
/// A reasonable measure for fixed-arity categorical data without missing
/// values; used by tests as an alternative to
/// [`CategoricalJaccard`](super::CategoricalJaccard).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Hamming;

impl<T: PartialEq> Similarity<[T]> for Hamming {
    fn similarity(&self, a: &[T], b: &[T]) -> f64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        if a.is_empty() {
            return 0.0;
        }
        let matches = a.iter().zip(b).filter(|(x, y)| x == y).count();
        matches as f64 / a.len() as f64
    }
}

impl<T: PartialEq> Similarity<Vec<T>> for Hamming {
    fn similarity(&self, a: &Vec<T>, b: &Vec<T>) -> f64 {
        self.similarity(a.as_slice(), b.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_l2_linf_distances() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 0.0, 3.0];
        assert_eq!(NormalizedLp::new(1.0, 10.0).distance(&a, &b), 3.0);
        assert!((NormalizedLp::new(2.0, 10.0).distance(&a, &b) - 5f64.sqrt()).abs() < 1e-12);
        assert_eq!(
            NormalizedLp::new(f64::INFINITY, 10.0).distance(&a, &b),
            2.0
        );
    }

    #[test]
    fn general_p_matches_formula() {
        let a = [0.0, 0.0];
        let b = [1.0, 1.0];
        let d3 = NormalizedLp::new(3.0, 10.0).distance(&a, &b);
        assert!((d3 - 2f64.powf(1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn similarity_clamped_to_zero() {
        let sim = NormalizedLp::new(2.0, 1.0);
        let a = [0.0];
        let b = [5.0];
        assert_eq!(sim.similarity(&a[..], &b[..]), 0.0);
    }

    #[test]
    fn identical_points_have_similarity_one() {
        let sim = NormalizedLp::new(2.0, 3.0);
        let a = [0.5, -1.0, 2.0];
        assert_eq!(sim.similarity(&a[..], &a[..]), 1.0);
    }

    #[test]
    #[should_panic(expected = "p >= 1")]
    fn p_below_one_panics() {
        let _ = NormalizedLp::new(0.5, 1.0);
    }

    #[test]
    fn hamming_fraction_of_matches() {
        let a = vec![1u8, 2, 3, 4];
        let b = vec![1u8, 0, 3, 0];
        assert_eq!(Hamming.similarity(&a, &b), 0.5);
        assert_eq!(Hamming.similarity(&a, &a), 1.0);
        let e: Vec<u8> = vec![];
        assert_eq!(Hamming.similarity(&e, &e), 0.0);
    }
}

//! Non-finite detection at the clustering API boundary.
//!
//! A user-supplied [`Similarity`] that returns NaN is dangerous in two
//! different ways: `NaN >= θ` is `false`, so the point pair is *silently*
//! dropped from the neighbor graph, and a NaN that leaks further (e.g.
//! through a custom goodness) trips the `assert!(!priority.is_nan())` in
//! the merge heap mid-run. [`CheckedSimilarity`] wraps any measure and
//! latches the first non-finite value it observes, so driver entry points
//! ([`crate::rock::Rock::try_cluster`] and friends) can surface a typed
//! [`RockError::NonFiniteSimilarity`] instead of mis-clustering or
//! panicking.

use super::{PairwiseSimilarity, Similarity};
use crate::error::RockError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Wraps a similarity measure and records the first non-finite value it
/// returns.
///
/// The wrapper is transparent on the happy path — finite values pass
/// through with a single branch and no atomic traffic — and is `Sync`, so
/// it works unchanged under the parallel neighbor/labeling builders. Query
/// [`CheckedSimilarity::error`] *after* the wrapped computation completes
/// (worker threads joined); the latch is then guaranteed visible.
#[derive(Debug)]
pub struct CheckedSimilarity<S> {
    inner: S,
    seen: AtomicBool,
    bits: AtomicU64,
}

impl<S> CheckedSimilarity<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        CheckedSimilarity {
            inner,
            seen: AtomicBool::new(false),
            bits: AtomicU64::new(f64::NAN.to_bits()),
        }
    }

    /// The wrapped measure.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the measure.
    pub fn into_inner(self) -> S {
        self.inner
    }

    #[inline]
    fn observe(&self, v: f64) -> f64 {
        if !v.is_finite() {
            // First writer wins; later non-finite values only re-arm the
            // (already set) latch.
            if !self.seen.swap(true, Ordering::AcqRel) {
                self.bits.store(v.to_bits(), Ordering::Release);
            }
        }
        v
    }

    /// The typed error for the first non-finite value seen, if any.
    pub fn error(&self) -> Option<RockError> {
        self.seen.load(Ordering::Acquire).then(|| RockError::NonFiniteSimilarity {
            value: f64::from_bits(self.bits.load(Ordering::Acquire)),
        })
    }

    /// Like [`CheckedSimilarity::error`], but clears the latch so the
    /// wrapper can be reused record-by-record (streaming quarantine).
    pub fn take_error(&self) -> Option<RockError> {
        self.seen
            .swap(false, Ordering::AcqRel)
            .then(|| RockError::NonFiniteSimilarity {
                value: f64::from_bits(self.bits.load(Ordering::Acquire)),
            })
    }
}

impl<P, S: Similarity<P>> Similarity<P> for CheckedSimilarity<S> {
    #[inline]
    fn similarity(&self, a: &P, b: &P) -> f64 {
        self.observe(self.inner.similarity(a, b))
    }
}

impl<S: PairwiseSimilarity> PairwiseSimilarity for CheckedSimilarity<S> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    #[inline]
    fn sim(&self, i: usize, j: usize) -> f64 {
        self.observe(self.inner.sim(i, j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::Transaction;
    use crate::similarity::Jaccard;

    struct NanAt(usize, std::sync::atomic::AtomicUsize);

    impl Similarity<Transaction> for NanAt {
        fn similarity(&self, a: &Transaction, b: &Transaction) -> f64 {
            let i = self.1.fetch_add(1, Ordering::Relaxed);
            if i == self.0 {
                f64::NAN
            } else {
                Jaccard.similarity(a, b)
            }
        }
    }

    #[test]
    fn finite_values_pass_through_untouched() {
        let c = CheckedSimilarity::new(Jaccard);
        let a = Transaction::from([1, 2]);
        let b = Transaction::from([2, 3]);
        assert!((c.similarity(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.error(), None);
        assert_eq!(c.take_error(), None);
    }

    #[test]
    fn latches_first_non_finite_value() {
        let c = CheckedSimilarity::new(NanAt(1, Default::default()));
        let a = Transaction::from([1, 2]);
        let _ = c.similarity(&a, &a); // finite
        let _ = c.similarity(&a, &a); // NaN
        let _ = c.similarity(&a, &a); // finite again; latch stays set
        match c.error() {
            Some(RockError::NonFiniteSimilarity { value }) => assert!(value.is_nan()),
            other => panic!("expected NonFiniteSimilarity, got {other:?}"),
        }
    }

    #[test]
    fn take_error_clears_the_latch() {
        let c = CheckedSimilarity::new(NanAt(0, Default::default()));
        let a = Transaction::from([1]);
        let _ = c.similarity(&a, &a); // NaN
        assert!(c.take_error().is_some());
        assert_eq!(c.take_error(), None);
        assert_eq!(c.error(), None);
    }

    /// A pairwise source with one non-finite entry (an expert table built
    /// from a buggy formula; [`SimilarityMatrix`] itself rejects these).
    struct InfAt01;

    impl PairwiseSimilarity for InfAt01 {
        fn len(&self) -> usize {
            3
        }

        fn sim(&self, i: usize, j: usize) -> f64 {
            if (i, j) == (0, 1) || (i, j) == (1, 0) {
                f64::INFINITY
            } else {
                0.5
            }
        }
    }

    #[test]
    fn pairwise_wrapper_checks_too() {
        let c = CheckedSimilarity::new(InfAt01);
        assert_eq!(c.len(), 3);
        let _ = c.sim(0, 2);
        assert_eq!(c.error(), None);
        let _ = c.sim(0, 1);
        match c.error() {
            Some(RockError::NonFiniteSimilarity { value }) => {
                assert_eq!(value, f64::INFINITY);
            }
            other => panic!("expected NonFiniteSimilarity, got {other:?}"),
        }
    }
}

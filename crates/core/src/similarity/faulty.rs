//! Deterministic fault injection for similarity measures.
//!
//! Half of the workspace's fault-injection harness (the I/O half lives in
//! `rock_data::faults`). [`FaultySimilarity`] wraps any [`Similarity`] or
//! [`PairwiseSimilarity`] and replaces a seeded, reproducible subset of its
//! return values with NaN — the canonical "user measure divides by zero"
//! failure. Tests and benches use it to prove that the checked entry
//! points surface [`crate::error::RockError::NonFiniteSimilarity`] and that
//! the streaming labeling driver quarantines the affected records instead
//! of panicking.

use super::{PairwiseSimilarity, Similarity};
use crate::util::seeded_hit;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fault-schedule stream id, kept distinct from `rock_data::faults`
/// streams so reader and similarity faults decorrelate under one seed.
const STREAM_SIMILARITY: u64 = 0x51;

/// Wraps a similarity measure and returns NaN on a seeded schedule of
/// call indices.
///
/// The schedule is a pure function of `(seed, call index)`: the n-th
/// similarity evaluation faults iff `seeded_hit(seed, ·, n, rate)`. Under
/// a single thread the faulting *pairs* are therefore fully reproducible;
/// under parallel builders the faulting call indices are still
/// deterministic but their assignment to pairs depends on scheduling —
/// use `threads = 1` where exact fault placement matters.
#[derive(Debug)]
pub struct FaultySimilarity<S> {
    inner: S,
    seed: u64,
    rate: f64,
    calls: AtomicU64,
    injected: AtomicU64,
}

impl<S> FaultySimilarity<S> {
    /// Wraps `inner`, faulting each call independently with probability
    /// `rate` (clamped to `[0, 1]`) under `seed`.
    pub fn new(inner: S, seed: u64, rate: f64) -> Self {
        FaultySimilarity {
            inner,
            seed,
            rate: rate.clamp(0.0, 1.0),
            calls: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Number of similarity evaluations so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Number of NaNs injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Unwraps the measure.
    pub fn into_inner(self) -> S {
        self.inner
    }

    #[inline]
    fn next_is_fault(&self) -> bool {
        let i = self.calls.fetch_add(1, Ordering::Relaxed);
        let hit = seeded_hit(self.seed, STREAM_SIMILARITY, i, self.rate);
        if hit {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }
}

impl<P, S: Similarity<P>> Similarity<P> for FaultySimilarity<S> {
    fn similarity(&self, a: &P, b: &P) -> f64 {
        if self.next_is_fault() {
            f64::NAN
        } else {
            self.inner.similarity(a, b)
        }
    }
}

impl<S: PairwiseSimilarity> PairwiseSimilarity for FaultySimilarity<S> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn sim(&self, i: usize, j: usize) -> f64 {
        if self.next_is_fault() {
            f64::NAN
        } else {
            self.inner.sim(i, j)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::Transaction;
    use crate::similarity::Jaccard;

    #[test]
    fn zero_rate_is_transparent() {
        let f = FaultySimilarity::new(Jaccard, 7, 0.0);
        let a = Transaction::from([1, 2]);
        let b = Transaction::from([2, 3]);
        for _ in 0..100 {
            assert!((f.similarity(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        }
        assert_eq!(f.injected(), 0);
        assert_eq!(f.calls(), 100);
    }

    #[test]
    fn unit_rate_faults_every_call() {
        let f = FaultySimilarity::new(Jaccard, 7, 1.0);
        let a = Transaction::from([1, 2]);
        assert!(f.similarity(&a, &a).is_nan());
        assert_eq!(f.injected(), 1);
    }

    #[test]
    fn schedule_is_reproducible_per_seed() {
        let a = Transaction::from([1, 2]);
        let pattern = |seed: u64| -> Vec<bool> {
            let f = FaultySimilarity::new(Jaccard, seed, 0.3);
            (0..200).map(|_| f.similarity(&a, &a).is_nan()).collect()
        };
        assert_eq!(pattern(11), pattern(11));
        assert_ne!(pattern(11), pattern(12));
        assert!(pattern(11).iter().any(|&x| x), "rate 0.3 never fired");
        assert!(pattern(11).iter().any(|&x| !x), "rate 0.3 always fired");
    }
}

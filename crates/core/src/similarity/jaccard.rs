//! The Jaccard coefficient over transactions (§3.1.1).

use super::Similarity;
use crate::points::Transaction;

/// Jaccard similarity `|T₁ ∩ T₂| / |T₁ ∪ T₂|` between transactions.
///
/// This is the measure the paper uses for market-basket data: the more
/// items two transactions share relative to their combined size, the more
/// similar they are. It naturally penalises very small subsets — a
/// transaction containing only `milk` is not considered similar to a large
/// basket that happens to include milk.
///
/// # Examples
/// ```
/// use rock_core::points::Transaction;
/// use rock_core::similarity::{Jaccard, Similarity};
///
/// let a = Transaction::from([1, 2, 3]);
/// let b = Transaction::from([1, 2, 4]);
/// assert_eq!(Jaccard.similarity(&a, &b), 0.5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Jaccard;

impl Similarity<Transaction> for Jaccard {
    #[inline]
    fn similarity(&self, a: &Transaction, b: &Transaction) -> f64 {
        a.jaccard(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_and_symmetry() {
        let ts = [
            Transaction::from([1, 2, 3, 5]),
            Transaction::from([2, 3, 4, 5]),
            Transaction::from([1, 4]),
            Transaction::from([6]),
            Transaction::new(vec![]),
        ];
        for a in &ts {
            for b in &ts {
                let s = Jaccard.similarity(a, b);
                assert!((0.0..=1.0).contains(&s));
                assert_eq!(s, Jaccard.similarity(b, a));
            }
        }
    }

    #[test]
    fn distinct_similarity_levels_bounded() {
        // §3.1.1: sim(T1, T2) takes at most min(|T1|,|T2|)+1 distinct values.
        let t1 = Transaction::from([1, 2, 3]);
        let others = [
            Transaction::from([4, 5, 6]),
            Transaction::from([1, 5, 6]),
            Transaction::from([1, 2, 6]),
            Transaction::from([1, 2, 3]),
        ];
        let mut levels: Vec<f64> = others.iter().map(|o| t1.jaccard(o)).collect();
        levels.sort_by(f64::total_cmp);
        levels.dedup();
        assert!(levels.len() <= t1.len() + 1);
    }
}

//! Similarity functions (§3.1).
//!
//! ROCK is agnostic to the similarity measure: anything that maps a pair of
//! points into `[0, 1]` works, including non-metric functions supplied by a
//! domain expert (§1.2). Two traits capture this:
//!
//! * [`Similarity<P>`] — a function over a pair of *point values* (Jaccard
//!   over transactions, Lp over numeric vectors, …).
//! * [`PairwiseSimilarity`] — a function over a pair of *point indices*.
//!   This is what the neighbor-computation stage consumes; it admits both
//!   "points + measure" ([`PointsWith`]) and fully materialised expert
//!   tables ([`SimilarityMatrix`]) without forcing either representation.
//!
//! Two wrappers support the robustness layer: [`CheckedSimilarity`]
//! latches non-finite values so driver entry points can surface them as
//! typed errors, and [`FaultySimilarity`] injects seeded NaN faults for
//! resilience testing.

mod categorical;
mod checked;
mod faulty;
mod jaccard;
mod lp;
mod table;

pub use categorical::{CategoricalJaccard, MissingPolicy};
pub use checked::CheckedSimilarity;
pub use faulty::FaultySimilarity;
pub use jaccard::Jaccard;
pub use lp::{Hamming, NormalizedLp};
pub use table::SimilarityMatrix;

/// A normalized similarity measure between two points of type `P`.
///
/// Implementations must return values in `[0, 1]`, with `1` meaning
/// identical and `0` totally dissimilar, and must be symmetric:
/// `sim(a, b) == sim(b, a)`.
pub trait Similarity<P: ?Sized> {
    /// The similarity of `a` and `b`, in `[0, 1]`.
    fn similarity(&self, a: &P, b: &P) -> f64;
}

// Allow passing `&measure` wherever a measure is expected.
impl<P: ?Sized, S: Similarity<P> + ?Sized> Similarity<P> for &S {
    fn similarity(&self, a: &P, b: &P) -> f64 {
        (**self).similarity(a, b)
    }
}

/// Index-addressed similarity over a fixed point set.
///
/// The neighbor stage ([`crate::neighbors::NeighborGraph`]) only ever asks
/// "how similar are points *i* and *j*?", so it consumes this trait. Use
/// [`PointsWith`] to adapt a slice of points plus a [`Similarity`] measure,
/// or [`SimilarityMatrix`] for an explicit expert-provided table.
pub trait PairwiseSimilarity {
    /// Number of points.
    fn len(&self) -> usize;

    /// Whether the point set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Similarity of points `i` and `j`, in `[0, 1]`.
    fn sim(&self, i: usize, j: usize) -> f64;
}

impl<T: PairwiseSimilarity + ?Sized> PairwiseSimilarity for &T {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn sim(&self, i: usize, j: usize) -> f64 {
        (**self).sim(i, j)
    }
}

/// Adapts a slice of points and a [`Similarity`] measure into a
/// [`PairwiseSimilarity`].
#[derive(Clone, Copy, Debug)]
pub struct PointsWith<'a, P, S> {
    points: &'a [P],
    measure: S,
}

impl<'a, P, S: Similarity<P>> PointsWith<'a, P, S> {
    /// Pairs `points` with `measure`.
    pub fn new(points: &'a [P], measure: S) -> Self {
        PointsWith { points, measure }
    }

    /// The underlying points.
    pub fn points(&self) -> &'a [P] {
        self.points
    }
}

impl<P, S: Similarity<P>> PairwiseSimilarity for PointsWith<'_, P, S> {
    fn len(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn sim(&self, i: usize, j: usize) -> f64 {
        self.measure.similarity(&self.points[i], &self.points[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::Transaction;

    #[test]
    fn points_with_adapts_slice() {
        let pts = vec![
            Transaction::from([1, 2, 3]),
            Transaction::from([1, 2, 4]),
            Transaction::from([7, 8]),
        ];
        let pw = PointsWith::new(&pts, Jaccard);
        assert_eq!(pw.len(), 3);
        assert!((pw.sim(0, 1) - 0.5).abs() < 1e-12);
        assert_eq!(pw.sim(0, 2), 0.0);
        // symmetry
        assert_eq!(pw.sim(1, 0), pw.sim(0, 1));
    }

    #[test]
    fn similarity_by_reference() {
        let a = Transaction::from([1, 2]);
        let b = Transaction::from([2, 3]);
        let m = &Jaccard;
        // &S implements Similarity<P>
        assert!((Similarity::similarity(&m, &a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }
}

//! Dendrograms: the full merge tree of an agglomerative run, cuttable at
//! any cluster count without re-running the algorithm.
//!
//! ROCK is hierarchical (§4), so a single run down to a small `k` yields
//! the entire hierarchy above it. [`Dendrogram::from_run`] captures the
//! trace of a [`crate::algorithm::RockRun`]; [`Dendrogram::cut`] replays
//! the first merges to materialise the clustering at any intermediate
//! cluster count — useful when the right `k` is picked after the fact
//! (e.g. by scanning the criterion function `E_l` across cuts).

use crate::cluster::{Clustering, MergeRecord};

/// The merge tree of one clustering run.
#[derive(Clone, Debug)]
pub struct Dendrogram {
    /// Point id of each leaf (initial post-pruning singleton cluster).
    initial_points: Vec<u32>,
    /// Merges in execution order.
    merges: Vec<MergeRecord>,
    /// Points pruned before clustering (never in the tree).
    outliers: Vec<u32>,
}

impl Dendrogram {
    /// Captures the merge tree of `run`.
    ///
    /// Returns `None` if the run's final clustering cannot be replayed
    /// from the merge trace — which happens exactly when §4.6 mid-flight
    /// weeding removed clusters (the weeded points are not part of the
    /// tree). Run without a weed policy to build dendrograms.
    pub fn from_run(run: &crate::algorithm::RockRun) -> Option<Dendrogram> {
        let d = Dendrogram {
            initial_points: run.initial_points.clone(),
            merges: run.merges.clone(),
            outliers: run.clustering.outliers.clone(),
        };
        // Validate: replaying every merge must reproduce the final state.
        let replayed = d.cut(d.num_leaves() - d.merges.len());
        if replayed == run.clustering {
            Some(d)
        } else {
            None
        }
    }

    /// Rebuilds a dendrogram from persisted parts (the
    /// [`crate::artifact`] dendrogram section).
    ///
    /// Validates the merge trace structurally before accepting it: every
    /// record must mint the next dense arena id and consume two distinct,
    /// still-live cluster ids below it. Returns `None` otherwise, so an
    /// inconsistent artifact can never panic a later [`Dendrogram::cut`].
    pub fn from_parts(
        initial_points: Vec<u32>,
        merges: Vec<MergeRecord>,
        outliers: Vec<u32>,
    ) -> Option<Dendrogram> {
        let n = initial_points.len();
        let mut alive = vec![true; n + merges.len()];
        for (i, m) in merges.iter().enumerate() {
            let minted = n + i;
            let (l, r) = (m.left as usize, m.right as usize);
            if m.merged as usize != minted || l >= minted || r >= minted || l == r {
                return None;
            }
            if !alive[l] || !alive[r] {
                return None;
            }
            alive[l] = false;
            alive[r] = false;
        }
        Some(Dendrogram {
            initial_points,
            merges,
            outliers,
        })
    }

    /// Number of leaves (initial clusters).
    pub fn num_leaves(&self) -> usize {
        self.initial_points.len()
    }

    /// Point id of each leaf, in arena order.
    pub fn initial_points(&self) -> &[u32] {
        &self.initial_points
    }

    /// Points pruned before clustering (never in the tree).
    pub fn outliers(&self) -> &[u32] {
        &self.outliers
    }

    /// The recorded merges, in execution order.
    pub fn merges(&self) -> &[MergeRecord] {
        &self.merges
    }

    /// The smallest cluster count the run reached.
    pub fn min_clusters(&self) -> usize {
        self.num_leaves() - self.merges.len()
    }

    /// Materialises the clustering with `k` clusters by replaying the
    /// first `num_leaves − k` merges.
    ///
    /// # Panics
    /// Panics if `k` is outside `min_clusters()..=num_leaves()`.
    pub fn cut(&self, k: usize) -> Clustering {
        assert!(
            (self.min_clusters()..=self.num_leaves()).contains(&k),
            "cut at {k} outside {}..={}",
            self.min_clusters(),
            self.num_leaves()
        );
        let initial = self.num_leaves();
        let steps = initial - k;
        // Arena replay: slot per cluster id; merged ids append.
        let mut members: Vec<Option<Vec<u32>>> = self
            .initial_points
            .iter()
            .map(|&p| Some(vec![p]))
            .collect();
        for m in &self.merges[..steps] {
            // tidy-allow(panic): merge records reference each cluster id exactly once as an input, so the slot is still occupied during replay
            let left = members[m.left as usize].take().expect("live left");
            // tidy-allow(panic): merge records reference each cluster id exactly once as an input, so the slot is still occupied during replay
            let mut right = members[m.right as usize].take().expect("live right");
            right.extend(left);
            debug_assert_eq!(members.len(), m.merged as usize);
            members.push(Some(right));
        }
        Clustering::new(members.into_iter().flatten().collect(), self.outliers.clone())
    }

    /// Scans all cuts and returns `(k, E_l)` pairs for the criterion
    /// function under `goodness`, most-merged first — a principled way
    /// to choose `k` after one clustering run (§3.3).
    pub fn criterion_profile(
        &self,
        links: &crate::links::LinkTable,
        goodness: &crate::goodness::Goodness,
    ) -> Vec<(usize, f64)> {
        (self.min_clusters()..=self.num_leaves())
            .map(|k| {
                let clustering = self.cut(k);
                (
                    k,
                    crate::criterion_fn::criterion_value(links, &clustering.clusters, goodness),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{OutlierPolicy, RockAlgorithm, WeedPolicy};
    use crate::goodness::{BasketF, ConstantF, Goodness, GoodnessKind};
    use crate::neighbors::NeighborGraph;
    use crate::similarity::{Jaccard, PointsWith};

    fn figure1_run(k: usize) -> crate::algorithm::RockRun {
        let ts = crate::testdata::figure1_transactions();
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let goodness = Goodness::new(0.5, ConstantF(1.0), GoodnessKind::Normalized);
        RockAlgorithm::new(goodness, k, OutlierPolicy::default()).run(&g)
    }

    #[test]
    fn replay_matches_final_clustering() {
        let run = figure1_run(2);
        let d = Dendrogram::from_run(&run).expect("no weeding → dendrogram");
        assert_eq!(d.min_clusters(), 2);
        assert_eq!(d.cut(2), run.clustering);
    }

    #[test]
    fn cut_at_leaves_is_all_singletons() {
        let run = figure1_run(2);
        let d = Dendrogram::from_run(&run).unwrap();
        let c = d.cut(d.num_leaves());
        assert_eq!(c.num_clusters(), d.num_leaves());
        assert!(c.clusters.iter().all(|cl| cl.len() == 1));
    }

    #[test]
    fn intermediate_cuts_nest() {
        // Every cluster at cut k must be a union of clusters at cut k+1.
        let run = figure1_run(2);
        let d = Dendrogram::from_run(&run).unwrap();
        for k in d.min_clusters()..d.num_leaves() {
            let coarse = d.cut(k);
            let fine = d.cut(k + 1);
            for cl in &coarse.clusters {
                let inside: Vec<&Vec<u32>> = fine
                    .clusters
                    .iter()
                    .filter(|f| f.iter().all(|p| cl.binary_search(p).is_ok()))
                    .collect();
                let covered: usize = inside.iter().map(|f| f.len()).sum();
                assert_eq!(covered, cl.len(), "cut {k} does not nest");
            }
        }
    }

    #[test]
    fn criterion_profile_is_well_formed() {
        // E_l compares clusterings at a *fixed* k (§3.3: "the best
        // clusters are the ones that maximize the value of the criterion
        // function"); across k it is not comparable, so the profile is a
        // diagnostic, not an argmax oracle. Check its structural
        // properties: one entry per cut, finite values, zero at the
        // all-singletons cut (no intra-cluster pairs).
        let run = figure1_run(2);
        let d = Dendrogram::from_run(&run).unwrap();
        let ts = crate::testdata::figure1_transactions();
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let links = crate::links::compute_links_sparse(&g);
        let goodness = Goodness::new(0.5, ConstantF(1.0), GoodnessKind::Normalized);
        let profile = d.criterion_profile(&links, &goodness);
        assert_eq!(profile.len(), d.num_leaves() - d.min_clusters() + 1);
        assert!(profile.iter().all(|(_, e)| e.is_finite() && *e >= 0.0));
        assert_eq!(profile.first().unwrap().0, d.min_clusters());
        let (last_k, last_e) = *profile.last().unwrap();
        assert_eq!(last_k, d.num_leaves());
        assert_eq!(last_e, 0.0);
        // At fixed k = 2, the dendrogram's cut must beat the "swallowed"
        // alternative split (see algorithm::tests::figure1_f_sensitivity).
        let cut2 = d.cut(2);
        let e_cut = crate::criterion_fn::criterion_value(&links, &cut2.clusters, &goodness);
        let swallowed = vec![(0u32..12).collect::<Vec<_>>(), (12u32..14).collect()];
        let e_swallowed = crate::criterion_fn::criterion_value(&links, &swallowed, &goodness);
        assert!(e_cut > e_swallowed);
    }

    #[test]
    fn weeded_runs_have_no_dendrogram() {
        let ts = crate::testdata::figure1_transactions();
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let goodness = Goodness::new(0.5, BasketF, GoodnessKind::Normalized);
        let run = RockAlgorithm::new(
            goodness,
            2,
            OutlierPolicy {
                min_neighbors: 1,
                weed: Some(WeedPolicy {
                    stop_multiple: 3.0,
                    min_cluster_size: 3,
                }),
            },
        )
        .run(&g);
        if !run.clustering.outliers.is_empty() {
            assert!(Dendrogram::from_run(&run).is_none());
        }
    }

    #[test]
    fn from_parts_round_trips_and_rejects_bad_traces() {
        let run = figure1_run(2);
        let d = Dendrogram::from_run(&run).unwrap();
        let rebuilt = Dendrogram::from_parts(
            d.initial_points().to_vec(),
            d.merges().to_vec(),
            d.outliers().to_vec(),
        )
        .expect("valid parts");
        assert_eq!(rebuilt.cut(2), d.cut(2));
        assert!(d.merges().len() >= 2, "figure 1 run merges enough");

        // A record consuming an already-consumed id is rejected.
        let mut dead_input = d.merges().to_vec();
        dead_input[1].left = dead_input[0].left;
        assert!(
            Dendrogram::from_parts(d.initial_points().to_vec(), dead_input, vec![]).is_none()
        );
        // A record minting a non-dense arena id is rejected.
        let mut bad_mint = d.merges().to_vec();
        bad_mint[0].merged += 1;
        assert!(Dendrogram::from_parts(d.initial_points().to_vec(), bad_mint, vec![]).is_none());
        // A self-merge is rejected.
        let mut self_merge = d.merges().to_vec();
        self_merge[0].right = self_merge[0].left;
        assert!(
            Dendrogram::from_parts(d.initial_points().to_vec(), self_merge, vec![]).is_none()
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn cut_out_of_range_panics() {
        let run = figure1_run(2);
        let d = Dendrogram::from_run(&run).unwrap();
        let _ = d.cut(1);
    }
}

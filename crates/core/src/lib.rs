//! # rock-core — the ROCK clustering algorithm
//!
//! A from-scratch implementation of **ROCK (RObust Clustering using
//! linKs)** from Guha, Rastogi & Shim, *"ROCK: A Robust Clustering
//! Algorithm for Categorical Attributes"*, ICDE 1999.
//!
//! ROCK clusters data with boolean/categorical attributes — market-basket
//! transactions, survey records, discretised time series — where distance
//! metrics and per-pair similarity coefficients mislead traditional
//! algorithms. Its key idea: call two points *neighbors* when their
//! similarity exceeds a threshold θ, define `link(p, q)` as the number of
//! **common neighbors** of `p` and `q`, and agglomeratively merge the pair
//! of clusters maximising a link-count goodness measure normalised by the
//! expected number of cross links. Links inject *global* neighborhood
//! information into every pairwise decision, which is what makes the
//! algorithm robust to outliers and overlapping clusters.
//!
//! ## Pipeline (paper Fig. 2)
//!
//! ```text
//! data  ──►  random sample  ──►  link-based agglomeration  ──►  label data on disk
//!            (sampling)          (neighbors → links → merges)   (labeling)
//! ```
//!
//! ## Quick start
//!
//! ```
//! use rock_core::points::Transaction;
//! use rock_core::similarity::Jaccard;
//! use rock_core::rock::Rock;
//!
//! // Two buying patterns: "baby products" and "imported foods".
//! let baskets = vec![
//!     Transaction::from([0, 1, 2]), // diapers, baby food, toys
//!     Transaction::from([0, 1, 3]),
//!     Transaction::from([0, 2, 3]),
//!     Transaction::from([10, 11, 12]), // wine, cheese, chocolate
//!     Transaction::from([10, 11, 13]),
//!     Transaction::from([10, 12, 13]),
//! ];
//!
//! let rock = Rock::builder().theta(0.5).clusters(2).build().unwrap();
//! let run = rock.cluster(&baskets, &Jaccard);
//! assert_eq!(run.clustering.num_clusters(), 2);
//! ```
//!
//! ## Module map
//!
//! | Module | Paper | Contents |
//! |---|---|---|
//! | [`points`] | §3.1 | transactions, categorical records, schemas |
//! | [`similarity`] | §3.1 | Jaccard, categorical w/ missing values, Lp, expert tables |
//! | [`neighbors`] | §3.1 | θ-neighbor graph construction (serial & parallel) |
//! | [`links`] | §3.2, §4.4 | sparse (Fig. 4) and dense (A²) link computation (reference) |
//! | [`links_matrix`] | §3.2, §4.4 | parallel CSR link kernels — the hot path |
//! | [`goodness`] | §3.3, §4.2 | f(θ) estimates and the merge goodness measure |
//! | [`criterion_fn`] | §3.3 | the criterion function E_l |
//! | [`heap`] | §4.3 | addressable max-heaps for the merge loop |
//! | [`algorithm`] | §4.3, §4.6 | the Fig.-3 agglomeration with outlier handling |
//! | [`incremental`] | §4.3, §4.6 | reusable merge-loop state + online update path (bounded re-merge) |
//! | [`sampling`] | §4.6 | Vitter reservoir sampling (Algorithms R and X) |
//! | [`labeling`] | §4.6 | assigning disk-resident points to sample clusters |
//! | [`rock`] | Fig. 2 | builder-configured end-to-end driver |
//! | [`perf`] | — | phase-scoped kernel counters (pairs, bytes, sims, allocations) |
//! | [`report`] | — | structured [`RunReport`] for graceful-degradation visibility |
//! | [`governor`] | — | cancellation tokens, deadlines, memory budgets, degradation policies |
//! | [`wal`] | — | crash-safe merge write-ahead log with bit-identical resume |
//! | [`artifact`] | Fig. 2 | durable fitted-model artifact: versioned, CRC-framed, atomic save/load |
//! | [`serve`] | §4.6 | corruption-tolerant assign service over a loaded artifact |
//!
//! ## Robustness
//!
//! User-supplied inputs are guarded at the API boundary: configuration
//! errors are typed [`RockError`]s, and the checked entry points
//! ([`rock::Rock::try_cluster`], [`rock::Rock::try_run`],
//! [`labeling::Labeler::label_point_checked`]) surface non-finite
//! similarities instead of mis-clustering or panicking. The companion
//! `rock-data` crate adds a resilient streaming ingest/labeling driver
//! (retries, quarantine, checkpoints) over the same primitives;
//! [`similarity::FaultySimilarity`] provides the deterministic fault
//! injection used to test all of it.
//!
//! Long runs are *governable* and *crash-safe*: a
//! [`governor::RunGovernor`] threads cooperative cancellation, a
//! wall-clock deadline and a charged-memory budget through every phase
//! (trips surface as [`RockError::Interrupted`]), a
//! [`wal::MergeWal`] persists each §4.3 merge decision with CRC framing
//! and periodic state snapshots, and
//! [`algorithm::RockAlgorithm::resume`] replays an interrupted log to a
//! **bit-identical** final clustering and dendrogram. When a budget
//! trips, a configured [`governor::DegradationPolicy`] can instead
//! downshift the link kernel, subsample and restart, or finish via
//! connected components — recorded in the [`RunReport`]. The failure
//! model, WAL format and degradation decision table are documented in
//! `DESIGN.md` §"Failure model".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod artifact;
pub mod cluster;
pub mod components;
pub mod criterion_fn;
pub mod dendrogram;
pub mod engine;
pub mod error;
pub mod goodness;
pub mod governor;
pub mod heap;
pub mod incremental;
pub mod labeling;
pub mod links;
pub mod links_l3;
pub mod links_matrix;
pub mod neighbors;
pub mod perf;
pub mod points;
pub mod report;
pub mod rock;
pub mod sampling;
pub mod serve;
pub mod similarity;
pub mod util;
pub mod wal;

#[cfg(test)]
pub(crate) mod testdata;

pub use algorithm::{OutlierPolicy, RockAlgorithm, RockRun, WeedPolicy};
pub use artifact::{ArtifactPoint, ArtifactSource, FileSource, ModelArtifact, UpdateExtension};
pub use cluster::{Clustering, MergeRecord};
pub use components::{neighbor_components, DisjointSet};
pub use dendrogram::Dendrogram;
pub use engine::model::RockModel;
pub use engine::{
    shard_ranges, ClusterModel, IncrementalModel, ModelFit, NoFaults, Pipeline, RepSetSimilarity,
    RunCtx, ShardConfig, ShardFaultPlan, ShardRun, ShardSupervisor, ShardedRun,
};
pub use error::RockError;
pub use goodness::{BasketF, ConstantF, FTheta, Goodness, GoodnessKind};
pub use incremental::{
    IncrementalRockState, IncrementalState, MergeBound, StalenessPolicy, UpdateOutcome,
    UpdateProvenance,
};
pub use governor::{
    CancellationToken, DegradationNote, DegradationPolicy, Phase, RunGovernor, TripReason,
};
pub use labeling::{Labeler, Labeling};
pub use links::{
    compute_links_auto, compute_links_dense, compute_links_sparse, compute_links_sparse_seeded,
    LinkTable,
};
pub use links_l3::{combine_links, compute_links_l3, compute_links_l3_parallel};
pub use links_matrix::{LinkKernel, LinkMatrix};
pub use neighbors::NeighborGraph;
pub use perf::PerfCounters;
pub use points::{CategoricalRecord, CategoricalSchema, ItemCatalog, Transaction};
pub use report::{PhasePerf, PhaseTiming, QuarantinedRecord, RunReport, ShardDegradationNote};
pub use rock::{Rock, RockBuilder, RockConfig, RockResult};
pub use serve::{
    load_artifact_with_retry, AssignService, Centroid, OnlineAssignService, RetryPolicy,
    ServeBatch, ServeConfig, ServeDegradation, ServeDegradationNote, ServeReport,
};
pub use wal::{parse_update_wal, parse_wal, MergeWal, UpdateReplay, UpdateWal, WalReplay};
pub use similarity::{
    CategoricalJaccard, CheckedSimilarity, FaultySimilarity, Hamming, Jaccard, MissingPolicy,
    NormalizedLp, PairwiseSimilarity, PointsWith, Similarity, SimilarityMatrix,
};

//! Clustering results.

/// The output of a clustering run: the clusters (as sorted point-id lists)
/// plus the points set aside as outliers.
///
/// Point ids refer to whatever point set the algorithm ran over — the full
/// data set, or the random sample in the sampled pipeline (§4.1), in which
/// case [`crate::labeling`] maps the rest of the data onto these clusters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Clustering {
    /// The clusters, each a sorted list of point ids. Ordered by
    /// decreasing size (ties broken by smallest member) so cluster numbers
    /// are deterministic.
    pub clusters: Vec<Vec<u32>>,
    /// Points discarded by outlier handling (§4.6), sorted.
    pub outliers: Vec<u32>,
}

impl Clustering {
    /// Builds a clustering, normalising order: members sorted within each
    /// cluster, clusters by decreasing size then smallest member, outliers
    /// sorted.
    pub fn new(mut clusters: Vec<Vec<u32>>, mut outliers: Vec<u32>) -> Self {
        for c in &mut clusters {
            c.sort_unstable();
        }
        clusters.retain(|c| !c.is_empty());
        clusters.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
        outliers.sort_unstable();
        Clustering { clusters, outliers }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Cluster sizes, in cluster order.
    pub fn sizes(&self) -> Vec<usize> {
        self.clusters.iter().map(Vec::len).collect()
    }

    /// Total points covered (clustered + outliers).
    pub fn num_points(&self) -> usize {
        self.clusters.iter().map(Vec::len).sum::<usize>() + self.outliers.len()
    }

    /// Per-point cluster index over a universe of `n` points: `Some(c)` if
    /// the point is in cluster `c`, `None` for outliers and points the
    /// clustering never saw.
    ///
    /// # Panics
    /// Panics if any member id is `≥ n`.
    pub fn assignments(&self, n: usize) -> Vec<Option<usize>> {
        let mut out = vec![None; n];
        for (c, members) in self.clusters.iter().enumerate() {
            for &p in members {
                assert!((p as usize) < n, "point id {p} out of range {n}");
                out[p as usize] = Some(c);
            }
        }
        out
    }

    /// The index of the cluster containing point `p`, if any.
    pub fn cluster_of(&self, p: u32) -> Option<usize> {
        self.clusters
            .iter()
            .position(|c| c.binary_search(&p).is_ok())
    }
}

/// One merge step of the agglomeration, for dendrogram-style inspection.
///
/// Cluster ids live in the run's arena: ids `0..initial` are the initial
/// singleton clusters (see [`crate::algorithm::RockRun::initial_points`]
/// for the id → point mapping) and each merge mints the next id.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MergeRecord {
    /// Arena id of the cluster that was at the top of the global heap.
    pub left: u32,
    /// Arena id of its best merge partner.
    pub right: u32,
    /// Arena id of the merged cluster.
    pub merged: u32,
    /// Sizes of the two clusters merged.
    pub sizes: (usize, usize),
    /// Cross links between them at merge time.
    pub cross_links: u64,
    /// The goodness that won this merge.
    pub goodness: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_orders_everything() {
        let c = Clustering::new(
            vec![vec![5, 2], vec![9, 1, 4], vec![], vec![7, 0, 3]],
            vec![8, 6],
        );
        assert_eq!(c.clusters, vec![vec![0, 3, 7], vec![1, 4, 9], vec![2, 5]]);
        assert_eq!(c.outliers, vec![6, 8]);
        assert_eq!(c.sizes(), vec![3, 3, 2]);
        assert_eq!(c.num_points(), 10);
    }

    #[test]
    fn assignments_and_cluster_of() {
        let c = Clustering::new(vec![vec![0, 1], vec![2]], vec![3]);
        let a = c.assignments(5);
        assert_eq!(a, vec![Some(0), Some(0), Some(1), None, None]);
        assert_eq!(c.cluster_of(2), Some(1));
        assert_eq!(c.cluster_of(3), None);
    }

    #[test]
    fn equal_size_tie_broken_by_smallest_member() {
        let c = Clustering::new(vec![vec![4, 5], vec![1, 2]], vec![]);
        assert_eq!(c.clusters, vec![vec![1, 2], vec![4, 5]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn assignments_range_check() {
        let c = Clustering::new(vec![vec![10]], vec![]);
        let _ = c.assignments(5);
    }
}

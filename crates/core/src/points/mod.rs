//! Point representations the paper clusters over: market-basket
//! transactions (§3.1.1) and categorical records with missing values
//! (§3.1.2).

pub mod categorical;
pub mod transaction;

pub use categorical::{AttributeDef, CategoricalRecord, CategoricalSchema};
pub use transaction::{ItemCatalog, Transaction};

//! Categorical records with missing values (§3.1.2).
//!
//! A data set with `d` categorical attributes is described by a
//! [`CategoricalSchema`] (attribute names and per-attribute value domains).
//! A [`CategoricalRecord`] stores, for each attribute, either the index of
//! the attribute's value in its domain or `None` for a missing value.
//!
//! §3.1.2 maps a record to a transaction over items `A.v` — one item per
//! (attribute, value) combination — and computes Jaccard similarity between
//! the induced transactions. Missing attributes simply contribute no item.
//! For time-series-style data the paper refines this: only attributes
//! present in *both* records of a pair are considered, so the transactions
//! are rebuilt per pair. Both policies are implemented in
//! [`crate::similarity::CategoricalJaccard`].

use super::Transaction;
use crate::util::FxHashMap;
use std::fmt;

/// Definition of one categorical attribute: a name and its value domain.
#[derive(Clone, Debug)]
pub struct AttributeDef {
    name: String,
    values: Vec<String>,
    value_ids: FxHashMap<String, u32>,
}

impl AttributeDef {
    /// The attribute name (e.g. `"odor"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The value domain, indexed by value id.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// The label of value `v`, if in the domain.
    pub fn value_name(&self, v: u32) -> Option<&str> {
        self.values.get(v as usize).map(String::as_str)
    }

    /// The id of value `name`, if in the domain.
    pub fn value_id(&self, name: &str) -> Option<u32> {
        self.value_ids.get(name).copied()
    }

    /// Number of values in the domain.
    pub fn domain_size(&self) -> usize {
        self.values.len()
    }
}

/// Schema of a categorical data set: the ordered list of attributes.
///
/// The schema also assigns every `(attribute, value)` pair a distinct global
/// *item id* (attribute domains laid out contiguously), which is what makes
/// the §3.1.2 record → transaction mapping cheap.
#[derive(Clone, Debug, Default)]
pub struct CategoricalSchema {
    attributes: Vec<AttributeDef>,
    /// `offsets[a]` = first global item id of attribute `a`'s domain.
    offsets: Vec<u32>,
    total_items: u32,
}

impl CategoricalSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a schema from `(name, domain)` pairs.
    ///
    /// # Panics
    /// Panics if a domain contains duplicate values.
    pub fn from_attributes<S: AsRef<str>>(attrs: &[(S, Vec<S>)]) -> Self {
        let mut schema = Self::new();
        for (name, domain) in attrs {
            schema.add_attribute(
                name.as_ref(),
                domain.iter().map(AsRef::as_ref).collect::<Vec<_>>(),
            );
        }
        schema
    }

    /// Appends an attribute with the given value domain; returns its index.
    ///
    /// # Panics
    /// Panics if the domain contains duplicate values.
    pub fn add_attribute(&mut self, name: &str, domain: Vec<&str>) -> usize {
        let mut value_ids = FxHashMap::default();
        for (i, v) in domain.iter().enumerate() {
            let prev = value_ids.insert((*v).to_owned(), i as u32);
            assert!(prev.is_none(), "duplicate value {v:?} in domain of {name:?}");
        }
        self.offsets.push(self.total_items);
        // tidy-allow(panic): documented `# Panics` contract: attribute domains beyond u32::MAX values are a caller error
        self.total_items += u32::try_from(domain.len()).expect("domain too large");
        self.attributes.push(AttributeDef {
            name: name.to_owned(),
            values: domain.into_iter().map(str::to_owned).collect(),
            value_ids,
        });
        self.attributes.len() - 1
    }

    /// The attributes, in schema order.
    pub fn attributes(&self) -> &[AttributeDef] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Total number of distinct `(attribute, value)` items.
    pub fn num_items(&self) -> usize {
        self.total_items as usize
    }

    /// The global item id of value `v` of attribute `a`.
    ///
    /// # Panics
    /// Panics if `a` or `v` is out of range.
    #[inline]
    pub fn item_id(&self, a: usize, v: u32) -> u32 {
        assert!(
            (v as usize) < self.attributes[a].domain_size(),
            "value id {v} out of domain for attribute {a}"
        );
        self.offsets[a] + v
    }

    /// Inverse of [`item_id`](Self::item_id): `(attribute, value)` of a
    /// global item id, or `None` if out of range.
    pub fn item_to_attr_value(&self, item: u32) -> Option<(usize, u32)> {
        if item >= self.total_items {
            return None;
        }
        // offsets is ascending; find the last offset ≤ item.
        let a = match self.offsets.binary_search(&item) {
            Ok(a) => a,
            Err(ins) => ins - 1,
        };
        Some((a, item - self.offsets[a]))
    }

    /// §3.1.2 record → transaction mapping: one item `A.v` per non-missing
    /// attribute.
    ///
    /// # Panics
    /// Panics if the record arity differs from the schema.
    pub fn to_transaction(&self, record: &CategoricalRecord) -> Transaction {
        assert_eq!(
            record.arity(),
            self.num_attributes(),
            "record arity does not match schema"
        );
        let items: Vec<u32> = record
            .values()
            .iter()
            .enumerate()
            .filter_map(|(a, v)| v.map(|v| self.item_id(a, v)))
            .collect();
        // Item ids are produced in ascending attribute order with ascending
        // offsets, so they are already sorted and unique.
        Transaction::from_sorted(items)
    }

    /// Parses a record from textual values, treating `missing_marker`
    /// (e.g. `"?"`) as a missing value.
    ///
    /// Returns an error naming the offending attribute/value on unknown
    /// values or arity mismatch.
    pub fn parse_record(
        &self,
        fields: &[&str],
        missing_marker: &str,
    ) -> Result<CategoricalRecord, String> {
        if fields.len() != self.num_attributes() {
            return Err(format!(
                "expected {} fields, got {}",
                self.num_attributes(),
                fields.len()
            ));
        }
        let mut values = Vec::with_capacity(fields.len());
        for (a, field) in fields.iter().enumerate() {
            if *field == missing_marker {
                values.push(None);
            } else {
                match self.attributes[a].value_id(field) {
                    Some(v) => values.push(Some(v)),
                    None => {
                        return Err(format!(
                            "unknown value {:?} for attribute {:?}",
                            field,
                            self.attributes[a].name()
                        ))
                    }
                }
            }
        }
        Ok(CategoricalRecord::new(values))
    }
}

/// A record over a [`CategoricalSchema`]: per attribute, a value id or
/// `None` for missing.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CategoricalRecord {
    values: Box<[Option<u32>]>,
}

impl CategoricalRecord {
    /// Builds a record from per-attribute value ids.
    pub fn new(values: Vec<Option<u32>>) -> Self {
        CategoricalRecord {
            values: values.into_boxed_slice(),
        }
    }

    /// Builds a fully-observed record (no missing values).
    pub fn complete(values: Vec<u32>) -> Self {
        CategoricalRecord {
            values: values.into_iter().map(Some).collect(),
        }
    }

    /// The per-attribute values.
    #[inline]
    pub fn values(&self) -> &[Option<u32>] {
        &self.values
    }

    /// Value of attribute `a` (`None` if missing).
    #[inline]
    pub fn value(&self, a: usize) -> Option<u32> {
        self.values[a]
    }

    /// Number of attributes (including missing ones).
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Number of non-missing attributes.
    pub fn num_present(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }
}

impl fmt::Debug for CategoricalRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut list = f.debug_list();
        for v in self.values.iter() {
            match v {
                Some(v) => list.entry(v),
                None => list.entry(&"?"),
            };
        }
        list.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_schema() -> CategoricalSchema {
        CategoricalSchema::from_attributes(&[
            ("color", vec!["brown", "black", "white"]),
            ("size", vec!["narrow", "broad"]),
            ("odor", vec!["none", "foul", "spicy", "almond"]),
        ])
    }

    #[test]
    fn item_ids_are_contiguous_per_attribute() {
        let s = toy_schema();
        assert_eq!(s.num_items(), 9);
        assert_eq!(s.item_id(0, 0), 0);
        assert_eq!(s.item_id(0, 2), 2);
        assert_eq!(s.item_id(1, 0), 3);
        assert_eq!(s.item_id(2, 3), 8);
    }

    #[test]
    fn item_to_attr_value_inverts_item_id() {
        let s = toy_schema();
        for a in 0..s.num_attributes() {
            for v in 0..s.attributes()[a].domain_size() as u32 {
                assert_eq!(s.item_to_attr_value(s.item_id(a, v)), Some((a, v)));
            }
        }
        assert_eq!(s.item_to_attr_value(9), None);
    }

    #[test]
    fn to_transaction_skips_missing() {
        let s = toy_schema();
        let r = CategoricalRecord::new(vec![Some(1), None, Some(2)]);
        let t = s.to_transaction(&r);
        assert_eq!(t.items(), &[1, 7]);
    }

    #[test]
    fn parse_record_handles_missing_and_unknown() {
        let s = toy_schema();
        let ok = s.parse_record(&["white", "?", "foul"], "?").unwrap();
        assert_eq!(ok.values(), &[Some(2), None, Some(1)]);
        assert!(s.parse_record(&["white", "?"], "?").is_err());
        assert!(s.parse_record(&["white", "huge", "foul"], "?").is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate value")]
    fn duplicate_domain_value_panics() {
        let mut s = CategoricalSchema::new();
        s.add_attribute("color", vec!["red", "red"]);
    }

    #[test]
    fn complete_record_has_no_missing() {
        let r = CategoricalRecord::complete(vec![0, 1, 3]);
        assert_eq!(r.num_present(), 3);
        assert_eq!(r.value(2), Some(3));
    }
}

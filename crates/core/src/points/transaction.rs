//! Market-basket transactions (§3.1.1).
//!
//! A transaction is a set of purchased items. Items are dense `u32`
//! identifiers assigned by the caller (see [`crate::points::ItemCatalog`]
//! for a name ↔ id mapping helper). Internally the item list is kept sorted
//! and deduplicated so that set operations (intersection/union sizes, the
//! Jaccard coefficient) run as linear merges.

use std::fmt;

/// A market-basket transaction: a sorted, duplicate-free set of item ids.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Transaction {
    items: Box<[u32]>,
}

impl Transaction {
    /// Builds a transaction from an arbitrary item list; sorts and dedups.
    pub fn new(mut items: Vec<u32>) -> Self {
        items.sort_unstable();
        items.dedup();
        Transaction {
            items: items.into_boxed_slice(),
        }
    }

    /// Builds a transaction from items already sorted and duplicate-free.
    ///
    /// # Panics
    /// Panics (in debug builds) if the invariant does not hold.
    pub fn from_sorted(items: Vec<u32>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "items must be strictly ascending"
        );
        Transaction {
            items: items.into_boxed_slice(),
        }
    }

    /// The items, sorted ascending.
    #[inline]
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Number of items in the transaction.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the transaction is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the transaction contains `item`.
    pub fn contains(&self, item: u32) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Size of the intersection with `other`, by sorted merge.
    pub fn intersection_size(&self, other: &Transaction) -> usize {
        let (mut a, mut b, mut n) = (0usize, 0usize, 0usize);
        let (xs, ys) = (&self.items, &other.items);
        while a < xs.len() && b < ys.len() {
            match xs[a].cmp(&ys[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    a += 1;
                    b += 1;
                }
            }
        }
        n
    }

    /// Size of the union with `other`: `|A| + |B| − |A ∩ B|`.
    pub fn union_size(&self, other: &Transaction) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// The Jaccard coefficient `|A ∩ B| / |A ∪ B|` (§3.1.1).
    ///
    /// Two empty transactions have undefined overlap; we define it as 0 so
    /// that empty records never become neighbors of anything.
    pub fn jaccard(&self, other: &Transaction) -> f64 {
        let inter = self.intersection_size(other);
        let union = self.len() + other.len() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

impl fmt::Debug for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.items.iter()).finish()
    }
}

impl FromIterator<u32> for Transaction {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Transaction::new(iter.into_iter().collect())
    }
}

impl From<&[u32]> for Transaction {
    fn from(items: &[u32]) -> Self {
        Transaction::new(items.to_vec())
    }
}

impl<const N: usize> From<[u32; N]> for Transaction {
    fn from(items: [u32; N]) -> Self {
        Transaction::new(items.to_vec())
    }
}

/// Maps human-readable item names to dense `u32` ids and back.
///
/// Useful when loading raw basket files: `catalog.intern("swiss cheese")`
/// returns a stable id, and `catalog.name(id)` recovers the label for
/// reporting cluster characteristics.
#[derive(Default, Clone, Debug)]
pub struct ItemCatalog {
    names: Vec<String>,
    ids: crate::util::FxHashMap<String, u32>,
}

impl ItemCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, allocating a new one on first sight.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        // tidy-allow(panic): item ids are u32 across the engine; vocabularies beyond u32::MAX items are out of scope by contract
        let id = u32::try_from(self.names.len()).expect("more than u32::MAX items");
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up an existing id without allocating.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// The name for `id`, if allocated.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of distinct items interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let t = Transaction::new(vec![5, 1, 3, 1, 5]);
        assert_eq!(t.items(), &[1, 3, 5]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn intersection_and_union() {
        let a = Transaction::from([1, 2, 3, 5]);
        let b = Transaction::from([2, 3, 4, 5]);
        assert_eq!(a.intersection_size(&b), 3);
        assert_eq!(a.union_size(&b), 5);
    }

    #[test]
    fn jaccard_paper_example_1_2() {
        // §1.1 Example 1.2: {1,2,3} vs {1,2,4} → 0.5; {1,2,3} vs {3,4,5} → 0.2.
        let t123 = Transaction::from([1, 2, 3]);
        let t124 = Transaction::from([1, 2, 4]);
        let t345 = Transaction::from([3, 4, 5]);
        assert!((t123.jaccard(&t124) - 0.5).abs() < 1e-12);
        assert!((t123.jaccard(&t345) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn jaccard_disjoint_and_identical() {
        let a = Transaction::from([1, 4]);
        let b = Transaction::from([6]);
        assert_eq!(a.jaccard(&b), 0.0);
        assert_eq!(a.jaccard(&a), 1.0);
    }

    #[test]
    fn jaccard_empty_is_zero() {
        let e = Transaction::new(vec![]);
        assert_eq!(e.jaccard(&e), 0.0);
        assert_eq!(e.jaccard(&Transaction::from([1])), 0.0);
    }

    #[test]
    fn contains_uses_binary_search() {
        let t = Transaction::from([2, 4, 8, 16]);
        assert!(t.contains(8));
        assert!(!t.contains(3));
    }

    #[test]
    fn catalog_roundtrip() {
        let mut c = ItemCatalog::new();
        let milk = c.intern("milk");
        let wine = c.intern("french wine");
        assert_eq!(c.intern("milk"), milk);
        assert_ne!(milk, wine);
        assert_eq!(c.name(wine), Some("french wine"));
        assert_eq!(c.get("swiss cheese"), None);
        assert_eq!(c.len(), 2);
    }
}

//! The labeling phase (§4.6): assigning disk-resident points to the
//! clusters found on the sample.
//!
//! For every cluster `i` a fraction of its sample points is selected as a
//! labeling set `Lᵢ`. Each remaining data point `p` is assigned to the
//! cluster maximising its *normalized* neighbor count
//! `Nᵢ / (|Lᵢ| + 1)^{f(θ)}`, where `Nᵢ` is the number of points of `Lᵢ`
//! within similarity θ of `p`; the denominator is the expected number of
//! neighbors `p` would have in `Lᵢ` if it belonged to cluster `i`. Points
//! with no neighbors in any labeling set are reported as outliers.

use crate::error::RockError;
use crate::governor::{Phase, RunGovernor};
use crate::similarity::Similarity;
use rand::Rng;

/// Minimum labeling cost (points × total labeling-set size — i.e.
/// similarity evaluations) before [`Labeler::label_all_parallel`] spawns
/// workers. Below this the whole pass is faster than thread spawn/join.
/// Replaces the old `data.len() < 1024` bailout, which misjudged both
/// huge labeling sets over few points and tiny sets over many.
const PARALLEL_CUTOFF_SCORES: u64 = 16 * 1024;

/// The per-cluster labeling sets drawn from the clustered sample.
#[derive(Clone, Debug)]
pub struct Labeler<P> {
    /// `sets[i]` = the points of `Lᵢ`.
    sets: Vec<Vec<P>>,
    theta: f64,
    /// `f(θ)` used in the normalisation exponent.
    ftheta: f64,
}

/// Result of labeling one data set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Labeling {
    /// Per input point: assigned cluster, or `None` for outliers.
    pub assignments: Vec<Option<usize>>,
    /// Number of points assigned per cluster.
    pub cluster_counts: Vec<usize>,
    /// Number of points with no neighbors in any labeling set.
    pub num_outliers: usize,
}

impl<P: Clone> Labeler<P> {
    /// Builds labeling sets by drawing `fraction` of each cluster's sample
    /// points (at least one per non-empty cluster).
    ///
    /// * `sample` — the points that were clustered;
    /// * `clusters` — the clustering of `sample`, as indices into it;
    /// * `theta`, `ftheta` — the threshold and `f(θ)` used for clustering.
    ///
    /// # Errors
    /// Returns [`RockError::InvalidLabelingFraction`] if
    /// `fraction ∉ (0, 1]` and [`RockError::InvalidTheta`] if
    /// `theta ∉ [0, 1]` — user-supplied parameters surface as typed
    /// errors, never panics.
    pub fn new<R: Rng + ?Sized>(
        sample: &[P],
        clusters: &[Vec<u32>],
        fraction: f64,
        theta: f64,
        ftheta: f64,
        rng: &mut R,
    ) -> Result<Self, RockError> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(RockError::InvalidLabelingFraction(fraction));
        }
        if !(0.0..=1.0).contains(&theta) {
            return Err(RockError::InvalidTheta(theta));
        }
        let sets = clusters
            .iter()
            .map(|members| {
                if members.is_empty() {
                    // An empty cluster gets an empty labeling set (it can
                    // never win a point); clamp(1, 0) below would panic.
                    return Vec::new();
                }
                let want = ((members.len() as f64 * fraction).round() as usize)
                    .clamp(1, members.len());
                crate::sampling::reservoir_sample_r(members.iter().copied(), want, rng)
                    .into_iter()
                    .map(|idx| sample[idx as usize].clone())
                    .collect()
            })
            .collect();
        Ok(Labeler {
            sets,
            theta,
            ftheta,
        })
    }

    /// Uses every clustered sample point for labeling (fraction = 1,
    /// deterministic).
    pub fn full(sample: &[P], clusters: &[Vec<u32>], theta: f64, ftheta: f64) -> Self {
        let sets = clusters
            .iter()
            .map(|members| {
                members
                    .iter()
                    .map(|&idx| sample[idx as usize].clone())
                    .collect()
            })
            .collect();
        Labeler {
            sets,
            theta,
            ftheta,
        }
    }

    /// Rebuilds a labeler from previously drawn labeling sets — the
    /// deserialization path of [`crate::artifact::ModelArtifact`], which
    /// persists the sets so loaded-artifact labeling is bit-identical to
    /// the live run that saved them.
    ///
    /// # Errors
    /// Returns [`RockError::InvalidTheta`] if `theta ∉ [0, 1]` and
    /// [`RockError::InvalidFTheta`] if `ftheta` is non-finite or
    /// negative.
    pub fn from_sets(sets: Vec<Vec<P>>, theta: f64, ftheta: f64) -> Result<Self, RockError> {
        if !(0.0..=1.0).contains(&theta) {
            return Err(RockError::InvalidTheta(theta));
        }
        if !(ftheta.is_finite() && ftheta >= 0.0) {
            return Err(RockError::InvalidFTheta(ftheta));
        }
        Ok(Labeler {
            sets,
            theta,
            ftheta,
        })
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.sets.len()
    }

    /// The labeling sets: `sets()[i]` holds the representatives of
    /// cluster `i`.
    pub fn sets(&self) -> &[Vec<P>] {
        &self.sets
    }

    /// The similarity threshold θ the sets were drawn under.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The `f(θ)` used in the normalisation exponent.
    pub fn ftheta(&self) -> f64 {
        self.ftheta
    }

    /// Size of labeling set `i`.
    pub fn set_size(&self, i: usize) -> usize {
        self.sets[i].len()
    }

    /// Assigns a single point: the cluster with the maximum normalized
    /// neighbor count, or `None` if the point has no neighbors in any set.
    ///
    /// Ties go to the smaller cluster index (deterministic).
    pub fn label_point<S: Similarity<P>>(&self, point: &P, sim: &S) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, set) in self.sets.iter().enumerate() {
            let neighbors = set
                .iter()
                .filter(|l| sim.similarity(point, l) >= self.theta)
                .count();
            if neighbors == 0 {
                continue;
            }
            // (|Li| + 1)^{f(θ)}: expected neighbors of a member point.
            let norm = ((set.len() + 1) as f64).powf(self.ftheta);
            let score = neighbors as f64 / norm;
            let better = match best {
                None => true,
                Some((_, b)) => score > b,
            };
            if better {
                best = Some((i, score));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Like [`Labeler::label_point`], but surfaces a non-finite similarity
    /// value as a typed error instead of silently treating the pair as
    /// non-neighbors.
    ///
    /// This is the per-record entry point of the resilient streaming
    /// driver: a record whose similarity evaluation degenerates (NaN from
    /// a user measure) can be quarantined rather than mislabeled.
    ///
    /// # Errors
    /// Returns [`RockError::NonFiniteSimilarity`] on the first NaN/±∞
    /// similarity encountered.
    pub fn label_point_checked<S: Similarity<P>>(
        &self,
        point: &P,
        sim: &S,
    ) -> Result<Option<usize>, RockError> {
        let mut best: Option<(usize, f64)> = None;
        for (i, set) in self.sets.iter().enumerate() {
            let mut neighbors = 0usize;
            for l in set {
                let s = sim.similarity(point, l);
                if !s.is_finite() {
                    return Err(RockError::NonFiniteSimilarity { value: s });
                }
                if s >= self.theta {
                    neighbors += 1;
                }
            }
            if neighbors == 0 {
                continue;
            }
            let norm = ((set.len() + 1) as f64).powf(self.ftheta);
            let score = neighbors as f64 / norm;
            let better = match best {
                None => true,
                Some((_, b)) => score > b,
            };
            if better {
                best = Some((i, score));
            }
        }
        Ok(best.map(|(i, _)| i))
    }

    /// Labels every point of `data`.
    pub fn label_all<S: Similarity<P>>(&self, data: &[P], sim: &S) -> Labeling {
        self.collect(data.iter().map(|p| self.label_point(p, sim)))
    }

    /// Labels every point of `data` using `threads` rayon workers.
    ///
    /// The labeling phase is embarrassingly parallel (each point is
    /// scored against the fixed Lᵢ sets independently); this is the path
    /// for paper-scale data (114,586 transactions in §5.4). Each worker
    /// accumulates its chunk's cluster counts and outlier tally into a
    /// thread-local outcome buffer while writing assignment slots; the
    /// buffers are merged once after the join, so no sequential pass
    /// over the full assignment vector remains.
    ///
    /// **Determinism:** worker `t` writes the slots of its own chunk of
    /// points in place, and the merged counts are sums of per-chunk
    /// counts in which every point contributes exactly once — the result
    /// is bit-identical to [`Labeler::label_all`] for every thread count
    /// (pinned against the fault-injection matrix in
    /// `tests/kernel_invariance.rs`).
    ///
    /// The parallel path engages on a cost basis (points × total
    /// labeling-set size, [`PARALLEL_CUTOFF_SCORES`]) rather than a
    /// point-count floor: few points against huge labeling sets
    /// parallelise just as profitably as many points against small ones.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn label_all_parallel<S>(&self, data: &[P], sim: &S, threads: usize) -> Labeling
    where
        S: Similarity<P> + Sync,
        P: Sync,
    {
        assert!(threads > 0, "need at least one thread");
        let set_points: usize = self.sets.iter().map(Vec::len).sum();
        let cost = data.len() as u64 * set_points.max(1) as u64;
        if threads == 1 || cost < PARALLEL_CUTOFF_SCORES {
            return self.label_all(data, sim);
        }
        let chunk = data.len().div_ceil(threads);
        let num_chunks = data.len().div_ceil(chunk);
        let mut assignments: Vec<Option<usize>> = vec![None; data.len()];
        // Thread-local outcome buffers: (per-cluster counts, outliers).
        let mut outcomes: Vec<(Vec<usize>, usize)> = Vec::with_capacity(num_chunks);
        outcomes.resize_with(num_chunks, || (vec![0usize; self.sets.len()], 0));
        rayon::scope(|scope| {
            for ((part, slots), outcome) in data
                .chunks(chunk)
                .zip(assignments.chunks_mut(chunk))
                .zip(outcomes.iter_mut())
            {
                scope.spawn(move |_| {
                    let (counts, outliers) = outcome;
                    // tidy:kernel-hot-loop — per-point scoring
                    for (p, slot) in part.iter().zip(slots.iter_mut()) {
                        let label = self.label_point(p, sim);
                        match label {
                            Some(c) => counts[c] += 1,
                            None => *outliers += 1,
                        }
                        *slot = label;
                    }
                    // tidy:end-kernel-hot-loop
                });
            }
        });
        crate::perf::count_sim_evals(data.len() as u64 * set_points as u64);
        // Single merge of the thread-local buffers: addition is
        // commutative and each point lands in exactly one chunk, so the
        // totals equal the sequential tally.
        let mut cluster_counts = vec![0usize; self.sets.len()];
        let mut num_outliers = 0usize;
        for (counts, outliers) in &outcomes {
            for (total, c) in cluster_counts.iter_mut().zip(counts) {
                *total += c;
            }
            num_outliers += outliers;
        }
        Labeling {
            assignments,
            cluster_counts,
            num_outliers,
        }
    }

    /// Like [`Labeler::label_all_parallel`], but governed: labels `data`
    /// in batches of [`Labeler::GOVERNED_BATCH`] points and consults
    /// `governor` between batches, so cancellation, deadlines and
    /// injected kills (`with_kill_at(Phase::Labeling, batch)`) are
    /// observed within one batch.
    ///
    /// Labeling is point-independent, so the result is bit-identical to
    /// [`Labeler::label_all`] whenever the governor lets the run finish,
    /// for every thread count and batch boundary.
    ///
    /// # Errors
    /// Returns [`RockError::Interrupted`] when the governor trips.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn label_all_governed<S>(
        &self,
        data: &[P],
        sim: &S,
        threads: usize,
        governor: &RunGovernor,
    ) -> Result<Labeling, RockError>
    where
        S: Similarity<P> + Sync,
        P: Sync,
    {
        assert!(threads > 0, "need at least one thread");
        governor.check(Phase::Labeling)?;
        let mut assignments: Vec<Option<usize>> = Vec::with_capacity(data.len());
        for (batch, part) in data.chunks(Self::GOVERNED_BATCH).enumerate() {
            // check_at applies the injected kill point; the unconditional
            // check keeps cancellation latency at one (coarse) batch even
            // for governors with a large merge check interval.
            governor.check_at(Phase::Labeling, batch as u64)?;
            governor.check(Phase::Labeling)?;
            assignments.extend(self.label_all_parallel(part, sim, threads).assignments);
        }
        Ok(self.collect(assignments.into_iter()))
    }

    /// Points labeled between two governor checkpoints in
    /// [`Labeler::label_all_governed`].
    pub const GOVERNED_BATCH: usize = 4096;

    fn collect(&self, labels: impl Iterator<Item = Option<usize>>) -> Labeling {
        let mut assignments = Vec::new();
        let mut cluster_counts = vec![0usize; self.sets.len()];
        let mut num_outliers = 0usize;
        for a in labels {
            match a {
                Some(c) => cluster_counts[c] += 1,
                None => num_outliers += 1,
            }
            assignments.push(a);
        }
        Labeling {
            assignments,
            cluster_counts,
            num_outliers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::Transaction;
    use crate::similarity::Jaccard;
    use rand::{rngs::StdRng, SeedableRng};

    fn two_cluster_sample() -> (Vec<Transaction>, Vec<Vec<u32>>) {
        let sample = vec![
            Transaction::from([1, 2, 3]),
            Transaction::from([1, 2, 4]),
            Transaction::from([2, 3, 4]),
            Transaction::from([10, 11, 12]),
            Transaction::from([10, 11, 13]),
            Transaction::from([11, 12, 13]),
        ];
        let clusters = vec![vec![0, 1, 2], vec![3, 4, 5]];
        (sample, clusters)
    }

    #[test]
    fn full_labeler_assigns_to_own_cluster() {
        let (sample, clusters) = two_cluster_sample();
        let labeler = Labeler::full(&sample, &clusters, 0.4, 1.0 / 3.0);
        assert_eq!(labeler.label_point(&Transaction::from([1, 3, 4]), &Jaccard), Some(0));
        assert_eq!(labeler.label_point(&Transaction::from([10, 12, 13]), &Jaccard), Some(1));
    }

    #[test]
    fn unrelated_point_is_outlier() {
        let (sample, clusters) = two_cluster_sample();
        let labeler = Labeler::full(&sample, &clusters, 0.4, 1.0 / 3.0);
        assert_eq!(labeler.label_point(&Transaction::from([77, 88]), &Jaccard), None);
    }

    #[test]
    fn label_all_counts() {
        let (sample, clusters) = two_cluster_sample();
        let labeler = Labeler::full(&sample, &clusters, 0.4, 1.0 / 3.0);
        let data = vec![
            Transaction::from([1, 2, 3]),
            Transaction::from([2, 3, 4]),
            Transaction::from([10, 11, 12]),
            Transaction::from([55, 66, 77]),
        ];
        let l = labeler.label_all(&data, &Jaccard);
        assert_eq!(l.assignments, vec![Some(0), Some(0), Some(1), None]);
        assert_eq!(l.cluster_counts, vec![2, 1]);
        assert_eq!(l.num_outliers, 1);
    }

    #[test]
    fn fractional_sets_bounded_and_nonempty() {
        let (sample, clusters) = two_cluster_sample();
        let mut rng = StdRng::seed_from_u64(3);
        let labeler = Labeler::new(&sample, &clusters, 0.34, 0.4, 1.0 / 3.0, &mut rng).unwrap();
        for i in 0..labeler.num_clusters() {
            assert_eq!(labeler.set_size(i), 1); // 0.34 * 3 ≈ 1
        }
    }

    #[test]
    fn normalisation_prefers_denser_neighborhood() {
        // A point with 1 neighbor in a tiny set and 1 neighbor in a huge
        // set must prefer the tiny set (higher normalized count).
        let sample = vec![
            Transaction::from([1, 2]),
            // big cluster of unrelated-but-self-similar transactions plus
            // one neighbor of the query
            Transaction::from([1, 3]),
            Transaction::from([5, 6]),
            Transaction::from([5, 7]),
            Transaction::from([5, 8]),
            Transaction::from([5, 9]),
        ];
        let clusters = vec![vec![0], vec![1, 2, 3, 4, 5]];
        let labeler = Labeler::full(&sample, &clusters, 0.3, 0.5);
        // Query {1,2,3}: sim to {1,2} = 2/3 ≥ 0.3 (N₀=1, |L₀|=1);
        // sim to {1,3} = 2/3 (N₁=1, |L₁|=5). Scores 1/2^0.5 vs 1/6^0.5.
        assert_eq!(labeler.label_point(&Transaction::from([1, 2, 3]), &Jaccard), Some(0));
    }

    #[test]
    fn empty_cluster_gets_empty_labeling_set() {
        let (sample, _) = two_cluster_sample();
        let clusters = vec![vec![0, 1, 2], vec![]];
        let mut rng = StdRng::seed_from_u64(8);
        let labeler = Labeler::new(&sample, &clusters, 0.5, 0.4, 1.0 / 3.0, &mut rng).unwrap();
        assert_eq!(labeler.set_size(1), 0);
        // Points can still only land in the non-empty cluster.
        assert_eq!(
            labeler.label_point(&Transaction::from([1, 2, 4]), &Jaccard),
            Some(0)
        );
    }

    #[test]
    fn parallel_labeling_matches_serial() {
        let (sample, clusters) = two_cluster_sample();
        let labeler = Labeler::full(&sample, &clusters, 0.4, 1.0 / 3.0);
        let data: Vec<Transaction> = (0..3000u32)
            .map(|i| match i % 3 {
                0 => Transaction::from([1, 2, 3]),
                1 => Transaction::from([10, 11, 12]),
                _ => Transaction::from([70 + i % 5, 90 + i % 7]),
            })
            .collect();
        let serial = labeler.label_all(&data, &Jaccard);
        for threads in [1, 2, 5] {
            let par = labeler.label_all_parallel(&data, &Jaccard, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn cost_based_cutoff_parallelises_small_data_over_big_sets() {
        // 200 points × 600 set points = 120k score evaluations — well
        // past the cost cutoff even though the old `len < 1024` bailout
        // would have forced this serial.
        let sample: Vec<Transaction> = (0..600u32)
            .map(|i| {
                let base = if i < 300 { 0 } else { 100 };
                Transaction::from([base + i % 7, base + i % 11 + 20, base + i % 13 + 40])
            })
            .collect();
        let clusters = vec![(0..300).collect(), (300..600).collect()];
        let labeler = Labeler::full(&sample, &clusters, 0.2, 1.0 / 3.0);
        let data: Vec<Transaction> = (0..200u32)
            .map(|i| {
                let base = if i % 2 == 0 { 0 } else { 100 };
                Transaction::from([base + i % 7, base + i % 11 + 20])
            })
            .collect();
        let serial = labeler.label_all(&data, &Jaccard);
        for threads in [2, 3, 8] {
            assert_eq!(
                labeler.label_all_parallel(&data, &Jaccard, threads),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn governed_labeling_matches_parallel_and_observes_kills() {
        use crate::governor::{Phase, RunGovernor};
        let (sample, clusters) = two_cluster_sample();
        let labeler = Labeler::full(&sample, &clusters, 0.4, 1.0 / 3.0);
        let data: Vec<Transaction> = (0..Labeler::<Transaction>::GOVERNED_BATCH as u32 + 500)
            .map(|i| match i % 3 {
                0 => Transaction::from([1, 2, 3]),
                1 => Transaction::from([10, 11, 12]),
                _ => Transaction::from([70 + i % 5, 90 + i % 7]),
            })
            .collect();
        let serial = labeler.label_all(&data, &Jaccard);
        for threads in [1, 2, 8] {
            let governed = labeler
                .label_all_governed(&data, &Jaccard, threads, &RunGovernor::unlimited())
                .unwrap();
            assert_eq!(governed, serial, "threads={threads}");
        }
        // An injected kill at batch 1 stops after the first batch.
        let killer = RunGovernor::unlimited().with_kill_at(Phase::Labeling, 1);
        assert!(matches!(
            labeler.label_all_governed(&data, &Jaccard, 2, &killer),
            Err(RockError::Interrupted {
                phase: Phase::Labeling,
                ..
            })
        ));
    }

    #[test]
    fn bad_parameters_are_typed_errors_not_panics() {
        let (sample, clusters) = two_cluster_sample();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(matches!(
            Labeler::new(&sample, &clusters, 0.0, 0.4, 0.3, &mut rng),
            Err(RockError::InvalidLabelingFraction(_))
        ));
        assert!(matches!(
            Labeler::new(&sample, &clusters, 1.5, 0.4, 0.3, &mut rng),
            Err(RockError::InvalidLabelingFraction(_))
        ));
        assert!(matches!(
            Labeler::new(&sample, &clusters, f64::NAN, 0.4, 0.3, &mut rng),
            Err(RockError::InvalidLabelingFraction(_))
        ));
        assert!(matches!(
            Labeler::new(&sample, &clusters, 0.5, 1.4, 0.3, &mut rng),
            Err(RockError::InvalidTheta(_))
        ));
    }

    #[test]
    fn checked_labeling_matches_unchecked_on_finite_measures() {
        let (sample, clusters) = two_cluster_sample();
        let labeler = Labeler::full(&sample, &clusters, 0.4, 1.0 / 3.0);
        for p in [
            Transaction::from([1, 3, 4]),
            Transaction::from([10, 12, 13]),
            Transaction::from([77, 88]),
        ] {
            assert_eq!(
                labeler.label_point_checked(&p, &Jaccard).unwrap(),
                labeler.label_point(&p, &Jaccard)
            );
        }
    }

    #[test]
    fn checked_labeling_surfaces_nan_similarity() {
        struct AlwaysNan;
        impl Similarity<Transaction> for AlwaysNan {
            fn similarity(&self, _: &Transaction, _: &Transaction) -> f64 {
                f64::NAN
            }
        }
        let (sample, clusters) = two_cluster_sample();
        let labeler = Labeler::full(&sample, &clusters, 0.4, 1.0 / 3.0);
        let q = Transaction::from([1, 2, 3]);
        // Unchecked: NaN silently means "no neighbors anywhere" → outlier.
        assert_eq!(labeler.label_point(&q, &AlwaysNan), None);
        // Checked: a typed error instead.
        assert!(matches!(
            labeler.label_point_checked(&q, &AlwaysNan),
            Err(RockError::NonFiniteSimilarity { .. })
        ));
    }
}

//! Lightweight process-global performance counters for the hot kernels.
//!
//! Every bench-snapshot delta should be explainable: when a number
//! moves, these counters say whether the kernel touched fewer bytes,
//! emitted fewer pairs, evaluated fewer similarities, or merely
//! allocated less. Kernels record *aggregate* contributions (one atomic
//! add per kernel invocation or per worker, never per element), so the
//! counters cost nothing measurable and — because every contribution is
//! a sum over the same work partition — their totals are identical for
//! every thread count, like the kernel outputs themselves.
//!
//! The counters are monotonically increasing and process-global.
//! Phase-scoped readings are taken by differencing two [`snapshot`]s,
//! which is how [`crate::engine::Pipeline`] attributes counts to the
//! sample/cluster/label phases in the [`crate::report::RunReport`].
//! Allocation counts are fed by the counting allocator installed in the
//! bench harness (`crates/bench`); library builds leave them at zero.
//!
//! This module never reads the wall clock ([`crate::report::PhaseTimer`]
//! owns timing) and never panics.

use std::sync::atomic::{AtomicU64, Ordering};

static PAIRS_EMITTED: AtomicU64 = AtomicU64::new(0);
static BYTES_TOUCHED: AtomicU64 = AtomicU64::new(0);
static SIM_EVALS: AtomicU64 = AtomicU64::new(0);
static SCRATCH_REUSED: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static RELABELS: AtomicU64 = AtomicU64::new(0);
static DIRTY_LINKS: AtomicU64 = AtomicU64::new(0);
static REMERGES: AtomicU64 = AtomicU64::new(0);

/// Records `n` link-pairs emitted by a link kernel.
#[inline]
pub fn count_pairs_emitted(n: u64) {
    PAIRS_EMITTED.fetch_add(n, Ordering::Relaxed);
}

/// Records `n` bytes of working-set traffic (scatter buffers, CSR
/// output, bitset rows — an estimate of bytes written + read once).
#[inline]
pub fn count_bytes_touched(n: u64) {
    BYTES_TOUCHED.fetch_add(n, Ordering::Relaxed);
}

/// Records `n` pairwise similarity evaluations.
#[inline]
pub fn count_sim_evals(n: u64) {
    SIM_EVALS.fetch_add(n, Ordering::Relaxed);
}

/// Records `n` scratch structures reused from a pool instead of
/// freshly allocated (merge-loop heap/map recycling).
#[inline]
pub fn count_scratch_reused(n: u64) {
    SCRATCH_REUSED.fetch_add(n, Ordering::Relaxed);
}

/// Records `count` heap allocations totalling `bytes` — called by the
/// counting allocator in the bench harness.
#[inline]
pub fn count_allocs(count: u64, bytes: u64) {
    ALLOCS.fetch_add(count, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(bytes, Ordering::Relaxed);
}

/// Records `n` §4.6 labeling decisions taken by the online update path.
#[inline]
pub fn count_relabels(n: u64) {
    RELABELS.fetch_add(n, Ordering::Relaxed);
}

/// Records `n` dirty links accumulated by the online update path.
#[inline]
pub fn count_dirty_links(n: u64) {
    DIRTY_LINKS.fetch_add(n, Ordering::Relaxed);
}

/// Records `n` bounded re-merge passes triggered by staleness.
#[inline]
pub fn count_remerges(n: u64) {
    REMERGES.fetch_add(n, Ordering::Relaxed);
}

/// A point-in-time reading of all counters; subtract two to scope a
/// phase. All fields are cumulative totals since process start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Link-pairs emitted by link kernels.
    pub pairs_emitted: u64,
    /// Estimated working-set bytes touched by kernels.
    pub bytes_touched: u64,
    /// Pairwise similarity evaluations.
    pub sim_evals: u64,
    /// Scratch structures recycled instead of reallocated.
    pub scratch_reused: u64,
    /// Heap allocations observed by the bench counting allocator.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// §4.6 labeling decisions taken by the online update path.
    pub relabels: u64,
    /// Dirty links accumulated by the online update path.
    pub dirty_links: u64,
    /// Bounded re-merge passes triggered by staleness.
    pub remerges: u64,
}

impl PerfCounters {
    /// The counters accumulated since `earlier` (saturating, so a stale
    /// baseline never underflows).
    pub fn since(&self, earlier: &PerfCounters) -> PerfCounters {
        PerfCounters {
            pairs_emitted: self.pairs_emitted.saturating_sub(earlier.pairs_emitted),
            bytes_touched: self.bytes_touched.saturating_sub(earlier.bytes_touched),
            sim_evals: self.sim_evals.saturating_sub(earlier.sim_evals),
            scratch_reused: self.scratch_reused.saturating_sub(earlier.scratch_reused),
            allocs: self.allocs.saturating_sub(earlier.allocs),
            alloc_bytes: self.alloc_bytes.saturating_sub(earlier.alloc_bytes),
            relabels: self.relabels.saturating_sub(earlier.relabels),
            dirty_links: self.dirty_links.saturating_sub(earlier.dirty_links),
            remerges: self.remerges.saturating_sub(earlier.remerges),
        }
    }

    /// True when every counter is zero (nothing to report).
    pub fn is_zero(&self) -> bool {
        *self == PerfCounters::default()
    }
}

impl std::fmt::Display for PerfCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pairs={} bytes={} sims={} reused={} allocs={}/{}B",
            self.pairs_emitted,
            self.bytes_touched,
            self.sim_evals,
            self.scratch_reused,
            self.allocs,
            self.alloc_bytes
        )?;
        // The update-path counters only appear once the update path has
        // run: batch-only readings keep the historical compact form.
        if self.relabels != 0 || self.dirty_links != 0 || self.remerges != 0 {
            write!(
                f,
                " relabels={} dirty={} remerges={}",
                self.relabels, self.dirty_links, self.remerges
            )?;
        }
        Ok(())
    }
}

/// Reads all counters at once.
pub fn snapshot() -> PerfCounters {
    PerfCounters {
        pairs_emitted: PAIRS_EMITTED.load(Ordering::Relaxed),
        bytes_touched: BYTES_TOUCHED.load(Ordering::Relaxed),
        sim_evals: SIM_EVALS.load(Ordering::Relaxed),
        scratch_reused: SCRATCH_REUSED.load(Ordering::Relaxed),
        allocs: ALLOCS.load(Ordering::Relaxed),
        alloc_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        relabels: RELABELS.load(Ordering::Relaxed),
        dirty_links: DIRTY_LINKS.load(Ordering::Relaxed),
        remerges: REMERGES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_difference() {
        let before = snapshot();
        count_pairs_emitted(5);
        count_bytes_touched(100);
        count_sim_evals(7);
        count_scratch_reused(2);
        count_allocs(3, 48);
        let delta = snapshot().since(&before);
        // Other tests may run concurrently and bump the globals too, so
        // pin lower bounds, not exact values.
        assert!(delta.pairs_emitted >= 5);
        assert!(delta.bytes_touched >= 100);
        assert!(delta.sim_evals >= 7);
        assert!(delta.scratch_reused >= 2);
        assert!(delta.allocs >= 3);
        assert!(delta.alloc_bytes >= 48);
        assert!(!delta.is_zero());
    }

    #[test]
    fn stale_baseline_saturates() {
        let late = snapshot();
        let early = PerfCounters::default();
        // since() with swapped arguments must not underflow.
        assert_eq!(early.since(&late), PerfCounters::default());
    }

    #[test]
    fn display_is_compact() {
        let c = PerfCounters {
            pairs_emitted: 1,
            bytes_touched: 2,
            sim_evals: 3,
            scratch_reused: 4,
            allocs: 5,
            alloc_bytes: 6,
            ..PerfCounters::default()
        };
        assert_eq!(c.to_string(), "pairs=1 bytes=2 sims=3 reused=4 allocs=5/6B");
        assert!(PerfCounters::default().is_zero());
    }

    #[test]
    fn display_extends_only_when_update_counters_fire() {
        let c = PerfCounters {
            relabels: 7,
            dirty_links: 8,
            remerges: 9,
            ..PerfCounters::default()
        };
        assert_eq!(
            c.to_string(),
            "pairs=0 bytes=0 sims=0 reused=0 allocs=0/0B relabels=7 dirty=8 remerges=9"
        );
        let before = snapshot();
        count_relabels(2);
        count_dirty_links(3);
        count_remerges(1);
        let delta = snapshot().since(&before);
        assert!(delta.relabels >= 2);
        assert!(delta.dirty_links >= 3);
        assert!(delta.remerges >= 1);
    }
}

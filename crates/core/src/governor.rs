//! Run governance: cooperative cancellation, deadlines, memory budgets
//! and graceful-degradation policy.
//!
//! The §4.3 merge loop is the expensive, open-loop part of ROCK: on
//! paper-scale data it executes tens of thousands of heap operations with
//! no natural yield point. [`RunGovernor`] turns it (and every other
//! pipeline phase) into a *governed* computation: a cloneable
//! cancellation token, an optional wall-clock budget and an optional
//! memory budget are checked at phase boundaries and every
//! [`check_every`](RunGovernor::with_check_every) merges, surfacing
//! [`RockError::Interrupted`] instead of running away or dying to the OOM
//! killer.
//!
//! Checks are *cooperative*: a trip is observed at the next checkpoint,
//! so cancellation latency is bounded by one check interval (one merge
//! batch, one labeling batch, or one phase — whichever granularity the
//! phase runs at). All governor state lives behind an `Arc`, so clones
//! share the same token, clock and memory meter; cancel from any thread.
//!
//! Deterministic fault injection for the test harness rides the same
//! mechanism: [`RunGovernor::with_kill_at`] trips at an exact phase
//! checkpoint index, which is how the kill-at-merge-k crash/resume matrix
//! is driven (see `rock_data::faults`).
//!
//! See `DESIGN.md` §"Failure model" for the checkpoint placement table
//! and the degradation decision table.

use crate::error::RockError;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A pipeline phase, as reported by [`RockError::Interrupted`] and the
/// degradation notes in [`crate::report::RunReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Drawing the random sample (Fig. 2, step 1).
    Sample,
    /// Building the θ-neighbor graph (§3.1).
    Neighbors,
    /// Computing link counts (§3.2, §4.4).
    Links,
    /// The heap-driven agglomeration (§4.3, Fig. 3).
    Merge,
    /// Labeling the remaining data (§4.6).
    Labeling,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Sample => "sample",
            Phase::Neighbors => "neighbors",
            Phase::Links => "links",
            Phase::Merge => "merge",
            Phase::Labeling => "labeling",
        })
    }
}

/// Why a governed run stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TripReason {
    /// The cancellation token fired (externally, or via an injected
    /// kill point simulating a crash).
    Cancelled,
    /// The wall-clock budget ran out.
    DeadlineExceeded,
    /// The charged-memory budget was exceeded.
    MemoryBudgetExceeded,
}

impl fmt::Display for TripReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TripReason::Cancelled => "cancelled",
            TripReason::DeadlineExceeded => "deadline exceeded",
            TripReason::MemoryBudgetExceeded => "memory budget exceeded",
        })
    }
}

/// A cloneable cancellation flag shared by all clones of a governor.
///
/// Cancelling is idempotent and irreversible for the run it governs.
#[derive(Clone, Debug, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, un-fired token.
    pub fn new() -> Self {
        CancellationToken::default()
    }

    /// Fires the token: every governed loop sharing it stops at its next
    /// checkpoint.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Shared state behind every clone of a [`RunGovernor`].
#[derive(Debug)]
struct GovernorInner {
    cancel: CancellationToken,
    /// Wall-clock budget, measured from the first checkpoint.
    time_budget: Option<Duration>,
    /// Anchored lazily at the first checkpoint (or by [`RunGovernor::arm`])
    /// so a governor built ahead of time doesn't burn its budget idling.
    started: OnceLock<Instant>,
    memory_budget: Option<u64>,
    memory_charged: AtomicU64,
    /// Deterministic fault injection: trip at exactly this `(phase,
    /// checkpoint index)`, simulating a kill signal.
    kill_at: Option<(Phase, u64)>,
}

/// Budgets and cancellation for one clustering run.
///
/// The default governor is [`unlimited`](RunGovernor::unlimited): every
/// check passes, so governed entry points behave exactly like their
/// ungoverned counterparts. Clones share state — hand a clone to another
/// thread and call [`CancellationToken::cancel`] on
/// [`cancel_token`](RunGovernor::cancel_token) to stop the run.
#[derive(Clone, Debug)]
pub struct RunGovernor {
    inner: Arc<GovernorInner>,
    check_every: u64,
}

impl Default for RunGovernor {
    fn default() -> Self {
        RunGovernor::unlimited()
    }
}

impl RunGovernor {
    /// A governor with no budgets: all checks pass (unless the token is
    /// cancelled — an unlimited governor is still cancellable).
    pub fn unlimited() -> Self {
        RunGovernor {
            inner: Arc::new(GovernorInner {
                cancel: CancellationToken::new(),
                time_budget: None,
                started: OnceLock::new(),
                memory_budget: None,
                memory_charged: AtomicU64::new(0),
                kill_at: None,
            }),
            check_every: 64,
        }
    }

    /// Sets the wall-clock budget, measured from the first checkpoint
    /// (or from [`arm`](RunGovernor::arm)).
    pub fn with_time_budget(self, budget: Duration) -> Self {
        self.rebuild(|inner| inner.time_budget = Some(budget))
    }

    /// Uses `token` as the cancellation flag (e.g. one shared with a
    /// signal handler).
    pub fn with_cancel_token(self, token: CancellationToken) -> Self {
        self.rebuild(|inner| inner.cancel = token)
    }

    /// Sets the charged-memory budget in bytes.
    ///
    /// There is no portable resident-set meter, so the governor meters
    /// the dominant *tracked* allocations instead: phases
    /// [`charge`](RunGovernor::charge) their big structures (neighbor
    /// graph rows, link matrix, dense bitset rows) and the budget trips
    /// when the total would exceed `bytes`.
    pub fn with_memory_budget(self, bytes: u64) -> Self {
        self.rebuild(|inner| inner.memory_budget = Some(bytes))
    }

    /// Sets the merge-checkpoint granularity: deadline/cancel/memory are
    /// re-checked every `n ≥ 1` merges (default 64). Smaller values give
    /// tighter cancellation latency for more checking overhead.
    pub fn with_check_every(mut self, n: u64) -> Self {
        assert!(n >= 1, "check interval must be >= 1");
        self.check_every = n;
        self
    }

    /// Deterministic fault injection: trip (as [`TripReason::Cancelled`])
    /// at exactly checkpoint `index` of `phase` — e.g. after `index`
    /// merges. This is how the crash/resume fault matrix injects a kill
    /// at merge `k` without OS signals or timing races.
    pub fn with_kill_at(self, phase: Phase, index: u64) -> Self {
        self.rebuild(|inner| inner.kill_at = Some((phase, index)))
    }

    /// Rebuilds the shared state with `f` applied; used by the `with_*`
    /// builders (which run before the governor is shared, so the clone
    /// cost is irrelevant).
    fn rebuild(self, f: impl FnOnce(&mut GovernorInner)) -> Self {
        let inner = &self.inner;
        let mut out = GovernorInner {
            cancel: inner.cancel.clone(),
            time_budget: inner.time_budget,
            started: OnceLock::new(),
            memory_budget: inner.memory_budget,
            memory_charged: AtomicU64::new(inner.memory_charged.load(Ordering::Relaxed)),
            kill_at: inner.kill_at,
        };
        if let Some(&t) = inner.started.get() {
            let _ = out.started.set(t);
        }
        f(&mut out);
        RunGovernor {
            inner: Arc::new(out),
            check_every: self.check_every,
        }
    }

    /// The shared cancellation token.
    pub fn cancel_token(&self) -> CancellationToken {
        self.inner.cancel.clone()
    }

    /// A child governor for one unit of supervised work (e.g. one shard
    /// of a shard-and-merge run): it shares this governor's cancellation
    /// token — cancelling the parent stops every child at its next
    /// checkpoint — but starts with a fresh clock, an empty memory meter
    /// and no budgets of its own, so a child's deadline or memory slice
    /// never eats into the parent's. Give the child its own budgets with
    /// the usual `with_*` builders.
    pub fn child(&self) -> RunGovernor {
        RunGovernor {
            inner: Arc::new(GovernorInner {
                cancel: self.inner.cancel.clone(),
                time_budget: None,
                started: OnceLock::new(),
                memory_budget: None,
                memory_charged: AtomicU64::new(0),
                kill_at: None,
            }),
            check_every: self.check_every,
        }
    }

    /// Anchors the wall-clock budget at "now". Called implicitly by the
    /// first checkpoint; call explicitly to start the clock earlier.
    pub fn arm(&self) {
        let _ = self.inner.started.set(Instant::now());
    }

    /// Adds `bytes` to the charged-memory meter.
    pub fn charge(&self, bytes: u64) {
        self.inner.memory_charged.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Subtracts `bytes` from the charged-memory meter (saturating).
    pub fn release(&self, bytes: u64) {
        let _ = self
            .inner
            .memory_charged
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(bytes))
            });
    }

    /// Currently charged bytes.
    pub fn charged(&self) -> u64 {
        self.inner.memory_charged.load(Ordering::Relaxed)
    }

    /// Whether charging `extra` more bytes would exceed the memory
    /// budget (always `false` without a budget).
    pub fn would_exceed(&self, extra: u64) -> bool {
        match self.inner.memory_budget {
            Some(budget) => self.charged().saturating_add(extra) > budget,
            None => false,
        }
    }

    /// The first reason to stop, if any budget has tripped.
    fn trip(&self) -> Option<TripReason> {
        if self.inner.cancel.is_cancelled() {
            return Some(TripReason::Cancelled);
        }
        if let Some(budget) = self.inner.time_budget {
            let started = self.inner.started.get_or_init(Instant::now);
            if started.elapsed() > budget {
                return Some(TripReason::DeadlineExceeded);
            }
        }
        if let Some(budget) = self.inner.memory_budget {
            if self.charged() > budget {
                return Some(TripReason::MemoryBudgetExceeded);
            }
        }
        None
    }

    /// Phase-boundary checkpoint: errors with
    /// [`RockError::Interrupted`] (`resumable: false` — the caller
    /// upgrades it where a WAL makes resumption possible) if any budget
    /// has tripped.
    ///
    /// # Errors
    /// [`RockError::Interrupted`] when cancelled, past the deadline or
    /// over the memory budget.
    pub fn check(&self, phase: Phase) -> Result<(), RockError> {
        match self.trip() {
            Some(reason) => Err(RockError::Interrupted {
                phase,
                reason,
                resumable: false,
            }),
            None => Ok(()),
        }
    }

    /// In-phase checkpoint number `index` (e.g. `index` = merges done so
    /// far): applies the injected kill point exactly, and the budget
    /// checks every [`check_every`](RunGovernor::with_check_every)-th
    /// index.
    ///
    /// # Errors
    /// As [`check`](RunGovernor::check), plus the injected kill.
    pub fn check_at(&self, phase: Phase, index: u64) -> Result<(), RockError> {
        if let Some((p, at)) = self.inner.kill_at {
            if p == phase && index >= at {
                return Err(RockError::Interrupted {
                    phase,
                    reason: TripReason::Cancelled,
                    resumable: false,
                });
            }
        }
        if index.is_multiple_of(self.check_every) {
            self.check(phase)
        } else {
            Ok(())
        }
    }
}

/// What to do when a budget trips mid-run (chosen via
/// [`crate::rock::RockBuilder::degradation`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DegradationPolicy {
    /// Propagate [`RockError::Interrupted`] (the default).
    Fail,
    /// On a *memory* trip at kernel selection: force the sparse link
    /// kernel instead of the dense §4.4 matrix square, trading time for
    /// the `n²/8` bitset rows. Identical results, slower.
    SparseLinks,
    /// On a trip in the merge phase: restart on a random sub-sample of
    /// this fraction of the current sample (rounded up, floored at `k`).
    /// The clustering is a paper-faithful approximation (Fig. 2 with a
    /// smaller sample), recorded in the run report's provenance note.
    Subsample {
        /// Fraction of the sample to keep, in `(0, 1)`.
        fraction: f64,
    },
    /// On a trip in the merge phase: finish via the
    /// [`crate::components::neighbor_components`] fast path — connected
    /// components of the θ-neighbor graph, dropping components smaller
    /// than `min_cluster_size`. Coarser than link agglomeration, but
    /// linear-time and allocation-light.
    Components {
        /// Components smaller than this become outliers.
        min_cluster_size: usize,
    },
}

impl fmt::Display for DegradationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationPolicy::Fail => write!(f, "fail"),
            DegradationPolicy::SparseLinks => write!(f, "sparse-links"),
            DegradationPolicy::Subsample { fraction } => {
                write!(f, "subsample({fraction})")
            }
            DegradationPolicy::Components { min_cluster_size } => {
                write!(f, "components(min size {min_cluster_size})")
            }
        }
    }
}

/// Provenance of a degraded run: which policy fired, where, and why.
#[derive(Clone, Debug, PartialEq)]
pub struct DegradationNote {
    /// The policy that was applied.
    pub policy: DegradationPolicy,
    /// The phase whose budget tripped.
    pub phase: Phase,
    /// The budget that tripped.
    pub reason: TripReason,
    /// Human-readable provenance (what was dropped or downshifted).
    pub detail: String,
}

impl fmt::Display for DegradationNote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in {} phase ({}): {}",
            self.policy, self.phase, self.reason, self.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_passes() {
        let g = RunGovernor::unlimited();
        for i in 0..1000 {
            g.check(Phase::Merge).unwrap();
            g.check_at(Phase::Merge, i).unwrap();
        }
    }

    #[test]
    fn cancellation_trips_every_clone() {
        let g = RunGovernor::unlimited();
        let clone = g.clone();
        g.cancel_token().cancel();
        let err = clone.check(Phase::Links).unwrap_err();
        assert_eq!(
            err,
            RockError::Interrupted {
                phase: Phase::Links,
                reason: TripReason::Cancelled,
                resumable: false,
            }
        );
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let g = RunGovernor::unlimited().with_time_budget(Duration::ZERO);
        g.arm();
        assert!(matches!(
            g.check(Phase::Merge),
            Err(RockError::Interrupted {
                reason: TripReason::DeadlineExceeded,
                ..
            })
        ));
    }

    #[test]
    fn generous_deadline_passes() {
        let g = RunGovernor::unlimited().with_time_budget(Duration::from_secs(3600));
        g.check(Phase::Merge).unwrap();
    }

    #[test]
    fn memory_budget_meters_charges() {
        let g = RunGovernor::unlimited().with_memory_budget(1000);
        assert!(!g.would_exceed(1000));
        assert!(g.would_exceed(1001));
        g.charge(600);
        g.check(Phase::Links).unwrap();
        assert!(g.would_exceed(500));
        g.charge(600);
        assert!(matches!(
            g.check(Phase::Links),
            Err(RockError::Interrupted {
                reason: TripReason::MemoryBudgetExceeded,
                ..
            })
        ));
        g.release(600);
        g.check(Phase::Links).unwrap();
        assert_eq!(g.charged(), 600);
    }

    #[test]
    fn kill_at_fires_exactly_at_its_index_and_phase() {
        let g = RunGovernor::unlimited().with_kill_at(Phase::Merge, 5);
        for i in 0..5 {
            g.check_at(Phase::Merge, i).unwrap();
        }
        g.check_at(Phase::Labeling, 5).unwrap();
        assert!(g.check_at(Phase::Merge, 5).is_err());
        assert!(g.check_at(Phase::Merge, 6).is_err());
    }

    #[test]
    fn child_shares_cancellation_but_not_budgets() {
        let parent = RunGovernor::unlimited()
            .with_time_budget(Duration::ZERO)
            .with_memory_budget(10)
            .with_check_every(7);
        parent.arm();
        parent.charge(100);
        // The child starts unconstrained despite the parent's tripped
        // budgets, and inherits the checkpoint granularity.
        let child = parent.child();
        child.check(Phase::Merge).unwrap();
        assert_eq!(child.charged(), 0);
        assert!(!child.would_exceed(u64::MAX));
        assert!(child.check_at(Phase::Merge, 3).is_ok());
        // But cancellation is shared both ways (same token).
        parent.cancel_token().cancel();
        assert!(matches!(
            child.check(Phase::Merge),
            Err(RockError::Interrupted {
                reason: TripReason::Cancelled,
                ..
            })
        ));
    }

    #[test]
    fn check_every_gates_budget_checks() {
        let g = RunGovernor::unlimited()
            .with_time_budget(Duration::ZERO)
            .with_check_every(10);
        g.arm();
        // Off-interval indices skip the (tripped) budget check entirely.
        g.check_at(Phase::Merge, 3).unwrap();
        assert!(g.check_at(Phase::Merge, 10).is_err());
    }

    #[test]
    fn displays_are_informative() {
        assert_eq!(Phase::Merge.to_string(), "merge");
        assert_eq!(TripReason::DeadlineExceeded.to_string(), "deadline exceeded");
        let note = DegradationNote {
            policy: DegradationPolicy::Components { min_cluster_size: 3 },
            phase: Phase::Merge,
            reason: TripReason::MemoryBudgetExceeded,
            detail: "finished via neighbor components".into(),
        };
        let s = note.to_string();
        assert!(s.contains("components"), "{s}");
        assert!(s.contains("merge"), "{s}");
    }
}

//! The link-based criterion function `E_l` (§3.3).
//!
//! ```text
//!        k           Σ_{p_q, p_r ∈ Cᵢ} link(p_q, p_r)
//! E_l = Σ    nᵢ  ·  ─────────────────────────────────
//!       i=1                  nᵢ^(1+2f(θ))
//! ```
//!
//! The best clustering is the one maximising `E_l`: it rewards link mass
//! inside clusters but divides by each cluster's *expected* link mass so
//! that lumping everything into one cluster is not optimal. The clustering
//! loop greedily chases this function via the goodness measure; `E_l`
//! itself is exposed for evaluation, tests and the ablation benches.

use crate::goodness::Goodness;
use crate::links::LinkTable;

/// Sum of `link(p_q, p_r)` over unordered point pairs inside `cluster`.
///
/// `cluster` is a set of point ids valid for `links`.
pub fn intra_cluster_links(links: &LinkTable, cluster: &[u32]) -> u64 {
    let mut total = 0u64;
    for (a, &i) in cluster.iter().enumerate() {
        for &j in &cluster[a + 1..] {
            total += u64::from(links.count(i as usize, j as usize));
        }
    }
    total
}

/// Sum of `link(p_q, p_s)` over pairs with `p_q ∈ a`, `p_s ∈ b`.
pub fn cross_cluster_links(links: &LinkTable, a: &[u32], b: &[u32]) -> u64 {
    let mut total = 0u64;
    for &i in a {
        for &j in b {
            total += u64::from(links.count(i as usize, j as usize));
        }
    }
    total
}

/// Evaluates the criterion function `E_l` for a clustering.
///
/// Empty clusters contribute nothing. The goodness measure supplies the
/// exponent `1 + 2f(θ)`.
pub fn criterion_value(links: &LinkTable, clusters: &[Vec<u32>], goodness: &Goodness) -> f64 {
    clusters
        .iter()
        .filter(|c| !c.is_empty())
        .map(|c| {
            let ni = c.len() as f64;
            let intra = intra_cluster_links(links, c) as f64;
            ni * intra / goodness.expected_within(c.len())
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goodness::{BasketF, GoodnessKind};
    use crate::neighbors::NeighborGraph;
    use crate::links::compute_links_sparse;
    use crate::points::Transaction;
    use crate::similarity::{Jaccard, PointsWith};

    /// Two 4-point cliques with no cross-neighbor edges.
    fn two_cliques() -> (Vec<Transaction>, LinkTable) {
        let ts = vec![
            Transaction::from([1, 2, 3]),
            Transaction::from([1, 2, 4]),
            Transaction::from([1, 3, 4]),
            Transaction::from([2, 3, 4]),
            Transaction::from([10, 11, 12]),
            Transaction::from([10, 11, 13]),
            Transaction::from([10, 12, 13]),
            Transaction::from([11, 12, 13]),
        ];
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let links = compute_links_sparse(&g);
        (ts, links)
    }

    #[test]
    fn intra_links_of_a_clique() {
        let (_, links) = two_cliques();
        // Within a 4-clique every pair has 2 common neighbors.
        assert_eq!(intra_cluster_links(&links, &[0, 1, 2, 3]), 12);
        assert_eq!(intra_cluster_links(&links, &[4, 5, 6, 7]), 12);
    }

    #[test]
    fn cross_links_between_separated_cliques_is_zero() {
        let (_, links) = two_cliques();
        assert_eq!(cross_cluster_links(&links, &[0, 1, 2, 3], &[4, 5, 6, 7]), 0);
    }

    #[test]
    fn correct_clustering_maximises_criterion() {
        let (_, links) = two_cliques();
        let good = Goodness::new(0.5, BasketF, GoodnessKind::Normalized);
        let correct = vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]];
        let lumped = vec![vec![0, 1, 2, 3, 4, 5, 6, 7]];
        let split = vec![
            vec![0, 1],
            vec![2, 3],
            vec![4, 5],
            vec![6, 7],
        ];
        let mixed = vec![vec![0, 1, 4, 5], vec![2, 3, 6, 7]];
        let e_correct = criterion_value(&links, &correct, &good);
        for (name, alt) in [("lumped", lumped), ("split", split), ("mixed", mixed)] {
            let e = criterion_value(&links, &alt, &good);
            assert!(
                e_correct > e,
                "{name}: expected {e_correct} > {e}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_clusters() {
        let (_, links) = two_cliques();
        let good = Goodness::new(0.5, BasketF, GoodnessKind::Normalized);
        assert_eq!(criterion_value(&links, &[], &good), 0.0);
        // Singletons have no intra pairs.
        let singletons: Vec<Vec<u32>> = (0..8).map(|i| vec![i]).collect();
        assert_eq!(criterion_value(&links, &singletons, &good), 0.0);
    }
}

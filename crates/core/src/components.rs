//! Connected-components clustering over the neighbor graph — the
//! "QROCK" observation: when clusters are well-separated at threshold θ,
//! ROCK's merge loop run to exhaustion produces exactly the connected
//! components of the neighbor graph, and those can be computed in
//! O(n + edges) with a disjoint-set forest instead of O(n² log n).
//!
//! This is *not* a substitute for ROCK in general: components ignore link
//! counts entirely, so a single spurious neighbor edge chains two
//! clusters together (exactly the MST fragility of §1.1). It is provided
//! as the fast path for well-separated data and as a comparison point —
//! `tests` demonstrate both the agreement on separated data and the
//! chaining failure on Fig.-1's overlapping clusters.

use crate::cluster::Clustering;
use crate::neighbors::NeighborGraph;

/// Disjoint-set forest with path halving and union by size.
#[derive(Clone, Debug)]
pub struct DisjointSet {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl DisjointSet {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Unions the sets of `a` and `b`; returns false if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }

    /// Size of `x`'s set.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

/// Clusters points as connected components of the θ-neighbor graph.
///
/// Components smaller than `min_size` are reported as outliers (isolated
/// points always are).
pub fn neighbor_components(graph: &NeighborGraph, min_size: usize) -> Clustering {
    let n = graph.len();
    let mut dsu = DisjointSet::new(n);
    for i in 0..n {
        for &j in graph.neighbors(i) {
            dsu.union(i as u32, j);
        }
    }
    let mut by_root: crate::util::FxHashMap<u32, Vec<u32>> = Default::default();
    for p in 0..n as u32 {
        by_root.entry(dsu.find(p)).or_default().push(p);
    }
    let mut clusters = Vec::new();
    let mut outliers = Vec::new();
    // tidy-allow(nondeterministic-iter): cluster and outlier order is canonicalized by Clustering::new (members sorted, clusters by size then smallest member)
    for (_, members) in by_root {
        if members.len() >= min_size.max(2) {
            clusters.push(members);
        } else {
            outliers.extend(members);
        }
    }
    Clustering::new(clusters, outliers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::Transaction;
    use crate::similarity::{Jaccard, PointsWith};

    #[test]
    fn dsu_basic() {
        let mut d = DisjointSet::new(5);
        assert!(d.union(0, 1));
        assert!(d.union(3, 4));
        assert!(!d.union(1, 0));
        assert_eq!(d.find(0), d.find(1));
        assert_ne!(d.find(0), d.find(3));
        assert_eq!(d.set_size(4), 2);
        assert_eq!(d.set_size(2), 1);
    }

    #[test]
    fn separated_cliques_match_rock() {
        let ts = vec![
            Transaction::from([1, 2, 3]),
            Transaction::from([1, 2, 4]),
            Transaction::from([1, 3, 4]),
            Transaction::from([10, 11, 12]),
            Transaction::from([10, 11, 13]),
            Transaction::from([10, 12, 13]),
            Transaction::from([99]),
        ];
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let comp = neighbor_components(&g, 2);
        assert_eq!(comp.sizes(), vec![3, 3]);
        assert_eq!(comp.outliers, vec![6]);
        // Agreement with the full merge loop on separated data.
        let goodness = crate::goodness::Goodness::new(
            0.5,
            crate::goodness::BasketF,
            crate::goodness::GoodnessKind::Normalized,
        );
        let rock = crate::algorithm::RockAlgorithm::new(
            goodness,
            1,
            crate::algorithm::OutlierPolicy::default(),
        )
        .run(&g);
        assert_eq!(comp.clusters, rock.clustering.clusters);
    }

    #[test]
    fn overlapping_clusters_chain_together() {
        // Fig.-1 data: the two true clusters share neighbor edges through
        // the {1,2,x} transactions, so components lump everything — the
        // failure mode that motivates links.
        let ts = crate::testdata::figure1_transactions();
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let comp = neighbor_components(&g, 2);
        assert_eq!(comp.num_clusters(), 1, "components cannot separate Fig. 1");
    }

    #[test]
    fn min_size_moves_small_components_to_outliers() {
        let ts = vec![
            Transaction::from([1, 2]),
            Transaction::from([1, 2]),
            Transaction::from([5, 6, 7]),
            Transaction::from([5, 6, 8]),
            Transaction::from([5, 7, 8]),
        ];
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let c = neighbor_components(&g, 3);
        assert_eq!(c.sizes(), vec![3]);
        assert_eq!(c.outliers, vec![0, 1]);
    }
}

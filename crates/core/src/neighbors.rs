//! Neighbor computation (§3.1).
//!
//! A pair of points are *neighbors* if their similarity is at least the
//! user threshold θ: `sim(pᵢ, pⱼ) ≥ θ`. The [`NeighborGraph`] materialises,
//! for every point, the sorted list of its neighbors. Following the paper's
//! worked examples (§3.2, where `{1,2,6}` has exactly 5 links with
//! `{1,2,7}`), a point is **not** its own neighbor.
//!
//! Building the graph is the O(n²) pairwise scan the paper assumes (§4.4:
//! "the list of neighbors for every point can be computed in O(n²) time").
//! [`NeighborGraph::build_parallel`] shards the *upper triangle* across
//! rayon scoped workers — each unordered pair is evaluated exactly once,
//! by the worker owning its smaller endpoint — and the hit edges are
//! assembled into exact-capacity adjacency lists afterwards. The shard
//! concatenation reproduces the serial scan's ascending edge order, so
//! the result is bit-identical to the sequential scan for every thread
//! count (see DESIGN.md §"Performance model").

use crate::similarity::PairwiseSimilarity;
use crate::util::balanced_ranges;

/// Below this many pair evaluations the upper-triangle scan completes in
/// tens of microseconds and thread spawn/join dominates, so
/// [`NeighborGraph::build_parallel`] falls back to the serial scan.
const PARALLEL_CUTOFF_PAIRS: u64 = 32 * 1024;

/// The θ-neighbor graph of a point set: `lists[i]` holds the ids of all
/// points `j ≠ i` with `sim(i, j) ≥ θ`, sorted ascending.
#[derive(Clone, Debug, PartialEq)]
pub struct NeighborGraph {
    lists: Vec<Vec<u32>>,
    theta: f64,
}

impl NeighborGraph {
    /// Builds the neighbor graph with a single-threaded pairwise scan.
    ///
    /// Each unordered pair is evaluated exactly once.
    ///
    /// # Panics
    /// Panics if `theta` is not in `[0, 1]` or the point set has more than
    /// `u32::MAX` points.
    pub fn build<S: PairwiseSimilarity>(sim: &S, theta: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&theta),
            "theta must be in [0, 1], got {theta}"
        );
        let n = sim.len();
        assert!(u32::try_from(n).is_ok(), "too many points");
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if sim.sim(i, j) >= theta {
                    lists[i].push(j as u32);
                    lists[j].push(i as u32);
                }
            }
        }
        // The upper-triangle scan happens to emit each list in ascending
        // order, but the "lists sorted" invariant every consumer relies on
        // (binary_search in are_neighbors, merge joins in the link
        // kernels) is enforced here, in one place, rather than implied by
        // push order. Sorting an already-sorted run is a linear-time scan
        // for the pattern-defeating quicksort behind sort_unstable.
        for l in &mut lists {
            l.sort_unstable();
        }
        NeighborGraph { lists, theta }
    }

    /// Builds the neighbor graph using `threads` rayon workers.
    ///
    /// The upper triangle is sharded into contiguous row ranges balanced
    /// by row length (row `i` holds `n−1−i` pairs), one rayon task per
    /// range; each unordered pair is evaluated **exactly once**, by the
    /// worker owning its smaller endpoint. Workers append hit edges to a
    /// single per-worker buffer reused across all their rows; the final
    /// adjacency lists are then assembled in one degree-count +
    /// exact-capacity scatter pass with no per-row reallocation. (The
    /// previous design evaluated every pair twice to avoid
    /// synchronisation, which could never beat the serial scan by more
    /// than ~2× and lost to it outright on few cores.)
    ///
    /// **Determinism:** the shard buffers concatenate to the serial
    /// scan's ascending `(i, j)` edge order — for any shard split — so
    /// every list fills ascending (smaller partners first) and the
    /// result is bit-identical to [`NeighborGraph::build`] for every
    /// `threads`.
    ///
    /// # Panics
    /// Panics if `theta ∉ [0, 1]` or `threads == 0`.
    pub fn build_parallel<S: PairwiseSimilarity + Sync>(
        sim: &S,
        theta: f64,
        threads: usize,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&theta),
            "theta must be in [0, 1], got {theta}"
        );
        assert!(threads > 0, "need at least one thread");
        let n = sim.len();
        assert!(u32::try_from(n).is_ok(), "too many points");
        let pairs = n as u64 * (n as u64).saturating_sub(1) / 2;
        if threads == 1 || pairs < PARALLEL_CUTOFF_PAIRS {
            return Self::build(sim, theta);
        }
        let shards = balanced_ranges(n, threads, |i| (n - 1 - i) as u64);
        let mut edges: Vec<Vec<(u32, u32)>> = Vec::with_capacity(shards.len());
        edges.resize_with(shards.len(), Vec::new);
        rayon::scope(|scope| {
            for (range, out) in shards.iter().zip(edges.iter_mut()) {
                let range = range.clone();
                scope.spawn(move |_| {
                    // One hit buffer per worker, reused across its rows.
                    let mut hits: Vec<(u32, u32)> = Vec::new();
                    // tidy:kernel-hot-loop — upper-triangle similarity scan
                    for i in range {
                        for j in (i + 1)..n {
                            if sim.sim(i, j) >= theta {
                                hits.push((i as u32, j as u32));
                            }
                        }
                    }
                    // tidy:end-kernel-hot-loop
                    *out = hits;
                });
            }
        });
        crate::perf::count_sim_evals(pairs);
        // Exact-capacity assembly. Scanning edges in ascending (i, j)
        // order fills each list ascending: row r first receives its
        // smaller partners h (from edges (h, r), ascending h), then its
        // larger partners j (from edges (r, j), ascending j).
        let mut degree = vec![0usize; n];
        for &(i, j) in edges.iter().flatten() {
            degree[i as usize] += 1;
            degree[j as usize] += 1;
        }
        let mut lists: Vec<Vec<u32>> =
            degree.iter().map(|&d| Vec::with_capacity(d)).collect();
        for &(i, j) in edges.iter().flatten() {
            lists[i as usize].push(j);
            lists[j as usize].push(i);
        }
        debug_assert!(lists
            .iter()
            .all(|l| l.windows(2).all(|w| w[0] < w[1])));
        NeighborGraph { lists, theta }
    }

    /// Constructs a graph directly from adjacency lists (for tests and
    /// generators). Lists are sorted and deduplicated; self-loops are
    /// removed; symmetry is enforced by mirroring every edge.
    pub fn from_lists(mut lists: Vec<Vec<u32>>, theta: f64) -> Self {
        let n = lists.len();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (i, l) in lists.iter().enumerate() {
            for &j in l {
                assert!((j as usize) < n, "neighbor id out of range");
                if j as usize != i {
                    edges.push((i as u32, j));
                }
            }
        }
        for l in &mut lists {
            l.clear();
        }
        for (i, j) in edges {
            lists[i as usize].push(j);
            lists[j as usize].push(i);
        }
        for l in &mut lists {
            l.sort_unstable();
            l.dedup();
        }
        NeighborGraph { lists, theta }
    }

    /// The similarity threshold θ the graph was built with.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Whether the graph has no points.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// The sorted neighbor list of point `i`.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.lists[i]
    }

    /// Number of neighbors of point `i` (`mᵢ` in the paper's complexity
    /// analysis).
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        self.lists[i].len()
    }

    /// Whether `i` and `j` are neighbors.
    pub fn are_neighbors(&self, i: usize, j: usize) -> bool {
        self.lists[i].binary_search(&(j as u32)).is_ok()
    }

    /// Average neighbor count `m_a`.
    pub fn average_degree(&self) -> f64 {
        if self.lists.is_empty() {
            return 0.0;
        }
        self.lists.iter().map(Vec::len).sum::<usize>() as f64 / self.lists.len() as f64
    }

    /// Maximum neighbor count `m_m`.
    pub fn max_degree(&self) -> usize {
        self.lists.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Rough heap footprint in bytes, for the governed drivers'
    /// charged-memory meter: per-point list headers plus the neighbor
    /// ids themselves.
    pub fn memory_bytes(&self) -> usize {
        let headers = self.lists.len() * std::mem::size_of::<Vec<u32>>();
        let ids: usize = self.lists.iter().map(|l| l.capacity() * 4).sum();
        std::mem::size_of::<Self>() + headers + ids
    }

    /// Ids of points with fewer than `min_neighbors` neighbors — the
    /// "relatively isolated" points §4.6 discards as outliers before
    /// clustering.
    pub fn isolated_points(&self, min_neighbors: usize) -> Vec<u32> {
        self.lists
            .iter()
            .enumerate()
            .filter(|(_, l)| l.len() < min_neighbors)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::Transaction;
    use crate::similarity::{Jaccard, PointsWith, SimilarityMatrix};

    /// §1.1 Example 1.1's four transactions.
    fn example_1_1() -> Vec<Transaction> {
        vec![
            Transaction::from([1, 2, 3, 5]),
            Transaction::from([2, 3, 4, 5]),
            Transaction::from([1, 4]),
            Transaction::from([6]),
        ]
    }

    #[test]
    fn neighbors_at_positive_threshold() {
        // "a pair of transactions are neighbors if they contain at least
        // one item in common": any θ in (0, 0.2] realises this for these
        // transactions. {6} is isolated.
        let pts = example_1_1();
        let g = NeighborGraph::build(&PointsWith::new(&pts, Jaccard), 0.1);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.isolated_points(1), vec![3]);
    }

    #[test]
    fn theta_one_keeps_only_identical() {
        let pts = vec![
            Transaction::from([1, 2]),
            Transaction::from([1, 2]),
            Transaction::from([1, 3]),
        ];
        let g = NeighborGraph::build(&PointsWith::new(&pts, Jaccard), 1.0);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn theta_zero_connects_everything() {
        let pts = example_1_1();
        let g = NeighborGraph::build(&PointsWith::new(&pts, Jaccard), 0.0);
        for i in 0..4 {
            assert_eq!(g.degree(i), 3, "point {i}");
        }
        assert_eq!(g.average_degree(), 3.0);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn lists_are_sorted_and_symmetric() {
        let m = SimilarityMatrix::from_fn(20, |i, j| if (i + j) % 3 == 0 { 0.9 } else { 0.1 });
        let g = NeighborGraph::build(&m, 0.5);
        for i in 0..20 {
            let l = g.neighbors(i);
            assert!(l.windows(2).all(|w| w[0] < w[1]), "unsorted list at {i}");
            for &j in l {
                assert!(g.are_neighbors(j as usize, i), "asymmetric edge {i}-{j}");
            }
        }
    }

    #[test]
    fn sorted_invariant_holds_for_both_builders() {
        // The "lists sorted" invariant is enforced by the post-pass sort in
        // `build` and by per-row ascending scans in `build_parallel`; both
        // must yield strictly ascending (no duplicate), symmetric,
        // self-loop-free lists.
        let m = SimilarityMatrix::from_fn(301, |i, j| {
            ((i * j).wrapping_mul(2654435761) % 1000) as f64 / 1000.0
        });
        for (which, g) in [
            ("serial", NeighborGraph::build(&m, 0.55)),
            ("parallel", NeighborGraph::build_parallel(&m, 0.55, 4)),
        ] {
            for i in 0..g.len() {
                let l = g.neighbors(i);
                assert!(
                    l.windows(2).all(|w| w[0] < w[1]),
                    "{which}: unsorted or duplicated list at {i}"
                );
                assert!(!g.are_neighbors(i, i), "{which}: self-loop at {i}");
                for &j in l {
                    assert!(
                        g.are_neighbors(j as usize, i),
                        "{which}: asymmetric edge {i}-{j}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let m = SimilarityMatrix::from_fn(300, |i, j| {
            // deterministic pseudo-random pattern
            let h = (i * 2654435761 + j * 40503) % 1000;
            h as f64 / 1000.0
        });
        let serial = NeighborGraph::build(&m, 0.7);
        for threads in [1, 2, 3, 8] {
            let par = NeighborGraph::build_parallel(&m, 0.7, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_evaluates_each_pair_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        struct Counting(SimilarityMatrix, AtomicU64);
        impl PairwiseSimilarity for Counting {
            fn len(&self) -> usize {
                self.0.len()
            }
            fn sim(&self, i: usize, j: usize) -> f64 {
                self.1.fetch_add(1, Ordering::Relaxed);
                self.0.sim(i, j)
            }
        }
        let n = 300;
        let m = SimilarityMatrix::from_fn(n, |i, j| {
            ((i * j).wrapping_mul(2654435761) % 1000) as f64 / 1000.0
        });
        let counting = Counting(m, AtomicU64::new(0));
        let _ = NeighborGraph::build_parallel(&counting, 0.5, 4);
        assert_eq!(
            counting.1.load(Ordering::Relaxed),
            (n as u64) * (n as u64 - 1) / 2,
            "each unordered pair must be evaluated exactly once"
        );
    }

    #[test]
    fn from_lists_enforces_invariants() {
        let g = NeighborGraph::from_lists(vec![vec![1, 1, 0], vec![], vec![0]], 0.5);
        assert_eq!(g.neighbors(0), &[1, 2]); // self-loop dropped, dup removed, 2 mirrored
        assert_eq!(g.neighbors(1), &[0]); // mirrored from 0's list
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn empty_graph() {
        let m = SimilarityMatrix::new(0);
        let g = NeighborGraph::build(&m, 0.5);
        assert!(g.is_empty());
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    #[should_panic(expected = "theta must be in [0, 1]")]
    fn invalid_theta_panics() {
        let m = SimilarityMatrix::new(2);
        let _ = NeighborGraph::build(&m, 1.5);
    }
}

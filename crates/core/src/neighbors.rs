//! Neighbor computation (§3.1).
//!
//! A pair of points are *neighbors* if their similarity is at least the
//! user threshold θ: `sim(pᵢ, pⱼ) ≥ θ`. The [`NeighborGraph`] materialises,
//! for every point, the sorted list of its neighbors. Following the paper's
//! worked examples (§3.2, where `{1,2,6}` has exactly 5 links with
//! `{1,2,7}`), a point is **not** its own neighbor.
//!
//! Building the graph is the O(n²) pairwise scan the paper assumes (§4.4:
//! "the list of neighbors for every point can be computed in O(n²) time").
//! [`NeighborGraph::build_parallel`] shards rows across rayon scoped
//! workers; each worker writes its rows in place, so the result is
//! bit-identical to the sequential scan for every thread count (see
//! DESIGN.md §"Performance model").

use crate::similarity::PairwiseSimilarity;

/// The θ-neighbor graph of a point set: `lists[i]` holds the ids of all
/// points `j ≠ i` with `sim(i, j) ≥ θ`, sorted ascending.
#[derive(Clone, Debug, PartialEq)]
pub struct NeighborGraph {
    lists: Vec<Vec<u32>>,
    theta: f64,
}

impl NeighborGraph {
    /// Builds the neighbor graph with a single-threaded pairwise scan.
    ///
    /// Each unordered pair is evaluated exactly once.
    ///
    /// # Panics
    /// Panics if `theta` is not in `[0, 1]` or the point set has more than
    /// `u32::MAX` points.
    pub fn build<S: PairwiseSimilarity>(sim: &S, theta: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&theta),
            "theta must be in [0, 1], got {theta}"
        );
        let n = sim.len();
        assert!(u32::try_from(n).is_ok(), "too many points");
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if sim.sim(i, j) >= theta {
                    lists[i].push(j as u32);
                    lists[j].push(i as u32);
                }
            }
        }
        // The upper-triangle scan happens to emit each list in ascending
        // order, but the "lists sorted" invariant every consumer relies on
        // (binary_search in are_neighbors, merge joins in the link
        // kernels) is enforced here, in one place, rather than implied by
        // push order. Sorting an already-sorted run is a linear-time scan
        // for the pattern-defeating quicksort behind sort_unstable.
        for l in &mut lists {
            l.sort_unstable();
        }
        NeighborGraph { lists, theta }
    }

    /// Builds the neighbor graph using `threads` rayon workers.
    ///
    /// Rows are sharded into contiguous blocks, one rayon task per block;
    /// every worker evaluates the similarity of its rows against all other
    /// points, so each pair is evaluated twice. This trades ~2× similarity
    /// evaluations for perfect parallelism and no synchronisation; it wins
    /// for any non-trivial point count (see `bench/benches/neighbors.rs`).
    ///
    /// **Determinism:** each worker writes its own rows in place, and a
    /// row's content (`j` ascending) does not depend on which worker
    /// produced it or where shard boundaries fall — the result is
    /// bit-identical to [`NeighborGraph::build`] for every `threads`.
    ///
    /// # Panics
    /// Panics if `theta ∉ [0, 1]` or `threads == 0`.
    pub fn build_parallel<S: PairwiseSimilarity + Sync>(
        sim: &S,
        theta: f64,
        threads: usize,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&theta),
            "theta must be in [0, 1], got {theta}"
        );
        assert!(threads > 0, "need at least one thread");
        let n = sim.len();
        assert!(u32::try_from(n).is_ok(), "too many points");
        if threads == 1 || n < 256 {
            return Self::build(sim, theta);
        }
        let chunk = n.div_ceil(threads);
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        rayon::scope(|scope| {
            for (t, shard) in lists.chunks_mut(chunk).enumerate() {
                let lo = t * chunk;
                scope.spawn(move |_| {
                    for (offset, row) in shard.iter_mut().enumerate() {
                        let i = lo + offset;
                        for j in 0..n {
                            if j != i && sim.sim(i, j) >= theta {
                                row.push(j as u32);
                            }
                        }
                    }
                });
            }
        });
        NeighborGraph { lists, theta }
    }

    /// Constructs a graph directly from adjacency lists (for tests and
    /// generators). Lists are sorted and deduplicated; self-loops are
    /// removed; symmetry is enforced by mirroring every edge.
    pub fn from_lists(mut lists: Vec<Vec<u32>>, theta: f64) -> Self {
        let n = lists.len();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (i, l) in lists.iter().enumerate() {
            for &j in l {
                assert!((j as usize) < n, "neighbor id out of range");
                if j as usize != i {
                    edges.push((i as u32, j));
                }
            }
        }
        for l in &mut lists {
            l.clear();
        }
        for (i, j) in edges {
            lists[i as usize].push(j);
            lists[j as usize].push(i);
        }
        for l in &mut lists {
            l.sort_unstable();
            l.dedup();
        }
        NeighborGraph { lists, theta }
    }

    /// The similarity threshold θ the graph was built with.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Whether the graph has no points.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// The sorted neighbor list of point `i`.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.lists[i]
    }

    /// Number of neighbors of point `i` (`mᵢ` in the paper's complexity
    /// analysis).
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        self.lists[i].len()
    }

    /// Whether `i` and `j` are neighbors.
    pub fn are_neighbors(&self, i: usize, j: usize) -> bool {
        self.lists[i].binary_search(&(j as u32)).is_ok()
    }

    /// Average neighbor count `m_a`.
    pub fn average_degree(&self) -> f64 {
        if self.lists.is_empty() {
            return 0.0;
        }
        self.lists.iter().map(Vec::len).sum::<usize>() as f64 / self.lists.len() as f64
    }

    /// Maximum neighbor count `m_m`.
    pub fn max_degree(&self) -> usize {
        self.lists.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Rough heap footprint in bytes, for the governed drivers'
    /// charged-memory meter: per-point list headers plus the neighbor
    /// ids themselves.
    pub fn memory_bytes(&self) -> usize {
        let headers = self.lists.len() * std::mem::size_of::<Vec<u32>>();
        let ids: usize = self.lists.iter().map(|l| l.capacity() * 4).sum();
        std::mem::size_of::<Self>() + headers + ids
    }

    /// Ids of points with fewer than `min_neighbors` neighbors — the
    /// "relatively isolated" points §4.6 discards as outliers before
    /// clustering.
    pub fn isolated_points(&self, min_neighbors: usize) -> Vec<u32> {
        self.lists
            .iter()
            .enumerate()
            .filter(|(_, l)| l.len() < min_neighbors)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::Transaction;
    use crate::similarity::{Jaccard, PointsWith, SimilarityMatrix};

    /// §1.1 Example 1.1's four transactions.
    fn example_1_1() -> Vec<Transaction> {
        vec![
            Transaction::from([1, 2, 3, 5]),
            Transaction::from([2, 3, 4, 5]),
            Transaction::from([1, 4]),
            Transaction::from([6]),
        ]
    }

    #[test]
    fn neighbors_at_positive_threshold() {
        // "a pair of transactions are neighbors if they contain at least
        // one item in common": any θ in (0, 0.2] realises this for these
        // transactions. {6} is isolated.
        let pts = example_1_1();
        let g = NeighborGraph::build(&PointsWith::new(&pts, Jaccard), 0.1);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.isolated_points(1), vec![3]);
    }

    #[test]
    fn theta_one_keeps_only_identical() {
        let pts = vec![
            Transaction::from([1, 2]),
            Transaction::from([1, 2]),
            Transaction::from([1, 3]),
        ];
        let g = NeighborGraph::build(&PointsWith::new(&pts, Jaccard), 1.0);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn theta_zero_connects_everything() {
        let pts = example_1_1();
        let g = NeighborGraph::build(&PointsWith::new(&pts, Jaccard), 0.0);
        for i in 0..4 {
            assert_eq!(g.degree(i), 3, "point {i}");
        }
        assert_eq!(g.average_degree(), 3.0);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn lists_are_sorted_and_symmetric() {
        let m = SimilarityMatrix::from_fn(20, |i, j| if (i + j) % 3 == 0 { 0.9 } else { 0.1 });
        let g = NeighborGraph::build(&m, 0.5);
        for i in 0..20 {
            let l = g.neighbors(i);
            assert!(l.windows(2).all(|w| w[0] < w[1]), "unsorted list at {i}");
            for &j in l {
                assert!(g.are_neighbors(j as usize, i), "asymmetric edge {i}-{j}");
            }
        }
    }

    #[test]
    fn sorted_invariant_holds_for_both_builders() {
        // The "lists sorted" invariant is enforced by the post-pass sort in
        // `build` and by per-row ascending scans in `build_parallel`; both
        // must yield strictly ascending (no duplicate), symmetric,
        // self-loop-free lists.
        let m = SimilarityMatrix::from_fn(301, |i, j| {
            ((i * j).wrapping_mul(2654435761) % 1000) as f64 / 1000.0
        });
        for (which, g) in [
            ("serial", NeighborGraph::build(&m, 0.55)),
            ("parallel", NeighborGraph::build_parallel(&m, 0.55, 4)),
        ] {
            for i in 0..g.len() {
                let l = g.neighbors(i);
                assert!(
                    l.windows(2).all(|w| w[0] < w[1]),
                    "{which}: unsorted or duplicated list at {i}"
                );
                assert!(!g.are_neighbors(i, i), "{which}: self-loop at {i}");
                for &j in l {
                    assert!(
                        g.are_neighbors(j as usize, i),
                        "{which}: asymmetric edge {i}-{j}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let m = SimilarityMatrix::from_fn(300, |i, j| {
            // deterministic pseudo-random pattern
            let h = (i * 2654435761 + j * 40503) % 1000;
            h as f64 / 1000.0
        });
        let serial = NeighborGraph::build(&m, 0.7);
        for threads in [1, 2, 3, 8] {
            let par = NeighborGraph::build_parallel(&m, 0.7, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn from_lists_enforces_invariants() {
        let g = NeighborGraph::from_lists(vec![vec![1, 1, 0], vec![], vec![0]], 0.5);
        assert_eq!(g.neighbors(0), &[1, 2]); // self-loop dropped, dup removed, 2 mirrored
        assert_eq!(g.neighbors(1), &[0]); // mirrored from 0's list
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn empty_graph() {
        let m = SimilarityMatrix::new(0);
        let g = NeighborGraph::build(&m, 0.5);
        assert!(g.is_empty());
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    #[should_panic(expected = "theta must be in [0, 1]")]
    fn invalid_theta_panics() {
        let m = SimilarityMatrix::new(2);
        let _ = NeighborGraph::build(&m, 1.5);
    }
}

//! The end-to-end ROCK driver (Fig. 2): draw a random sample, cluster it
//! with links, label the remaining data.
//!
//! [`Rock`] is configured through [`RockBuilder`]; see the crate docs for
//! a worked example.

use crate::algorithm::{OutlierPolicy, RockAlgorithm, RockRun, WeedPolicy};
use crate::cluster::Clustering;
use crate::error::RockError;
use crate::goodness::{BasketF, FTheta, Goodness, GoodnessKind};
use crate::labeling::{Labeler, Labeling};
use crate::neighbors::NeighborGraph;
use crate::report::RunReport;
use crate::similarity::{CheckedSimilarity, PairwiseSimilarity, PointsWith, Similarity};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

/// Validated configuration of a ROCK run.
#[derive(Clone, Copy, Debug)]
pub struct RockConfig {
    /// Similarity threshold θ for the neighbor definition (§3.1).
    pub theta: f64,
    /// Desired number of clusters `k`. A hint: ROCK may stop with more
    /// clusters when links run out, or fewer after outlier weeding (§5.2).
    pub k: usize,
    /// Resolved `f(θ)` (§3.3).
    pub ftheta: f64,
    /// Normalized (paper) or raw-link (ablation) merge goodness.
    pub goodness_kind: GoodnessKind,
    /// Outlier handling (§4.6).
    pub outliers: OutlierPolicy,
    /// Sample size for the Fig.-2 pipeline; `None` clusters all points.
    pub sample_size: Option<usize>,
    /// Fraction of each cluster used as the labeling set Lᵢ (§4.6).
    pub labeling_fraction: f64,
    /// RNG seed for sampling/labeling; `None` seeds from the OS.
    pub seed: Option<u64>,
    /// Worker threads for the neighbor, link and labeling kernels
    /// (1 = serial). Results are bit-identical for every value.
    pub threads: usize,
}

/// Builder for [`Rock`]. All parameters have paper-faithful defaults:
/// θ = 0.5, k = 2, `f(θ) = (1−θ)/(1+θ)`, normalized goodness,
/// neighbor-less points pruned as outliers, no sampling, labeling
/// fraction 0.25, one thread.
#[derive(Debug)]
pub struct RockBuilder {
    theta: f64,
    k: usize,
    ftheta: Box<dyn FThetaDyn>,
    goodness_kind: GoodnessKind,
    outliers: OutlierPolicy,
    sample_size: Option<usize>,
    labeling_fraction: f64,
    seed: Option<u64>,
    threads: usize,
}

/// Object-safe shim over [`FTheta`] so the builder can hold any estimate.
trait FThetaDyn: std::fmt::Debug {
    fn f_dyn(&self, theta: f64) -> f64;
}

impl<T: FTheta + std::fmt::Debug> FThetaDyn for T {
    fn f_dyn(&self, theta: f64) -> f64 {
        self.f(theta)
    }
}

impl Default for RockBuilder {
    fn default() -> Self {
        RockBuilder {
            theta: 0.5,
            k: 2,
            ftheta: Box::new(BasketF),
            goodness_kind: GoodnessKind::Normalized,
            outliers: OutlierPolicy::default(),
            sample_size: None,
            labeling_fraction: 0.25,
            seed: None,
            threads: 1,
        }
    }
}

impl RockBuilder {
    /// Sets the similarity threshold θ.
    pub fn theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Sets the desired number of clusters.
    pub fn clusters(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the neighbor-exponent estimate `f(θ)` (default [`BasketF`]).
    pub fn f_theta<F: FTheta + std::fmt::Debug + 'static>(mut self, f: F) -> Self {
        self.ftheta = Box::new(f);
        self
    }

    /// Selects the merge-goodness variant (default normalized).
    pub fn goodness_kind(mut self, kind: GoodnessKind) -> Self {
        self.goodness_kind = kind;
        self
    }

    /// Sets the outlier policy (default: prune neighbor-less points).
    pub fn outlier_policy(mut self, policy: OutlierPolicy) -> Self {
        self.outliers = policy;
        self
    }

    /// Enables mid-flight weeding: stop at `stop_multiple · k` clusters and
    /// discard those smaller than `min_cluster_size` (§4.6).
    pub fn weed_outliers(mut self, stop_multiple: f64, min_cluster_size: usize) -> Self {
        self.outliers.weed = Some(WeedPolicy {
            stop_multiple,
            min_cluster_size,
        });
        self
    }

    /// Clusters a random sample of this size instead of the full data
    /// (Fig. 2); remaining points are assigned in the labeling phase.
    pub fn sample_size(mut self, size: usize) -> Self {
        self.sample_size = Some(size);
        self
    }

    /// Sets the fraction of each cluster used for labeling (§4.6).
    pub fn labeling_fraction(mut self, fraction: f64) -> Self {
        self.labeling_fraction = fraction;
        self
    }

    /// Fixes the RNG seed for reproducible sampling and labeling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the number of worker threads used by the neighbor, link and
    /// labeling kernels. The clustering result does not depend on it.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Validates the configuration and produces the driver.
    pub fn build(self) -> Result<Rock, RockError> {
        if !(0.0..=1.0).contains(&self.theta) {
            return Err(RockError::InvalidTheta(self.theta));
        }
        if self.k == 0 {
            return Err(RockError::InvalidK(self.k));
        }
        let ftheta = self.ftheta.f_dyn(self.theta);
        if !ftheta.is_finite() || ftheta < 0.0 {
            return Err(RockError::InvalidFTheta(ftheta));
        }
        if !(self.labeling_fraction > 0.0 && self.labeling_fraction <= 1.0) {
            return Err(RockError::InvalidLabelingFraction(self.labeling_fraction));
        }
        if let Some(s) = self.sample_size {
            if s < self.k {
                return Err(RockError::InvalidSampleSize {
                    sample_size: s,
                    k: self.k,
                });
            }
        }
        if let Some(w) = &self.outliers.weed {
            if w.stop_multiple < 1.0 {
                return Err(RockError::InvalidWeedMultiple(w.stop_multiple));
            }
        }
        if self.threads == 0 {
            return Err(RockError::InvalidThreads(self.threads));
        }
        Ok(Rock {
            config: RockConfig {
                theta: self.theta,
                k: self.k,
                ftheta,
                goodness_kind: self.goodness_kind,
                outliers: self.outliers,
                sample_size: self.sample_size,
                labeling_fraction: self.labeling_fraction,
                seed: self.seed,
                threads: self.threads,
            },
        })
    }
}

/// The configured ROCK driver.
///
/// # Examples
/// ```
/// use rock_core::points::Transaction;
/// use rock_core::similarity::Jaccard;
/// use rock_core::rock::Rock;
///
/// let baskets = vec![
///     Transaction::from([1, 2, 3]),
///     Transaction::from([1, 2, 4]),
///     Transaction::from([1, 3, 4]),
///     Transaction::from([7, 8, 9]),
///     Transaction::from([7, 8, 10]),
///     Transaction::from([7, 9, 10]),
/// ];
/// let rock = Rock::builder().theta(0.5).clusters(2).build().unwrap();
/// let run = rock.cluster(&baskets, &Jaccard);
/// assert_eq!(run.clustering.num_clusters(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Rock {
    config: RockConfig,
}

/// Output of the full sampled pipeline ([`Rock::run`]).
#[derive(Clone, Debug)]
pub struct RockResult {
    /// Indices (into the input data) of the clustered sample.
    pub sample_indices: Vec<usize>,
    /// The clustering of the sample, with sample-relative point ids.
    pub sample_run: RockRun,
    /// Labeling of the *entire* input data set.
    pub labeling: Labeling,
}

impl RockResult {
    /// The clusters over the full data set (point ids index the input
    /// data), with labeling outliers in `outliers`.
    pub fn full_clustering(&self) -> Clustering {
        let k = self.labeling.cluster_counts.len();
        let mut clusters: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut outliers = Vec::new();
        for (p, a) in self.labeling.assignments.iter().enumerate() {
            match a {
                Some(c) => clusters[*c].push(p as u32),
                None => outliers.push(p as u32),
            }
        }
        Clustering::new(clusters, outliers)
    }
}

impl Rock {
    /// Starts building a driver.
    pub fn builder() -> RockBuilder {
        RockBuilder::default()
    }

    /// The validated configuration.
    pub fn config(&self) -> &RockConfig {
        &self.config
    }

    fn goodness(&self) -> Goodness {
        Goodness::new(
            self.config.theta,
            crate::goodness::ConstantF(self.config.ftheta),
            self.config.goodness_kind,
        )
    }

    fn algorithm(&self) -> RockAlgorithm {
        RockAlgorithm::new(self.goodness(), self.config.k, self.config.outliers)
    }

    fn rng(&self) -> StdRng {
        match self.config.seed {
            Some(s) => StdRng::seed_from_u64(s),
            None => StdRng::from_os_rng(),
        }
    }

    /// Clusters `points` in memory (no sampling/labeling).
    pub fn cluster<P, S>(&self, points: &[P], measure: &S) -> RockRun
    where
        S: Similarity<P> + Sync,
        P: Sync,
    {
        let pw = PointsWith::new(points, measure);
        self.cluster_pairwise(&pw)
    }

    /// Clusters a point set given only index-pairwise similarities —
    /// e.g. an expert [`crate::similarity::SimilarityMatrix`] (§1.2).
    pub fn cluster_pairwise<PS: PairwiseSimilarity + Sync>(&self, sim: &PS) -> RockRun {
        let graph = if self.config.threads > 1 {
            NeighborGraph::build_parallel(sim, self.config.theta, self.config.threads)
        } else {
            NeighborGraph::build(sim, self.config.theta)
        };
        self.algorithm().run_parallel(&graph, self.config.threads)
    }

    /// Clusters a prebuilt neighbor graph.
    ///
    /// The graph's θ should match the configured θ for the goodness
    /// normalisation to be meaningful.
    pub fn cluster_graph(&self, graph: &NeighborGraph) -> RockRun {
        self.algorithm().run_parallel(graph, self.config.threads)
    }

    /// Like [`Rock::cluster`], but guards the API boundary against a
    /// misbehaving measure: any NaN/±∞ similarity is surfaced as
    /// [`RockError::NonFiniteSimilarity`] instead of silently skewing the
    /// neighbor graph (NaN compares below every θ) or panicking later in
    /// the merge heap.
    ///
    /// # Errors
    /// Returns [`RockError::NonFiniteSimilarity`] if `measure` returned a
    /// non-finite value for any pair.
    pub fn try_cluster<P, S>(&self, points: &[P], measure: &S) -> Result<RockRun, RockError>
    where
        S: Similarity<P> + Sync,
        P: Sync,
    {
        let checked = CheckedSimilarity::new(measure);
        let pw = PointsWith::new(points, &checked);
        let graph = if self.config.threads > 1 {
            NeighborGraph::build_parallel(&pw, self.config.theta, self.config.threads)
        } else {
            NeighborGraph::build(&pw, self.config.theta)
        };
        if let Some(e) = checked.error() {
            return Err(e);
        }
        Ok(self.algorithm().run_parallel(&graph, self.config.threads))
    }

    /// Like [`Rock::cluster_pairwise`], but with the non-finite guard of
    /// [`Rock::try_cluster`].
    ///
    /// # Errors
    /// Returns [`RockError::NonFiniteSimilarity`] if `sim` returned a
    /// non-finite value for any pair.
    pub fn try_cluster_pairwise<PS: PairwiseSimilarity + Sync>(
        &self,
        sim: &PS,
    ) -> Result<RockRun, RockError> {
        let checked = CheckedSimilarity::new(sim);
        let graph = if self.config.threads > 1 {
            NeighborGraph::build_parallel(&checked, self.config.theta, self.config.threads)
        } else {
            NeighborGraph::build(&checked, self.config.theta)
        };
        if let Some(e) = checked.error() {
            return Err(e);
        }
        Ok(self.algorithm().run_parallel(&graph, self.config.threads))
    }

    /// The full Fig.-2 pipeline: draw a random sample (if configured),
    /// cluster it, then label all of `data`.
    ///
    /// Without a configured sample size the whole data set is clustered
    /// and the labeling phase still runs (useful for assigning outliers
    /// and for uniform reporting).
    pub fn run<P, S>(&self, data: &[P], measure: &S) -> RockResult
    where
        P: Clone + Sync,
        S: Similarity<P> + Sync,
    {
        let mut rng = self.rng();
        let sample_indices = match self.config.sample_size {
            Some(size) if size < data.len() => {
                crate::sampling::sample_indices(data.len(), size, &mut rng)
            }
            _ => (0..data.len()).collect(),
        };
        let sample: Vec<P> = sample_indices.iter().map(|&i| data[i].clone()).collect();
        let sample_run = self.cluster(&sample, measure);
        let labeler = Labeler::new(
            &sample,
            &sample_run.clustering.clusters,
            self.config.labeling_fraction,
            self.config.theta,
            self.config.ftheta,
            &mut rng,
        )
        .expect("labeling parameters validated by RockBuilder::build");
        let labeling = labeler.label_all_parallel(data, measure, self.config.threads);
        RockResult {
            sample_indices,
            sample_run,
            labeling,
        }
    }

    /// The full Fig.-2 pipeline with the robustness guarantees of the
    /// checked entry points, plus a structured [`RunReport`] (per-phase
    /// wall-clock timings, outlier count) alongside the results.
    ///
    /// Produces results identical to [`Rock::run`] under the same seed:
    /// the two share the sampling and labeling RNG stream.
    ///
    /// # Errors
    /// Returns [`RockError::NonFiniteSimilarity`] if `measure` returned a
    /// non-finite value during clustering or labeling.
    pub fn try_run<P, S>(&self, data: &[P], measure: &S) -> Result<(RockResult, RunReport), RockError>
    where
        P: Clone + Sync,
        S: Similarity<P> + Sync,
    {
        let mut report = RunReport::new();
        let checked = CheckedSimilarity::new(measure);
        let mut rng = self.rng();

        let t = Instant::now();
        let sample_indices = match self.config.sample_size {
            Some(size) if size < data.len() => {
                crate::sampling::sample_indices(data.len(), size, &mut rng)
            }
            _ => (0..data.len()).collect(),
        };
        let sample: Vec<P> = sample_indices.iter().map(|&i| data[i].clone()).collect();
        report.record_phase("sample", t.elapsed());

        let t = Instant::now();
        let pw = PointsWith::new(&sample, &checked);
        let graph = if self.config.threads > 1 {
            NeighborGraph::build_parallel(&pw, self.config.theta, self.config.threads)
        } else {
            NeighborGraph::build(&pw, self.config.theta)
        };
        if let Some(e) = checked.error() {
            return Err(e);
        }
        let sample_run = self.algorithm().run_parallel(&graph, self.config.threads);
        report.record_phase("cluster", t.elapsed());

        let t = Instant::now();
        let labeler = Labeler::new(
            &sample,
            &sample_run.clustering.clusters,
            self.config.labeling_fraction,
            self.config.theta,
            self.config.ftheta,
            &mut rng,
        )?;
        let labeling = labeler.label_all_parallel(data, &checked, self.config.threads);
        if let Some(e) = checked.error() {
            return Err(e);
        }
        report.record_phase("label", t.elapsed());

        report.records_read = data.len() as u64;
        report.outliers = labeling.num_outliers as u64;
        Ok((
            RockResult {
                sample_indices,
                sample_run,
                labeling,
            },
            report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::Transaction;
    use crate::similarity::Jaccard;

    fn two_basket_clusters(n_each: usize) -> Vec<Transaction> {
        // Cluster A over items 0..6, cluster B over items 100..106;
        // transactions are deterministic 3-subsets.
        let mut data = Vec::new();
        for c in 0..2u32 {
            let base = c * 100;
            let mut i = 0;
            'outer: for x in 0..6u32 {
                for y in (x + 1)..6 {
                    for z in (y + 1)..6 {
                        data.push(Transaction::from([base + x, base + y, base + z]));
                        i += 1;
                        if i >= n_each {
                            break 'outer;
                        }
                    }
                }
            }
        }
        data
    }

    #[test]
    fn builder_defaults_build() {
        let rock = Rock::builder().build().unwrap();
        assert_eq!(rock.config().theta, 0.5);
        assert_eq!(rock.config().k, 2);
        assert!((rock.config().ftheta - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(
            Rock::builder().theta(2.0).build(),
            Err(RockError::InvalidTheta(_))
        ));
        assert!(matches!(
            Rock::builder().clusters(0).build(),
            Err(RockError::InvalidK(0))
        ));
        assert!(matches!(
            Rock::builder().labeling_fraction(0.0).build(),
            Err(RockError::InvalidLabelingFraction(_))
        ));
        assert!(matches!(
            Rock::builder().clusters(10).sample_size(5).build(),
            Err(RockError::InvalidSampleSize { .. })
        ));
        assert!(matches!(
            Rock::builder().weed_outliers(0.5, 2).build(),
            Err(RockError::InvalidWeedMultiple(_))
        ));
        assert!(matches!(
            Rock::builder().threads(0).build(),
            Err(RockError::InvalidThreads(0))
        ));
    }

    #[test]
    fn cluster_separates_baskets() {
        let data = two_basket_clusters(20);
        let rock = Rock::builder().theta(0.5).clusters(2).build().unwrap();
        let run = rock.cluster(&data, &Jaccard);
        assert_eq!(run.clustering.num_clusters(), 2);
        assert_eq!(run.clustering.sizes(), vec![20, 20]);
    }

    #[test]
    fn sampled_pipeline_labels_everything() {
        let data = two_basket_clusters(20);
        let rock = Rock::builder()
            .theta(0.5)
            .clusters(2)
            .sample_size(16)
            .labeling_fraction(1.0)
            .seed(42)
            .build()
            .unwrap();
        let result = rock.run(&data, &Jaccard);
        assert_eq!(result.sample_indices.len(), 16);
        let full = result.full_clustering();
        assert_eq!(full.num_clusters(), 2);
        // Every point labeled; the two sides must not mix.
        assert_eq!(full.num_points(), data.len());
        for c in &full.clusters {
            let sides: std::collections::HashSet<bool> =
                c.iter().map(|&p| (p as usize) < 20).collect();
            assert_eq!(sides.len(), 1, "cluster mixes the two item universes");
        }
    }

    #[test]
    fn run_without_sampling_uses_all_points() {
        let data = two_basket_clusters(5);
        let rock = Rock::builder()
            .theta(0.5)
            .clusters(2)
            .seed(1)
            .labeling_fraction(1.0)
            .build()
            .unwrap();
        let result = rock.run(&data, &Jaccard);
        assert_eq!(result.sample_indices.len(), data.len());
        assert_eq!(result.labeling.assignments.len(), data.len());
    }

    #[test]
    fn try_run_matches_run_and_reports() {
        let data = two_basket_clusters(20);
        let rock = Rock::builder()
            .theta(0.5)
            .clusters(2)
            .sample_size(16)
            .labeling_fraction(1.0)
            .seed(7)
            .build()
            .unwrap();
        let plain = rock.run(&data, &Jaccard);
        let (checked, report) = rock.try_run(&data, &Jaccard).unwrap();
        assert_eq!(plain.sample_indices, checked.sample_indices);
        assert_eq!(plain.labeling, checked.labeling);
        assert_eq!(report.records_read, data.len() as u64);
        assert_eq!(report.outliers, checked.labeling.num_outliers as u64);
        let phases: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(phases, vec!["sample", "cluster", "label"]);
        assert!(!report.degraded());
    }

    #[test]
    fn nan_measure_is_a_typed_error_not_a_panic() {
        struct NanSim;
        impl Similarity<Transaction> for NanSim {
            fn similarity(&self, _: &Transaction, _: &Transaction) -> f64 {
                f64::NAN
            }
        }
        let data = two_basket_clusters(5);
        let rock = Rock::builder().theta(0.5).clusters(2).seed(1).build().unwrap();
        assert!(matches!(
            rock.try_cluster(&data, &NanSim),
            Err(RockError::NonFiniteSimilarity { .. })
        ));
        assert!(matches!(
            rock.try_run(&data, &NanSim),
            Err(RockError::NonFiniteSimilarity { .. })
        ));
    }

    #[test]
    fn injected_similarity_faults_hit_the_guard() {
        use crate::similarity::FaultySimilarity;
        let data = two_basket_clusters(10);
        let rock = Rock::builder().theta(0.5).clusters(2).build().unwrap();
        let faulty = FaultySimilarity::new(Jaccard, 3, 0.2);
        let outcome = rock.try_cluster(&data, &faulty);
        if faulty.injected() > 0 {
            assert!(matches!(
                outcome,
                Err(RockError::NonFiniteSimilarity { .. })
            ));
        } else {
            assert!(outcome.is_ok());
        }
        // At rate 0.2 over 190 pairs the schedule fires essentially
        // always; make sure the harness actually exercised the guard.
        assert!(faulty.injected() > 0, "fault schedule never fired");
    }

    #[test]
    fn nan_pairwise_source_is_a_typed_error() {
        struct NanPairs;
        impl PairwiseSimilarity for NanPairs {
            fn len(&self) -> usize {
                6
            }
            fn sim(&self, i: usize, j: usize) -> f64 {
                if i + j == 5 {
                    f64::NAN
                } else {
                    0.4
                }
            }
        }
        let rock = Rock::builder().theta(0.5).clusters(2).build().unwrap();
        assert!(matches!(
            rock.try_cluster_pairwise(&NanPairs),
            Err(RockError::NonFiniteSimilarity { .. })
        ));
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let data = two_basket_clusters(20);
        let make = || {
            Rock::builder()
                .theta(0.5)
                .clusters(2)
                .sample_size(16)
                .seed(7)
                .build()
                .unwrap()
                .run(&data, &Jaccard)
        };
        let (a, b) = (make(), make());
        assert_eq!(a.sample_indices, b.sample_indices);
        assert_eq!(a.labeling.assignments, b.labeling.assignments);
    }
}

//! The end-to-end ROCK driver (Fig. 2): draw a random sample, cluster it
//! with links, label the remaining data.
//!
//! [`Rock`] is configured through [`RockBuilder`]; see the crate docs for
//! a worked example. The governed entry points ([`Rock::try_run`],
//! [`Rock::cluster_wal`], [`Rock::resume_cluster`]) are thin wrappers
//! over the staged [`crate::engine::Pipeline`]; [`Rock::session`] hands
//! out the pipeline directly for custom stage compositions.

use crate::algorithm::{OutlierPolicy, RockAlgorithm, RockRun, WeedPolicy};
use crate::cluster::Clustering;
use crate::engine::Pipeline;
use crate::error::RockError;
use crate::goodness::{BasketF, FTheta, Goodness, GoodnessKind};
use crate::governor::{CancellationToken, DegradationPolicy, RunGovernor};
use crate::labeling::{Labeler, Labeling};
use crate::neighbors::NeighborGraph;
use crate::report::RunReport;
use crate::similarity::{CheckedSimilarity, PairwiseSimilarity, PointsWith, Similarity};
use crate::wal::MergeWal;
use rand::{rngs::StdRng, SeedableRng};
use std::time::Duration;

/// Validated configuration of a ROCK run.
#[derive(Clone, Copy, Debug)]
pub struct RockConfig {
    /// Similarity threshold θ for the neighbor definition (§3.1).
    pub theta: f64,
    /// Desired number of clusters `k`. A hint: ROCK may stop with more
    /// clusters when links run out, or fewer after outlier weeding (§5.2).
    pub k: usize,
    /// Resolved `f(θ)` (§3.3).
    pub ftheta: f64,
    /// Normalized (paper) or raw-link (ablation) merge goodness.
    pub goodness_kind: GoodnessKind,
    /// Outlier handling (§4.6).
    pub outliers: OutlierPolicy,
    /// Sample size for the Fig.-2 pipeline; `None` clusters all points.
    pub sample_size: Option<usize>,
    /// Fraction of each cluster used as the labeling set Lᵢ (§4.6).
    pub labeling_fraction: f64,
    /// RNG seed for sampling/labeling; `None` seeds from the OS.
    pub seed: Option<u64>,
    /// Optional seed perturbing the merge engine's internal hash maps
    /// ([`RockAlgorithm::with_hash_seed`]); `None` keeps the default
    /// hasher. Results are bit-identical for every value.
    pub hash_seed: Option<u64>,
    /// Worker threads for the neighbor, link and labeling kernels
    /// (1 = serial). Results are bit-identical for every value.
    pub threads: usize,
    /// What to do when a governor budget trips mid-clustering
    /// (default [`DegradationPolicy::Fail`]).
    pub degradation: DegradationPolicy,
}

/// Builder for [`Rock`]. All parameters have paper-faithful defaults:
/// θ = 0.5, k = 2, `f(θ) = (1−θ)/(1+θ)`, normalized goodness,
/// neighbor-less points pruned as outliers, no sampling, labeling
/// fraction 0.25, one thread.
#[derive(Debug)]
pub struct RockBuilder {
    theta: f64,
    k: usize,
    ftheta: Box<dyn FThetaDyn>,
    goodness_kind: GoodnessKind,
    outliers: OutlierPolicy,
    sample_size: Option<usize>,
    labeling_fraction: f64,
    seed: Option<u64>,
    hash_seed: Option<u64>,
    threads: usize,
    degradation: DegradationPolicy,
    governor: RunGovernor,
}

/// Object-safe shim over [`FTheta`] so the builder can hold any estimate.
trait FThetaDyn: std::fmt::Debug {
    fn f_dyn(&self, theta: f64) -> f64;
}

impl<T: FTheta + std::fmt::Debug> FThetaDyn for T {
    fn f_dyn(&self, theta: f64) -> f64 {
        self.f(theta)
    }
}

impl Default for RockBuilder {
    fn default() -> Self {
        RockBuilder {
            theta: 0.5,
            k: 2,
            ftheta: Box::new(BasketF),
            goodness_kind: GoodnessKind::Normalized,
            outliers: OutlierPolicy::default(),
            sample_size: None,
            labeling_fraction: 0.25,
            seed: None,
            hash_seed: None,
            threads: 1,
            degradation: DegradationPolicy::Fail,
            governor: RunGovernor::unlimited(),
        }
    }
}

impl RockBuilder {
    /// Sets the similarity threshold θ.
    pub fn theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Sets the desired number of clusters.
    pub fn clusters(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the neighbor-exponent estimate `f(θ)` (default [`BasketF`]).
    pub fn f_theta<F: FTheta + std::fmt::Debug + 'static>(mut self, f: F) -> Self {
        self.ftheta = Box::new(f);
        self
    }

    /// Selects the merge-goodness variant (default normalized).
    pub fn goodness_kind(mut self, kind: GoodnessKind) -> Self {
        self.goodness_kind = kind;
        self
    }

    /// Sets the outlier policy (default: prune neighbor-less points).
    pub fn outlier_policy(mut self, policy: OutlierPolicy) -> Self {
        self.outliers = policy;
        self
    }

    /// Enables mid-flight weeding: stop at `stop_multiple · k` clusters and
    /// discard those smaller than `min_cluster_size` (§4.6).
    pub fn weed_outliers(mut self, stop_multiple: f64, min_cluster_size: usize) -> Self {
        self.outliers.weed = Some(WeedPolicy {
            stop_multiple,
            min_cluster_size,
        });
        self
    }

    /// Clusters a random sample of this size instead of the full data
    /// (Fig. 2); remaining points are assigned in the labeling phase.
    pub fn sample_size(mut self, size: usize) -> Self {
        self.sample_size = Some(size);
        self
    }

    /// Sets the fraction of each cluster used for labeling (§4.6).
    pub fn labeling_fraction(mut self, fraction: f64) -> Self {
        self.labeling_fraction = fraction;
        self
    }

    /// Fixes the RNG seed for reproducible sampling and labeling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Perturbs the merge engine's internal hash maps with `seed`
    /// ([`RockAlgorithm::with_hash_seed`]). The clustering result does
    /// not depend on it — the equivalence proptests sweep this knob to
    /// prove hasher independence.
    pub fn hash_seed(mut self, seed: u64) -> Self {
        self.hash_seed = Some(seed);
        self
    }

    /// Sets the number of worker threads used by the neighbor, link and
    /// labeling kernels. The clustering result does not depend on it.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Installs a fully configured [`RunGovernor`] (budgets, cancellation,
    /// injected kill points), replacing any previously set deadline,
    /// memory budget or cancellation token.
    pub fn governor(mut self, governor: RunGovernor) -> Self {
        self.governor = governor;
        self
    }

    /// Sets a wall-clock deadline for governed runs, measured from the
    /// run's first governor checkpoint.
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.governor = self.governor.with_time_budget(budget);
        self
    }

    /// Shares `token` with governed runs so another thread can cancel
    /// them cooperatively.
    pub fn cancel_token(mut self, token: CancellationToken) -> Self {
        self.governor = self.governor.with_cancel_token(token);
        self
    }

    /// Sets the charged-memory budget (bytes) governing the neighbor
    /// graph and link structures.
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.governor = self.governor.with_memory_budget(bytes);
        self
    }

    /// Selects what happens when a governor budget trips mid-clustering
    /// (default: fail with [`RockError::Interrupted`]). See
    /// [`DegradationPolicy`] and `DESIGN.md` §"Failure model".
    pub fn degradation(mut self, policy: DegradationPolicy) -> Self {
        self.degradation = policy;
        self
    }

    /// Validates the configuration and produces the driver.
    pub fn build(self) -> Result<Rock, RockError> {
        if !(0.0..=1.0).contains(&self.theta) {
            return Err(RockError::InvalidTheta(self.theta));
        }
        if self.k == 0 {
            return Err(RockError::InvalidK(self.k));
        }
        let ftheta = self.ftheta.f_dyn(self.theta);
        if !ftheta.is_finite() || ftheta < 0.0 {
            return Err(RockError::InvalidFTheta(ftheta));
        }
        if !(self.labeling_fraction > 0.0 && self.labeling_fraction <= 1.0) {
            return Err(RockError::InvalidLabelingFraction(self.labeling_fraction));
        }
        if let Some(s) = self.sample_size {
            if s < self.k {
                return Err(RockError::InvalidSampleSize {
                    sample_size: s,
                    k: self.k,
                });
            }
        }
        if let Some(w) = &self.outliers.weed {
            if w.stop_multiple < 1.0 {
                return Err(RockError::InvalidWeedMultiple(w.stop_multiple));
            }
        }
        if self.threads == 0 {
            return Err(RockError::InvalidThreads(self.threads));
        }
        if let DegradationPolicy::Subsample { fraction } = self.degradation {
            if !(fraction > 0.0 && fraction < 1.0) {
                return Err(RockError::InvalidSubsampleFraction(fraction));
            }
        }
        Ok(Rock {
            config: RockConfig {
                theta: self.theta,
                k: self.k,
                ftheta,
                goodness_kind: self.goodness_kind,
                outliers: self.outliers,
                sample_size: self.sample_size,
                labeling_fraction: self.labeling_fraction,
                seed: self.seed,
                hash_seed: self.hash_seed,
                threads: self.threads,
                degradation: self.degradation,
            },
            governor: self.governor,
        })
    }
}

/// The configured ROCK driver.
///
/// # Examples
/// ```
/// use rock_core::points::Transaction;
/// use rock_core::similarity::Jaccard;
/// use rock_core::rock::Rock;
///
/// let baskets = vec![
///     Transaction::from([1, 2, 3]),
///     Transaction::from([1, 2, 4]),
///     Transaction::from([1, 3, 4]),
///     Transaction::from([7, 8, 9]),
///     Transaction::from([7, 8, 10]),
///     Transaction::from([7, 9, 10]),
/// ];
/// let rock = Rock::builder().theta(0.5).clusters(2).build().unwrap();
/// let run = rock.cluster(&baskets, &Jaccard);
/// assert_eq!(run.clustering.num_clusters(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Rock {
    config: RockConfig,
    /// Budgets/cancellation for governed entry points. Clones of a
    /// `Rock` share the same governor state (token, clock, memory meter).
    governor: RunGovernor,
}

/// Output of the full sampled pipeline ([`Rock::run`]).
#[derive(Clone, Debug)]
pub struct RockResult {
    /// Indices (into the input data) of the clustered sample.
    pub sample_indices: Vec<usize>,
    /// The clustering of the sample, with sample-relative point ids.
    pub sample_run: RockRun,
    /// Labeling of the *entire* input data set.
    pub labeling: Labeling,
}

impl RockResult {
    /// The clusters over the full data set (point ids index the input
    /// data), with labeling outliers in `outliers`.
    pub fn full_clustering(&self) -> Clustering {
        let k = self.labeling.cluster_counts.len();
        let mut clusters: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut outliers = Vec::new();
        for (p, a) in self.labeling.assignments.iter().enumerate() {
            match a {
                Some(c) => clusters[*c].push(p as u32),
                None => outliers.push(p as u32),
            }
        }
        Clustering::new(clusters, outliers)
    }
}

impl Rock {
    /// Starts building a driver.
    pub fn builder() -> RockBuilder {
        RockBuilder::default()
    }

    /// The validated configuration.
    pub fn config(&self) -> &RockConfig {
        &self.config
    }

    /// The governor shared by this driver's governed entry points — e.g.
    /// to grab its [`RunGovernor::cancel_token`] for another thread.
    pub fn governor(&self) -> &RunGovernor {
        &self.governor
    }

    fn build_graph<PS: PairwiseSimilarity + Sync>(&self, sim: &PS) -> NeighborGraph {
        if self.config.threads > 1 {
            NeighborGraph::build_parallel(sim, self.config.theta, self.config.threads)
        } else {
            NeighborGraph::build(sim, self.config.theta)
        }
    }

    fn goodness(&self) -> Goodness {
        Goodness::new(
            self.config.theta,
            crate::goodness::ConstantF(self.config.ftheta),
            self.config.goodness_kind,
        )
    }

    fn algorithm(&self) -> RockAlgorithm {
        let algorithm = RockAlgorithm::new(self.goodness(), self.config.k, self.config.outliers);
        match self.config.hash_seed {
            Some(seed) => algorithm.with_hash_seed(seed),
            None => algorithm,
        }
    }

    /// A staged [`Pipeline`] over this driver's configuration and
    /// governor — the engine behind [`Rock::try_run`],
    /// [`Rock::cluster_wal`] and the resume entry points, exposed for
    /// custom stage compositions (attach a WAL, run individual stages,
    /// inspect the run context).
    ///
    /// The pipeline's governor shares this driver's token, clock and
    /// memory meter.
    pub fn session(&self) -> Pipeline<'static> {
        Pipeline::new(self.config, self.governor.clone())
    }

    fn rng(&self) -> StdRng {
        match self.config.seed {
            Some(s) => StdRng::seed_from_u64(s),
            None => StdRng::from_os_rng(),
        }
    }

    /// Clusters `points` in memory (no sampling/labeling).
    pub fn cluster<P, S>(&self, points: &[P], measure: &S) -> RockRun
    where
        S: Similarity<P> + Sync,
        P: Sync,
    {
        let pw = PointsWith::new(points, measure);
        self.cluster_pairwise(&pw)
    }

    /// Clusters a point set given only index-pairwise similarities —
    /// e.g. an expert [`crate::similarity::SimilarityMatrix`] (§1.2).
    pub fn cluster_pairwise<PS: PairwiseSimilarity + Sync>(&self, sim: &PS) -> RockRun {
        let graph = self.build_graph(sim);
        self.algorithm().run_parallel(&graph, self.config.threads)
    }

    /// Clusters a prebuilt neighbor graph.
    ///
    /// The graph's θ should match the configured θ for the goodness
    /// normalisation to be meaningful.
    pub fn cluster_graph(&self, graph: &NeighborGraph) -> RockRun {
        self.algorithm().run_parallel(graph, self.config.threads)
    }

    /// Like [`Rock::cluster`], but guards the API boundary against a
    /// misbehaving measure: any NaN/±∞ similarity is surfaced as
    /// [`RockError::NonFiniteSimilarity`] instead of silently skewing the
    /// neighbor graph (NaN compares below every θ) or panicking later in
    /// the merge heap.
    ///
    /// # Errors
    /// Returns [`RockError::NonFiniteSimilarity`] if `measure` returned a
    /// non-finite value for any pair.
    pub fn try_cluster<P, S>(&self, points: &[P], measure: &S) -> Result<RockRun, RockError>
    where
        S: Similarity<P> + Sync,
        P: Sync,
    {
        let checked = CheckedSimilarity::new(measure);
        let pw = PointsWith::new(points, &checked);
        let graph = self.build_graph(&pw);
        if let Some(e) = checked.error() {
            return Err(e);
        }
        Ok(self.algorithm().run_parallel(&graph, self.config.threads))
    }

    /// Like [`Rock::cluster_pairwise`], but with the non-finite guard of
    /// [`Rock::try_cluster`].
    ///
    /// # Errors
    /// Returns [`RockError::NonFiniteSimilarity`] if `sim` returned a
    /// non-finite value for any pair.
    pub fn try_cluster_pairwise<PS: PairwiseSimilarity + Sync>(
        &self,
        sim: &PS,
    ) -> Result<RockRun, RockError> {
        let checked = CheckedSimilarity::new(sim);
        let graph = self.build_graph(&checked);
        if let Some(e) = checked.error() {
            return Err(e);
        }
        Ok(self.algorithm().run_parallel(&graph, self.config.threads))
    }

    /// The full Fig.-2 pipeline: draw a random sample (if configured),
    /// cluster it, then label all of `data`.
    ///
    /// Without a configured sample size the whole data set is clustered
    /// and the labeling phase still runs (useful for assigning outliers
    /// and for uniform reporting).
    pub fn run<P, S>(&self, data: &[P], measure: &S) -> RockResult
    where
        P: Clone + Sync,
        S: Similarity<P> + Sync,
    {
        let mut rng = self.rng();
        let sample_indices = match self.config.sample_size {
            Some(size) if size < data.len() => {
                crate::sampling::sample_indices(data.len(), size, &mut rng)
            }
            _ => (0..data.len()).collect(),
        };
        let sample: Vec<P> = sample_indices.iter().map(|&i| data[i].clone()).collect();
        let sample_run = self.cluster(&sample, measure);
        let labeler = Labeler::new(
            &sample,
            &sample_run.clustering.clusters,
            self.config.labeling_fraction,
            self.config.theta,
            self.config.ftheta,
            &mut rng,
        )
        // tidy-allow(panic): Labeler::new revalidates parameters already validated by RockBuilder::build, so it cannot fail here
        .expect("labeling parameters validated by RockBuilder::build");
        let labeling = labeler.label_all_parallel(data, measure, self.config.threads);
        RockResult {
            sample_indices,
            sample_run,
            labeling,
        }
    }

    /// Clusters `points` under the configured governor while journaling
    /// every merge decision to `wal`.
    ///
    /// On interruption the error is [`RockError::Interrupted`] with
    /// `resumable: true` and `wal` holds a replayable prefix — persist it
    /// with [`MergeWal::write_to`] and continue later with
    /// [`Rock::resume_cluster`]. The degradation policy deliberately does
    /// *not* apply here: a WAL-journaled run prefers an exact resume over
    /// an approximate finish.
    ///
    /// # Errors
    /// [`RockError::Interrupted`] when the governor trips.
    pub fn cluster_wal<P, S>(
        &self,
        points: &[P],
        measure: &S,
        wal: &mut MergeWal,
    ) -> Result<RockRun, RockError>
    where
        S: Similarity<P> + Sync,
        P: Sync,
    {
        let pw = PointsWith::new(points, measure);
        self.session().attach_wal(wal).fit_wal(&pw)
    }

    /// Resumes an interrupted [`Rock::cluster_wal`] run from the bytes of
    /// its merge WAL, rebuilding the neighbor graph from `points` (which
    /// must be the same points, in the same order). The final clustering
    /// and merge trace are bit-identical to an uninterrupted run.
    ///
    /// A fresh self-contained continuation log is written to `wal_out`
    /// if given, so a re-interrupted resume can itself be resumed.
    ///
    /// # Errors
    /// [`RockError::WalCorrupt`] / [`RockError::WalMismatch`] for a
    /// damaged or foreign log, [`RockError::Interrupted`] if the
    /// governor trips again.
    pub fn resume_cluster<P, S>(
        &self,
        points: &[P],
        measure: &S,
        wal_bytes: &[u8],
        wal_out: Option<&mut MergeWal>,
    ) -> Result<RockRun, RockError>
    where
        S: Similarity<P> + Sync,
        P: Sync,
    {
        let pw = PointsWith::new(points, measure);
        match wal_out {
            Some(out) => self.session().attach_wal(out).resume(&pw, wal_bytes),
            None => self.session().resume(&pw, wal_bytes),
        }
    }

    /// A fault-isolated shard supervisor over this driver's configuration
    /// and governor (see
    /// [`ShardSupervisor`](crate::engine::supervisor::ShardSupervisor)):
    /// the input is partitioned into deterministic shards, each shard
    /// runs the journaled pipeline under its own child governor with
    /// retry/resume/quarantine, and surviving shard clusters are merged
    /// by a coarse ROCK pass over their representative sets.
    ///
    /// # Errors
    /// As [`crate::engine::supervisor::ShardSupervisor::new`] — an
    /// invalid shard count, representative fraction or merge θ.
    pub fn shard_supervisor(
        &self,
        shard: crate::engine::ShardConfig,
    ) -> Result<crate::engine::ShardSupervisor, RockError> {
        crate::engine::ShardSupervisor::new(self.config, shard, self.governor.clone())
    }

    /// Runs the supervised shard-and-merge pipeline over `points`: the
    /// one-call form of [`Rock::shard_supervisor`] +
    /// [`run`](crate::engine::supervisor::ShardSupervisor::run). With
    /// `shard.shards == 1` the clustering is bit-identical to
    /// [`Rock::cluster_wal`]; quarantined shards degrade the result with
    /// provenance in the report instead of failing the run.
    ///
    /// # Errors
    /// Invalid shard configuration, or [`RockError::Interrupted`] when
    /// this driver's own (parent) governor is cancelled or out of
    /// budget — per-shard faults quarantine instead of erroring.
    pub fn cluster_sharded<P, S>(
        &self,
        points: &[P],
        measure: &S,
        shard: crate::engine::ShardConfig,
    ) -> Result<crate::engine::ShardedRun, RockError>
    where
        P: Clone + Sync,
        S: Similarity<P> + Sync,
    {
        self.shard_supervisor(shard)?.run(points, measure)
    }

    /// Resumes from a snapshot-bearing WAL **without** the original data:
    /// the merge state is restored from the latest snapshot and links are
    /// not recomputed. Fails with [`RockError::WalMismatch`] if the log
    /// carries no snapshot.
    ///
    /// # Errors
    /// As [`Rock::resume_cluster`].
    pub fn resume_cluster_snapshot(
        &self,
        wal_bytes: &[u8],
        wal_out: Option<&mut MergeWal>,
    ) -> Result<RockRun, RockError> {
        match wal_out {
            Some(out) => self.session().attach_wal(out).resume_snapshot(wal_bytes),
            None => self.session().resume_snapshot(wal_bytes),
        }
    }

    /// The full Fig.-2 pipeline with the robustness guarantees of the
    /// checked entry points, plus a structured [`RunReport`] (per-phase
    /// wall-clock timings and [`crate::perf`] work counters,
    /// degradation/interruption outcome, outlier count) alongside the
    /// results.
    ///
    /// The run is *governed*: the builder's deadline, memory budget and
    /// cancellation token are checked at every phase boundary, every
    /// merge batch and every labeling batch, and the configured
    /// [`DegradationPolicy`] is applied on a budget trip (recorded in
    /// the report's `degraded` note). With the default unlimited
    /// governor, produces results identical to [`Rock::run`] under the
    /// same seed: the two share the sampling and labeling RNG stream.
    ///
    /// # Errors
    /// Returns [`RockError::NonFiniteSimilarity`] if `measure` returned a
    /// non-finite value during clustering or labeling, and
    /// [`RockError::Interrupted`] if the governor tripped with no
    /// degradation policy able to absorb it.
    pub fn try_run<P, S>(&self, data: &[P], measure: &S) -> Result<(RockResult, RunReport), RockError>
    where
        P: Clone + Sync,
        S: Similarity<P> + Sync,
    {
        self.session().fit(data, measure)
    }

    /// [`Rock::try_run`], additionally returning the
    /// [`crate::labeling::Labeler`] whose Lᵢ sets produced the labeling —
    /// hand it to [`crate::artifact::ModelArtifact::from_labeled`] to
    /// persist a fitted model whose reloaded labeling is bit-identical
    /// to this run's.
    ///
    /// # Errors
    /// As [`Rock::try_run`].
    pub fn try_run_labeled<P, S>(
        &self,
        data: &[P],
        measure: &S,
    ) -> Result<(RockResult, RunReport, crate::labeling::Labeler<P>), RockError>
    where
        P: Clone + Sync,
        S: Similarity<P> + Sync,
    {
        self.session().fit_with_labeler(data, measure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::{Phase, TripReason};
    use crate::points::Transaction;
    use crate::similarity::Jaccard;

    fn two_basket_clusters(n_each: usize) -> Vec<Transaction> {
        // Cluster A over items 0..6, cluster B over items 100..106;
        // transactions are deterministic 3-subsets.
        let mut data = Vec::new();
        for c in 0..2u32 {
            let base = c * 100;
            let mut i = 0;
            'outer: for x in 0..6u32 {
                for y in (x + 1)..6 {
                    for z in (y + 1)..6 {
                        data.push(Transaction::from([base + x, base + y, base + z]));
                        i += 1;
                        if i >= n_each {
                            break 'outer;
                        }
                    }
                }
            }
        }
        data
    }

    #[test]
    fn builder_defaults_build() {
        let rock = Rock::builder().build().unwrap();
        assert_eq!(rock.config().theta, 0.5);
        assert_eq!(rock.config().k, 2);
        assert!((rock.config().ftheta - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(
            Rock::builder().theta(2.0).build(),
            Err(RockError::InvalidTheta(_))
        ));
        assert!(matches!(
            Rock::builder().clusters(0).build(),
            Err(RockError::InvalidK(0))
        ));
        assert!(matches!(
            Rock::builder().labeling_fraction(0.0).build(),
            Err(RockError::InvalidLabelingFraction(_))
        ));
        assert!(matches!(
            Rock::builder().clusters(10).sample_size(5).build(),
            Err(RockError::InvalidSampleSize { .. })
        ));
        assert!(matches!(
            Rock::builder().weed_outliers(0.5, 2).build(),
            Err(RockError::InvalidWeedMultiple(_))
        ));
        assert!(matches!(
            Rock::builder().threads(0).build(),
            Err(RockError::InvalidThreads(0))
        ));
    }

    #[test]
    fn cluster_separates_baskets() {
        let data = two_basket_clusters(20);
        let rock = Rock::builder().theta(0.5).clusters(2).build().unwrap();
        let run = rock.cluster(&data, &Jaccard);
        assert_eq!(run.clustering.num_clusters(), 2);
        assert_eq!(run.clustering.sizes(), vec![20, 20]);
    }

    #[test]
    fn sampled_pipeline_labels_everything() {
        let data = two_basket_clusters(20);
        let rock = Rock::builder()
            .theta(0.5)
            .clusters(2)
            .sample_size(16)
            .labeling_fraction(1.0)
            .seed(42)
            .build()
            .unwrap();
        let result = rock.run(&data, &Jaccard);
        assert_eq!(result.sample_indices.len(), 16);
        let full = result.full_clustering();
        assert_eq!(full.num_clusters(), 2);
        // Every point labeled; the two sides must not mix.
        assert_eq!(full.num_points(), data.len());
        for c in &full.clusters {
            let sides: std::collections::HashSet<bool> =
                c.iter().map(|&p| (p as usize) < 20).collect();
            assert_eq!(sides.len(), 1, "cluster mixes the two item universes");
        }
    }

    #[test]
    fn run_without_sampling_uses_all_points() {
        let data = two_basket_clusters(5);
        let rock = Rock::builder()
            .theta(0.5)
            .clusters(2)
            .seed(1)
            .labeling_fraction(1.0)
            .build()
            .unwrap();
        let result = rock.run(&data, &Jaccard);
        assert_eq!(result.sample_indices.len(), data.len());
        assert_eq!(result.labeling.assignments.len(), data.len());
    }

    #[test]
    fn try_run_matches_run_and_reports() {
        let data = two_basket_clusters(20);
        let rock = Rock::builder()
            .theta(0.5)
            .clusters(2)
            .sample_size(16)
            .labeling_fraction(1.0)
            .seed(7)
            .build()
            .unwrap();
        let plain = rock.run(&data, &Jaccard);
        let (checked, report) = rock.try_run(&data, &Jaccard).unwrap();
        assert_eq!(plain.sample_indices, checked.sample_indices);
        assert_eq!(plain.labeling, checked.labeling);
        assert_eq!(report.records_read, data.len() as u64);
        assert_eq!(report.outliers, checked.labeling.num_outliers as u64);
        let phases: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(phases, vec!["sample", "cluster", "label"]);
        assert!(!report.degraded());
        // The cluster phase ran the link kernel, so its perf delta is
        // attributed in the report. (Lower-bound only: the counters are
        // process-global and concurrent tests may add to the delta.)
        let cluster = report
            .phase_counters("cluster")
            .expect("cluster phase records work counters");
        assert!(cluster.pairs_emitted > 0, "no link pairs counted: {cluster}");
        assert!(cluster.bytes_touched > 0, "no bytes counted: {cluster}");
    }

    #[test]
    fn nan_measure_is_a_typed_error_not_a_panic() {
        struct NanSim;
        impl Similarity<Transaction> for NanSim {
            fn similarity(&self, _: &Transaction, _: &Transaction) -> f64 {
                f64::NAN
            }
        }
        let data = two_basket_clusters(5);
        let rock = Rock::builder().theta(0.5).clusters(2).seed(1).build().unwrap();
        assert!(matches!(
            rock.try_cluster(&data, &NanSim),
            Err(RockError::NonFiniteSimilarity { .. })
        ));
        assert!(matches!(
            rock.try_run(&data, &NanSim),
            Err(RockError::NonFiniteSimilarity { .. })
        ));
    }

    #[test]
    fn injected_similarity_faults_hit_the_guard() {
        use crate::similarity::FaultySimilarity;
        let data = two_basket_clusters(10);
        let rock = Rock::builder().theta(0.5).clusters(2).build().unwrap();
        let faulty = FaultySimilarity::new(Jaccard, 3, 0.2);
        let outcome = rock.try_cluster(&data, &faulty);
        if faulty.injected() > 0 {
            assert!(matches!(
                outcome,
                Err(RockError::NonFiniteSimilarity { .. })
            ));
        } else {
            assert!(outcome.is_ok());
        }
        // At rate 0.2 over 190 pairs the schedule fires essentially
        // always; make sure the harness actually exercised the guard.
        assert!(faulty.injected() > 0, "fault schedule never fired");
    }

    #[test]
    fn nan_pairwise_source_is_a_typed_error() {
        struct NanPairs;
        impl PairwiseSimilarity for NanPairs {
            fn len(&self) -> usize {
                6
            }
            fn sim(&self, i: usize, j: usize) -> f64 {
                if i + j == 5 {
                    f64::NAN
                } else {
                    0.4
                }
            }
        }
        let rock = Rock::builder().theta(0.5).clusters(2).build().unwrap();
        assert!(matches!(
            rock.try_cluster_pairwise(&NanPairs),
            Err(RockError::NonFiniteSimilarity { .. })
        ));
    }

    #[test]
    fn builder_validates_subsample_fraction() {
        for bad in [0.0, 1.0, -0.2, f64::NAN] {
            assert!(matches!(
                Rock::builder()
                    .degradation(DegradationPolicy::Subsample { fraction: bad })
                    .build(),
                Err(RockError::InvalidSubsampleFraction(_))
            ));
        }
        assert!(Rock::builder()
            .degradation(DegradationPolicy::Subsample { fraction: 0.5 })
            .build()
            .is_ok());
    }

    #[test]
    fn zero_deadline_interrupts_try_run() {
        let data = two_basket_clusters(10);
        let rock = Rock::builder()
            .seed(1)
            .deadline(Duration::ZERO)
            .build()
            .unwrap();
        assert!(matches!(
            rock.try_run(&data, &Jaccard),
            Err(RockError::Interrupted {
                reason: TripReason::DeadlineExceeded,
                ..
            })
        ));
    }

    #[test]
    fn cancellation_interrupts_try_run() {
        let data = two_basket_clusters(10);
        let token = CancellationToken::new();
        let rock = Rock::builder()
            .seed(1)
            .cancel_token(token.clone())
            .build()
            .unwrap();
        token.cancel();
        assert!(matches!(
            rock.try_run(&data, &Jaccard),
            Err(RockError::Interrupted {
                reason: TripReason::Cancelled,
                ..
            })
        ));
    }

    #[test]
    fn memory_trip_without_policy_fails() {
        let data = two_basket_clusters(20);
        let rock = Rock::builder()
            .seed(1)
            .memory_budget(1)
            .build()
            .unwrap();
        assert!(matches!(
            rock.try_run(&data, &Jaccard),
            Err(RockError::Interrupted {
                reason: TripReason::MemoryBudgetExceeded,
                ..
            })
        ));
    }

    #[test]
    fn components_degradation_finishes_on_memory_trip() {
        let data = two_basket_clusters(20);
        let rock = Rock::builder()
            .seed(1)
            .labeling_fraction(1.0)
            .memory_budget(1)
            .degradation(DegradationPolicy::Components {
                min_cluster_size: 2,
            })
            .build()
            .unwrap();
        let (result, report) = rock.try_run(&data, &Jaccard).unwrap();
        let note = report.degraded.as_ref().expect("degradation note recorded");
        assert!(matches!(
            note.policy,
            DegradationPolicy::Components { min_cluster_size: 2 }
        ));
        assert_eq!(note.reason, TripReason::MemoryBudgetExceeded);
        assert!(report.degraded());
        // The components fast path still separates the two item universes.
        assert!(result.sample_run.merges.is_empty());
        let full = result.full_clustering();
        assert_eq!(full.num_clusters(), 2);
        for c in &full.clusters {
            let sides: std::collections::HashSet<bool> =
                c.iter().map(|&p| (p as usize) < 20).collect();
            assert_eq!(sides.len(), 1, "component mixes the two item universes");
        }
    }

    #[test]
    fn subsample_degradation_restarts_on_smaller_sample() {
        let data = two_basket_clusters(20);
        let rock = Rock::builder()
            .seed(1)
            .labeling_fraction(1.0)
            .memory_budget(1)
            .degradation(DegradationPolicy::Subsample { fraction: 0.5 })
            .build()
            .unwrap();
        let (result, report) = rock.try_run(&data, &Jaccard).unwrap();
        // ceil(40 * 0.5) = 20 of the 40-point (unsampled) "sample".
        assert_eq!(result.sample_indices.len(), 20);
        let note = report.degraded.as_ref().expect("degradation note recorded");
        assert!(matches!(
            note.policy,
            DegradationPolicy::Subsample { .. }
        ));
        assert!(note.detail.contains("20-point subsample"), "{}", note.detail);
        // Everything still gets labeled.
        assert_eq!(result.labeling.assignments.len(), data.len());
    }

    #[test]
    fn cluster_wal_kill_and_resume_is_bit_identical() {
        let data = two_basket_clusters(20);
        let plain = Rock::builder().seed(1).build().unwrap();
        let baseline = plain.cluster(&data, &Jaccard);

        let killed = Rock::builder()
            .seed(1)
            .governor(RunGovernor::unlimited().with_kill_at(Phase::Merge, 5))
            .build()
            .unwrap();
        let mut wal = MergeWal::new();
        let err = killed.cluster_wal(&data, &Jaccard, &mut wal).unwrap_err();
        assert!(matches!(
            err,
            RockError::Interrupted {
                phase: Phase::Merge,
                resumable: true,
                ..
            }
        ));

        let resumed = plain
            .resume_cluster(&data, &Jaccard, wal.as_bytes(), None)
            .unwrap();
        assert_eq!(resumed.clustering, baseline.clustering);
        assert_eq!(resumed.merges, baseline.merges);
        assert_eq!(resumed.initial_points, baseline.initial_points);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let data = two_basket_clusters(20);
        let make = || {
            Rock::builder()
                .theta(0.5)
                .clusters(2)
                .sample_size(16)
                .seed(7)
                .build()
                .unwrap()
                .run(&data, &Jaccard)
        };
        let (a, b) = (make(), make());
        assert_eq!(a.sample_indices, b.sample_indices);
        assert_eq!(a.labeling.assignments, b.labeling.assignments);
    }
}

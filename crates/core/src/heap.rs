//! Addressable max-heaps for the clustering loop (§4.3, Fig. 3).
//!
//! ROCK maintains a *local heap* `q[i]` per cluster (candidate merge
//! partners ordered by goodness) and a *global heap* `Q` of clusters
//! ordered by their best goodness. Merging requires deleting and updating
//! arbitrary entries (`delete(q[x], u)`, `update(Q, x, q[x])`), so a plain
//! `std::collections::BinaryHeap` does not suffice. [`AddressableHeap`] is
//! a binary max-heap with a key → slot index, giving O(log n)
//! push/pop/remove/update — the ingredients of the paper's O(n² log n)
//! clustering bound (§4.5).
//!
//! Priorities are `f64` goodness values; ties are broken by the (totally
//! ordered) key so that runs are deterministic regardless of hash-map
//! iteration order.

use crate::util::FxHashMap;
use std::hash::Hash;

/// A binary max-heap over `(key, f64 priority)` pairs supporting O(log n)
/// removal and priority update by key.
///
/// Priorities are ordered by [`f64::total_cmp`], so even a NaN that
/// slips past the similarity guards cannot panic the merge loop: NaN
/// sorts above `+∞`, deterministically. Goodness measures are finite in
/// any correct run (debug builds assert it).
#[derive(Clone, Debug, Default)]
pub struct AddressableHeap<K> {
    /// Heap-ordered array.
    data: Vec<(K, f64)>,
    /// Key → index into `data`.
    pos: FxHashMap<K, usize>,
}

impl<K: Copy + Eq + Hash + Ord> AddressableHeap<K> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        AddressableHeap {
            data: Vec::new(),
            pos: FxHashMap::default(),
        }
    }

    /// Creates an empty heap with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        AddressableHeap {
            data: Vec::with_capacity(cap),
            pos: FxHashMap::with_capacity_and_hasher(cap, Default::default()),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.pos.contains_key(key)
    }

    /// The priority of `key`, if present.
    pub fn priority(&self, key: &K) -> Option<f64> {
        self.pos.get(key).map(|&i| self.data[i].1)
    }

    /// The maximum entry, if any.
    pub fn peek(&self) -> Option<(K, f64)> {
        self.data.first().copied()
    }

    /// Inserts `key` with `priority`, or updates its priority if present.
    pub fn insert(&mut self, key: K, priority: f64) {
        debug_assert!(!priority.is_nan(), "NaN priority");
        if let Some(&i) = self.pos.get(&key) {
            let old = self.data[i].1;
            self.data[i].1 = priority;
            if Self::beats((key, priority), (key, old)) {
                self.sift_up(i);
            } else {
                self.sift_down(i);
            }
        } else {
            let i = self.data.len();
            self.data.push((key, priority));
            self.pos.insert(key, i);
            self.sift_up(i);
        }
    }

    /// Removes and returns the maximum entry.
    pub fn pop(&mut self) -> Option<(K, f64)> {
        if self.data.is_empty() {
            return None;
        }
        Some(self.remove_at(0))
    }

    /// Removes `key`, returning its priority if it was present.
    pub fn remove(&mut self, key: &K) -> Option<f64> {
        let &i = self.pos.get(key)?;
        Some(self.remove_at(i).1)
    }

    /// Iterates over entries in arbitrary (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = (K, f64)> + '_ {
        self.data.iter().copied()
    }

    /// Iterates over keys in arbitrary (heap) order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.data.iter().map(|&(k, _)| k)
    }

    /// Drains the heap, returning entries in arbitrary order.
    pub fn clear(&mut self) {
        self.data.clear();
        self.pos.clear();
    }

    /// Total order: higher priority wins ([`f64::total_cmp`], so NaN is
    /// ordered instead of panicking); ties broken by larger key so the
    /// order is deterministic.
    #[inline]
    fn beats(a: (K, f64), b: (K, f64)) -> bool {
        match a.1.total_cmp(&b.1) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => a.0 > b.0,
        }
    }

    fn remove_at(&mut self, i: usize) -> (K, f64) {
        let last = self.data.len() - 1;
        self.data.swap(i, last);
        // tidy-allow(panic): callers pass an in-bounds index, so data is non-empty after the swap
        let removed = self.data.pop().expect("non-empty");
        self.pos.remove(&removed.0);
        if i < self.data.len() {
            self.pos.insert(self.data[i].0, i);
            // The swapped-in element may need to move either way.
            self.sift_up(i);
            self.sift_down(i);
        }
        removed
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::beats(self.data[i], self.data[parent]) {
                self.data.swap(i, parent);
                self.pos.insert(self.data[i].0, i);
                self.pos.insert(self.data[parent].0, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.data.len() && Self::beats(self.data[l], self.data[best]) {
                best = l;
            }
            if r < self.data.len() && Self::beats(self.data[r], self.data[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.data.swap(i, best);
            self.pos.insert(self.data[i].0, i);
            self.pos.insert(self.data[best].0, best);
            i = best;
        }
    }

    /// Clears this heap and hands it to `pool` for reuse.
    pub fn recycle_into(mut self, pool: &mut HeapPool<K>) {
        self.clear();
        pool.free.push(self);
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        assert_eq!(self.data.len(), self.pos.len());
        for (i, &(k, _)) in self.data.iter().enumerate() {
            assert_eq!(self.pos[&k], i, "position map out of sync for slot {i}");
            if i > 0 {
                let parent = (i - 1) / 2;
                assert!(
                    !Self::beats(self.data[i], self.data[parent]),
                    "heap property violated at slot {i}"
                );
            }
        }
    }
}

/// A free pool of cleared [`AddressableHeap`]s for allocation-heavy
/// loops: the Fig.-3 merge loop builds one candidate heap per merge and
/// discards two, so recycling turns O(merges) heap+map allocations into
/// a handful that are grown once and reused.
///
/// Recycling cannot change results: a cleared heap holds no entries, pop
/// order is the total order on `(priority, key)` regardless of capacity,
/// and the key→slot map is only ever *looked up*, never iterated.
#[derive(Clone, Debug, Default)]
pub struct HeapPool<K> {
    free: Vec<AddressableHeap<K>>,
}

impl<K: Copy + Eq + Hash + Ord> HeapPool<K> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        HeapPool { free: Vec::new() }
    }

    /// Hands out a cleared heap, reusing a pooled one (and its grown
    /// buffers) when available.
    pub fn acquire(&mut self) -> AddressableHeap<K> {
        match self.free.pop() {
            Some(heap) => {
                crate::perf::count_scratch_reused(1);
                heap
            }
            None => AddressableHeap::new(),
        }
    }

    /// Number of heaps waiting in the pool.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// Whether the pool has no heaps available.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_cleared_heaps() {
        let mut pool: HeapPool<u32> = HeapPool::new();
        assert!(pool.is_empty());
        let mut h = pool.acquire(); // empty pool → fresh heap
        h.insert(1, 0.5);
        h.insert(2, 0.25);
        h.recycle_into(&mut pool);
        assert_eq!(pool.len(), 1);
        let recycled = pool.acquire();
        assert!(recycled.is_empty(), "recycled heap must arrive cleared");
        assert!(!recycled.contains(&1));
        assert!(pool.is_empty());
    }

    #[test]
    fn recycled_heap_behaves_like_fresh() {
        let mut pool: HeapPool<u32> = HeapPool::new();
        let mut seed = pool.acquire();
        for k in 0u32..100 {
            seed.insert(k, f64::from(k % 10) / 10.0);
        }
        seed.recycle_into(&mut pool);
        let mut recycled = pool.acquire();
        let mut fresh = AddressableHeap::new();
        for (k, p) in [(7u32, 0.9), (3, 0.9), (11, 0.2), (5, 0.4)] {
            recycled.insert(k, p);
            fresh.insert(k, p);
        }
        // Identical pop order: capacity left over from the previous life
        // cannot leak into results.
        while let Some(want) = fresh.pop() {
            assert_eq!(recycled.pop(), Some(want));
        }
        assert!(recycled.is_empty());
    }

    #[test]
    fn push_pop_in_priority_order() {
        let mut h = AddressableHeap::new();
        for (k, p) in [(1u32, 0.5), (2, 0.9), (3, 0.1), (4, 0.7)] {
            h.insert(k, p);
            h.check_invariants();
        }
        assert_eq!(h.peek(), Some((2, 0.9)));
        let order: Vec<u32> = std::iter::from_fn(|| h.pop().map(|(k, _)| k)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn nan_orders_deterministically_instead_of_panicking() {
        // total_cmp places NaN above +inf: a NaN that slipped past the
        // similarity guards degrades to a deterministic (wrong-ish)
        // ordering rather than a panic mid-merge.
        assert!(AddressableHeap::<u32>::beats((0, f64::NAN), (1, f64::INFINITY)));
        assert!(!AddressableHeap::<u32>::beats((0, f64::INFINITY), (1, f64::NAN)));
        assert!(AddressableHeap::<u32>::beats((1, f64::NAN), (0, f64::NAN)));
    }

    #[test]
    fn ties_broken_by_key_deterministically() {
        let mut h = AddressableHeap::new();
        for k in [5u32, 1, 9, 3] {
            h.insert(k, 0.5);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop().map(|(k, _)| k)).collect();
        assert_eq!(order, vec![9, 5, 3, 1]);
    }

    #[test]
    fn remove_arbitrary_key() {
        let mut h = AddressableHeap::new();
        for k in 0u32..50 {
            h.insert(k, (k as f64 * 7.3) % 1.0);
        }
        assert_eq!(h.remove(&25), Some((25.0 * 7.3) % 1.0));
        assert_eq!(h.remove(&25), None);
        assert_eq!(h.len(), 49);
        h.check_invariants();
        // Remaining pops are still ordered.
        let mut prev = f64::INFINITY;
        while let Some((_, p)) = h.pop() {
            assert!(p <= prev + 1e-15);
            prev = p;
        }
    }

    #[test]
    fn insert_updates_priority() {
        let mut h = AddressableHeap::new();
        h.insert(1u32, 0.1);
        h.insert(2, 0.2);
        h.insert(3, 0.3);
        h.insert(1, 0.99); // raise
        assert_eq!(h.peek(), Some((1, 0.99)));
        h.insert(1, 0.0); // lower
        assert_eq!(h.peek(), Some((3, 0.3)));
        assert_eq!(h.len(), 3);
        h.check_invariants();
    }

    #[test]
    fn negative_infinity_sorts_last() {
        let mut h = AddressableHeap::new();
        h.insert(1u32, f64::NEG_INFINITY);
        h.insert(2, 0.0);
        assert_eq!(h.pop(), Some((2, 0.0)));
        assert_eq!(h.pop(), Some((1, f64::NEG_INFINITY)));
    }

    #[test]
    fn empty_heap_behaviour() {
        let mut h: AddressableHeap<u32> = AddressableHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
        assert_eq!(h.peek(), None);
        assert_eq!(h.remove(&1), None);
        assert_eq!(h.priority(&1), None);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_priority_panics() {
        let mut h = AddressableHeap::new();
        h.insert(1u32, f64::NAN);
    }

    #[test]
    fn randomized_against_reference() {
        // Drive the heap with a deterministic pseudo-random op sequence and
        // mirror it in a Vec-based reference implementation.
        let mut h = AddressableHeap::new();
        let mut reference: Vec<(u32, f64)> = Vec::new();
        let mut state = 0x12345678u64;
        let mut rand = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..2000 {
            let op = rand() % 4;
            let key = rand() % 64;
            let prio = f64::from(rand() % 1000) / 1000.0;
            match op {
                0 | 1 => {
                    h.insert(key, prio);
                    if let Some(e) = reference.iter_mut().find(|e| e.0 == key) {
                        e.1 = prio;
                    } else {
                        reference.push((key, prio));
                    }
                }
                2 => {
                    let got = h.remove(&key);
                    let idx = reference.iter().position(|e| e.0 == key);
                    assert_eq!(got, idx.map(|i| reference.swap_remove(i).1));
                }
                _ => {
                    let got = h.pop();
                    let best = reference
                        .iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| {
                            a.1.total_cmp(&b.1).then(a.0.cmp(&b.0))
                        })
                        .map(|(i, _)| i);
                    let want = best.map(|i| reference.swap_remove(i));
                    assert_eq!(got, want);
                }
            }
            h.check_invariants();
            assert_eq!(h.len(), reference.len());
        }
    }
}

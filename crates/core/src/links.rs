//! Link computation (§3.2, §4.4, Fig. 4).
//!
//! `link(pᵢ, pⱼ)` is the number of common neighbors of `pᵢ` and `pⱼ` —
//! equivalently the number of distinct length-2 neighbor paths between
//! them. Two algorithms are provided:
//!
//! * [`compute_links_sparse`] — the paper's Fig. 4: for every point,
//!   increment the counter of every pair of its neighbors. O(Σᵢ mᵢ²) time,
//!   which is O(n·m_m·m_a) and the right choice for the sparse neighbor
//!   graphs ROCK expects in practice.
//! * [`compute_links_dense`] — §4.4's matrix view: links are the square of
//!   the 0/1 adjacency matrix. Since the matrix is boolean, entry (i, j)
//!   is `popcount(rowᵢ & rowⱼ)` over bit-packed rows, giving O(n³/64) word
//!   operations. Used to cross-check the sparse path and as a bench
//!   comparator.

use crate::neighbors::NeighborGraph;
use crate::util::{BitSet, FxBuildHasher, FxHashMap};

/// Sparse table of non-zero link counts between point pairs.
///
/// Keys are normalised to `(min, max)`; pairs with zero links are absent.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkTable {
    counts: FxHashMap<(u32, u32), u32>,
    n: usize,
}

impl LinkTable {
    /// An empty table over `n` points.
    pub fn new(n: usize) -> Self {
        LinkTable {
            counts: FxHashMap::default(),
            n,
        }
    }

    /// Number of points the table is defined over.
    pub fn num_points(&self) -> usize {
        self.n
    }

    /// The link count of the pair `{i, j}` (0 if absent or `i == j`).
    #[inline]
    pub fn count(&self, i: usize, j: usize) -> u32 {
        if i == j {
            return 0;
        }
        let key = Self::key(i as u32, j as u32);
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Adds `delta` links to the pair `{i, j}`.
    ///
    /// # Panics
    /// Panics if `i == j` or either index is out of range.
    pub fn add(&mut self, i: usize, j: usize, delta: u32) {
        assert!(i != j, "links are defined between distinct points");
        assert!(i < self.n && j < self.n, "point id out of range");
        if delta == 0 {
            return;
        }
        *self.counts.entry(Self::key(i as u32, j as u32)).or_insert(0) += delta;
    }

    /// Number of point pairs with at least one link.
    pub fn num_linked_pairs(&self) -> usize {
        self.counts.len()
    }

    /// Rough heap footprint of the table in bytes, for the governed
    /// drivers' charged-memory meter: hashmap capacity × (key + value +
    /// control byte). An estimate, not an allocator measurement.
    pub fn memory_bytes(&self) -> usize {
        let entry = std::mem::size_of::<((u32, u32), u32)>() + 1;
        self.counts.capacity() * entry + std::mem::size_of::<Self>()
    }

    /// Total number of links over all pairs.
    pub fn total_links(&self) -> u64 {
        // tidy-allow(nondeterministic-iter): summation over values is commutative; order cannot affect the total
        self.counts.values().map(|&c| u64::from(c)).sum()
    }

    /// Iterates over `((i, j), count)` with `i < j`, arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = ((u32, u32), u32)> + '_ {
        // tidy-allow(nondeterministic-iter): documented arbitrary-order accessor; the clustering consumer folds pairs into keyed maps and key-tie-broken heaps (run_with_links)
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Converts the pair table into per-point adjacency:
    /// `result[i]` lists `(j, links(i, j))` for all j with non-zero links,
    /// sorted by `j`. This is the form the clustering loop's initial local
    /// heaps are built from.
    pub fn per_point(&self) -> Vec<Vec<(u32, u32)>> {
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.n];
        for (&(i, j), &c) in &self.counts {
            adj[i as usize].push((j, c));
            adj[j as usize].push((i, c));
        }
        for l in &mut adj {
            l.sort_unstable_by_key(|&(j, _)| j);
        }
        adj
    }

    #[inline]
    fn key(i: u32, j: u32) -> (u32, u32) {
        if i < j {
            (i, j)
        } else {
            (j, i)
        }
    }
}

/// Fig. 4: computes all pairwise link counts from the neighbor graph by
/// crediting, for every point, each pair of its neighbors with one link.
///
/// This is the reference implementation: [`crate::links_matrix::LinkMatrix`]
/// is the CSR engine used on the clustering hot path, and the test suites
/// cross-check it against this table.
pub fn compute_links_sparse(graph: &NeighborGraph) -> LinkTable {
    compute_links_sparse_seeded(graph, FxBuildHasher::default())
}

/// As [`compute_links_sparse`], with the table's hash maps built from
/// `hasher`. The link *counts* are identical for every seed — only the
/// map's internal bucket order (and so [`LinkTable::iter`] order) moves.
/// The hasher-independence property test drives clustering through both
/// a seeded and the default table and asserts bit-identical results.
pub fn compute_links_sparse_seeded(graph: &NeighborGraph, hasher: FxBuildHasher) -> LinkTable {
    let n = graph.len();
    // Pre-size the map from the Fig.-4 work bound: point i contributes
    // m_i·(m_i−1)/2 increments, so Σᵢ mᵢ²/2 bounds the number of distinct
    // linked pairs. It can overshoot (pairs repeat across points), so cap
    // by the n²/4 pair-count bound and an absolute allocation ceiling;
    // this keeps the hot loop free of rehashing without overcommitting on
    // dense graphs.
    let sum_sq: f64 = (0..n)
        .map(|i| {
            let m = graph.degree(i) as f64;
            m * m
        })
        .sum();
    let hint = (sum_sq / 2.0).min(n as f64 * n as f64 / 4.0).min(1e7) as usize;
    let mut table = LinkTable {
        counts: FxHashMap::with_capacity_and_hasher(hint.max(16), hasher),
        n,
    };
    for i in 0..n {
        let nbrs = graph.neighbors(i);
        for (a, &j) in nbrs.iter().enumerate() {
            for &l in &nbrs[a + 1..] {
                // Neighbor lists are ascending, so (j, l) is already the
                // normalised (min, max) key.
                *table.counts.entry((j, l)).or_insert(0) += 1;
            }
        }
    }
    table
}

/// Chooses between [`compute_links_sparse`] and [`compute_links_dense`]
/// by estimated cost.
///
/// The Fig.-4 algorithm costs ~`Σᵢ mᵢ²` hash-table increments; the bitset
/// path costs ~`n²/2 · ⌈n/64⌉` word operations plus O(n²/8) bytes of row
/// storage. Hash increments are roughly an order of magnitude more
/// expensive than word ANDs, so dense wins whenever the neighbor graph is
/// dense (low θ, or strongly clustered data like the mushroom set where
/// whole species are mutual neighbors). The crossover constant (8) was
/// measured with `bench/benches/links.rs`; the dense path is refused
/// above 64 MiB of row storage regardless.
pub fn compute_links_auto(graph: &NeighborGraph) -> LinkTable {
    let n = graph.len() as f64;
    let sparse_cost: f64 = (0..graph.len())
        .map(|i| {
            let m = graph.degree(i) as f64;
            m * m
        })
        .sum::<f64>()
        * 8.0;
    let dense_cost = n * n / 2.0 * (n / 64.0).max(1.0);
    let dense_bytes = n * n / 8.0;
    if dense_cost < sparse_cost && dense_bytes < 64.0 * 1024.0 * 1024.0 {
        compute_links_dense(graph)
    } else {
        compute_links_sparse(graph)
    }
}

/// §4.4: computes link counts as the square of the boolean adjacency
/// matrix, with rows packed into `u64` bitsets.
///
/// Produces a table identical to [`compute_links_sparse`]; intended for
/// cross-checking and for dense neighbor graphs (low θ) where the Fig.-4
/// algorithm degrades to O(n³) hash updates while this path does O(n³/64)
/// word ANDs.
pub fn compute_links_dense(graph: &NeighborGraph) -> LinkTable {
    let n = graph.len();
    let mut rows: Vec<BitSet> = Vec::with_capacity(n);
    for i in 0..n {
        let mut row = BitSet::new(n);
        for &j in graph.neighbors(i) {
            row.set(j as usize);
        }
        rows.push(row);
    }
    let mut table = LinkTable::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let c = rows[i].intersection_count(&rows[j]);
            if c > 0 {
                table.counts.insert((i as u32, j as u32), c as u32);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::Transaction;
    use crate::similarity::{Jaccard, PointsWith, SimilarityMatrix};

    use crate::testdata::figure1_transactions;

    fn find(ts: &[Transaction], items: [u32; 3]) -> usize {
        let t = Transaction::from(items);
        ts.iter().position(|x| *x == t).expect("transaction present")
    }

    #[test]
    fn paper_example_links_figure1() {
        // §3.2: with θ = 0.5, {1,2,6} has 5 links with {1,2,7} and 3 links
        // with {1,2,3}; {1,6,7} has 2 links with {1,2,6} and 0 links with
        // transactions of the big cluster not containing 1, 2, 6 or 7.
        let ts = figure1_transactions();
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let links = compute_links_sparse(&g);
        let t126 = find(&ts, [1, 2, 6]);
        let t127 = find(&ts, [1, 2, 7]);
        let t123 = find(&ts, [1, 2, 3]);
        let t167 = find(&ts, [1, 6, 7]);
        let t345 = find(&ts, [3, 4, 5]);
        assert_eq!(links.count(t126, t127), 5);
        assert_eq!(links.count(t126, t123), 3);
        assert_eq!(links.count(t167, t126), 2);
        assert_eq!(links.count(t167, t345), 0);
    }

    #[test]
    fn paper_example_1_2_pair_counts() {
        // §1.2: pairs containing {1,2} in the same cluster have 5 common
        // neighbors; across clusters only 3.
        let ts = figure1_transactions();
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let links = compute_links_sparse(&g);
        let t123 = find(&ts, [1, 2, 3]);
        let t124 = find(&ts, [1, 2, 4]);
        let t126 = find(&ts, [1, 2, 6]);
        assert_eq!(links.count(t123, t124), 5);
        assert_eq!(links.count(t123, t126), 3);
    }

    #[test]
    fn auto_matches_both_paths() {
        // Dense regime (low θ) and sparse regime (high θ) must both agree
        // with the explicit algorithms.
        for theta in [0.2, 0.9] {
            let m = SimilarityMatrix::from_fn(120, |i, j| {
                ((i * 31 + j * 17) % 100) as f64 / 100.0
            });
            let g = NeighborGraph::build(&m, theta);
            let auto = compute_links_auto(&g);
            assert_eq!(auto, compute_links_sparse(&g), "theta {theta}");
            assert_eq!(auto, compute_links_dense(&g), "theta {theta}");
        }
    }

    #[test]
    fn sparse_equals_dense() {
        let m = SimilarityMatrix::from_fn(80, |i, j| {
            let h = (i * 2654435761 + j * 97) % 100;
            h as f64 / 100.0
        });
        let g = NeighborGraph::build(&m, 0.6);
        assert_eq!(compute_links_sparse(&g), compute_links_dense(&g));
    }

    #[test]
    fn links_match_adjacency_matrix_square() {
        // Cross-check against an O(n³) textbook matrix multiplication.
        let m = SimilarityMatrix::from_fn(40, |i, j| ((i * 31 + j * 17) % 10) as f64 / 10.0);
        let g = NeighborGraph::build(&m, 0.5);
        let n = g.len();
        let mut a = vec![vec![0u32; n]; n];
        for (i, row) in a.iter_mut().enumerate() {
            for &j in g.neighbors(i) {
                row[j as usize] = 1;
            }
        }
        let links = compute_links_sparse(&g);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let aa: u32 = (0..n).map(|l| a[i][l] * a[l][j]).sum();
                assert_eq!(links.count(i, j), aa, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn per_point_adjacency_is_consistent() {
        let ts = figure1_transactions();
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let links = compute_links_sparse(&g);
        let adj = links.per_point();
        for (i, list) in adj.iter().enumerate() {
            assert!(list.windows(2).all(|w| w[0].0 < w[1].0), "sorted by id");
            for &(j, c) in list {
                assert_eq!(links.count(i, j as usize), c);
                assert!(c > 0);
            }
        }
        // Every table entry appears exactly twice across per-point lists.
        let total: usize = adj.iter().map(Vec::len).sum();
        assert_eq!(total, 2 * links.num_linked_pairs());
    }

    #[test]
    fn isolated_point_has_no_links() {
        let ts = vec![
            Transaction::from([1, 2, 3]),
            Transaction::from([1, 2, 4]),
            Transaction::from([1, 3, 4]),
            Transaction::from([9]),
        ];
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.4);
        let links = compute_links_sparse(&g);
        for i in 0..3 {
            assert_eq!(links.count(3, i), 0);
        }
    }

    #[test]
    fn count_diagonal_and_missing_are_zero() {
        let t = LinkTable::new(5);
        assert_eq!(t.count(2, 2), 0);
        assert_eq!(t.count(0, 1), 0);
        assert_eq!(t.total_links(), 0);
    }

    #[test]
    fn add_accumulates_symmetrically() {
        let mut t = LinkTable::new(5);
        t.add(3, 1, 2);
        t.add(1, 3, 1);
        assert_eq!(t.count(1, 3), 3);
        assert_eq!(t.count(3, 1), 3);
        assert_eq!(t.num_linked_pairs(), 1);
        assert_eq!(t.total_links(), 3);
    }

    #[test]
    #[should_panic(expected = "distinct points")]
    fn add_diagonal_panics() {
        let mut t = LinkTable::new(3);
        t.add(1, 1, 1);
    }
}

//! Error type for configuration validation at the public API boundary.
//!
//! Low-level modules assert their preconditions (programmer errors);
//! the [`crate::rock::RockBuilder`] validates *user-supplied*
//! configuration and reports problems as values. Governed runs
//! additionally surface budget trips ([`RockError::Interrupted`]) and
//! write-ahead-log damage ([`RockError::WalCorrupt`],
//! [`RockError::WalMismatch`]) as values — never as panics.

use crate::governor::{Phase, TripReason};
use std::fmt;

/// A configuration error from [`crate::rock::RockBuilder::build`].
#[derive(Clone, Debug, PartialEq)]
pub enum RockError {
    /// θ must lie in `[0, 1]`.
    InvalidTheta(f64),
    /// The target cluster count must be ≥ 1.
    InvalidK(usize),
    /// `f(θ)` evaluated to something non-finite or negative.
    InvalidFTheta(f64),
    /// The labeling fraction must lie in `(0, 1]`.
    InvalidLabelingFraction(f64),
    /// The sample size must be ≥ the target cluster count.
    InvalidSampleSize {
        /// The configured sample size.
        sample_size: usize,
        /// The configured target cluster count.
        k: usize,
    },
    /// A weed policy must have `stop_multiple ≥ 1`.
    InvalidWeedMultiple(f64),
    /// Thread count must be ≥ 1.
    InvalidThreads(usize),
    /// A sharded run's shard count must be ≥ 1 (see
    /// [`crate::engine::supervisor::ShardSupervisor`]).
    InvalidShardCount(usize),
    /// A [`crate::governor::DegradationPolicy::Subsample`] fraction must
    /// lie strictly in `(0, 1)`.
    InvalidSubsampleFraction(f64),
    /// A user-supplied similarity measure returned NaN or ±∞.
    ///
    /// Surfaced by the checked entry points ([`crate::rock::Rock::try_cluster`],
    /// [`crate::rock::Rock::try_cluster_pairwise`], [`crate::rock::Rock::try_run`]
    /// and [`crate::labeling::Labeler::label_point_checked`]) instead of
    /// letting the value poison neighbor decisions or trip heap asserts
    /// mid-merge.
    NonFiniteSimilarity {
        /// The offending similarity value.
        value: f64,
    },
    /// A governed run stopped early: the cancellation token fired, the
    /// wall-clock deadline passed, or the memory budget was exceeded
    /// (see [`crate::governor::RunGovernor`]).
    Interrupted {
        /// The phase that observed the trip.
        phase: Phase,
        /// Which budget tripped.
        reason: TripReason,
        /// Whether the run can be resumed from a merge WAL: `true` when
        /// the interrupted entry point was writing one
        /// (see [`crate::wal::MergeWal`]).
        resumable: bool,
    },
    /// A merge write-ahead log is structurally damaged beyond the
    /// recoverable torn tail: bad magic, or a corrupt header/Begin
    /// record. Torn tails (incomplete or CRC-failing trailing frames)
    /// are *not* errors — they are truncated on parse.
    WalCorrupt {
        /// Byte offset of the damage.
        offset: u64,
        /// What failed to parse.
        detail: String,
    },
    /// A merge WAL is internally consistent but does not belong to the
    /// run being resumed: different configuration fingerprint, different
    /// input, or a merge record that contradicts the replayed state.
    WalMismatch {
        /// The disagreement found.
        detail: String,
    },
    /// A fitted-model artifact is structurally damaged: bad magic, a
    /// truncated tail, a frame that fails its CRC, a record that does
    /// not decode, or bytes past the end marker. Unlike the WAL, the
    /// artifact tolerates **no** damage — any byte flip or truncation is
    /// this error, never a silently wrong clustering.
    ArtifactCorrupt {
        /// Byte offset of the damage.
        offset: u64,
        /// What failed to parse.
        detail: String,
    },
    /// A fitted-model artifact declares a format version this build does
    /// not understand.
    ArtifactVersion {
        /// The version found in the artifact header.
        found: u32,
        /// The newest version this build can read.
        supported: u32,
    },
    /// A fitted-model artifact decodes cleanly but is internally
    /// inconsistent (a representative index out of range, a cluster
    /// count mismatch between sections, a dendrogram that does not
    /// replay) or does not belong to the model loading it.
    ArtifactMismatch {
        /// The inconsistency found.
        detail: String,
    },
    /// An I/O failure while reading or writing a fitted-model artifact
    /// that persisted past the serve layer's bounded retries.
    ArtifactIo {
        /// The underlying I/O error, rendered.
        detail: String,
    },
}

impl fmt::Display for RockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RockError::InvalidTheta(t) => {
                write!(f, "similarity threshold theta must be in [0, 1], got {t}")
            }
            RockError::InvalidK(k) => write!(f, "target cluster count must be >= 1, got {k}"),
            RockError::InvalidFTheta(v) => {
                write!(f, "f(theta) must be finite and non-negative, got {v}")
            }
            RockError::InvalidLabelingFraction(v) => {
                write!(f, "labeling fraction must be in (0, 1], got {v}")
            }
            RockError::InvalidSampleSize { sample_size, k } => write!(
                f,
                "sample size {sample_size} is smaller than the target cluster count {k}"
            ),
            RockError::InvalidWeedMultiple(m) => {
                write!(f, "weed stop multiple must be >= 1, got {m}")
            }
            RockError::InvalidThreads(t) => write!(f, "thread count must be >= 1, got {t}"),
            RockError::InvalidShardCount(s) => write!(f, "shard count must be >= 1, got {s}"),
            RockError::InvalidSubsampleFraction(v) => {
                write!(f, "subsample degradation fraction must be in (0, 1), got {v}")
            }
            RockError::NonFiniteSimilarity { value } => write!(
                f,
                "similarity measure returned a non-finite value {value}; \
                 similarities must lie in [0, 1]"
            ),
            RockError::Interrupted {
                phase,
                reason,
                resumable,
            } => write!(
                f,
                "run interrupted in {phase} phase: {reason}{}",
                if *resumable {
                    " (resumable from the merge WAL)"
                } else {
                    ""
                }
            ),
            RockError::WalCorrupt { offset, detail } => {
                write!(f, "merge WAL corrupt at byte {offset}: {detail}")
            }
            RockError::WalMismatch { detail } => {
                write!(f, "merge WAL does not match this run: {detail}")
            }
            RockError::ArtifactCorrupt { offset, detail } => {
                write!(f, "model artifact corrupt at byte {offset}: {detail}")
            }
            RockError::ArtifactVersion { found, supported } => write!(
                f,
                "model artifact format version {found} is not supported \
                 (this build reads up to version {supported})"
            ),
            RockError::ArtifactMismatch { detail } => {
                write!(f, "model artifact is inconsistent: {detail}")
            }
            RockError::ArtifactIo { detail } => {
                write!(f, "model artifact I/O failed: {detail}")
            }
        }
    }
}

impl std::error::Error for RockError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_values() {
        let cases: Vec<(RockError, &str)> = vec![
            (RockError::InvalidTheta(1.5), "1.5"),
            (RockError::InvalidK(0), "0"),
            (RockError::InvalidFTheta(f64::NAN), "NaN"),
            (RockError::InvalidLabelingFraction(0.0), "0"),
            (
                RockError::InvalidSampleSize {
                    sample_size: 3,
                    k: 10,
                },
                "3",
            ),
            (RockError::InvalidWeedMultiple(0.5), "0.5"),
            (RockError::InvalidThreads(0), "0"),
            (RockError::InvalidShardCount(0), "shard count"),
            (RockError::InvalidSubsampleFraction(1.0), "(0, 1)"),
            (
                RockError::NonFiniteSimilarity { value: f64::NAN },
                "NaN",
            ),
            (
                RockError::Interrupted {
                    phase: Phase::Merge,
                    reason: TripReason::DeadlineExceeded,
                    resumable: true,
                },
                "resumable",
            ),
            (
                RockError::WalCorrupt {
                    offset: 17,
                    detail: "bad magic".into(),
                },
                "byte 17",
            ),
            (
                RockError::WalMismatch {
                    detail: "k differs".into(),
                },
                "k differs",
            ),
            (
                RockError::ArtifactCorrupt {
                    offset: 42,
                    detail: "truncated frame".into(),
                },
                "byte 42",
            ),
            (
                RockError::ArtifactVersion {
                    found: 9,
                    supported: 1,
                },
                "9",
            ),
            (
                RockError::ArtifactMismatch {
                    detail: "representative index out of range".into(),
                },
                "representative index",
            ),
            (
                RockError::ArtifactIo {
                    detail: "read timed out".into(),
                },
                "timed out",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&RockError::InvalidK(0));
    }
}

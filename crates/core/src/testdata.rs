//! Shared test fixtures (compiled only for tests).

use crate::points::Transaction;

/// Fig. 1 / Example 1.2: two overlapping clusters of size-3 subsets.
/// Cluster A (ids 0..10): all 3-subsets of {1..5}; cluster B (ids 10..14):
/// all 3-subsets of {1, 2, 6, 7}. Items 1 and 2 are common to both.
pub(crate) fn figure1_transactions() -> Vec<Transaction> {
    let mut ts = Vec::new();
    let a = [1u32, 2, 3, 4, 5];
    for x in 0..a.len() {
        for y in (x + 1)..a.len() {
            for z in (y + 1)..a.len() {
                ts.push(Transaction::from([a[x], a[y], a[z]]));
            }
        }
    }
    let b = [1u32, 2, 6, 7];
    for x in 0..b.len() {
        for y in (x + 1)..b.len() {
            for z in (y + 1)..b.len() {
                ts.push(Transaction::from([b[x], b[y], b[z]]));
            }
        }
    }
    ts
}

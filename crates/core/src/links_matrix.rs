//! CSR link matrix — the parallel hot-path replacement for [`LinkTable`].
//!
//! The Fig.-4 link pass and the §4.4 matrix-square both produce, for every
//! point, the sorted list of partners it shares common neighbors with.
//! [`LinkMatrix`] stores exactly that as compressed sparse rows: one
//! `offsets` array plus parallel `cols`/`counts` arrays holding both
//! directions of every linked pair. Compared to the
//! `FxHashMap<(u32,u32),u32>`-backed [`LinkTable`], lookups are a binary
//! search in a contiguous row, iteration is a linear scan, and
//! construction is a sort — all cache-friendly and parallelisable.
//!
//! Two construction kernels are provided, selected by [`LinkMatrix::compute_auto`]:
//!
//! * [`LinkMatrix::compute_sparse`] — Fig. 4 reformulated as a pair
//!   stream sharded by **smaller endpoint**: a global O(Σmᵢ) histogram
//!   prices every CSR row by its emitted-pair count, contiguous row
//!   ranges of equal pair mass are handed to workers, and each worker
//!   counting-sorts exactly the pairs whose smaller endpoint falls in
//!   its range (histogram segment, scatter, dense per-segment count).
//!   Because the key space `pack(j, l)` is ordered by smaller endpoint
//!   first, the per-shard sorted runs occupy *disjoint, ascending key
//!   ranges*: the final CSR is assembled by scanning the runs in shard
//!   order with **no merge step and no cross-shard count summing**. The
//!   pair multiset owned by each row is independent of where the shard
//!   boundaries fall, so output is **bit-identical for every thread
//!   count and every shard split** (proptest-pinned in
//!   `tests/kernel_invariance.rs`).
//! * [`LinkMatrix::compute_dense`] — §4.4's boolean `A²` over bit-packed
//!   adjacency rows: worker `t` owns a block of rows and computes
//!   `popcount(rowᵢ & rowⱼ)` for `j > i`, writing into its own block, so
//!   again no merge order can affect the result.
//!
//! See DESIGN.md §"Performance model" for layout diagrams and the
//! measured crossover between the kernels.

use std::ops::Range;

use crate::links::LinkTable;
use crate::neighbors::NeighborGraph;
use crate::util::{balanced_ranges, BitSet};

/// Which link-construction kernel to run (see
/// [`LinkMatrix::choose_kernel`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkKernel {
    /// The Fig.-4 counting-sort pair-stream kernel.
    Sparse,
    /// The §4.4 boolean matrix square over bit-packed rows.
    Dense,
}

/// Symmetric link counts in compressed-sparse-row form.
///
/// Row `i` lists, ascending, every `j` with `link(i, j) > 0` together
/// with the count; every linked pair therefore appears twice (once per
/// endpoint), exactly like the adjacency view of [`LinkTable::per_point`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkMatrix {
    /// Row boundaries: row `i` occupies `cols[offsets[i]..offsets[i+1]]`.
    offsets: Vec<usize>,
    /// Partner ids, ascending within each row.
    cols: Vec<u32>,
    /// Link counts, parallel to `cols`.
    counts: Vec<u32>,
}

impl LinkMatrix {
    /// An empty matrix over `n` points.
    pub fn new(n: usize) -> Self {
        LinkMatrix {
            offsets: vec![0; n + 1],
            cols: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Number of points the matrix is defined over.
    pub fn num_points(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The link count of the pair `{i, j}` (0 if absent or `i == j`).
    #[inline]
    pub fn count(&self, i: usize, j: usize) -> u32 {
        let (cols, counts) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(pos) => counts[pos],
            Err(_) => 0,
        }
    }

    /// Row `i` as `(partner ids, counts)` slices, partners ascending.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[u32]) {
        let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
        (&self.cols[lo..hi], &self.counts[lo..hi])
    }

    /// Number of point pairs with at least one link.
    pub fn num_linked_pairs(&self) -> usize {
        debug_assert!(self.cols.len().is_multiple_of(2));
        self.cols.len() / 2
    }

    /// Total number of links over all pairs.
    pub fn total_links(&self) -> u64 {
        self.counts.iter().map(|&c| u64::from(c)).sum::<u64>() / 2
    }

    /// Iterates over `((i, j), count)` with `i < j`, ascending by `(i, j)`.
    pub fn iter_upper(&self) -> impl Iterator<Item = ((u32, u32), u32)> + '_ {
        (0..self.num_points()).flat_map(move |i| {
            let (cols, counts) = self.row(i);
            let start = cols.partition_point(|&j| (j as usize) <= i);
            cols[start..]
                .iter()
                .zip(&counts[start..])
                .map(move |(&j, &c)| ((i as u32, j), c))
        })
    }

    /// Converts to the hashmap-backed reference representation.
    pub fn to_table(&self) -> LinkTable {
        let mut table = LinkTable::new(self.num_points());
        for ((i, j), c) in self.iter_upper() {
            table.add(i as usize, j as usize, c);
        }
        table
    }

    /// Builds a matrix from the hashmap-backed reference representation.
    pub fn from_table(table: &LinkTable) -> Self {
        let mut pairs: Vec<(u64, u32)> = table
            .iter()
            .map(|((i, j), c)| (pack(i, j), c))
            .collect();
        pairs.sort_unstable_by_key(|&(key, _)| key);
        Self::assemble_runs(table.num_points(), std::slice::from_ref(&pairs))
    }

    /// Approximate heap footprint in bytes (for the auto heuristic and
    /// benchmark reports).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.cols.len() * 4
            + self.counts.len() * 4
    }

    /// Pairs whose smaller endpoint is `j`, over the whole graph.
    ///
    /// Point `i`'s ascending neighbor list contributes `mᵢ−1−a` pairs
    /// with smaller endpoint `nbrs[a]`, so one O(Σmᵢ) sweep prices every
    /// CSR row before any pair is materialised. This histogram is both
    /// the shard balancer (mass = emitted pairs) and each worker's
    /// segment layout.
    fn smaller_endpoint_histogram(graph: &NeighborGraph) -> Vec<usize> {
        let n = graph.len();
        let mut hist = vec![0usize; n];
        for i in 0..n {
            let nbrs = graph.neighbors(i);
            let m = nbrs.len();
            for (a, &j) in nbrs.iter().enumerate() {
                hist[j as usize] += m - 1 - a;
            }
        }
        hist
    }

    /// Fig. 4 via the range-sharded pair-stream kernel. `threads == 1`
    /// runs the same kernel on one shard; output is identical for every
    /// `threads`.
    ///
    /// Work is sharded by *smaller endpoint*: shard boundaries balance
    /// emitted-pair mass (not row count — a shard of a few hub rows can
    /// weigh as much as thousands of sparse rows), and each worker owns
    /// a contiguous CSR row range whose sorted `(key, count)` run it
    /// writes outright. Runs occupy disjoint ascending key ranges, so
    /// assembly is a concatenated scan with no merge step.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn compute_sparse(graph: &NeighborGraph, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        let hist = Self::smaller_endpoint_histogram(graph);
        let shards = balanced_ranges(graph.len(), threads, |j| hist[j] as u64);
        Self::compute_sparse_on(graph, &hist, &shards)
    }

    /// Runs the sparse kernel over an explicit shard split — the test
    /// seam for adversarial shard-boundary invariance. `shards` must
    /// partition `0..graph.len()` into contiguous, non-overlapping,
    /// ascending ranges (empty ranges are allowed).
    #[doc(hidden)]
    pub fn compute_sparse_ranges(graph: &NeighborGraph, shards: &[Range<usize>]) -> Self {
        let hist = Self::smaller_endpoint_histogram(graph);
        Self::compute_sparse_on(graph, &hist, shards)
    }

    /// The sharded counting-sort body shared by
    /// [`Self::compute_sparse`] and [`Self::compute_sparse_ranges`].
    ///
    /// Each worker counting-sorts exactly the pairs whose smaller
    /// endpoint falls in its row range: a per-`j` segment layout read
    /// off the global histogram, a linear scatter of larger endpoints
    /// (neighbor lists are ascending ⇒ `(j, l)` is already the
    /// normalised pair), then a dense per-segment count into the
    /// shard's sorted run. O(pairs) total, vs O(pairs·log pairs) for a
    /// sort — the difference that makes this kernel beat the hashmap
    /// reference instead of losing to it.
    fn compute_sparse_on(
        graph: &NeighborGraph,
        hist: &[usize],
        shards: &[Range<usize>],
    ) -> Self {
        let n = graph.len();
        debug_assert_eq!(shards.iter().map(|r| r.len()).sum::<usize>(), n);
        debug_assert!(shards.windows(2).all(|w| w[0].end == w[1].start));

        let mut runs: Vec<Vec<(u64, u32)>> = Vec::with_capacity(shards.len());
        runs.resize_with(shards.len(), Vec::new);
        rayon::scope(|scope| {
            for (range, out) in shards.iter().zip(runs.iter_mut()) {
                let (lo, hi) = (range.start, range.end);
                if lo == hi {
                    continue;
                }
                scope.spawn(move |_| {
                    // Segment offsets for this shard's rows, straight
                    // from the global histogram.
                    let mut seg = vec![0usize; hi - lo + 1];
                    for j in lo..hi {
                        seg[j - lo + 1] = seg[j - lo] + hist[j];
                    }
                    let mut data = vec![0u32; seg[hi - lo]];
                    let mut cursor: Vec<usize> = seg[..hi - lo].to_vec();
                    // tidy:kernel-hot-loop — scatter larger endpoints into per-row segments
                    for i in 0..n {
                        let nbrs = graph.neighbors(i);
                        let a0 = nbrs.partition_point(|&x| (x as usize) < lo);
                        let a1 = a0 + nbrs[a0..].partition_point(|&x| (x as usize) < hi);
                        for a in a0..a1 {
                            let j = nbrs[a] as usize;
                            let mut c = cursor[j - lo];
                            for &l in &nbrs[a + 1..] {
                                data[c] = l;
                                c += 1;
                            }
                            cursor[j - lo] = c;
                        }
                    }
                    // tidy:end-kernel-hot-loop
                    // Dense count per segment → this shard's sorted run
                    // over its disjoint slice of the key space. Scratch
                    // is allocated once per worker, outside the loop.
                    let mut scratch = vec![0u32; n];
                    let mut partners: Vec<u32> = Vec::new();
                    let mut pairs: Vec<(u64, u32)> = Vec::new();
                    // tidy:kernel-hot-loop — per-segment dense count
                    for j in lo..hi {
                        let segment = &data[seg[j - lo]..seg[j - lo + 1]];
                        if segment.is_empty() {
                            continue;
                        }
                        for &l in segment {
                            if scratch[l as usize] == 0 {
                                partners.push(l);
                            }
                            scratch[l as usize] += 1;
                        }
                        partners.sort_unstable();
                        for &l in &partners {
                            pairs.push((pack(j as u32, l), scratch[l as usize]));
                            scratch[l as usize] = 0;
                        }
                        partners.clear();
                    }
                    // tidy:end-kernel-hot-loop
                    *out = pairs;
                });
            }
        });

        let emitted: usize = hist.iter().sum();
        crate::perf::count_pairs_emitted(emitted as u64);
        let matrix = Self::assemble_runs(n, &runs);
        crate::perf::count_bytes_touched((emitted * 4 + matrix.memory_bytes()) as u64);
        matrix
    }

    /// §4.4's boolean matrix square over bit-packed rows, blocked across
    /// workers. Output is identical to [`Self::compute_sparse`].
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn compute_dense(graph: &NeighborGraph, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        let n = graph.len();
        let mut rows: Vec<BitSet> = Vec::with_capacity(n);
        for i in 0..n {
            let mut row = BitSet::new(n);
            for &j in graph.neighbors(i) {
                row.set(j as usize);
            }
            rows.push(row);
        }
        let rows = &rows;

        // Row i of the upper triangle costs (n − i) popcount-AND sweeps.
        let shards = balanced_ranges(n, threads, |i| (n - i) as u64);
        let mut upper: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        rayon::scope(|scope| {
            let mut rest = upper.as_mut_slice();
            let mut consumed = 0;
            for range in &shards {
                let (block, tail) = rest.split_at_mut(range.end - consumed);
                rest = tail;
                let lo = consumed;
                consumed = range.end;
                scope.spawn(move |_| {
                    for (offset, out) in block.iter_mut().enumerate() {
                        let i = lo + offset;
                        for j in (i + 1)..n {
                            let c = rows[i].intersection_count(&rows[j]);
                            if c > 0 {
                                out.push((j as u32, c as u32));
                            }
                        }
                    }
                });
            }
        });

        let pairs: Vec<(u64, u32)> = upper
            .iter()
            .enumerate()
            .flat_map(|(i, row)| {
                row.iter().map(move |&(j, c)| (pack(i as u32, j), c))
            })
            .collect();
        // Count emitted pairs like the sparse kernel does, so reports
        // stay comparable whichever kernel the auto heuristic picks.
        crate::perf::count_pairs_emitted(pairs.len() as u64);
        crate::perf::count_bytes_touched((n * n / 8) as u64);
        Self::assemble_runs(n, std::slice::from_ref(&pairs))
    }

    /// Chooses between the sparse and dense kernels by estimated cost.
    ///
    /// The pair-stream kernel touches each of its ~`Σᵢ mᵢ²/2` pairs a
    /// constant number of times (histogram, scatter, count); the bitset
    /// square costs `n²/2 · ⌈n/64⌉` word ANDs plus O(n²/8) bytes of row
    /// storage. One counted pair costs ~1.5× a popcount-AND word op
    /// (measured with `bench/benches/rock_parallel.rs` on the §5.3
    /// generator — far below the ~8× of the old hash-increment path,
    /// which is why the crossover moved), and both kernels parallelise
    /// evenly so `threads` does not shift it. Dense is refused above
    /// 64 MiB of row storage regardless.
    pub fn compute_auto(graph: &NeighborGraph, threads: usize) -> Self {
        match Self::choose_kernel(graph) {
            LinkKernel::Dense => Self::compute_dense(graph, threads),
            LinkKernel::Sparse => Self::compute_sparse(graph, threads),
        }
    }

    /// The kernel [`compute_auto`](Self::compute_auto) would pick for
    /// `graph`, exposed so budget-aware drivers can veto the dense
    /// kernel's `n²/8` row storage *before* allocating it (see
    /// [`crate::governor::DegradationPolicy::SparseLinks`]).
    pub fn choose_kernel(graph: &NeighborGraph) -> LinkKernel {
        let n = graph.len() as f64;
        let sparse_cost: f64 = (0..graph.len())
            .map(|i| {
                let m = graph.degree(i) as f64;
                m * m
            })
            .sum::<f64>()
            / 2.0
            * 1.5;
        let dense_cost = n * n / 2.0 * (n / 64.0).max(1.0);
        let dense_bytes = n * n / 8.0;
        if dense_cost < sparse_cost && dense_bytes < 64.0 * 1024.0 * 1024.0 {
            LinkKernel::Dense
        } else {
            LinkKernel::Sparse
        }
    }

    /// Transient working-set estimate of the dense kernel over `n`
    /// points: the bit-packed adjacency rows (`n²/8` bytes). The sparse
    /// kernel's working set is the counted pair stream, roughly
    /// proportional to the output CSR instead.
    pub fn estimated_dense_bytes(n: usize) -> u64 {
        let n = n as u64;
        n * n / 8
    }

    /// Runs the named kernel.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn compute_kernel(graph: &NeighborGraph, threads: usize, kernel: LinkKernel) -> Self {
        match kernel {
            LinkKernel::Dense => Self::compute_dense(graph, threads),
            LinkKernel::Sparse => Self::compute_sparse(graph, threads),
        }
    }

    /// Builds the symmetric CSR from upper-triangle `(packed key, count)`
    /// runs whose concatenation is ascending and duplicate-free — the
    /// shape the range-sharded kernel produces (each run owns a disjoint
    /// slice of the key space), and trivially also a single sorted run.
    fn assemble_runs(n: usize, runs: &[Vec<(u64, u32)>]) -> Self {
        debug_assert!({
            let keys: Vec<u64> = runs.iter().flatten().map(|&(k, _)| k).collect();
            keys.windows(2).all(|w| w[0] < w[1])
        });
        let mut degree = vec![0usize; n];
        for &(key, _) in runs.iter().flatten() {
            let (i, j) = unpack(key);
            degree[i as usize] += 1;
            degree[j as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let total = offsets[n];
        let mut cols = vec![0u32; total];
        let mut counts = vec![0u32; total];
        let mut cursor = offsets.clone();
        // Scanning pairs in ascending (i, j) order fills every row
        // ascending: row r first receives partners h < r (from pairs
        // (h, r), ascending h), then partners j > r (from pairs (r, j),
        // ascending j) — all lower-partner pairs sort before any
        // upper-partner pair of the same row.
        for &(key, c) in runs.iter().flatten() {
            let (i, j) = unpack(key);
            cols[cursor[i as usize]] = j;
            counts[cursor[i as usize]] = c;
            cursor[i as usize] += 1;
            cols[cursor[j as usize]] = i;
            counts[cursor[j as usize]] = c;
            cursor[j as usize] += 1;
        }
        debug_assert!((0..n).all(|i| {
            let (lo, hi) = (offsets[i], offsets[i + 1]);
            cols[lo..hi].windows(2).all(|w| w[0] < w[1])
        }));
        LinkMatrix {
            offsets,
            cols,
            counts,
        }
    }
}

#[inline]
fn pack(i: u32, j: u32) -> u64 {
    (u64::from(i) << 32) | u64::from(j)
}

#[inline]
fn unpack(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::links::compute_links_sparse;
    use crate::points::Transaction;
    use crate::similarity::{Jaccard, PointsWith, SimilarityMatrix};

    fn pseudo_graph(n: usize, theta: f64) -> NeighborGraph {
        let m = SimilarityMatrix::from_fn(n, |i, j| {
            ((i * j).wrapping_mul(2654435761) % 1000) as f64 / 1000.0
        });
        NeighborGraph::build(&m, theta)
    }

    #[test]
    fn matches_reference_table() {
        let g = pseudo_graph(90, 0.6);
        let reference = compute_links_sparse(&g);
        let matrix = LinkMatrix::compute_sparse(&g, 1);
        assert_eq!(matrix.to_table(), reference);
        assert_eq!(matrix.num_linked_pairs(), reference.num_linked_pairs());
        assert_eq!(matrix.total_links(), reference.total_links());
        for i in 0..g.len() {
            for j in 0..g.len() {
                assert_eq!(
                    matrix.count(i, j),
                    reference.count(i, j),
                    "pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn sparse_kernel_is_thread_count_invariant() {
        let g = pseudo_graph(150, 0.5);
        let one = LinkMatrix::compute_sparse(&g, 1);
        for threads in [2, 3, 5, 8, 16] {
            assert_eq!(
                LinkMatrix::compute_sparse(&g, threads),
                one,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn adversarial_shard_splits_are_invariant() {
        let g = pseudo_graph(120, 0.5);
        let n = g.len();
        let reference = LinkMatrix::compute_sparse(&g, 1);
        let splits: Vec<Vec<Range<usize>>> = vec![
            vec![0..n],
            vec![0..1, 1..2, 2..n],
            vec![0..n / 2, n / 2..n],
            vec![0..0, 0..n, n..n],
            (0..n).map(|i| i..i + 1).collect(),
            vec![0..n - 1, n - 1..n],
        ];
        for (s, split) in splits.iter().enumerate() {
            assert_eq!(
                LinkMatrix::compute_sparse_ranges(&g, split),
                reference,
                "split #{s}"
            );
        }
    }

    #[test]
    fn dense_kernel_matches_sparse_kernel() {
        for theta in [0.2, 0.5, 0.8] {
            let g = pseudo_graph(120, theta);
            let sparse = LinkMatrix::compute_sparse(&g, 3);
            for threads in [1, 4] {
                assert_eq!(
                    LinkMatrix::compute_dense(&g, threads),
                    sparse,
                    "theta={theta} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn auto_matches_explicit_kernels() {
        for theta in [0.15, 0.9] {
            let g = pseudo_graph(140, theta);
            assert_eq!(
                LinkMatrix::compute_auto(&g, 2),
                LinkMatrix::compute_sparse(&g, 1),
                "theta={theta}"
            );
        }
    }

    #[test]
    fn rows_are_sorted_and_symmetric() {
        let g = pseudo_graph(100, 0.45);
        let m = LinkMatrix::compute_sparse(&g, 4);
        for i in 0..m.num_points() {
            let (cols, counts) = m.row(i);
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {i} unsorted");
            for (&j, &c) in cols.iter().zip(counts) {
                assert!(c > 0);
                assert_eq!(m.count(j as usize, i), c, "asymmetric ({i},{j})");
            }
        }
    }

    #[test]
    fn iter_upper_is_sorted_and_complete() {
        let g = pseudo_graph(80, 0.5);
        let m = LinkMatrix::compute_sparse(&g, 2);
        let pairs: Vec<((u32, u32), u32)> = m.iter_upper().collect();
        assert_eq!(pairs.len(), m.num_linked_pairs());
        assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "unsorted pairs");
        for &((i, j), c) in &pairs {
            assert!(i < j);
            assert_eq!(m.count(i as usize, j as usize), c);
        }
    }

    #[test]
    fn from_table_round_trips() {
        let g = pseudo_graph(70, 0.55);
        let table = compute_links_sparse(&g);
        let m = LinkMatrix::from_table(&table);
        assert_eq!(m, LinkMatrix::compute_sparse(&g, 1));
        assert_eq!(m.to_table(), table);
    }

    #[test]
    fn paper_example_links_figure1() {
        // Same §3.2 counts the LinkTable tests pin down.
        let ts = crate::testdata::figure1_transactions();
        let find = |items: [u32; 3]| {
            let t = Transaction::from(items);
            ts.iter().position(|x| *x == t).expect("present")
        };
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let m = LinkMatrix::compute_auto(&g, 2);
        assert_eq!(m.count(find([1, 2, 6]), find([1, 2, 7])), 5);
        assert_eq!(m.count(find([1, 2, 6]), find([1, 2, 3])), 3);
        assert_eq!(m.count(find([1, 6, 7]), find([1, 2, 6])), 2);
        assert_eq!(m.count(find([1, 6, 7]), find([3, 4, 5])), 0);
    }

    #[test]
    fn empty_and_isolated() {
        let empty = LinkMatrix::new(0);
        assert_eq!(empty.num_points(), 0);
        assert_eq!(empty.iter_upper().count(), 0);
        assert_eq!(
            LinkMatrix::compute_sparse_ranges(&NeighborGraph::from_lists(vec![], 0.5), &[]),
            empty
        );

        let g = NeighborGraph::from_lists(vec![vec![], vec![], vec![]], 0.5);
        let m = LinkMatrix::compute_sparse(&g, 2);
        assert_eq!(m.num_points(), 3);
        assert_eq!(m.num_linked_pairs(), 0);
        assert_eq!(m.count(0, 1), 0);
    }

    #[test]
    fn histogram_prices_rows_by_emitted_pairs() {
        let g = pseudo_graph(60, 0.5);
        let hist = LinkMatrix::smaller_endpoint_histogram(&g);
        // Total histogram mass equals the number of neighbor pairs.
        let expected: usize = (0..g.len())
            .map(|i| {
                let m = g.degree(i);
                m * m.saturating_sub(1) / 2
            })
            .sum();
        assert_eq!(hist.iter().sum::<usize>(), expected);
    }
}

//! CSR link matrix — the parallel hot-path replacement for [`LinkTable`].
//!
//! The Fig.-4 link pass and the §4.4 matrix-square both produce, for every
//! point, the sorted list of partners it shares common neighbors with.
//! [`LinkMatrix`] stores exactly that as compressed sparse rows: one
//! `offsets` array plus parallel `cols`/`counts` arrays holding both
//! directions of every linked pair. Compared to the
//! `FxHashMap<(u32,u32),u32>`-backed [`LinkTable`], lookups are a binary
//! search in a contiguous row, iteration is a linear scan, and
//! construction is a sort — all cache-friendly and parallelisable.
//!
//! Two construction kernels are provided, selected by [`LinkMatrix::compute_auto`]:
//!
//! * [`LinkMatrix::compute_sparse`] — Fig. 4 reformulated as a pair
//!   stream: every point emits one `(j, l)` pair per pair of its
//!   neighbors; points are sharded across workers (balanced by the
//!   per-point `mᵢ²` cost), each worker counting-sorts its own stream
//!   (histogram by smaller endpoint, scatter, dense per-segment count),
//!   and the per-shard `(key, count)` runs are k-way merged with counts
//!   summed. The multiset of emitted pairs — and therefore the merged,
//!   sorted result — is independent of the shard boundaries, so output
//!   is **bit-identical for every thread count**.
//! * [`LinkMatrix::compute_dense`] — §4.4's boolean `A²` over bit-packed
//!   adjacency rows: worker `t` owns a block of rows and computes
//!   `popcount(rowᵢ & rowⱼ)` for `j > i`, writing into its own block, so
//!   again no merge order can affect the result.
//!
//! See DESIGN.md §"Performance model" for layout diagrams and the
//! measured crossover between the kernels.

use crate::links::LinkTable;
use crate::neighbors::NeighborGraph;
use crate::util::BitSet;

/// Which link-construction kernel to run (see
/// [`LinkMatrix::choose_kernel`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkKernel {
    /// The Fig.-4 counting-sort pair-stream kernel.
    Sparse,
    /// The §4.4 boolean matrix square over bit-packed rows.
    Dense,
}

/// Symmetric link counts in compressed-sparse-row form.
///
/// Row `i` lists, ascending, every `j` with `link(i, j) > 0` together
/// with the count; every linked pair therefore appears twice (once per
/// endpoint), exactly like the adjacency view of [`LinkTable::per_point`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkMatrix {
    /// Row boundaries: row `i` occupies `cols[offsets[i]..offsets[i+1]]`.
    offsets: Vec<usize>,
    /// Partner ids, ascending within each row.
    cols: Vec<u32>,
    /// Link counts, parallel to `cols`.
    counts: Vec<u32>,
}

impl LinkMatrix {
    /// An empty matrix over `n` points.
    pub fn new(n: usize) -> Self {
        LinkMatrix {
            offsets: vec![0; n + 1],
            cols: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Number of points the matrix is defined over.
    pub fn num_points(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The link count of the pair `{i, j}` (0 if absent or `i == j`).
    #[inline]
    pub fn count(&self, i: usize, j: usize) -> u32 {
        let (cols, counts) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(pos) => counts[pos],
            Err(_) => 0,
        }
    }

    /// Row `i` as `(partner ids, counts)` slices, partners ascending.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[u32]) {
        let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
        (&self.cols[lo..hi], &self.counts[lo..hi])
    }

    /// Number of point pairs with at least one link.
    pub fn num_linked_pairs(&self) -> usize {
        debug_assert!(self.cols.len().is_multiple_of(2));
        self.cols.len() / 2
    }

    /// Total number of links over all pairs.
    pub fn total_links(&self) -> u64 {
        self.counts.iter().map(|&c| u64::from(c)).sum::<u64>() / 2
    }

    /// Iterates over `((i, j), count)` with `i < j`, ascending by `(i, j)`.
    pub fn iter_upper(&self) -> impl Iterator<Item = ((u32, u32), u32)> + '_ {
        (0..self.num_points()).flat_map(move |i| {
            let (cols, counts) = self.row(i);
            let start = cols.partition_point(|&j| (j as usize) <= i);
            cols[start..]
                .iter()
                .zip(&counts[start..])
                .map(move |(&j, &c)| ((i as u32, j), c))
        })
    }

    /// Converts to the hashmap-backed reference representation.
    pub fn to_table(&self) -> LinkTable {
        let mut table = LinkTable::new(self.num_points());
        for ((i, j), c) in self.iter_upper() {
            table.add(i as usize, j as usize, c);
        }
        table
    }

    /// Builds a matrix from the hashmap-backed reference representation.
    pub fn from_table(table: &LinkTable) -> Self {
        let mut pairs: Vec<(u64, u32)> = table
            .iter()
            .map(|((i, j), c)| (pack(i, j), c))
            .collect();
        pairs.sort_unstable_by_key(|&(key, _)| key);
        Self::assemble(table.num_points(), &pairs)
    }

    /// Approximate heap footprint in bytes (for the auto heuristic and
    /// benchmark reports).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.cols.len() * 4
            + self.counts.len() * 4
    }

    /// Fig. 4 via the sharded pair-stream kernel. `threads == 1` runs the
    /// same kernel on one shard; output is identical for every `threads`.
    ///
    /// Each worker counting-sorts its shard's pair stream instead of
    /// comparison-sorting it: a histogram over the smaller endpoint `j`
    /// (O(Σmᵢ), exploiting that point `i`'s ascending neighbor list
    /// contributes `mᵢ−1−a` pairs with smaller endpoint `nbrs[a]`), a
    /// linear scatter of the larger endpoints into per-`j` segments, then
    /// a dense per-segment count. O(pairs) total, vs O(pairs·log pairs)
    /// for a sort — the difference that makes this kernel beat the
    /// hashmap reference instead of losing to it.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn compute_sparse(graph: &NeighborGraph, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        let n = graph.len();
        // Per-point pair emission cost mᵢ·(mᵢ−1)/2 drives the shard
        // boundaries so workers finish together even when a few hub
        // points dominate (the mushroom data set's species cliques).
        let cost = |i: usize| {
            let m = graph.degree(i) as u64;
            m * m.saturating_sub(1) / 2
        };
        let shards = balanced_ranges(n, threads, cost);

        let mut per_shard: Vec<Vec<(u64, u32)>> = Vec::with_capacity(shards.len());
        per_shard.resize_with(shards.len(), Vec::new);
        rayon::scope(|scope| {
            for (range, out) in shards.iter().zip(per_shard.iter_mut()) {
                let range = range.clone();
                scope.spawn(move |_| {
                    // Histogram: pairs whose smaller endpoint is j.
                    let mut offsets = vec![0usize; n + 1];
                    for i in range.clone() {
                        let nbrs = graph.neighbors(i);
                        let m = nbrs.len();
                        for (a, &j) in nbrs.iter().enumerate() {
                            offsets[j as usize + 1] += m - 1 - a;
                        }
                    }
                    for j in 0..n {
                        offsets[j + 1] += offsets[j];
                    }
                    // Scatter the larger endpoints into per-j segments.
                    // Neighbor lists are ascending ⇒ (j, l) is already the
                    // normalised (min, max) pair.
                    let mut data = vec![0u32; offsets[n]];
                    let mut cursor: Vec<usize> = offsets[..n].to_vec();
                    for i in range {
                        let nbrs = graph.neighbors(i);
                        for (a, &j) in nbrs.iter().enumerate() {
                            let mut c = cursor[j as usize];
                            for &l in &nbrs[a + 1..] {
                                data[c] = l;
                                c += 1;
                            }
                            cursor[j as usize] = c;
                        }
                    }
                    // Dense count per segment → sorted (key, count) runs.
                    let mut scratch = vec![0u32; n];
                    let mut partners: Vec<u32> = Vec::new();
                    let mut pairs: Vec<(u64, u32)> = Vec::new();
                    for j in 0..n {
                        let seg = &data[offsets[j]..offsets[j + 1]];
                        if seg.is_empty() {
                            continue;
                        }
                        for &l in seg {
                            if scratch[l as usize] == 0 {
                                partners.push(l);
                            }
                            scratch[l as usize] += 1;
                        }
                        partners.sort_unstable();
                        for &l in &partners {
                            pairs.push((pack(j as u32, l), scratch[l as usize]));
                            scratch[l as usize] = 0;
                        }
                        partners.clear();
                    }
                    *out = pairs;
                });
            }
        });

        let pairs = merge_counts(per_shard);
        Self::assemble(n, &pairs)
    }

    /// §4.4's boolean matrix square over bit-packed rows, blocked across
    /// workers. Output is identical to [`Self::compute_sparse`].
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn compute_dense(graph: &NeighborGraph, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        let n = graph.len();
        let mut rows: Vec<BitSet> = Vec::with_capacity(n);
        for i in 0..n {
            let mut row = BitSet::new(n);
            for &j in graph.neighbors(i) {
                row.set(j as usize);
            }
            rows.push(row);
        }
        let rows = &rows;

        // Row i of the upper triangle costs (n − i) popcount-AND sweeps.
        let shards = balanced_ranges(n, threads, |i| (n - i) as u64);
        let mut upper: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        rayon::scope(|scope| {
            let mut rest = upper.as_mut_slice();
            let mut consumed = 0;
            for range in &shards {
                let (block, tail) = rest.split_at_mut(range.end - consumed);
                rest = tail;
                let lo = consumed;
                consumed = range.end;
                scope.spawn(move |_| {
                    for (offset, out) in block.iter_mut().enumerate() {
                        let i = lo + offset;
                        for j in (i + 1)..n {
                            let c = rows[i].intersection_count(&rows[j]);
                            if c > 0 {
                                out.push((j as u32, c as u32));
                            }
                        }
                    }
                });
            }
        });

        let pairs: Vec<(u64, u32)> = upper
            .iter()
            .enumerate()
            .flat_map(|(i, row)| {
                row.iter().map(move |&(j, c)| (pack(i as u32, j), c))
            })
            .collect();
        Self::assemble(n, &pairs)
    }

    /// Chooses between the sparse and dense kernels by estimated cost.
    ///
    /// The pair-stream kernel touches each of its ~`Σᵢ mᵢ²/2` pairs a
    /// constant number of times (histogram, scatter, count); the bitset
    /// square costs `n²/2 · ⌈n/64⌉` word ANDs plus O(n²/8) bytes of row
    /// storage. One counted pair costs ~1.5× a popcount-AND word op
    /// (measured with `bench/benches/rock_parallel.rs` on the §5.3
    /// generator — far below the ~8× of the old hash-increment path,
    /// which is why the crossover moved), and both kernels parallelise
    /// evenly so `threads` does not shift it. Dense is refused above
    /// 64 MiB of row storage regardless.
    pub fn compute_auto(graph: &NeighborGraph, threads: usize) -> Self {
        match Self::choose_kernel(graph) {
            LinkKernel::Dense => Self::compute_dense(graph, threads),
            LinkKernel::Sparse => Self::compute_sparse(graph, threads),
        }
    }

    /// The kernel [`compute_auto`](Self::compute_auto) would pick for
    /// `graph`, exposed so budget-aware drivers can veto the dense
    /// kernel's `n²/8` row storage *before* allocating it (see
    /// [`crate::governor::DegradationPolicy::SparseLinks`]).
    pub fn choose_kernel(graph: &NeighborGraph) -> LinkKernel {
        let n = graph.len() as f64;
        let sparse_cost: f64 = (0..graph.len())
            .map(|i| {
                let m = graph.degree(i) as f64;
                m * m
            })
            .sum::<f64>()
            / 2.0
            * 1.5;
        let dense_cost = n * n / 2.0 * (n / 64.0).max(1.0);
        let dense_bytes = n * n / 8.0;
        if dense_cost < sparse_cost && dense_bytes < 64.0 * 1024.0 * 1024.0 {
            LinkKernel::Dense
        } else {
            LinkKernel::Sparse
        }
    }

    /// Transient working-set estimate of the dense kernel over `n`
    /// points: the bit-packed adjacency rows (`n²/8` bytes). The sparse
    /// kernel's working set is the counted pair stream, roughly
    /// proportional to the output CSR instead.
    pub fn estimated_dense_bytes(n: usize) -> u64 {
        let n = n as u64;
        n * n / 8
    }

    /// Runs the named kernel.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn compute_kernel(graph: &NeighborGraph, threads: usize, kernel: LinkKernel) -> Self {
        match kernel {
            LinkKernel::Dense => Self::compute_dense(graph, threads),
            LinkKernel::Sparse => Self::compute_sparse(graph, threads),
        }
    }

    /// Builds the symmetric CSR from upper-triangle pairs sorted
    /// ascending by packed `(i, j)` key.
    fn assemble(n: usize, pairs: &[(u64, u32)]) -> Self {
        let mut degree = vec![0usize; n];
        for &(key, _) in pairs {
            let (i, j) = unpack(key);
            degree[i as usize] += 1;
            degree[j as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let total = offsets[n];
        let mut cols = vec![0u32; total];
        let mut counts = vec![0u32; total];
        let mut cursor = offsets.clone();
        // Scanning pairs in ascending (i, j) order fills every row
        // ascending: row r first receives partners h < r (from pairs
        // (h, r), ascending h), then partners j > r (from pairs (r, j),
        // ascending j) — all lower-partner pairs sort before any
        // upper-partner pair of the same row.
        for &(key, c) in pairs {
            let (i, j) = unpack(key);
            cols[cursor[i as usize]] = j;
            counts[cursor[i as usize]] = c;
            cursor[i as usize] += 1;
            cols[cursor[j as usize]] = i;
            counts[cursor[j as usize]] = c;
            cursor[j as usize] += 1;
        }
        debug_assert!((0..n).all(|i| {
            let (lo, hi) = (offsets[i], offsets[i + 1]);
            cols[lo..hi].windows(2).all(|w| w[0] < w[1])
        }));
        LinkMatrix {
            offsets,
            cols,
            counts,
        }
    }
}

#[inline]
fn pack(i: u32, j: u32) -> u64 {
    (u64::from(i) << 32) | u64::from(j)
}

#[inline]
fn unpack(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// Splits `0..n` into at most `threads` contiguous ranges of roughly
/// equal total `cost`. Never returns an empty range; returns fewer
/// ranges when `n < threads` or the cost mass is concentrated.
fn balanced_ranges(n: usize, threads: usize, cost: impl Fn(usize) -> u64) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let total: u64 = (0..n).map(&cost).sum();
    let target = total / threads as u64 + 1;
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0;
    let mut acc = 0u64;
    for i in 0..n {
        acc += cost(i);
        let remaining_shards = threads - ranges.len();
        if acc >= target && remaining_shards > 1 && i + 1 < n {
            ranges.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
        if ranges.len() + 1 == threads {
            break;
        }
    }
    ranges.push(start..n);
    ranges
}

/// K-way merges per-shard sorted `(key, count)` streams, summing the
/// counts of keys present in several shards. The result depends only on
/// the union multiset of pairs, not on how shards split it.
fn merge_counts(mut shards: Vec<Vec<(u64, u32)>>) -> Vec<(u64, u32)> {
    shards.retain(|s| !s.is_empty());
    match shards.len() {
        0 => Vec::new(),
        // tidy-allow(panic): the match arm guarantees exactly one shard
        1 => shards.pop().expect("one shard"),
        _ => {
            let total: usize = shards.iter().map(Vec::len).sum();
            let mut out: Vec<(u64, u32)> = Vec::with_capacity(total);
            let mut heads = vec![0usize; shards.len()];
            loop {
                // Linear scan over ≤ threads heads; shard count is small
                // so this beats a binary heap's bookkeeping.
                let mut min: Option<(usize, u64)> = None;
                for (s, shard) in shards.iter().enumerate() {
                    if let Some(&(key, _)) = shard.get(heads[s]) {
                        if min.is_none_or(|(_, k)| key < k) {
                            min = Some((s, key));
                        }
                    }
                }
                let Some((s, key)) = min else { break };
                let count = shards[s][heads[s]].1;
                heads[s] += 1;
                match out.last_mut() {
                    Some((k, c)) if *k == key => *c += count,
                    _ => out.push((key, count)),
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::links::compute_links_sparse;
    use crate::points::Transaction;
    use crate::similarity::{Jaccard, PointsWith, SimilarityMatrix};

    fn pseudo_graph(n: usize, theta: f64) -> NeighborGraph {
        let m = SimilarityMatrix::from_fn(n, |i, j| {
            ((i * j).wrapping_mul(2654435761) % 1000) as f64 / 1000.0
        });
        NeighborGraph::build(&m, theta)
    }

    #[test]
    fn matches_reference_table() {
        let g = pseudo_graph(90, 0.6);
        let reference = compute_links_sparse(&g);
        let matrix = LinkMatrix::compute_sparse(&g, 1);
        assert_eq!(matrix.to_table(), reference);
        assert_eq!(matrix.num_linked_pairs(), reference.num_linked_pairs());
        assert_eq!(matrix.total_links(), reference.total_links());
        for i in 0..g.len() {
            for j in 0..g.len() {
                assert_eq!(
                    matrix.count(i, j),
                    reference.count(i, j),
                    "pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn sparse_kernel_is_thread_count_invariant() {
        let g = pseudo_graph(150, 0.5);
        let one = LinkMatrix::compute_sparse(&g, 1);
        for threads in [2, 3, 5, 8, 16] {
            assert_eq!(
                LinkMatrix::compute_sparse(&g, threads),
                one,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn dense_kernel_matches_sparse_kernel() {
        for theta in [0.2, 0.5, 0.8] {
            let g = pseudo_graph(120, theta);
            let sparse = LinkMatrix::compute_sparse(&g, 3);
            for threads in [1, 4] {
                assert_eq!(
                    LinkMatrix::compute_dense(&g, threads),
                    sparse,
                    "theta={theta} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn auto_matches_explicit_kernels() {
        for theta in [0.15, 0.9] {
            let g = pseudo_graph(140, theta);
            assert_eq!(
                LinkMatrix::compute_auto(&g, 2),
                LinkMatrix::compute_sparse(&g, 1),
                "theta={theta}"
            );
        }
    }

    #[test]
    fn rows_are_sorted_and_symmetric() {
        let g = pseudo_graph(100, 0.45);
        let m = LinkMatrix::compute_sparse(&g, 4);
        for i in 0..m.num_points() {
            let (cols, counts) = m.row(i);
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {i} unsorted");
            for (&j, &c) in cols.iter().zip(counts) {
                assert!(c > 0);
                assert_eq!(m.count(j as usize, i), c, "asymmetric ({i},{j})");
            }
        }
    }

    #[test]
    fn iter_upper_is_sorted_and_complete() {
        let g = pseudo_graph(80, 0.5);
        let m = LinkMatrix::compute_sparse(&g, 2);
        let pairs: Vec<((u32, u32), u32)> = m.iter_upper().collect();
        assert_eq!(pairs.len(), m.num_linked_pairs());
        assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "unsorted pairs");
        for &((i, j), c) in &pairs {
            assert!(i < j);
            assert_eq!(m.count(i as usize, j as usize), c);
        }
    }

    #[test]
    fn from_table_round_trips() {
        let g = pseudo_graph(70, 0.55);
        let table = compute_links_sparse(&g);
        let m = LinkMatrix::from_table(&table);
        assert_eq!(m, LinkMatrix::compute_sparse(&g, 1));
        assert_eq!(m.to_table(), table);
    }

    #[test]
    fn paper_example_links_figure1() {
        // Same §3.2 counts the LinkTable tests pin down.
        let ts = crate::testdata::figure1_transactions();
        let find = |items: [u32; 3]| {
            let t = Transaction::from(items);
            ts.iter().position(|x| *x == t).expect("present")
        };
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let m = LinkMatrix::compute_auto(&g, 2);
        assert_eq!(m.count(find([1, 2, 6]), find([1, 2, 7])), 5);
        assert_eq!(m.count(find([1, 2, 6]), find([1, 2, 3])), 3);
        assert_eq!(m.count(find([1, 6, 7]), find([1, 2, 6])), 2);
        assert_eq!(m.count(find([1, 6, 7]), find([3, 4, 5])), 0);
    }

    #[test]
    fn empty_and_isolated() {
        let empty = LinkMatrix::new(0);
        assert_eq!(empty.num_points(), 0);
        assert_eq!(empty.iter_upper().count(), 0);

        let g = NeighborGraph::from_lists(vec![vec![], vec![], vec![]], 0.5);
        let m = LinkMatrix::compute_sparse(&g, 2);
        assert_eq!(m.num_points(), 3);
        assert_eq!(m.num_linked_pairs(), 0);
        assert_eq!(m.count(0, 1), 0);
    }

    #[test]
    fn balanced_ranges_cover_everything() {
        for (n, threads) in [(10, 3), (1, 8), (100, 1), (7, 7), (5, 16)] {
            let ranges = balanced_ranges(n, threads, |i| (i as u64 % 5) + 1);
            assert!(ranges.len() <= threads);
            assert_eq!(ranges.first().map(|r| r.start), Some(0));
            assert_eq!(ranges.last().map(|r| r.end), Some(n));
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "gap or overlap");
            }
            assert!(ranges.iter().all(|r| !r.is_empty()));
        }
        assert!(balanced_ranges(0, 4, |_| 1).is_empty());
    }
}
